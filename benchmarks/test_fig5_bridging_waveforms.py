"""Fig. 5 — waveforms for an external resistive bridging fault.

Paper (Fig. 4/5): the victim stage output bridges to a steady aggressor
output; above the critical resistance the contention produces an
incomplete pulse that is dampened within a few logic levels, even when
the static transition delay penalty is already small.
"""

from conftest import bench_dt, print_figure

from repro.core import ExperimentConfig, run_waveform_experiment
from repro.reporting import format_table

RESISTANCE = 2.5e3
W_IN = 0.40e-9


def run_experiment():
    config = ExperimentConfig(dt=bench_dt())
    return run_waveform_experiment("bridging", RESISTANCE, w_in=W_IN,
                                   config=config)


def figure_rows(experiment):
    return [
        [node,
         experiment.excursion(experiment.fault_free, node),
         experiment.excursion(experiment.faulty, node)]
        for node in experiment.nodes
    ]


def test_fig5_bridging_waveforms(benchmark):
    experiment = run_experiment()
    rows = benchmark(figure_rows, experiment)
    print_figure(
        "Fig. 5 — external bridging at stage-2 output "
        "(R = {:.0f} ohm), w_in = {:.0f} ps".format(
            RESISTANCE, W_IN * 1e12),
        format_table(
            ["node", "fault-free excursion (V)", "faulty excursion (V)"],
            rows))

    vdd = experiment.vdd
    faulty = {r[0]: r[2] for r in rows}

    # The victim node (a2) only manages an incomplete excursion against
    # the aggressor...
    assert faulty["a2"] < 0.9 * vdd
    # ...and the incomplete pulse dies before the path output.
    assert experiment.dampened_at_output()

    # Static behaviour is *correct* (R above critical resistance): a
    # quiet fault under functional test, per Sec. 2.
    from repro.core import build_instance, measure_path_delay
    from repro.faults import BridgingFault, inject
    import math
    faulty_path = build_instance(fault=BridgingFault(2, RESISTANCE))
    delay, _ = measure_path_delay(faulty_path, "rise", dt=bench_dt())
    assert math.isfinite(delay)
