"""Fig. 3 — faulty vs fault-free waveforms for an external resistive open.

Paper: the open on the fan-out branch B->C degrades the slopes of *both*
transitions of the branch node; the pulse shrinks into an incomplete
pulse and (for pulses comparable with the degraded transition time) is
dampened.  External opens are milder than internal ones at equal R, so
the bench shows both the paper's 8 kOhm point (visible shrinkage) and a
larger R where the pulse dies in this technology.
"""

from conftest import bench_dt, print_figure

from repro.core import (ExperimentConfig, run_waveform_experiment)
from repro.reporting import format_table

W_IN = 0.40e-9
R_PAPER = 8e3
R_KILL = 20e3


def run_experiments():
    config = ExperimentConfig(dt=bench_dt())
    return {
        r: run_waveform_experiment("external_rop", r, w_in=W_IN,
                                   config=config)
        for r in (R_PAPER, R_KILL)
    }


def figure_rows(experiments):
    rows = []
    reference = experiments[R_PAPER]
    for node in reference.nodes:
        rows.append([
            node,
            reference.excursion(reference.fault_free, node),
            experiments[R_PAPER].excursion(
                experiments[R_PAPER].faulty, node),
            experiments[R_KILL].excursion(
                experiments[R_KILL].faulty, node),
        ])
    return rows


def test_fig3_external_rop_waveforms(benchmark):
    experiments = run_experiments()
    rows = benchmark(figure_rows, experiments)
    print_figure(
        "Fig. 3 — external ROP on the stage-2 fan-out branch, "
        "w_in = {:.0f} ps".format(W_IN * 1e12),
        format_table(
            ["node", "fault-free (V)",
             "R={:.0f} (V)".format(R_PAPER),
             "R={:.0f} (V)".format(R_KILL)], rows))

    from repro.core import measure_output_pulse
    from repro.faults import ExternalOpen, InternalOpen, PULL_UP, inject
    from repro.core import build_instance

    dt = bench_dt()
    healthy = build_instance()
    w_ff, _ = measure_output_pulse(healthy, W_IN, dt=dt)
    w_8k, _ = measure_output_pulse(
        build_instance(fault=ExternalOpen(2, R_PAPER)), W_IN, dt=dt)
    w_20k, _ = measure_output_pulse(
        build_instance(fault=ExternalOpen(2, R_KILL)), W_IN, dt=dt)
    w_int8k, _ = measure_output_pulse(
        build_instance(fault=InternalOpen(2, PULL_UP, R_PAPER)), W_IN,
        dt=dt)

    # Both edges degraded -> width shrinks monotonically with R, and the
    # pulse eventually dies.
    assert w_8k < w_ff
    assert w_20k < w_8k
    assert w_20k == 0.0

    # Sec. 2: "the effects of internal ROPs are more relevant than those
    # of external ROPs" at equal resistance.
    assert w_int8k < w_8k
