#!/usr/bin/env python
"""Compare two ``BENCH_runtime.json`` files and fail on regressions.

Usage::

    python benchmarks/compare_bench.py BASELINE FRESH [--threshold 0.30]
                                       [--absolute]

Walks every section of both reports and compares the performance
metrics they share.  By default only *machine-independent ratios* are
compared (``speedup_vs_*``, ``step_reduction_vs_fixed``,
``warm_over_cold``): the committed baseline usually comes from a
different machine than the fresh run, so absolute wall times and
samples/s say more about the runner than about the code.
``--absolute`` additionally compares raw throughput numbers
(``*_per_second``) for same-machine A/B runs.

A metric regresses when the fresh value is worse than the baseline by
more than ``--threshold`` (default 0.30 = 30%).  "Worse" is
direction-aware: higher is better for speedups and throughput, lower is
better for ``warm_over_cold``.  Exit status is 1 when any metric
regressed, 0 otherwise.
"""

import argparse
import json
import sys

#: metric-name suffixes that are ratios (machine-independent).
RATIO_HIGHER_IS_BETTER = ("speedup_vs_serial", "speedup_vs_exact",
                          "speedup_vs_sequential",
                          "step_reduction_vs_fixed",
                          "transient_reduction_vs_fixed")
RATIO_LOWER_IS_BETTER = ("warm_over_cold",)

#: absolute throughput metrics, only compared with ``--absolute``.
ABSOLUTE_HIGHER_IS_BETTER = ("samples_per_second", "jobs_per_second",
                             "runs_per_second_exact",
                             "runs_per_second_reuse")


def walk_metrics(report, path=""):
    """Yield ``(dotted.path, leaf_key, value)`` for every numeric leaf."""
    for key, value in sorted(report.items()):
        here = "{}.{}".format(path, key) if path else key
        if isinstance(value, dict):
            for item in walk_metrics(value, here):
                yield item
        elif isinstance(value, (int, float)) and not isinstance(
                value, bool):
            yield here, key, float(value)


def classify(leaf_key, absolute):
    """``(tracked, higher_is_better)`` for one metric name."""
    if leaf_key in RATIO_HIGHER_IS_BETTER:
        return True, True
    if leaf_key in RATIO_LOWER_IS_BETTER:
        return True, False
    if absolute and leaf_key in ABSOLUTE_HIGHER_IS_BETTER:
        return True, True
    return False, True


def compare(baseline, fresh, threshold, absolute=False):
    """Compare two parsed reports; returns ``(regressions, checked)``.

    ``regressions`` is a list of human-readable strings; ``checked``
    counts the metrics present in both reports and tracked under the
    current mode.
    """
    base_metrics = {p: v for p, k, v in walk_metrics(baseline)
                    if classify(k, absolute)[0]}
    regressions = []
    checked = 0
    for path, key, value in walk_metrics(fresh):
        tracked, higher_better = classify(key, absolute)
        if not tracked or path not in base_metrics:
            continue
        ref = base_metrics[path]
        checked += 1
        if ref <= 0:
            continue
        change = value / ref - 1.0
        worse = -change if higher_better else change
        if worse > threshold:
            regressions.append(
                "{}: {:.3f} -> {:.3f} ({:+.1%}, {} is better)".format(
                    path, ref, value, change,
                    "higher" if higher_better else "lower"))
    return regressions, checked


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="fail on BENCH_runtime.json perf regressions")
    parser.add_argument("baseline", help="committed reference report")
    parser.add_argument("fresh", help="freshly generated report")
    parser.add_argument("--threshold", type=float, default=0.30,
                        help="allowed fractional regression "
                             "(default 0.30)")
    parser.add_argument("--absolute", action="store_true",
                        help="also compare machine-dependent throughput "
                             "(same-machine A/B runs only)")
    args = parser.parse_args(argv)

    with open(args.baseline) as handle:
        baseline = json.load(handle)
    with open(args.fresh) as handle:
        fresh = json.load(handle)

    regressions, checked = compare(baseline, fresh, args.threshold,
                                   absolute=args.absolute)
    if checked == 0:
        print("compare_bench: no shared metrics to compare "
              "(wrong files?)")
        return 1
    if regressions:
        print("compare_bench: {} of {} metrics regressed more than "
              "{:.0%}:".format(len(regressions), checked,
                               args.threshold))
        for line in regressions:
            print("  " + line)
        return 1
    print("compare_bench: {} metrics within {:.0%} of baseline".format(
        checked, args.threshold))
    return 0


if __name__ == "__main__":
    sys.exit(main())
