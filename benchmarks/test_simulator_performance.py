"""Performance benchmarks of the electrical substrate itself.

These are the only benches where pytest-benchmark's statistics matter:
they track the cost of the primitive operations every experiment is
built from, so performance regressions in the MNA core show up here.

``test_perf_campaign_runtime`` additionally writes ``BENCH_runtime.json``
at the repo root (serial vs parallel vs batched vs adaptive samples/sec,
accepted/rejected adaptive step counts, cache-warm speedup) so later PRs
can track the campaign runtime's perf trajectory.
Knobs: ``REPRO_BENCH_SAMPLES`` (population size, default 32),
``REPRO_BENCH_JOBS`` (parallel worker count, default min(4, CPUs)),
``REPRO_BENCH_BATCH`` (lockstep batch size, default 32).
"""

import json
import math
import os
import time

import numpy as np
import pytest

from repro.cells import build_path
from repro.spice import operating_point, run_transient
from repro.spice.mna import CompiledCircuit
from repro.spice.dcop import solve_dc


@pytest.fixture(scope="module")
def reference_path():
    return build_path()


def test_perf_compile(benchmark, reference_path):
    """Netlist -> numeric lowering of the reference path."""
    result = benchmark(CompiledCircuit, reference_path.circuit)
    assert result.n_nodes > 5


def test_perf_dc_operating_point(benchmark, reference_path):
    """Newton DC solve of the 7-gate sensitized path."""
    compiled = CompiledCircuit(reference_path.circuit)
    x = benchmark(solve_dc, compiled)
    assert abs(x).max() <= reference_path.tech.vdd * 1.2


def test_perf_short_transient(benchmark, reference_path):
    """A 0.5 ns transient at 4 ps on the reference path (~125 steps)."""
    reference_path.set_input_pulse(0.3e-9, kind="h")

    def run():
        return run_transient(reference_path.circuit, 0.5e-9, 4e-12,
                             record=[reference_path.output_node])

    waveform = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(waveform.t) > 100


def test_perf_full_pulse_measurement(benchmark, reference_path):
    """The workhorse: one complete w_out measurement."""
    from repro.core import measure_output_pulse

    def run():
        return measure_output_pulse(reference_path, 0.42e-9, dt=4e-12)

    w_out, _ = benchmark.pedantic(run, rounds=2, iterations=1)
    assert w_out > 0.3e-9


def test_perf_logic_event_simulation(benchmark):
    """Event-driven run over the c432-class netlist."""
    from repro.logic import GateTiming, TimingSimulator, generate_c432_like

    netlist = generate_c432_like()
    sim = TimingSimulator(netlist, timing=GateTiming())
    vector = {pi: 0 for pi in netlist.primary_inputs}
    pi = netlist.primary_inputs[0]

    def run():
        return sim.run(vector, events=[(1e-9, pi, 1)], t_end=50e-9)

    trace = benchmark(run)
    assert trace.t_end == 50e-9


def test_perf_atpg_sensitization(benchmark):
    """One PODEM sensitization on the c432-class netlist."""
    from repro.logic import generate_c432_like, paths_through, sensitize_path

    netlist = generate_c432_like()
    from repro.core.experiments import _pick_fault_site
    net = _pick_fault_site(netlist)
    path = paths_through(netlist, net, max_paths=4)[0]

    result = benchmark(sensitize_path, netlist, path)
    # the picked site may or may not sensitize on its first path; the
    # bench tracks cost, not outcome
    assert result is None or result.assignment is not None


def test_perf_campaign_runtime(tmp_path):
    """Campaign runtime trajectory: serial vs pool vs batched vs cache.

    Runs the same ROP coverage sweep (the acceptance workload: one
    measurement row per Monte Carlo sample) several ways and records the
    numbers in ``BENCH_runtime.json``.  A parallel speedup is only
    meaningful on a multi-core runner, so on a single-CPU box the
    parallel leg is *skipped* and marked as such in the JSON rather than
    recorded as a bogus comparison.  The ``batched`` section tracks the
    lockstep engine (one stacked MNA solve per Newton iteration across
    the whole population).  Knobs: ``REPRO_BENCH_SAMPLES``,
    ``REPRO_BENCH_JOBS``, ``REPRO_BENCH_BATCH``.
    """
    from repro.core.coverage import sweep_pulse_measurements
    from repro.faults import ExternalOpen
    from repro.montecarlo import sample_population
    from repro.runtime import (DEFAULT_BATCH_SIZE, ProcessPoolExecutor,
                               Runtime, SerialExecutor)

    n_samples = int(os.environ.get("REPRO_BENCH_SAMPLES", "32"))
    cpus = os.cpu_count() or 1
    n_jobs = int(os.environ.get("REPRO_BENCH_JOBS", str(min(4, cpus))))
    batch_size = int(os.environ.get("REPRO_BENCH_BATCH",
                                    str(DEFAULT_BATCH_SIZE)))
    samples = sample_population(n_samples, base_seed=1)
    fault = ExternalOpen(2, 8e3)
    resistances = [2e3, 8e3, 32e3]
    sweep_kwargs = dict(omega_in=0.40e-9, dt=5e-12)

    def timed(runtime, engine="scalar"):
        t0 = time.perf_counter()
        rows = sweep_pulse_measurements(samples, fault, resistances,
                                        runtime=runtime, engine=engine,
                                        batch_size=batch_size,
                                        **sweep_kwargs)
        return rows, time.perf_counter() - t0

    serial_rows, serial_s = timed(Runtime(executor=SerialExecutor()))
    batched_rows, batched_s = timed(Runtime(executor=SerialExecutor()),
                                    engine="batched")

    # Adaptive grid: same workload on the LTE-controlled time base.
    from repro.spice import ADAPTIVE_STATS

    stats_before = dict(ADAPTIVE_STATS)
    t0 = time.perf_counter()
    adaptive_rows = sweep_pulse_measurements(
        samples, fault, resistances,
        runtime=Runtime(executor=SerialExecutor()), adaptive=True,
        **sweep_kwargs)
    adaptive_s = time.perf_counter() - t0
    adaptive_accepted = ADAPTIVE_STATS["accepted"] - stats_before["accepted"]
    adaptive_rejected = ADAPTIVE_STATS["rejected"] - stats_before["rejected"]
    adaptive_runs = ADAPTIVE_STATS["runs"] - stats_before["runs"]
    if cpus > 1:
        parallel_rows, parallel_s = timed(
            Runtime(executor=ProcessPoolExecutor(n_jobs=n_jobs)))
        assert serial_rows == parallel_rows
        parallel_report = {
            "n_jobs": n_jobs,
            "wall_time_s": parallel_s,
            "samples_per_second": n_samples / parallel_s,
            "speedup_vs_serial": serial_s / parallel_s,
        }
    else:
        # one CPU: a process pool only adds fork/IPC overhead, and the
        # "speedup" would be noise — record the skip honestly instead.
        parallel_report = {
            "skipped": True,
            "reason": "cpu_count == 1: no parallelism available",
            "n_jobs": n_jobs,
        }
    cached = Runtime(cache=str(tmp_path / "cache"))
    cold_rows, cold_s = timed(cached)
    warm_rows, warm_s = timed(cached)

    assert serial_rows == cold_rows == warm_rows
    # The engines agree to solver tolerance, not bit-exactly.
    worst = max(abs(a - b)
                for srow, brow in zip(serial_rows, batched_rows)
                for a, b in zip(srow, brow))
    assert worst < 1e-12, worst

    # The adaptive grid changes the time base, so rows agree only to
    # measurement tolerance (the equivalence suite pins 0.1 ps against
    # a 4x finer grid; the 5 ps bench grid itself carries more error,
    # so the gate here is looser).
    worst_adaptive = max(abs(a - b)
                         for srow, arow in zip(serial_rows, adaptive_rows)
                         for a, b in zip(srow, arow))
    assert worst_adaptive < 2e-12, worst_adaptive

    # Fixed-grid step count of the same workload, for the step budget:
    # every measurement simulates the same per-path window.
    import math as _math

    from repro.core.pulse import simulation_window

    probe = build_path()
    stim_delay = probe.set_input_pulse(sweep_kwargs["omega_in"], kind="h")
    tstop = simulation_window(probe, w_in=sweep_kwargs["omega_in"],
                              stimulus_delay=stim_delay)
    fixed_steps_per_run = _math.ceil(tstop / sweep_kwargs["dt"])
    adaptive_steps_per_run = adaptive_accepted / max(1, adaptive_runs)

    report = {
        "workload": {
            "sweep": "external open C_pulse rows",
            "n_samples": n_samples,
            "resistances": resistances,
            "dt": sweep_kwargs["dt"],
            "omega_in": sweep_kwargs["omega_in"],
        },
        "cpu_count": cpus,
        "serial": {
            "wall_time_s": serial_s,
            "samples_per_second": n_samples / serial_s,
        },
        "parallel": parallel_report,
        "batched": {
            "batch_size": batch_size,
            "wall_time_s": batched_s,
            "samples_per_second": n_samples / batched_s,
            "speedup_vs_serial": serial_s / batched_s,
            "max_abs_row_diff_vs_serial": worst,
        },
        "adaptive": {
            "wall_time_s": adaptive_s,
            "samples_per_second": n_samples / adaptive_s,
            "speedup_vs_serial": serial_s / adaptive_s,
            "transient_runs": adaptive_runs,
            "accepted_steps": adaptive_accepted,
            "rejected_steps": adaptive_rejected,
            "accepted_steps_per_run": adaptive_steps_per_run,
            "fixed_steps_per_run": fixed_steps_per_run,
            "step_reduction_vs_fixed":
                fixed_steps_per_run / max(1.0, adaptive_steps_per_run),
            "max_abs_row_diff_vs_serial": worst_adaptive,
        },
        "cache": {
            "cold_wall_time_s": cold_s,
            "warm_wall_time_s": warm_s,
            "warm_over_cold": warm_s / cold_s,
        },
    }
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_runtime.json")
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print("\nBENCH_runtime.json: serial {:.1f}s, batched {:.1f}s "
          "(x{:.2f}), adaptive {:.1f}s (x{:.2f}, {:.0f} vs {} steps), "
          "warm cache {:.2f}s ({:.1%} of cold)".format(
              serial_s, batched_s, serial_s / batched_s,
              adaptive_s, serial_s / adaptive_s,
              adaptive_steps_per_run, fixed_steps_per_run,
              warm_s, warm_s / cold_s))

    # The warm rerun must be dominated by cache lookups, not
    # re-simulation: well under 10% of the cold run.
    assert warm_s < 0.1 * cold_s
    # The lockstep engine must beat one-sample-at-a-time simulation.
    assert batched_s < serial_s
    # The adaptive grid must spend at most half the fixed grid's steps.
    assert adaptive_steps_per_run * 2 <= fixed_steps_per_run


def test_perf_adaptive_coverage():
    """Adaptive-precision campaign vs blind fixed grid.

    Runs the same coverage question twice — a fixed grid at full
    population, and the sequential Wilson-interval campaign with
    crossing refinement — and records the transient budget of each in
    the ``adaptive_coverage`` section of ``BENCH_runtime.json``
    (read-modify-write: the main runtime bench owns the rest of the
    file).  The fair comparison is against the *matched-resolution*
    grid: a blind grid dense enough to localise the crossing as tightly
    as the refinement does.  Knob: ``REPRO_BENCH_ADAPTIVE_SAMPLES``
    (default 8).
    """
    from repro.core.adaptive_coverage import adaptive_sweep
    from repro.core.coverage import sweep_pulse_measurements
    from repro.faults import ExternalOpen
    from repro.montecarlo import sample_population
    from repro.runtime import RunReport, Runtime, SerialExecutor

    n_samples = int(os.environ.get("REPRO_BENCH_ADAPTIVE_SAMPLES", "8"))
    samples = sample_population(n_samples, base_seed=7)
    fault = ExternalOpen(2, 2e3)
    grid = [1e3 * (40.0 ** (i / 4.0)) for i in range(5)]  # 1k..40k
    rel_tol = 0.25
    path_kwargs = dict(gate_kinds=("inv",) * 3)
    measure_kwargs = dict(dt=8e-12, omega_in=0.40e-9, kind="h")

    def decide(value, sample):
        return value <= 0.0  # detected = pulse fully dampened

    t0 = time.perf_counter()
    rows = sweep_pulse_measurements(samples, fault, grid,
                                    runtime=Runtime(
                                        executor=SerialExecutor()),
                                    **measure_kwargs, **path_kwargs)
    fixed_s = time.perf_counter() - t0
    fixed_transients = len(samples) * len(grid)
    coverage = [sum(decide(row[j], s)
                    for row, s in zip(rows, samples)) / len(samples)
                for j in range(len(grid))]
    fixed_rmin = next((r for r, c in zip(grid, coverage) if c >= 1.0),
                      None)
    assert fixed_rmin is not None, coverage

    report = RunReport("bench-adaptive")
    t0 = time.perf_counter()
    result = adaptive_sweep(samples, fault, grid, decide, ci_width=0.2,
                            min_wave=2, refine_rel_tol=rel_tol,
                            runtime=Runtime(executor=SerialExecutor()),
                            report=report, path_kwargs=path_kwargs,
                            measure="pulse", **measure_kwargs)
    adaptive_s = time.perf_counter() - t0
    matched = result.matched_resolution_measurements(rel_tol)
    adaptive_rmin = result.minimum_detectable_r(1.0)
    assert adaptive_rmin is not None

    # The refined crossing must sit inside the fixed grid's crossing
    # interval (one grid step below fixed_rmin, up to fixed_rmin).
    prev = max([r for r in grid if r < fixed_rmin] or [grid[0]])
    crossing = result.crossings[1.0]
    assert prev * (1 - 1e-9) <= crossing["lo"]
    assert crossing["hi"] <= fixed_rmin * (1 + 1e-9)

    section = {
        "workload": {
            "sweep": "external open C_pulse adaptive campaign",
            "n_samples": n_samples, "resistances": grid,
            "ci_width": 0.2, "refine_rel_tol": rel_tol,
            "dt": measure_kwargs["dt"],
            "omega_in": measure_kwargs["omega_in"],
        },
        "fixed_grid": {
            "wall_time_s": fixed_s,
            "transients": fixed_transients,
            "minimum_detectable_r": fixed_rmin,
        },
        "adaptive": {
            "wall_time_s": adaptive_s,
            "transients": result.total_measurements,
            "waves": result.waves,
            "minimum_detectable_r": adaptive_rmin,
            "crossing_lo": crossing["lo"],
            "crossing_hi": crossing["hi"],
        },
        "matched_resolution_transients": matched,
        "transient_reduction_vs_fixed":
            matched / max(1, result.total_measurements),
    }
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_runtime.json")
    try:
        with open(out) as handle:
            full = json.load(handle)
    except (OSError, ValueError):
        full = {}
    full["adaptive_coverage"] = section
    with open(out, "w") as handle:
        json.dump(full, handle, indent=2, sort_keys=True)
    print("\nadaptive coverage bench: {} adaptive vs {} matched "
          "transients (x{:.2f}), r_min {:.0f} ohm in [{:.0f}, {:.0f}]"
          .format(result.total_measurements, matched,
                  matched / max(1, result.total_measurements),
                  adaptive_rmin, crossing["lo"], crossing["hi"]))

    # The campaign must beat the matched-resolution blind grid by at
    # least 30% — the acceptance gate of the adaptive engine.
    assert result.total_measurements <= 0.7 * matched


def test_perf_solver_fast_path():
    """Factorization-reuse solver speedup on wide paths.

    Runs the same single-sample transient on chains of 7/15/31 gates
    with the ``exact`` (per-iteration LU) and ``reuse``
    (frozen-factorization + device bypass) Newton solvers and records
    the serial throughput ratio in the ``solver`` section of
    ``BENCH_runtime.json`` (read-modify-write: the main runtime bench
    owns the rest of the file).  The fast path matters most where the
    dense LU dominates, so the gate is on the widest chain.  Knob:
    ``REPRO_BENCH_SOLVER_REPEATS`` (default 3).
    """
    from repro.core.pulse import build_instance, simulation_window
    from repro.runtime import SolverStats, stats_scope
    from repro.spice import run_transient
    from repro.spice.mna import scipy_available

    if not scipy_available():
        pytest.skip("scipy not installed: reuse solver degrades to exact")

    repeats = int(os.environ.get("REPRO_BENCH_SOLVER_REPEATS", "3"))
    w_in = 0.40e-9
    dt = 4e-12
    scenarios = {}
    worst_overall = 0.0

    for n_gates in (7, 15, 31):
        def run(solver):
            path = build_instance(gate_kinds=("inv",) * n_gates)
            delay = path.set_input_pulse(w_in, kind="h")
            tstop = simulation_window(path, w_in=w_in,
                                      stimulus_delay=delay)
            stats = SolverStats()
            best = math.inf
            wf = None
            for _ in range(repeats):
                t0 = time.perf_counter()
                with stats_scope(stats):
                    wf = run_transient(path.circuit, tstop, dt,
                                       record=[path.output_node],
                                       solver=solver)
                best = min(best, time.perf_counter() - t0)
            return wf, best, stats.snapshot()["counters"]

        wf_exact, exact_s, _ = run("exact")
        wf_reuse, reuse_s, counters = run("reuse")

        worst = max(np.abs(wf_exact[n] - wf_reuse[n]).max()
                    for n in wf_exact.signals)
        worst_overall = max(worst_overall, worst)
        assert worst <= 1e-6, (n_gates, worst)
        assert counters["lu_reuses"] > 0
        assert counters["devices_bypassed"] > 0

        scenarios["chain_{}".format(n_gates)] = {
            "n_gates": n_gates,
            "exact_wall_time_s": exact_s,
            "reuse_wall_time_s": reuse_s,
            "speedup_vs_exact": exact_s / reuse_s,
            "runs_per_second_exact": 1.0 / exact_s,
            "runs_per_second_reuse": 1.0 / reuse_s,
            "lu_factorizations": counters["lu_factorizations"] // repeats,
            "lu_reuses": counters["lu_reuses"] // repeats,
            "devices_bypassed": counters["devices_bypassed"] // repeats,
            "max_abs_v_diff_vs_exact": worst,
        }

    section = {
        "workload": {"sweep": "single-sample pulse transient",
                     "gate_chains": [7, 15, 31], "dt": dt,
                     "omega_in": w_in, "repeats": repeats},
        "max_abs_v_diff_vs_exact": worst_overall,
    }
    section.update(scenarios)
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_runtime.json")
    try:
        with open(out) as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {}
    report["solver"] = section
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print("\nsolver bench: " + ", ".join(
        "{} gates x{:.2f}".format(s["n_gates"], s["speedup_vs_exact"])
        for s in scenarios.values()))

    # Where the dense LU dominates, reuse must win decisively; on the
    # short chain it must at least not regress (timing noise aside).
    assert scenarios["chain_31"]["speedup_vs_exact"] >= 1.5
    assert scenarios["chain_7"]["speedup_vs_exact"] >= 0.9


def test_perf_service_throughput(tmp_path):
    """Job-service throughput: N tiny sweep jobs over real HTTP.

    Submits the same batch of signature-compatible sweep jobs twice —
    once with dynamic batch aggregation enabled, once without — and
    records jobs/s plus the coalescing speedup in the ``service``
    section of ``BENCH_runtime.json`` (read-modify-write: the main
    runtime bench owns the rest of the file).  Knob:
    ``REPRO_BENCH_SERVICE_JOBS`` (default 6).
    """
    from repro.service import JobManager, JobServer, ServiceClient

    n_jobs = int(os.environ.get("REPRO_BENCH_SERVICE_JOBS", "6"))
    spec = {"kind": "sweep", "fault": "external_open", "stage": 2,
            "resistances": [2e3, 8e3], "n_samples": 2, "dt": 6e-12}

    def run_batch(aggregate, data_dir):
        manager = JobManager(data_dir=data_dir, cache=False,
                             max_concurrency=1, aggregate=aggregate,
                             aggregate_limit=n_jobs).start()
        server = JobServer(manager).start_background()
        client = ServiceClient(server.url, timeout=60.0)
        try:
            t0 = time.perf_counter()
            records = [client.submit(dict(spec, seed=seed))
                       for seed in range(n_jobs)]
            finals = [client.wait(r["id"], poll=0.05, timeout=600.0)
                      for r in records]
            elapsed = time.perf_counter() - t0
        finally:
            server.shutdown()
            manager.stop(wait=True, cancel_running=True)
        assert all(f["state"] == "DONE" for f in finals), [
            f.get("error") for f in finals]
        grouped = max(len(f["report"].get("aggregated_jobs", []))
                      for f in finals)
        return elapsed, grouped

    solo_s, solo_grouped = run_batch(False, str(tmp_path / "solo"))
    agg_s, agg_grouped = run_batch(True, str(tmp_path / "agg"))

    assert solo_grouped == 0  # aggregation off: nobody coalesced
    assert agg_grouped >= 2   # aggregation on: at least one real group

    section = {
        "workload": dict(spec, n_jobs=n_jobs),
        "sequential": {"wall_time_s": solo_s,
                       "jobs_per_second": n_jobs / solo_s},
        "aggregated": {"wall_time_s": agg_s,
                       "jobs_per_second": n_jobs / agg_s,
                       "largest_group": agg_grouped,
                       "speedup_vs_sequential": solo_s / agg_s},
    }
    out = os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "BENCH_runtime.json")
    try:
        with open(out) as handle:
            report = json.load(handle)
    except (OSError, ValueError):
        report = {}
    report["service"] = section
    with open(out, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
    print("\nservice bench: {} jobs sequential {:.1f}s, aggregated "
          "{:.1f}s (x{:.2f}, largest group {})".format(
              n_jobs, solo_s, agg_s, solo_s / agg_s, agg_grouped))
