"""Performance benchmarks of the electrical substrate itself.

These are the only benches where pytest-benchmark's statistics matter:
they track the cost of the primitive operations every experiment is
built from, so performance regressions in the MNA core show up here.
"""

import pytest

from repro.cells import build_path
from repro.spice import operating_point, run_transient
from repro.spice.mna import CompiledCircuit
from repro.spice.dcop import solve_dc


@pytest.fixture(scope="module")
def reference_path():
    return build_path()


def test_perf_compile(benchmark, reference_path):
    """Netlist -> numeric lowering of the reference path."""
    result = benchmark(CompiledCircuit, reference_path.circuit)
    assert result.n_nodes > 5


def test_perf_dc_operating_point(benchmark, reference_path):
    """Newton DC solve of the 7-gate sensitized path."""
    compiled = CompiledCircuit(reference_path.circuit)
    x = benchmark(solve_dc, compiled)
    assert abs(x).max() <= reference_path.tech.vdd * 1.2


def test_perf_short_transient(benchmark, reference_path):
    """A 0.5 ns transient at 4 ps on the reference path (~125 steps)."""
    reference_path.set_input_pulse(0.3e-9, kind="h")

    def run():
        return run_transient(reference_path.circuit, 0.5e-9, 4e-12,
                             record=[reference_path.output_node])

    waveform = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(waveform.t) > 100


def test_perf_full_pulse_measurement(benchmark, reference_path):
    """The workhorse: one complete w_out measurement."""
    from repro.core import measure_output_pulse

    def run():
        return measure_output_pulse(reference_path, 0.42e-9, dt=4e-12)

    w_out, _ = benchmark.pedantic(run, rounds=2, iterations=1)
    assert w_out > 0.3e-9


def test_perf_logic_event_simulation(benchmark):
    """Event-driven run over the c432-class netlist."""
    from repro.logic import GateTiming, TimingSimulator, generate_c432_like

    netlist = generate_c432_like()
    sim = TimingSimulator(netlist, timing=GateTiming())
    vector = {pi: 0 for pi in netlist.primary_inputs}
    pi = netlist.primary_inputs[0]

    def run():
        return sim.run(vector, events=[(1e-9, pi, 1)], t_end=50e-9)

    trace = benchmark(run)
    assert trace.t_end == 50e-9


def test_perf_atpg_sensitization(benchmark):
    """One PODEM sensitization on the c432-class netlist."""
    from repro.logic import generate_c432_like, paths_through, sensitize_path

    netlist = generate_c432_like()
    from repro.core.experiments import _pick_fault_site
    net = _pick_fault_site(netlist)
    path = paths_through(netlist, net, max_paths=4)[0]

    result = benchmark(sensitize_path, netlist, path)
    # the picked site may or may not sensitize on its first path; the
    # bench tracks cost, not outcome
    assert result is None or result.assignment is not None
