"""Fig. 8 — C_del(R) for a resistive bridging fault.

Paper: above the critical resistance the bridging-induced extra delay
"rapidly decreases with R", so C_del *decays* with R — the range of
resistances detectable by reduced-clock testing is narrow.
"""

from conftest import print_figure

from repro.core.coverage import delay_coverage
from repro.reporting import ascii_plot, coverage_table


def test_fig8_cdel_bridging(benchmark, bridging_coverage_experiment):
    experiment = bridging_coverage_experiment

    result = benchmark(
        delay_coverage,
        experiment.delay.raw,
        experiment.samples,
        experiment.resistances,
        experiment.dftest)

    series = {label: (result.curve(label).resistances,
                      result.curve(label).coverage)
              for label in result.labels()}
    print_figure(
        "Fig. 8 — C_del(R), resistive bridging, T* = {:.0f} ps".format(
            experiment.dftest.t_star * 1e12),
        coverage_table(result) + "\n\n" + ascii_plot(
            series, x_label="R (ohm)", y_label="C_del"))

    for label in result.labels():
        curve = result.curve(label)
        # decays with R: the tail must fall below the peak...
        peak = max(curve.coverage)
        assert curve.coverage[-1] <= peak
        # ...and large-R bridges escape reduced-clock testing entirely
        # at the loosest setting.
    assert result.curve("1.1*T").coverage[-1] == 0.0

    # lower T' still detects more at every R
    tight = result.curve("0.9*T").coverage
    loose = result.curve("1.1*T").coverage
    assert all(t >= l for t, l in zip(tight, loose))

    # coverage is non-trivial near the critical resistance (smallest R)
    assert result.curve("0.9*T").coverage[0] > 0.0
