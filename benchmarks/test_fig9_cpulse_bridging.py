"""Fig. 9 — C_pulse(R) for a resistive bridging fault.

The headline result: "the injected pulse is likely to be dampened even
if the additional delay ... is almost negligible.  Therefore the
proposed method behaves much better than the considered kind of DF
testing" for bridgings.
"""

from conftest import print_figure

from repro.core.coverage import pulse_coverage
from repro.reporting import ascii_plot, coverage_table


def test_fig9_cpulse_bridging(benchmark, bridging_coverage_experiment):
    experiment = bridging_coverage_experiment

    result = benchmark(
        pulse_coverage,
        experiment.pulse.raw,
        experiment.samples,
        experiment.resistances,
        experiment.calibration)

    series = {label: (result.curve(label).resistances,
                      result.curve(label).coverage)
              for label in result.labels()}
    print_figure(
        "Fig. 9 — C_pulse(R), resistive bridging, omega_in = {:.0f} ps"
        .format(experiment.calibration.omega_in * 1e12),
        coverage_table(result) + "\n\n" + ascii_plot(
            series, x_label="R (ohm)", y_label="C_pulse"))

    nominal_pulse = result.curve("1.0*w_th").coverage
    nominal_delay = experiment.delay.curve("1.0*T").coverage

    # The proposed method dominates DF testing over the bridging band
    # (integrated coverage), and strictly beats it somewhere.
    assert sum(nominal_pulse) > sum(nominal_delay)
    assert any(p > d for p, d in zip(nominal_pulse, nominal_delay))

    # The detectable-R band is wider: the pulse test still detects at
    # resistances where reduced-clock coverage has already collapsed.
    tail_pulse = nominal_pulse[len(nominal_pulse) // 2:]
    tail_delay = nominal_delay[len(nominal_delay) // 2:]
    assert sum(tail_pulse) >= sum(tail_delay)

    # Full coverage near the critical resistance.
    assert nominal_pulse[0] == 1.0
