"""Shared fixtures for the figure-regeneration benchmark harness.

Each paper figure has one bench module.  The expensive electrical Monte
Carlo sweeps are computed once per session here (setup, untimed); the
benches then time the figure derivation and print the same series the
paper plots.  ``REPRO_FAST=1`` shrinks populations and grids for smoke
runs.

Scale note: figure *shapes* (who wins, crossover ordering, spread
ordering) are asserted; absolute resistances/widths are specific to the
built-in technology, and EXPERIMENTS.md records both sides.
"""

import os

import numpy as np
import pytest

from repro.core import ExperimentConfig


def bench_samples():
    return 6 if os.environ.get("REPRO_FAST") else 14


def bench_dt():
    return 5e-12 if os.environ.get("REPRO_FAST") else 3e-12


def bench_r_points():
    return 5 if os.environ.get("REPRO_FAST") else 9


@pytest.fixture(scope="session")
def bench_config():
    n = bench_r_points()
    return ExperimentConfig(
        n_samples=bench_samples(),
        dt=bench_dt(),
        seed=1,
        rop_resistances=list(np.geomspace(500.0, 40e3, n)),
        bridging_resistances=list(np.geomspace(800.0, 30e3, n)),
        n_paths=6 if os.environ.get("REPRO_FAST") else 10,
    )


@pytest.fixture(scope="session")
def open_coverage_experiment(bench_config):
    """Raw material for Figs. 6 & 7 (external resistive open)."""
    from repro.core import run_open_coverage
    return run_open_coverage(bench_config)


@pytest.fixture(scope="session")
def bridging_coverage_experiment(bench_config):
    """Raw material for Figs. 8 & 9 (resistive bridging)."""
    from repro.core import run_bridging_coverage
    return run_bridging_coverage(bench_config)


@pytest.fixture(scope="session")
def transfer_experiment(bench_config):
    """Raw material for Fig. 10."""
    from repro.core import run_transfer_experiment
    return run_transfer_experiment(bench_config)


@pytest.fixture(scope="session")
def path_characterization(bench_config):
    """Raw material for Fig. 11 (c432-class path screening)."""
    from repro.core import run_path_characterization
    return run_path_characterization(bench_config)


def print_figure(title, body):
    print("\n" + "=" * 72)
    print(title)
    print("=" * 72)
    print(body)


@pytest.fixture(scope="session")
def figure_printer():
    """Fixture alias so benches in subdirectories (ablations/) can print
    without importing this conftest by module name."""
    return print_figure


@pytest.fixture(scope="session")
def fast_dt():
    return bench_dt()
