"""Fig. 7 — C_pulse(R) for an external resistive open.

The proposed method at ω_th' in {0.9, 1.0, 1.1} x ω_th*.  Under nominal
conditions the two methods perform comparably for opens, but the pulse
curves sit much closer together than the C_del curves of Fig. 6: the
test parameters are generated and sensed *locally*, so the clock
distribution network's fluctuations do not enter.
"""

from conftest import print_figure

from repro.core.coverage import (detected_fraction_is_monotonic,
                                 pulse_coverage)
from repro.reporting import ascii_plot, coverage_table


def test_fig7_cpulse_rop(benchmark, open_coverage_experiment):
    experiment = open_coverage_experiment

    result = benchmark(
        pulse_coverage,
        experiment.pulse.raw,
        experiment.samples,
        experiment.resistances,
        experiment.calibration)

    series = {label: (result.curve(label).resistances,
                      result.curve(label).coverage)
              for label in result.labels()}
    print_figure(
        "Fig. 7 — C_pulse(R), external ROP, omega_in = {:.0f} ps, "
        "omega_th = {:.0f} ps".format(
            experiment.calibration.omega_in * 1e12,
            experiment.calibration.omega_th * 1e12),
        coverage_table(result) + "\n\n" + ascii_plot(
            series, x_label="R (ohm)", y_label="C_pulse"))

    for label in result.labels():
        curve = result.curve(label)
        assert detected_fraction_is_monotonic(curve, tolerance=0.3)
        assert curve.coverage[-1] == 1.0

    # higher omega_th' detects smaller R everywhere
    tight = result.curve("1.1*w_th").coverage
    loose = result.curve("0.9*w_th").coverage
    assert all(t >= l for t, l in zip(tight, loose))

    # headline comparison vs Fig. 6: the +-10% parameter fluctuation
    # moves C_pulse *less* than it moves C_del (local vs global test
    # parameters).
    delay = experiment.delay
    spread_del = sum(
        a - b for a, b in zip(delay.curve("0.9*T").coverage,
                              delay.curve("1.1*T").coverage))
    spread_pulse = sum(t - l for t, l in zip(tight, loose))
    assert spread_pulse <= spread_del

    # nominal settings: comparable performance on opens — the minimum
    # fully-detected resistance agrees within the sampled grid spacing.
    r_pulse = result.curve("1.0*w_th").minimum_detectable_r()
    r_del = delay.curve("1.0*T").minimum_detectable_r()
    assert r_pulse is not None and r_del is not None
    grid = result.curve("1.0*w_th").resistances
    idx_p = grid.index(r_pulse)
    idx_d = grid.index(r_del)
    assert abs(idx_p - idx_d) <= 2
