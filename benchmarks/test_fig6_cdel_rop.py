"""Fig. 6 — C_del(R) for an external resistive open.

Reduced-clock delay-fault testing at T' in {0.9, 1.0, 1.1} x T*: coverage
rises with R, and the three curves are widely separated — DF testing is
very sensitive to clock-period fluctuation, which is the weakness the
pulse method addresses.
"""

from conftest import print_figure

from repro.core.coverage import (delay_coverage,
                                 detected_fraction_is_monotonic)
from repro.reporting import ascii_plot, coverage_table


def test_fig6_cdel_rop(benchmark, open_coverage_experiment):
    experiment = open_coverage_experiment

    result = benchmark(
        delay_coverage,
        experiment.delay.raw,
        experiment.samples,
        experiment.resistances,
        experiment.dftest)

    series = {label: (result.curve(label).resistances,
                      result.curve(label).coverage)
              for label in result.labels()}
    print_figure(
        "Fig. 6 — C_del(R), external ROP, T* = {:.0f} ps".format(
            experiment.dftest.t_star * 1e12),
        coverage_table(result) + "\n\n" + ascii_plot(
            series, x_label="R (ohm)", y_label="C_del"))

    # Shape assertions (paper claims):
    for label in result.labels():
        curve = result.curve(label)
        # coverage monotone non-decreasing in R for opens
        assert detected_fraction_is_monotonic(curve, tolerance=0.3)
        # full coverage for gross defects
        assert curve.coverage[-1] == 1.0
    # lower T' detects smaller R everywhere
    tight = result.curve("0.9*T").coverage
    loose = result.curve("1.1*T").coverage
    assert all(t >= l for t, l in zip(tight, loose))
    # the 10% clock fluctuation visibly moves the curve
    assert sum(tight) > sum(loose)
