"""Ablation: robustness to growing process fluctuation.

The paper's deep-submicron motivation (Bowman et al. [8]): within-die
and die-to-die fluctuations grow with scaling.  This ablation sweeps the
Monte Carlo sigma and tracks the fault-free w_out spread (which erodes
the usable ω_th margin) against the fault-free delay spread (which
erodes the usable T' slack): the pulse metric must degrade more slowly.
"""

from repro.core import (build_instance, measure_output_pulse,
                        measure_path_delay)
from repro.montecarlo import sample_population
from repro.reporting import format_table

W_IN = 0.45e-9
SIGMAS = (0.02, 0.05, 0.08)


def collect(dt, n_samples):
    rows = []
    for sigma in SIGMAS:
        samples = sample_population(n_samples, base_seed=17,
                                    sigma_global=sigma,
                                    sigma_local=sigma)
        wouts, delays = [], []
        for sample in samples:
            path = build_instance(sample=sample)
            w_out, _ = measure_output_pulse(path, W_IN, dt=dt)
            wouts.append(w_out)
            path = build_instance(sample=sample)
            d, _ = measure_path_delay(path, "rise", dt=dt)
            delays.append(d)
        w_rel = (max(wouts) - min(wouts)) / max(wouts)
        d_rel = (max(delays) - min(delays)) / max(delays)
        rows.append([sigma, w_rel, d_rel])
    return rows


def test_sigma_robustness(benchmark, figure_printer, fast_dt,
                          bench_config):
    n = min(bench_config.n_samples, 8)
    rows = benchmark.pedantic(collect, args=(fast_dt, n), rounds=1,
                              iterations=1)
    figure_printer(
        "Ablation — fluctuation sweep (fault-free relative spreads, "
        "n = {})".format(n),
        format_table(
            ["sigma", "w_out relative spread", "delay relative spread"],
            rows))

    # Spreads grow with sigma for both metrics...
    w_spreads = [r[1] for r in rows]
    d_spreads = [r[2] for r in rows]
    assert w_spreads[0] < w_spreads[-1]
    assert d_spreads[0] < d_spreads[-1]
    # ...and at the largest sigma the pulse metric's relative spread is
    # NOT dramatically worse than the delay metric's (Sec. 3: the
    # cumulative effect on delays "is only partially present" for
    # pulses).
    assert w_spreads[-1] < 2.0 * d_spreads[-1]
