"""Extension experiment: three-way method comparison.

The paper compares pulse testing only against reduced-clock DF testing,
noting it could not compare against the transition-ordering method [7]
"because of the lack of experimental data".  With all three implemented
on the same substrate and the same Monte Carlo population, this bench
supplies that missing comparison for external resistive opens.

Caveats inherited from each method:

* reduced clock — needs the global clock margin (the Fig. 6 spread);
* ordering — needs a reference output with a safely larger delay and
  inherits its guard band (paper: transitions must not be "too close");
* pulse — local generation/sensing, calibrated per Sec. 4.
"""

from repro.dft import (calibrate_ordering_test, ordering_coverage,
                       sweep_ordering_measurements)
from repro.faults import ExternalOpen
from repro.reporting import format_table


def run(experiment, dt):
    samples = experiment.samples
    resistances = experiment.resistances

    ordering_test = calibrate_ordering_test(samples, dt=dt)
    raw = sweep_ordering_measurements(
        samples, lambda r: ExternalOpen(2, r), resistances, dt=dt)
    c_order = ordering_coverage(raw, resistances, ordering_test)

    c_pulse = experiment.pulse.curve("1.0*w_th").coverage
    c_del = experiment.delay.curve("1.0*T").coverage
    return {
        "resistances": resistances,
        "pulse": c_pulse,
        "delay": c_del,
        "ordering": c_order,
        "guard": ordering_test.guard,
    }


def test_method_comparison(benchmark, figure_printer, fast_dt,
                           open_coverage_experiment):
    data = benchmark.pedantic(run,
                              args=(open_coverage_experiment, fast_dt),
                              rounds=1, iterations=1)

    rows = [[r, p, d, o] for r, p, d, o in zip(
        data["resistances"], data["pulse"], data["delay"],
        data["ordering"])]
    figure_printer(
        "Extension — three-way comparison, external ROP "
        "(ordering guard band {:.0f} ps)".format(data["guard"] * 1e12),
        format_table(
            ["R (ohm)", "C_pulse (1.0)", "C_del (1.0)", "C_order"],
            rows))

    # All three methods catch gross defects...
    assert data["pulse"][-1] == 1.0
    assert data["delay"][-1] == 1.0
    assert data["ordering"][-1] == 1.0
    # ...and each coverage is monotone for opens.
    for key in ("pulse", "delay", "ordering"):
        series = data[key]
        assert all(b >= a - 0.26 for a, b in zip(series, series[1:]))
    # The ordering method cannot detect defects hiding inside its guard
    # band: its onset is never earlier than where the added delay
    # reaches the guard, so at the smallest resistances it is blind.
    assert data["ordering"][0] == 0.0
