"""Extension experiment: fully structural on-chip test vs behavioural.

The paper models the test circuitry behaviourally (ω_in, ω_th with
fluctuation).  The repository also builds it at the transistor level
(``repro.testckt``): delay-line pulse generator + XOR/precharged-flag
transition detector.  This bench runs the complete silicon-level test on
healthy and faulty instances and checks it agrees with the behavioural
decision.
"""

from repro.faults import BridgingFault, ExternalOpen, InternalOpen, PULL_UP
from repro.reporting import format_table
from repro.testckt import build_onchip_test, run_onchip_test


def collect(dt):
    cases = [
        ("fault-free", None, False),
        ("internal open 8k @2", InternalOpen(2, PULL_UP, 8e3), True),
        ("external open 25k @2", ExternalOpen(2, 25e3), True),
        ("external open 300 @2", ExternalOpen(2, 300.0), False),
        ("bridging 2.5k @2", BridgingFault(2, 2.5e3), True),
    ]
    rows = []
    for label, fault, expected in cases:
        bench = build_onchip_test(fault=fault)
        detected, wf = run_onchip_test(bench, dt=dt)
        flag = wf.value_at(bench.detector.flag_node, wf.t[-1])
        rows.append([label, "yes" if detected else "no",
                     "yes" if expected else "no", flag])
    return rows


def test_onchip_structural(benchmark, figure_printer, fast_dt):
    rows = benchmark.pedantic(collect, args=(fast_dt,), rounds=1,
                              iterations=1)
    figure_printer(
        "Extension — fully structural on-chip pulse test "
        "(generator + path + detector, one transient per row)",
        format_table(
            ["instance", "flagged", "expected", "flag voltage (V)"],
            rows))

    for label, flagged, expected, flag in rows:
        assert flagged == expected, label
