"""Ablation: internal vs external resistive opens at equal resistance.

Sec. 2 compares Figs. 2 and 3: "the effects of internal ROPs are more
relevant than those of external ROPs" for the same R — because an
internal open degrades one edge asymmetrically (net width loss per
stage) while an external open degrades both edges symmetrically (width
survives until slews collapse).
"""

from repro.core import build_instance, measure_output_pulse
from repro.faults import ExternalOpen, InternalOpen, PULL_UP
from repro.reporting import format_table

W_IN = 0.42e-9
RESISTANCES = (2e3, 4e3, 8e3, 16e3)


def collect(dt):
    rows = []
    for r in RESISTANCES:
        w_int, _ = measure_output_pulse(
            build_instance(fault=InternalOpen(2, PULL_UP, r)), W_IN,
            dt=dt)
        w_ext, _ = measure_output_pulse(
            build_instance(fault=ExternalOpen(2, r)), W_IN, dt=dt)
        rows.append([r, w_int * 1e12, w_ext * 1e12])
    return rows


def test_internal_vs_external(benchmark, figure_printer, fast_dt):
    rows = benchmark.pedantic(collect, args=(fast_dt,), rounds=1,
                              iterations=1)
    figure_printer(
        "Ablation — internal vs external opens "
        "(w_in = {:.0f} ps)".format(W_IN * 1e12),
        format_table(
            ["R (ohm)", "internal w_out (ps)", "external w_out (ps)"],
            rows))

    for r, w_int, w_ext in rows:
        assert w_int <= w_ext, "at R={}".format(r)
    # internal opens kill the pulse at moderate R...
    assert rows[2][1] == 0.0   # 8 kohm internal
    # ...where the external one still passes something
    assert rows[2][2] > 0.0
