"""Extension experiment: the slack-escape problem at circuit scale.

The paper's core motivation, generalised from one path to a whole
netlist: defects on non-critical paths enjoy slack ``T' - d_p`` that
reduced-clock testing must overcome, while pulse-test detectability is
slack-independent.  For every sampled fault site we compare the minimal
detectable resistance of both methods — DF testing gets its best shot
(the longest sensitizable path through the site).
"""

import math
import os

from repro.logic import (DefectCalibration, GateTiming,
                         calibrate_logic_delay_test, critical_delay,
                         df_best_r_min_for_site, generate_c432_like,
                         run_campaign)
from repro.montecarlo import sample_population
from repro.reporting import format_table


def run(dt):
    calibration = DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3], dt=dt)
    netlist = generate_c432_like()
    samples = sample_population(5, base_seed=7)
    timing = GateTiming()
    dftest = calibrate_logic_delay_test(netlist, samples)

    stride = 8 if os.environ.get("REPRO_FAST") else 5
    campaign = run_campaign(netlist, calibration, samples=samples,
                            site_stride=stride)

    rows = []
    for site in campaign.tested_sites():
        df_r_min, df_path = df_best_r_min_for_site(
            netlist, site.net, calibration, dftest, timing=timing)
        rows.append({
            "net": site.net,
            "pulse_path_len": len(site.path) - 1,
            "df_path_len": None if df_path is None else len(df_path) - 1,
            "pulse_r_min": site.r_min,
            "df_r_min": df_r_min,
        })
    return {"rows": rows,
            "t_star": dftest.t_star,
            "critical": critical_delay(netlist, timing)}


def test_slack_escape(benchmark, figure_printer, fast_dt):
    data = benchmark.pedantic(run, args=(fast_dt,), rounds=1,
                              iterations=1)
    rows = data["rows"]

    table = []
    for row in rows:
        table.append([
            row["net"], row["pulse_path_len"],
            row["df_path_len"] if row["df_path_len"] else "-",
            "{:.0f}".format(row["pulse_r_min"]),
            "-" if row["df_r_min"] is None
            else "{:.0f}".format(row["df_r_min"]),
        ])
    figure_printer(
        "Extension — slack escape at circuit scale "
        "(critical = {:.0f} ps, T* = {:.0f} ps)".format(
            data["critical"] * 1e12, data["t_star"] * 1e12),
        format_table(
            ["site", "pulse path", "DF path", "pulse R_min (ohm)",
             "DF R_min (ohm)"], table))

    assert rows, "need tested sites"
    n_pulse = sum(1 for r in rows if r["pulse_r_min"] is not None)
    n_df = sum(1 for r in rows if r["df_r_min"] is not None)
    escapes = sum(1 for r in rows
                  if r["pulse_r_min"] is not None
                  and r["df_r_min"] is None)
    print("\npulse detects {} / {} sites; DF detects {}; "
          "{} sites escape DF entirely".format(
              n_pulse, len(rows), n_df, escapes))

    # The paper's claim at circuit scale: a substantial fraction of the
    # sites detectable by pulses escapes reduced-clock testing.
    assert n_pulse == len(rows)
    assert escapes >= len(rows) // 2
    # Where DF does detect, pulses never need a larger resistance band
    # than 4x DF's (they are usually far better).
    for row in rows:
        if row["df_r_min"] is not None:
            assert (row["pulse_r_min"]
                    <= 4.0 * row["df_r_min"] + 1e-9)
