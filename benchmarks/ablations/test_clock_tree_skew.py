"""Ablation: explicit clock-distribution-network skew.

Sections 1/4: DF testing must absorb the clock tree's buffer-delay
fluctuations in its calibration margin — the launching and capturing
flip-flops sit on different branches — while the pulse method's
generator and detector are local and carry no such margin.  This bench
re-derives C_del with an explicit buffer-tree skew model and shows the
coverage it costs; C_pulse from the same raw data is untouched.
"""

from repro.dft import (ClockTree, calibrate_t_star_with_tree,
                       farthest_leaf_pair)
from repro.core.coverage import delay_coverage, pulse_coverage
from repro.reporting import format_table


def run(experiment):
    samples = experiment.samples
    tree = ClockTree(depth=5, buffer_delay=90e-12)
    launch, capture = farthest_leaf_pair(tree)

    # Re-derive fault-free delays from the sweep's calibration data.
    base_test = experiment.dftest
    base_t_star = base_test.t_star

    # Reconstruct the fault-free worst case from the sweep calibration:
    # T* * (1 - tol) = worst(d + overhead).  Three calibrations compete:
    # ignore the clock network entirely (yield risk!), add the explicit
    # tree margin, or the paper's blanket 10% (a far noisier network).
    worst_data = base_t_star * (1.0 - base_test.skew_tolerance)
    worst_skew = tree.worst_case_skew(samples, launch, capture)
    tree_t_star = worst_data - worst_skew

    from repro.dft import DelayFaultTest
    no_skew_test = DelayFaultTest(worst_data, base_test.flipflop,
                                  skew_tolerance=0.0)
    tree_test = DelayFaultTest(tree_t_star, base_test.flipflop,
                               skew_tolerance=0.0)

    cdel_plain = delay_coverage(experiment.delay.raw, samples,
                                experiment.resistances, no_skew_test,
                                period_factors=(1.0,))
    cdel_tree = delay_coverage(experiment.delay.raw, samples,
                               experiment.resistances, tree_test,
                               period_factors=(1.0,))
    cpulse = pulse_coverage(experiment.pulse.raw, samples,
                            experiment.resistances,
                            experiment.calibration,
                            threshold_factors=(1.0,))
    return {
        "no_skew_t_star": worst_data,
        "base_t_star": base_t_star,
        "tree_t_star": tree_t_star,
        "worst_skew": worst_skew,
        "plain": cdel_plain.curve("1.0*T").coverage,
        "tree": cdel_tree.curve("1.0*T").coverage,
        "pulse": cpulse.curve("1.0*w_th").coverage,
        "resistances": experiment.resistances,
    }


def test_clock_tree_skew(benchmark, figure_printer,
                         open_coverage_experiment):
    data = benchmark.pedantic(run, args=(open_coverage_experiment,),
                              rounds=1, iterations=1)

    rows = [[r, p, t, u] for r, p, t, u in zip(
        data["resistances"], data["plain"], data["tree"], data["pulse"])]
    figure_printer(
        "Ablation — explicit clock-tree skew margin "
        "(T*: no-skew {:.0f} ps, tree {:.0f} ps, blanket-10% {:.0f} ps; "
        "worst sampled tree skew {:.0f} ps)".format(
            data["no_skew_t_star"] * 1e12, data["tree_t_star"] * 1e12,
            data["base_t_star"] * 1e12, data["worst_skew"] * 1e12),
        format_table(
            ["R (ohm)", "C_del (no skew margin)", "C_del (tree margin)",
             "C_pulse (unchanged)"], rows))

    # Accounting for the tree can only lengthen T* (the worst sampled
    # skew shortens some die's applied period), costing DF coverage
    # relative to (riskily) ignoring the network...
    assert data["worst_skew"] <= 0.0
    assert data["tree_t_star"] >= data["no_skew_t_star"]
    assert sum(data["tree"]) <= sum(data["plain"]) + 1e-9
    # ...and the paper's blanket 10% margin corresponds to a noisier
    # network still (an even longer T*).
    assert data["base_t_star"] >= data["tree_t_star"]
    # The pulse curve is definitionally untouched by any of this and
    # still reaches full coverage for gross opens.
    assert data["pulse"][-1] == 1.0
