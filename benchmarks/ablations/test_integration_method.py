"""Ablation: backward Euler vs trapezoidal integration.

The pulse-width metric is sensitive to numerical damping: backward
Euler's artificial dissipation erodes marginal pulses.  This ablation
quantifies the bias and justifies TRAP as the default.
"""

import pytest

from repro.cells import build_path
from repro.reporting import format_table
from repro.spice import BACKWARD_EULER, TRAPEZOIDAL, run_transient

WIDTHS = (0.30e-9, 0.35e-9, 0.45e-9)


def measure(method, w_in, dt):
    path = build_path()
    path.set_input_pulse(w_in, kind="h")
    wf = run_transient(path.circuit, 4.5e-9, dt,
                       record=[path.output_node], method=method)
    return wf.widest_pulse(path.output_node, path.tech.vdd_half, "low")


def collect(dt):
    rows = []
    for w_in in WIDTHS:
        w_trap = measure(TRAPEZOIDAL, w_in, dt)
        w_be = measure(BACKWARD_EULER, w_in, dt)
        rows.append([w_in * 1e12, w_trap * 1e12, w_be * 1e12,
                     (w_trap - w_be) * 1e12])
    return rows


def test_integration_method_bias(benchmark, figure_printer, fast_dt):
    rows = benchmark.pedantic(collect, args=(fast_dt,), rounds=1,
                              iterations=1)
    figure_printer(
        "Ablation — integration method (dt = {:.0f} ps)".format(
            fast_dt * 1e12),
        format_table(
            ["w_in (ps)", "TRAP w_out (ps)", "BE w_out (ps)",
             "TRAP - BE (ps)"], rows))

    # Both methods agree on clearly-propagating pulses...
    assert rows[-1][1] == pytest.approx(rows[-1][2], rel=0.1)
    # ...and BE never reports a *wider* pulse than TRAP on the marginal
    # ones (its damping can only erode).
    for row in rows:
        assert row[2] <= row[1] + 5.0  # ps tolerance
