"""Ablation: the Sec. 5 omega_in placement rule.

The paper mandates placing ω_in at the *onset of the asymptotic region*
because the attenuation region is "rather sensitive to parameter
fluctuations and it must be avoided if we do not want false positives".
This ablation measures exactly that: fault-free Monte Carlo w_out spread
and yield loss when ω_in is (wrongly) placed inside region 2.
"""

from repro.core import build_instance, measure_output_pulse
from repro.montecarlo import sample_population
from repro.reporting import format_table


def collect(dt, n_samples):
    samples = sample_population(n_samples, base_seed=31)
    placements = {
        "region 2 (forbidden)": 0.30e-9,
        "region 3 onset (paper rule)": 0.43e-9,
        "deep region 3": 0.55e-9,
    }
    rows = []
    for label, w_in in placements.items():
        wouts = []
        for sample in samples:
            path = build_instance(sample=sample)
            w_out, _ = measure_output_pulse(path, w_in, dt=dt)
            wouts.append(w_out)
        dampened = sum(1 for w in wouts if w == 0.0)
        rows.append([label, w_in * 1e12,
                     min(wouts) * 1e12, max(wouts) * 1e12,
                     (max(wouts) - min(wouts)) * 1e12,
                     dampened])
    return rows


def test_win_placement_rule(benchmark, figure_printer, fast_dt,
                            bench_config):
    n = min(bench_config.n_samples, 8)
    rows = benchmark.pedantic(collect, args=(fast_dt, n), rounds=1,
                              iterations=1)
    figure_printer(
        "Ablation — omega_in placement (fault-free MC, n = {})".format(n),
        format_table(
            ["placement", "w_in (ps)", "min w_out (ps)",
             "max w_out (ps)", "spread (ps)", "# dampened"], rows))

    region2, onset, deep = rows
    # Region 2 is wildly fluctuation-sensitive...
    assert region2[4] > 2 * deep[4]
    # ...while the paper's rule keeps every fault-free instance alive.
    assert onset[5] == 0
    assert deep[5] == 0
    # The forbidden placement risks yield loss (dampened fault-free
    # instances or near-zero margins).
    assert region2[2] < onset[2]
