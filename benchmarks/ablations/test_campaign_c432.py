"""Extension experiment: whole-circuit test campaign (the announced tool).

Applies the pulse method to every gate-output fault site of the
C432-class benchmark: path selection + ATPG sensitization + per-path
(ω_in, ω_th) + minimal detectable resistance, then circuit-level
coverage as a function of the open resistance.
"""

import os

from repro.logic import DefectCalibration, generate_c432_like, run_campaign
from repro.reporting import format_table


def build_calibration(dt):
    return DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3], dt=dt)


def run(dt):
    calibration = build_calibration(dt)
    netlist = generate_c432_like()
    stride = 4 if os.environ.get("REPRO_FAST") else 2
    return run_campaign(netlist, calibration, site_stride=stride)


def test_campaign_c432(benchmark, figure_printer, fast_dt):
    result = benchmark.pedantic(run, args=(fast_dt,), rounds=1,
                                iterations=1)
    summary = result.summary()

    r_grid = [2e3, 5e3, 10e3, 20e3, 40e3]
    rows = [[r, result.coverage_at(r)] for r in r_grid]
    body = format_table(["R (ohm)", "site coverage"], rows)
    body += "\n\nsummary: {}".format(summary)
    figure_printer(
        "Extension — full-circuit campaign on {} ({} fault sites)"
        .format(summary["circuit"], summary["n_sites"]), body)

    # A majority of observable sites must be testable...
    assert summary["test_generation_rate"] > 0.4
    # ...coverage grows with R and becomes substantial for gross opens.
    coverages = [row[1] for row in rows]
    assert all(b >= a for a, b in zip(coverages, coverages[1:]))
    assert coverages[-1] >= 0.4
    # the strongest generated test detects sub-10k opens
    assert summary["best_r_min"] < 10e3
