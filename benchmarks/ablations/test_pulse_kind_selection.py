"""Ablation: pulse-kind (h/l) selection.

Sec. 5: "we have to select a suitable kind of pulse (h or l)".  This
ablation shows why it is not optional: for single-edge defects the wrong
kind makes the pulse *wider* — the fault escapes at any resistance.
"""

from repro.core import (build_instance, measure_output_pulse,
                        select_pulse_kind)
from repro.faults import InternalOpen, PULL_DOWN, PULL_UP
from repro.reporting import format_table

W_IN = 0.42e-9


def collect(dt):
    cases = [
        ("pull-up open @2", InternalOpen(2, PULL_UP, 6e3)),
        ("pull-down open @2", InternalOpen(2, PULL_DOWN, 6e3)),
        ("pull-up open @3", InternalOpen(3, PULL_UP, 6e3)),
    ]
    rows = []
    for label, fault in cases:
        probe = build_instance()
        chosen = select_pulse_kind(probe, fault)
        per_kind = {}
        for kind in ("h", "l"):
            faulty = build_instance(fault=fault)
            w_faulty, _ = measure_output_pulse(faulty, W_IN, kind=kind,
                                               dt=dt)
            healthy = build_instance()
            w_healthy, _ = measure_output_pulse(healthy, W_IN, kind=kind,
                                                dt=dt)
            per_kind[kind] = (w_healthy, w_faulty)
        rows.append([
            label, chosen,
            per_kind["h"][1] * 1e12 - per_kind["h"][0] * 1e12,
            per_kind["l"][1] * 1e12 - per_kind["l"][0] * 1e12,
        ])
    return rows


def test_pulse_kind_selection(benchmark, figure_printer, fast_dt):
    rows = benchmark.pedantic(collect, args=(fast_dt,), rounds=1,
                              iterations=1)
    figure_printer(
        "Ablation — pulse kind selection (w_in = {:.0f} ps, "
        "R = 6 kohm)".format(W_IN * 1e12),
        format_table(
            ["fault", "selected kind",
             "h: faulty - healthy w_out (ps)",
             "l: faulty - healthy w_out (ps)"], rows))

    for label, chosen, delta_h, delta_l in rows:
        selected_delta = delta_h if chosen == "h" else delta_l
        rejected_delta = delta_l if chosen == "h" else delta_h
        # The selected kind shrinks the pulse (strongly negative delta);
        # the rejected kind widens it (fault escapes).
        assert selected_delta < -100.0, label
        assert rejected_delta > 0.0, label
