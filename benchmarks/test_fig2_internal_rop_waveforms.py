"""Fig. 2 — faulty vs fault-free waveforms for an internal resistive open.

Paper: an 8 kOhm pull-up open at the second gate delays the rising
transition of the stage output and the injected pulse "is dampened in a
few logic levels".  The bench regenerates the per-node waveform summary
and asserts the dampening pattern.
"""

from conftest import bench_dt, print_figure

from repro.core import ExperimentConfig, run_waveform_experiment
from repro.reporting import format_table

RESISTANCE = 8e3
W_IN = 0.40e-9


def run_experiment():
    config = ExperimentConfig(dt=bench_dt())
    return run_waveform_experiment("internal_rop", RESISTANCE, w_in=W_IN,
                                   config=config)


def figure_rows(experiment):
    rows = []
    for node in experiment.nodes:
        rows.append([
            node,
            experiment.excursion(experiment.fault_free, node),
            experiment.excursion(experiment.faulty, node),
        ])
    return rows


def test_fig2_internal_rop_waveforms(benchmark):
    experiment = run_experiment()
    rows = benchmark(figure_rows, experiment)
    print_figure(
        "Fig. 2 — internal ROP (pull-up, R = {:.0f} ohm), w_in = {:.0f} ps"
        .format(RESISTANCE, W_IN * 1e12),
        format_table(
            ["node", "fault-free excursion (V)", "faulty excursion (V)"],
            rows))

    vdd = experiment.vdd
    excursions_faulty = {r[0]: r[2] for r in rows}
    excursions_free = {r[0]: r[1] for r in rows}

    # Fault-free: the pulse swings (nearly) rail to rail at every stage.
    for node in experiment.nodes[1:]:
        assert excursions_free[node] > 0.8 * vdd

    # Faulty: the pulse dies within a few logic levels of the fault
    # (stage 2), exactly the Fig. 2 claim.
    assert experiment.dampened_at_output()
    assert excursions_faulty[experiment.nodes[-1]] < 0.25 * vdd

    # The dampening is progressive: excursion shrinks along the path.
    tail = [excursions_faulty[n] for n in experiment.nodes[2:]]
    assert tail[-1] <= tail[0] + 0.05
