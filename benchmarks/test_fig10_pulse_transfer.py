"""Fig. 10 — the w_out = f_p(w_in) transfer relation.

Three regions: completely dampened, attenuation (steep and very
sensitive to parameter fluctuations — to be avoided when placing ω_in),
and asymptotic linear.  The bench regenerates the nominal curve plus the
Monte Carlo scatter at the paper's candidate ω_in values (0.30-0.50 ns).
"""

from conftest import print_figure

from repro.reporting import ascii_plot, format_table


def build_figure(experiment):
    curve = experiment.nominal_curve
    nominal_rows = [(w * 1e12, o * 1e12)
                    for w, o in zip(curve.w_in, curve.w_out)]
    scatter_rows = []
    for w in experiment.probe_widths:
        values = experiment.sample_wouts[w]
        scatter_rows.append([w * 1e12, min(values) * 1e12,
                             max(values) * 1e12,
                             experiment.spread(w) * 1e12])
    return nominal_rows, scatter_rows


def test_fig10_pulse_transfer(benchmark, transfer_experiment):
    experiment = transfer_experiment
    nominal_rows, scatter_rows = benchmark(build_figure, experiment)

    curve = experiment.nominal_curve
    body = format_table(["w_in (ps)", "w_out (ps)"], nominal_rows)
    body += "\n\nMC scatter at candidate omega_in values:\n"
    body += format_table(
        ["w_in (ps)", "min w_out (ps)", "max w_out (ps)", "spread (ps)"],
        scatter_rows)
    body += "\n\n" + ascii_plot(
        {"nominal": (list(curve.w_in), list(curve.w_out))},
        x_label="w_in (s)", y_label="w_out (s)")
    print_figure("Fig. 10 — pulse transfer relation w_out(w_in)", body)

    # Region structure exists and is ordered.
    dampened = curve.dampened_limit()
    onset = curve.region3_onset()
    assert dampened > 0.0
    assert onset is not None
    assert dampened < onset

    # Asymptotic region: linear, slope ~1.
    slopes = curve.slopes()
    assert abs(slopes[-1] - 1.0) < 0.25

    # The attenuation region is the fluctuation-sensitive one: the MC
    # spread at the lowest probe (inside/near region 2) must exceed the
    # spread at the highest probe (inside region 3) — the reason the
    # paper's rule places omega_in at the onset of region 3.
    spreads = [experiment.spread(w) for w in experiment.probe_widths]
    assert spreads[0] > spreads[-1]

    # In region 3 every instance propagates (no dampened samples).
    for w in experiment.probe_widths[-2:]:
        assert min(experiment.sample_wouts[w]) > 0.0
