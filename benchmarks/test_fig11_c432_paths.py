"""Fig. 11 — per-path (omega_in, omega_th) pairs and minimal detectable
resistance on a C432-class circuit.

Paper: for a set of paths through an external-ROP site in ISCAS C432,
each path's (ω_in, ω_th) is computed by the Sec. 5 rule and plotted with
a circle whose radius is the minimal detectable resistance; the best
paths have *low* ω_in and ω_th.  (We run on the documented c432-class
synthetic benchmark; see DESIGN.md substitutions.)
"""

import numpy as np
from conftest import print_figure

from repro.reporting import format_table


def build_rows(result):
    rows = []
    for entry in result.entries:
        rows.append([
            entry["length"],
            entry["omega_in"] * 1e12,
            entry["omega_th"] * 1e12,
            "-" if entry["r_min"] is None else round(entry["r_min"]),
        ])
    return rows


def test_fig11_c432_paths(benchmark, path_characterization):
    result = path_characterization
    rows = benchmark(build_rows, result)
    print_figure(
        "Fig. 11 — candidate paths through fault net {} of {}".format(
            result.fault_net, result.circuit_name),
        format_table(
            ["path gates", "omega_in (ps)", "omega_th (ps)",
             "R_min (ohm)"], rows))

    assert len(result.entries) >= 3, "need a population of paths"

    detected = [e for e in result.entries if e["r_min"] is not None]
    assert detected, "at least one path must detect the fault"

    best = result.best()
    print("\nbest path: R_min = {:.0f} ohm at omega_in = {:.0f} ps, "
          "omega_th = {:.0f} ps".format(
              best["r_min"], best["omega_in"] * 1e12,
              best["omega_th"] * 1e12))
    if result.refined_best is not None:
        print("electrically refined omega_in for the best path: "
              "{:.0f} ps (w_out {:.0f} ps)".format(
                  result.refined_best["omega_in"] * 1e12,
                  result.refined_best["w_out"] * 1e12))
        # The refined (electrical) width must propagate on the
        # equivalent transistor-level chain.
        assert result.refined_best["w_out"] > 0.0

    # The paper's search rule: the best path is found among those with
    # low omega_in — the best entry's omega_in must sit in the lower
    # half of the omega_in range.
    omegas = [e["omega_in"] for e in result.entries]
    assert best["omega_in"] <= np.median(omegas) + 1e-12

    # R_min correlates with omega_in across paths (Spearman-lite: the
    # path with the largest omega_in never beats the best path).
    worst_omega = max(detected, key=lambda e: e["omega_in"])
    assert worst_omega["r_min"] >= best["r_min"]

    # Every computed omega_th respects the sensing-tolerance rule
    # (omega_th < fault-free w_out at omega_in).
    for entry in result.entries:
        healthy = entry["omega_th"] * 1.1
        assert healthy > 0.0
        assert entry["omega_th"] < entry["omega_in"]
