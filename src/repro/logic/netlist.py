"""Gate-level netlist representation.

A :class:`LogicNetlist` is a DAG of single-output gates over named nets.
It supports the operations the test-generation flow needs: topological
evaluation, structural queries (fanin cone, fanout, depth) and 3-valued
simulation primitives used by the ATPG.
"""

import networkx as nx

GATE_TYPES = ("and", "nand", "or", "nor", "not", "buf", "xor", "xnor")

#: controlling input value per gate type (None: no controlling value)
CONTROLLING = {"and": 0, "nand": 0, "or": 1, "nor": 1,
               "not": None, "buf": None, "xor": None, "xnor": None}

#: output inversion parity per gate type
INVERTING = {"and": False, "nand": True, "or": False, "nor": True,
             "not": True, "buf": False, "xor": None, "xnor": None}


class Gate:
    """A single-output logic gate."""

    __slots__ = ("name", "kind", "inputs", "output")

    def __init__(self, name, kind, inputs, output):
        kind = kind.lower()
        if kind not in GATE_TYPES:
            raise ValueError("unknown gate type {!r}".format(kind))
        if kind in ("not", "buf") and len(inputs) != 1:
            raise ValueError("{} takes exactly one input".format(kind))
        if kind not in ("not", "buf") and len(inputs) < 2:
            raise ValueError("{} needs at least two inputs".format(kind))
        self.name = name
        self.kind = kind
        self.inputs = tuple(inputs)
        self.output = output

    @property
    def controlling_value(self):
        return CONTROLLING[self.kind]

    @property
    def noncontrolling_value(self):
        c = self.controlling_value
        return None if c is None else 1 - c

    def evaluate(self, values):
        """Boolean evaluation given an input-value sequence (0/1)."""
        v = list(values)
        if self.kind == "not":
            return 1 - v[0]
        if self.kind == "buf":
            return v[0]
        if self.kind == "and":
            return int(all(v))
        if self.kind == "nand":
            return int(not all(v))
        if self.kind == "or":
            return int(any(v))
        if self.kind == "nor":
            return int(not any(v))
        if self.kind == "xor":
            return sum(v) % 2
        return 1 - (sum(v) % 2)  # xnor

    def evaluate3(self, values):
        """3-valued (0/1/None=X) evaluation."""
        v = list(values)
        c = self.controlling_value
        if c is not None:
            if c in v:
                out = c
            elif None in v:
                return None
            else:
                out = 1 - c
            if self.kind in ("nand", "nor"):
                out = 1 - out
            return out
        if None in v:
            return None
        return self.evaluate(v)

    def __repr__(self):
        return "Gate({} = {}({}))".format(
            self.output, self.kind.upper(), ", ".join(self.inputs))


class LogicNetlist:
    """Combinational gate-level circuit."""

    def __init__(self, name="circuit"):
        self.name = name
        self.primary_inputs = []
        self.primary_outputs = []
        self._gates_by_output = {}
        self._topo_cache = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_input(self, net):
        if net in self._gates_by_output:
            raise ValueError("net {!r} already driven by a gate".format(net))
        if net in self.primary_inputs:
            raise ValueError("duplicate primary input {!r}".format(net))
        self.primary_inputs.append(net)
        self._topo_cache = None

    def add_output(self, net):
        if net in self.primary_outputs:
            raise ValueError("duplicate primary output {!r}".format(net))
        self.primary_outputs.append(net)

    def add_gate(self, kind, inputs, output, name=None):
        if output in self._gates_by_output:
            raise ValueError("net {!r} already driven".format(output))
        if output in self.primary_inputs:
            raise ValueError(
                "net {!r} is a primary input, cannot drive it".format(output))
        gate = Gate(name or "g_{}".format(output), kind, inputs, output)
        self._gates_by_output[output] = gate
        self._topo_cache = None
        return gate

    def replace_gate_input(self, output_net, old_input, new_input):
        """Rewire one input of the gate driving ``output_net``.

        Used by generator repair passes; the caller is responsible for
        keeping the graph acyclic (connecting to a PI always is).
        """
        gate = self._gates_by_output.get(output_net)
        if gate is None:
            raise ValueError("net {!r} has no driving gate".format(output_net))
        if old_input not in gate.inputs:
            raise ValueError(
                "{!r} is not an input of gate {}".format(old_input, gate.name))
        gate.inputs = tuple(new_input if net == old_input else net
                            for net in gate.inputs)
        self._topo_cache = None
        return gate

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def gates(self):
        return list(self._gates_by_output.values())

    def cache_token(self):
        """Stable structural description for runtime cache keys."""
        return [self.name, list(self.primary_inputs),
                list(self.primary_outputs),
                sorted((g.name, g.kind, list(g.inputs), g.output)
                       for g in self._gates_by_output.values())]

    def gate_driving(self, net):
        return self._gates_by_output.get(net)

    def nets(self):
        """All nets: inputs plus gate outputs."""
        return list(self.primary_inputs) + list(self._gates_by_output)

    @property
    def n_gates(self):
        return len(self._gates_by_output)

    def fanout_map(self):
        """{net: [gates reading it]}"""
        fanout = {net: [] for net in self.nets()}
        for gate in self._gates_by_output.values():
            for net in gate.inputs:
                if net not in fanout:
                    raise ValueError(
                        "gate {} reads undriven net {!r}".format(
                            gate.name, net))
                fanout[net].append(gate)
        return fanout

    def graph(self):
        """networkx DiGraph over nets (edges: gate input -> gate output)."""
        g = nx.DiGraph()
        g.add_nodes_from(self.nets())
        for gate in self._gates_by_output.values():
            for net in gate.inputs:
                g.add_edge(net, gate.output)
        return g

    def topological_nets(self):
        """Nets in evaluation order; raises on combinational loops."""
        if self._topo_cache is None:
            graph = self.graph()
            try:
                self._topo_cache = list(nx.topological_sort(graph))
            except nx.NetworkXUnfeasible:
                raise ValueError(
                    "netlist {!r} has a combinational loop".format(self.name))
        return self._topo_cache

    def validate(self):
        """Structural sanity: driven nets, acyclicity, outputs exist."""
        known = set(self.nets())
        for gate in self._gates_by_output.values():
            for net in gate.inputs:
                if net not in known:
                    raise ValueError(
                        "gate {} reads undriven net {!r}".format(
                            gate.name, net))
        for net in self.primary_outputs:
            if net not in known:
                raise ValueError(
                    "primary output {!r} is not a net".format(net))
        self.topological_nets()
        return True

    def depth(self):
        """Logic depth in gate levels."""
        level = {net: 0 for net in self.primary_inputs}
        for net in self.topological_nets():
            gate = self._gates_by_output.get(net)
            if gate is not None:
                level[net] = 1 + max(level[i] for i in gate.inputs)
        outputs = self.primary_outputs or list(level)
        return max(level[n] for n in outputs)

    # ------------------------------------------------------------------
    # Simulation
    # ------------------------------------------------------------------

    def evaluate(self, input_values):
        """Zero-delay boolean simulation; returns {net: value}."""
        values = {}
        for net in self.primary_inputs:
            values[net] = int(input_values[net])
        for net in self.topological_nets():
            gate = self._gates_by_output.get(net)
            if gate is not None:
                values[net] = gate.evaluate(values[i] for i in gate.inputs)
        return values

    def evaluate3(self, assignments):
        """3-valued simulation from a partial PI assignment.

        ``assignments`` maps PIs to 0/1; missing PIs are X (None).
        """
        values = {}
        for net in self.primary_inputs:
            values[net] = assignments.get(net)
        for net in self.topological_nets():
            gate = self._gates_by_output.get(net)
            if gate is not None:
                values[net] = gate.evaluate3(
                    [values[i] for i in gate.inputs])
        return values

    def __repr__(self):
        return "LogicNetlist({!r}: {} PIs, {} POs, {} gates)".format(
            self.name, len(self.primary_inputs), len(self.primary_outputs),
            self.n_gates)
