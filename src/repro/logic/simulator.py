"""Event-driven gate-level timing simulation with inertial filtering.

The single-pending-event inertial model: each net holds at most one
scheduled future transition; scheduling an opposite value cancels it.  A
pulse narrower than the local gate delay therefore dies inside the gate —
which is precisely the logic-level abstraction of pulse dampening the
paper builds on (Sec. 3: "the filtering capabilities of a path depend on
the inertial delays of the gates in the path").

Delay defects are injected as extra rise/fall delay on a net
(:class:`NetDelayDefect`); the added *asymmetry* between edges is what
shrinks pulses level after level.
"""

import heapq


class GateTiming:
    """Propagation delays per gate kind, optionally fluctuating per gate.

    ``table`` maps gate kind to ``(tp_lh, tp_hl)`` seconds; kinds missing
    from the table use ``default``.  When a ``sample`` (a Monte Carlo
    variation model) is supplied, each gate's delays get a deterministic
    per-gate factor from the sample's timing stream.
    """

    DEFAULT_TABLE = {
        "not": (60e-12, 55e-12),
        "buf": (90e-12, 85e-12),
        "nand": (85e-12, 70e-12),
        "nor": (110e-12, 75e-12),
        "and": (120e-12, 105e-12),
        "or": (140e-12, 110e-12),
        "xor": (150e-12, 140e-12),
        "xnor": (150e-12, 140e-12),
    }

    def __init__(self, table=None, default=(100e-12, 100e-12), sample=None):
        self.table = dict(self.DEFAULT_TABLE if table is None else table)
        self.default = default
        self.sample = sample

    def delays(self, gate):
        """(tp_lh, tp_hl) for a gate instance."""
        tp_lh, tp_hl = self.table.get(gate.kind, self.default)
        if self.sample is not None:
            tp_lh = tp_lh * self.sample.timing_factor(
                "gate:{}:lh".format(gate.name))
            tp_hl = tp_hl * self.sample.timing_factor(
                "gate:{}:hl".format(gate.name))
        return tp_lh, tp_hl


class NetDelayDefect:
    """A delay defect on one net: extra delay per output edge direction.

    An internal resistive open in the pull-up maps to ``extra_rise > 0,
    extra_fall = 0``; an external open delays both edges roughly equally.
    """

    def __init__(self, net, extra_rise=0.0, extra_fall=0.0):
        if extra_rise < 0 or extra_fall < 0:
            raise ValueError("defect delays must be non-negative")
        self.net = net
        self.extra_rise = float(extra_rise)
        self.extra_fall = float(extra_fall)

    def __repr__(self):
        return "NetDelayDefect({}, +{:.0f}ps rise, +{:.0f}ps fall)".format(
            self.net, self.extra_rise * 1e12, self.extra_fall * 1e12)


class SimulationTrace:
    """Per-net transition histories produced by a run."""

    def __init__(self, initial_values, transitions, t_end):
        self.initial_values = dict(initial_values)
        #: {net: [(time, new_value), ...]} sorted by time
        self.transitions = {net: list(events)
                            for net, events in transitions.items()}
        self.t_end = t_end

    def value_at(self, net, time):
        value = self.initial_values[net]
        for t, v in self.transitions.get(net, []):
            if t > time:
                break
            value = v
        return value

    def final_value(self, net):
        events = self.transitions.get(net, [])
        return events[-1][1] if events else self.initial_values[net]

    def transition_times(self, net):
        return [t for t, _ in self.transitions.get(net, [])]

    def pulse_widths(self, net):
        """Widths of complete excursions away from the initial value."""
        widths = []
        start = None
        idle = self.initial_values[net]
        for t, v in self.transitions.get(net, []):
            if v != idle and start is None:
                start = t
            elif v == idle and start is not None:
                widths.append(t - start)
                start = None
        return widths

    def widest_pulse(self, net):
        widths = self.pulse_widths(net)
        return max(widths) if widths else 0.0

    def last_transition(self, net):
        events = self.transitions.get(net, [])
        return events[-1][0] if events else None


class TimingSimulator:
    """Event-driven simulation of a :class:`LogicNetlist`."""

    def __init__(self, netlist, timing=None, defect=None):
        self.netlist = netlist
        self.timing = GateTiming() if timing is None else timing
        self.defect = defect
        self._fanout = netlist.fanout_map()

    def _gate_delay(self, gate, new_value):
        tp_lh, tp_hl = self.timing.delays(gate)
        delay = tp_lh if new_value == 1 else tp_hl
        if self.defect is not None and gate.output == self.defect.net:
            delay += (self.defect.extra_rise if new_value == 1
                      else self.defect.extra_fall)
        return delay

    def run(self, input_values, events=(), t_end=50e-9):
        """Simulate from a settled initial state.

        Parameters
        ----------
        input_values:
            Complete PI assignment (the test vector / idle state).
        events:
            Iterable of ``(time, net, value)`` input stimuli, e.g. the two
            edges of an injected pulse.
        t_end:
            Simulation horizon.

        Returns a :class:`SimulationTrace`.
        """
        values = self.netlist.evaluate(input_values)
        transitions = {net: [] for net in values}

        queue = []
        sequence = 0
        pending = {}

        def push(time, net, value, token):
            nonlocal sequence
            heapq.heappush(queue, (time, sequence, net, value, token))
            sequence += 1

        def schedule_gate_output(gate, t_now):
            new_value = gate.evaluate(values[i] for i in gate.inputs)
            net = gate.output
            t_event = t_now + self._gate_delay(gate, new_value)
            slot = pending.get(net)
            if slot is not None:
                t_pending, v_pending, token = slot
                if v_pending == new_value:
                    return  # already heading to this value
                # Opposite value: the pending (unmatured) transition is
                # preempted — this is the inertial pulse swallowing.
                token["cancelled"] = True
                pending.pop(net, None)
            if new_value == values[net]:
                return
            token = {"cancelled": False}
            pending[net] = (t_event, new_value, token)
            push(t_event, net, new_value, token)

        for time, net, value in events:
            if net not in self.netlist.primary_inputs:
                raise ValueError(
                    "stimulus on non-input net {!r}".format(net))
            push(float(time), net, int(value), None)

        while queue:
            time, _, net, value, token = heapq.heappop(queue)
            if time > t_end:
                break
            if token is not None:
                if token["cancelled"]:
                    continue
                pending.pop(net, None)
            if values[net] == value:
                continue
            values[net] = value
            transitions[net].append((time, value))
            for gate in self._fanout[net]:
                schedule_gate_output(gate, time)

        initial = self.netlist.evaluate(input_values)
        return SimulationTrace(initial, transitions, t_end)
