"""Logic-level pulse-test fault simulation.

This is the reproduction of the tool the paper announces in its
conclusions ("a logic level fault simulation tool is under development in
order to apply our method to the case of large combinational networks").
A resistive defect at a net is represented by three electrically
calibrated quantities (:class:`DefectCalibration`):

* extra rise / extra fall delay of the defective net's transitions —
  drives delay-fault behaviour and polarity-dependent pulse stretching
  in the event-driven simulator;
* a *pulse-threshold shift* — the increase of the minimum propagatable
  pulse width caused by the defect's slew degradation.  Two-valued event
  simulation cannot represent partial-swing truncation, so this component
  is applied through the analytic Omana-style path model
  (:mod:`repro.logic.pulse_model`), which is exactly why the paper pairs
  its tool with a timing-accurate pulse propagation model [10].
"""

import math

import numpy as np

from .atpg import sensitize_path
from .paths import path_inversion_parity
from .pulse_model import GatePulseModel, PathPulseModel
from .simulator import GateTiming, NetDelayDefect, TimingSimulator


class DefectCalibration:
    """Electrically calibrated map: resistance -> defect behaviour.

    ``kind`` selects the defect class: ``"internal_pullup"`` (slows rising
    edges only), ``"internal_pulldown"`` (falling only) or ``"external"``
    (both edges, dominated by slew degradation).
    """

    def __init__(self, resistances, extra_rise, extra_fall, theta_shift,
                 kind):
        self.resistances = np.asarray(resistances, dtype=float)
        self.extra_rise = np.asarray(extra_rise, dtype=float)
        self.extra_fall = np.asarray(extra_fall, dtype=float)
        self.theta_shift = np.asarray(theta_shift, dtype=float)
        self.kind = kind
        lengths = {len(self.resistances), len(self.extra_rise),
                   len(self.extra_fall), len(self.theta_shift)}
        if len(lengths) != 1:
            raise ValueError("calibration arrays must be aligned")
        if np.any(np.diff(self.resistances) <= 0):
            raise ValueError("resistances must be strictly increasing")

    # ------------------------------------------------------------------

    def _interp(self, table, resistance):
        return float(np.interp(resistance, self.resistances, table))

    def defect_for(self, net, resistance):
        """Edge-delay part as a :class:`NetDelayDefect` (event-driven)."""
        return NetDelayDefect(
            net,
            extra_rise=self._interp(self.extra_rise, resistance),
            extra_fall=self._interp(self.extra_fall, resistance))

    def theta_shift_for(self, resistance):
        """Pulse-threshold shift (seconds) at ``resistance``."""
        return self._interp(self.theta_shift, resistance)

    def apply_to_path_model(self, model, gate_index, resistance):
        """Path model with the defect folded into one gate's transfer.

        The defective stage's rejection threshold grows by the calibrated
        theta shift and its asymptotic offset by the edge-delay imbalance
        (the width a surviving pulse loses).
        """
        gates = list(model.gate_models)
        if not 0 <= gate_index < len(gates):
            raise ValueError("gate_index out of range")
        base = gates[gate_index]
        shift = self.theta_shift_for(resistance)
        imbalance = abs(self._interp(self.extra_rise, resistance)
                        - self._interp(self.extra_fall, resistance))
        gates[gate_index] = GatePulseModel(
            theta=base.theta + shift,
            span=base.span + 0.5 * shift,
            delta=base.delta + imbalance)
        return PathPulseModel(gates)

    # ------------------------------------------------------------------

    def to_dict(self):
        """Plain JSON-serialisable form (runtime cache entries)."""
        return {
            "resistances": [float(r) for r in self.resistances],
            "extra_rise": [float(v) for v in self.extra_rise],
            "extra_fall": [float(v) for v in self.extra_fall],
            "theta_shift": [float(v) for v in self.theta_shift],
            "kind": self.kind,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["resistances"], data["extra_rise"],
                   data["extra_fall"], data["theta_shift"], data["kind"])

    @classmethod
    def from_electrical(cls, kind, resistances, tech=None, stage=2,
                        dt=None, runtime=None, **path_kwargs):
        """Build the table by electrical simulation on a reference path.

        For every R the defect is injected at ``stage`` of a reference
        structure; the added 50 % crossing delay of the stage output is
        measured for both input transition directions, and the minimum
        propagatable pulse width of the whole path is found by bisection
        to extract the threshold shift.
        """
        from ..cells import default_technology
        from ..core.pulse import build_instance, measure_path_delay
        from ..core.transfer import minimum_propagatable_width
        from ..faults import (ExternalOpen, InternalOpen, PULL_DOWN,
                              PULL_UP, inject, set_fault_resistance)
        from ..runtime import CacheMiss, stable_hash

        resistances = sorted(float(r) for r in resistances)
        cache = None if runtime is None else runtime.cache
        key = None
        if cache is not None:
            resolved_tech = (default_technology() if tech is None
                             else tech)
            key = stable_hash("defect-calibration", kind, resistances,
                              resolved_tech, stage, dt, path_kwargs)
            try:
                return cls.from_dict(cache.get(key))
            except CacheMiss:
                pass
        if kind == "internal_pullup":
            fault = InternalOpen(stage, PULL_UP, resistances[0])
        elif kind == "internal_pulldown":
            fault = InternalOpen(stage, PULL_DOWN, resistances[0])
        elif kind == "external":
            fault = ExternalOpen(stage, resistances[0])
        else:
            raise ValueError("unknown defect kind {!r}".format(kind))

        base = build_instance(tech=tech, **path_kwargs)
        kwargs = {} if dt is None else {"dt": dt}
        d_rise_ff, _ = measure_path_delay(base, "rise", **kwargs)
        d_fall_ff, _ = measure_path_delay(base, "fall", **kwargs)
        w_min_ff = minimum_propagatable_width(base, **kwargs)

        faulty = inject(base, fault)
        extra_rise, extra_fall, theta_shift = [], [], []
        for r in resistances:
            set_fault_resistance(faulty, r)
            d_rise, _ = measure_path_delay(faulty, "rise", **kwargs)
            d_fall, _ = measure_path_delay(faulty, "fall", **kwargs)
            w_min = minimum_propagatable_width(faulty, **kwargs)
            # Attribute the whole-path delay change to the defective
            # stage; the fault-free remainder is unchanged by the defect.
            extra_rise.append(_finite(d_rise - d_rise_ff))
            extra_fall.append(_finite(d_fall - d_fall_ff))
            theta_shift.append(_finite(w_min - w_min_ff))
        calibration = cls(resistances, extra_rise, extra_fall,
                          theta_shift, kind)
        if key is not None:
            cache.put(key, calibration.to_dict())
        return calibration


def _finite(value, ceiling=1e-6):
    """Clamp to [0, ceiling]; inf (never-propagates) becomes the ceiling."""
    if math.isinf(value) or math.isnan(value):
        return ceiling
    return min(max(value, 0.0), ceiling)


class PulseTestResult:
    """Outcome of one logic-level pulse test application."""

    def __init__(self, observed_width, observation_net, trace):
        self.observed_width = observed_width
        self.observation_net = observation_net
        self.trace = trace

    def detected(self, omega_th):
        """Fault indication: expected output pulse absent / too narrow."""
        return self.observed_width < omega_th

    def __repr__(self):
        return "PulseTestResult(w_out={:.0f}ps at {})".format(
            self.observed_width * 1e12, self.observation_net)


def run_pulse_test(netlist, path_nets, vector, w_in, timing=None,
                   defect=None, launch_time=1e-9, t_end=None):
    """Apply a pulse test along a sensitized path (event-driven).

    ``vector`` is the complete PI assignment (from the ATPG); a pulse of
    width ``w_in`` is injected on the path's PI and the pulse width
    observed at the path's PO is returned.
    """
    timing = GateTiming() if timing is None else timing
    pi = path_nets[0]
    po = path_nets[-1]
    if pi not in netlist.primary_inputs:
        raise ValueError("path must start at a primary input")

    idle = vector[pi]
    events = [(launch_time, pi, 1 - idle),
              (launch_time + w_in, pi, idle)]
    if t_end is None:
        t_end = launch_time + w_in + 100e-12 * (len(path_nets) + 20)

    simulator = TimingSimulator(netlist, timing=timing, defect=defect)
    trace = simulator.run(vector, events=events, t_end=t_end)
    return PulseTestResult(trace.widest_pulse(po), po, trace)


def characterize_path_for_test(netlist, path_nets, timing=None,
                               max_backtracks=2000):
    """Sensitize a path and derive its pulse-test parameters.

    Returns ``None`` when unsensitizable, else a dict with the vector,
    the logic-level (ω_in, ω_th) recommendation from the analytic model
    (ω_in at the onset of the path's asymptotic region, the Sec. 5 rule)
    and the path's inversion parity.
    """
    from .pulse_model import path_model_from_netlist

    timing = GateTiming() if timing is None else timing
    try:
        sens = sensitize_path(netlist, path_nets,
                              max_backtracks=max_backtracks)
    except ValueError:
        return None
    if sens is None:
        return None
    vector = sens.vector(netlist)
    model = path_model_from_netlist(netlist, path_nets, timing)
    omega_in = model.region3_onset()
    omega_th = model.transfer(omega_in)
    values = netlist.evaluate(vector)
    parity = path_inversion_parity(netlist, path_nets, side_values=values)
    return {
        "path": list(path_nets),
        "vector": vector,
        "sensitization": sens,
        "model": model,
        "omega_in": omega_in,
        "omega_th": omega_th,
        "parity": parity,
    }


def minimum_detectable_resistance(model, fault_gate_index, calibration,
                                  omega_in, omega_th, rel_tol=0.02):
    """Smallest R flagged on a path, via the analytic defect model.

    Detection: the defective path's output pulse at the calibrated ω_in
    falls below ω_th.  Bisects the calibrated resistance range (the
    defect behaviour is monotone in R).  Returns None when even the
    largest calibrated R escapes.
    """
    def detected(r):
        faulted = calibration.apply_to_path_model(
            model, fault_gate_index, r)
        return faulted.transfer(omega_in) < omega_th

    lo = float(calibration.resistances[0])
    hi = float(calibration.resistances[-1])
    if not detected(hi):
        return None
    if detected(lo):
        return lo
    while hi - lo > rel_tol * lo:
        mid = (lo * hi) ** 0.5  # geometric: R spans decades
        if detected(mid):
            hi = mid
        else:
            lo = mid
    return hi
