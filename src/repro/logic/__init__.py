"""Gate-level substrate: netlists, benchmarks, timing simulation, pulse
models, path enumeration, sensitization ATPG and fault simulation."""

from .atpg import (SensitizationResult, find_sensitizable_path,
                   sensitize_path, side_input_objectives)
from .campaign import (CampaignResult, FaultSiteResult,
                       evaluate_fault_site, run_campaign)
from .bench_parser import load_bench, parse_bench, write_bench
from .benchmarks import (c17, generate_c432_like, generate_random_circuit)
from .delay_test import (arrival_times, calibrate_logic_delay_test,
                         critical_delay, df_best_r_min_for_site,
                         df_minimum_detectable_resistance,
                         edge_at_net, path_delay, slack_of_path)
from .fault_sim import (DefectCalibration, PulseTestResult,
                        characterize_path_for_test,
                        minimum_detectable_resistance, run_pulse_test)
from .netlist import Gate, LogicNetlist
from .paths import (fanout_load_counts, longest_paths_by_depth, path_gates,
                    path_inversion_parity, paths_through)
from .pulse_model import (GatePulseModel, PathPulseModel,
                          calibrate_gate_model, model_for_gate,
                          path_model_from_netlist)
from .simulator import (GateTiming, NetDelayDefect, SimulationTrace,
                        TimingSimulator)

__all__ = [
    "Gate", "LogicNetlist",
    "parse_bench", "load_bench", "write_bench",
    "c17", "generate_c432_like", "generate_random_circuit",
    "GateTiming", "NetDelayDefect", "TimingSimulator", "SimulationTrace",
    "GatePulseModel", "PathPulseModel", "model_for_gate",
    "path_model_from_netlist", "calibrate_gate_model",
    "paths_through", "path_gates", "path_inversion_parity",
    "fanout_load_counts", "longest_paths_by_depth",
    "sensitize_path", "side_input_objectives", "SensitizationResult",
    "find_sensitizable_path",
    "DefectCalibration", "PulseTestResult", "run_pulse_test",
    "CampaignResult", "FaultSiteResult", "evaluate_fault_site",
    "run_campaign",
    "arrival_times", "critical_delay", "path_delay", "edge_at_net",
    "calibrate_logic_delay_test", "df_minimum_detectable_resistance",
    "df_best_r_min_for_site",
    "slack_of_path",
    "minimum_detectable_resistance", "characterize_path_for_test",
]
