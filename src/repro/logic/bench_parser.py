"""ISCAS-85 ``.bench`` format parser and writer.

The format::

    # comment
    INPUT(G1)
    OUTPUT(G22)
    G10 = NAND(G1, G3)

Gate names in .bench are the output net names.
"""

import re

from .netlist import LogicNetlist

_DECL_RE = re.compile(r"^(INPUT|OUTPUT)\s*\(\s*([^)]+?)\s*\)$",
                      re.IGNORECASE)
_GATE_RE = re.compile(
    r"^([^=\s]+)\s*=\s*([A-Za-z]+)\s*\(\s*([^)]*?)\s*\)$")

#: .bench operator name -> internal gate kind
_KIND_MAP = {"and": "and", "nand": "nand", "or": "or", "nor": "nor",
             "not": "not", "buf": "buf", "buff": "buf", "xor": "xor",
             "xnor": "xnor"}


def parse_bench(text, name="bench"):
    """Parse .bench source text into a :class:`LogicNetlist`."""
    netlist = LogicNetlist(name)
    pending_outputs = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        decl = _DECL_RE.match(line)
        if decl:
            keyword, net = decl.group(1).upper(), decl.group(2)
            if keyword == "INPUT":
                netlist.add_input(net)
            else:
                pending_outputs.append(net)
            continue
        gate = _GATE_RE.match(line)
        if gate:
            output, op, arglist = gate.groups()
            kind = _KIND_MAP.get(op.lower())
            if kind is None:
                raise ValueError(
                    "line {}: unknown operator {!r}".format(lineno, op))
            inputs = [a.strip() for a in arglist.split(",") if a.strip()]
            netlist.add_gate(kind, inputs, output)
            continue
        raise ValueError("line {}: cannot parse {!r}".format(lineno, raw))
    for net in pending_outputs:
        netlist.add_output(net)
    netlist.validate()
    return netlist


def load_bench(path):
    """Parse a .bench file from disk."""
    with open(path) as handle:
        text = handle.read()
    return parse_bench(text, name=str(path))


def write_bench(netlist):
    """Serialise a netlist back to .bench text."""
    lines = ["# {}".format(netlist.name)]
    for net in netlist.primary_inputs:
        lines.append("INPUT({})".format(net))
    for net in netlist.primary_outputs:
        lines.append("OUTPUT({})".format(net))
    lines.append("")
    for net in netlist.topological_nets():
        gate = netlist.gate_driving(net)
        if gate is not None:
            lines.append("{} = {}({})".format(
                gate.output, gate.kind.upper(), ", ".join(gate.inputs)))
    return "\n".join(lines) + "\n"
