"""Benchmark circuits.

* ``c17()`` — the exact ISCAS-85 c17 netlist (small enough to know by
  heart; used pervasively in tests).
* ``generate_c432_like()`` — a deterministic synthetic generator producing
  circuits with ISCAS-85 C432-class statistics (36 PIs, 7 POs, ~160
  gates, depth around 17, NAND-dominated mix).  The verbatim C432 netlist
  is not redistributable from memory with confidence; the Fig. 11
  experiment only needs a population of structurally diverse sensitizable
  paths with varied fan-out loads, which this provides (see DESIGN.md,
  *Substitutions*).
* ``generate_random_circuit()`` — the fully parameterised generator the
  c432-class preset is built on.
"""

import numpy as np

from .bench_parser import parse_bench
from .netlist import LogicNetlist

_C17_BENCH = """
# c17 (ISCAS-85)
INPUT(G1)
INPUT(G2)
INPUT(G3)
INPUT(G6)
INPUT(G7)
OUTPUT(G22)
OUTPUT(G23)
G10 = NAND(G1, G3)
G11 = NAND(G3, G6)
G16 = NAND(G2, G11)
G19 = NAND(G11, G7)
G22 = NAND(G10, G16)
G23 = NAND(G16, G19)
"""


def c17():
    """The ISCAS-85 c17 benchmark (5 PIs, 2 POs, 6 NAND2)."""
    return parse_bench(_C17_BENCH, name="c17")


def generate_random_circuit(n_inputs, n_outputs, n_gates, seed=0,
                            target_depth=None, max_fanin=3,
                            kind_weights=None, name=None):
    """Deterministic layered random DAG of logic gates.

    Gates are placed on levels so the depth is controlled; each gate draws
    its inputs from earlier levels with a bias toward the immediately
    preceding one (keeps paths long and fan-out realistic).
    """
    if target_depth is None:
        target_depth = max(3, int(np.ceil(n_gates ** 0.5)))
    if kind_weights is None:
        kind_weights = {"nand": 0.35, "nor": 0.15, "and": 0.15,
                        "or": 0.10, "not": 0.15, "xor": 0.05, "buf": 0.05}
    kinds = sorted(kind_weights)
    weights = np.array([kind_weights[k] for k in kinds], dtype=float)
    weights = weights / weights.sum()

    rng = np.random.default_rng(seed)
    netlist = LogicNetlist(name or "random_s{}".format(seed))
    for i in range(n_inputs):
        netlist.add_input("I{}".format(i))

    # Distribute gates over levels (at least one per level).
    per_level = np.full(target_depth, n_gates // target_depth, dtype=int)
    per_level[:n_gates % target_depth] += 1

    levels = [list(netlist.primary_inputs)]
    fanout_count = {net: 0 for net in netlist.primary_inputs}
    gate_id = 0
    for level_index, count in enumerate(per_level, start=1):
        level_nets = []
        for _ in range(count):
            kind = kinds[int(rng.choice(len(kinds), p=weights))]
            fanin = 1 if kind in ("not", "buf") else int(
                rng.integers(2, max_fanin + 1))
            inputs = _draw_inputs(rng, levels, fanin, fanout_count)
            for net in inputs:
                fanout_count[net] += 1
            output = "N{}".format(gate_id)
            netlist.add_gate(kind, inputs, output)
            level_nets.append(output)
            fanout_count[output] = 0
            gate_id += 1
        levels.append(level_nets)

    # POs: prefer nets with no fanout, deepest first.
    fanout = netlist.fanout_map()
    candidates = [net for net in reversed(netlist.topological_nets())
                  if netlist.gate_driving(net) is not None
                  and not fanout[net]]
    for net in reversed(netlist.topological_nets()):
        if len(candidates) >= n_outputs:
            break
        if netlist.gate_driving(net) is not None and net not in candidates:
            candidates.append(net)
    for net in candidates[:n_outputs]:
        netlist.add_output(net)
    _repair_biased_nets(netlist, rng)
    netlist.validate()
    return netlist


def _repair_biased_nets(netlist, rng, n_vectors=256, rounds=8,
                        min_rate=0.1):
    """Break up (nearly) constant internal nets.

    Deep random NAND-heavy logic develops constant nets through
    reconvergent complements, which makes side-input objectives
    unsatisfiable and paths untestable — unlike real benchmark circuits.
    Any gate output stuck at one value across random vectors gets one of
    its inputs rewired to a fresh primary input, restoring
    controllability.
    """
    pis = netlist.primary_inputs
    for _ in range(rounds):
        counts = {net: 0 for net in netlist.nets()}
        for _ in range(n_vectors):
            vec = {pi: int(rng.integers(2)) for pi in pis}
            values = netlist.evaluate(vec)
            for net, value in values.items():
                counts[net] += value
        stuck = [net for net, ones in counts.items()
                 if netlist.gate_driving(net) is not None
                 and not (min_rate <= ones / n_vectors <= 1.0 - min_rate)]
        if not stuck:
            return
        topo = netlist.topological_nets()
        topo_index = {net: i for i, net in enumerate(topo)}
        for net in stuck:
            gate = netlist.gate_driving(net)
            victim = gate.inputs[int(rng.integers(len(gate.inputs)))]
            # Rewire to an earlier (acyclic), well-balanced net; this
            # keeps the circuit deep instead of collapsing onto PIs.
            earlier = [cand for cand in topo[:topo_index[net]]
                       if cand not in gate.inputs
                       and 0.25 <= counts[cand] / n_vectors <= 0.75]
            if not earlier:
                earlier = [pi for pi in pis if pi not in gate.inputs]
            if earlier:
                replacement = earlier[int(rng.integers(len(earlier)))]
                netlist.replace_gate_input(net, victim, replacement)


def _draw_inputs(rng, levels, fanin, fanout_count):
    """Pick ``fanin`` distinct source nets.

    Preference order keeps reconvergence realistic (and paths
    sensitizable): nets with no fan-out yet are favoured, with a bias
    toward the previous level so paths stay deep.
    """
    chosen = []
    available = [net for level in levels for net in level]
    fresh_prev = [net for net in levels[-1] if fanout_count[net] == 0]
    fresh_any = [net for net in available if fanout_count[net] == 0]
    attempts = 0
    while len(chosen) < fanin and attempts < 200:
        attempts += 1
        roll = rng.random()
        if roll < 0.55 and fresh_prev:
            pool = fresh_prev
        elif roll < 0.80 and fresh_any:
            pool = fresh_any
        elif rng.random() < 0.5 and levels[-1]:
            pool = levels[-1]
        else:
            pool = available
        net = pool[int(rng.integers(len(pool)))]
        if net not in chosen:
            chosen.append(net)
    while len(chosen) < fanin:
        for net in available:
            if net not in chosen:
                chosen.append(net)
                break
    return chosen


def generate_c432_like(seed=432):
    """A C432-class circuit: 36 PIs, 7 POs, ~160 gates, depth ~17.

    ISCAS-85 C432 is a 27-channel interrupt controller dominated by
    NAND/NOT logic with a few XORs; the preset mirrors those statistics.
    """
    return generate_random_circuit(
        n_inputs=36, n_outputs=7, n_gates=160, seed=seed, target_depth=17,
        max_fanin=3,
        kind_weights={"nand": 0.45, "not": 0.20, "and": 0.10,
                      "nor": 0.10, "or": 0.05, "xor": 0.07, "buf": 0.03},
        name="c432like_s{}".format(seed))
