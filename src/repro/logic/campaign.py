"""Full-circuit pulse-test campaign (the paper's announced tool).

The conclusions promise "a logic level fault simulation tool ... to
apply our method to the case of large combinational networks".  This
module is that tool: walk the fault sites of a gate-level circuit,
generate a pulse test for each (path selection + ATPG sensitization +
per-path (ω_in, ω_th) under Monte Carlo timing fluctuation), and report
the circuit-level coverage as a function of the defect resistance.
"""

from ..montecarlo import sample_population
from ..runtime import Runtime, RunReport, stable_hash
from .fault_sim import characterize_path_for_test, minimum_detectable_resistance
from .paths import paths_through
from .pulse_model import path_model_from_netlist
from .simulator import GateTiming

TESTED = "tested"
UNSENSITIZABLE = "unsensitizable"
NO_PATH = "no_path"
UNDETECTABLE = "undetectable"
ERROR = "error"


class FaultSiteResult:
    """Outcome for one fault site (a gate-output net)."""

    def __init__(self, net, status, path=None, vector=None, omega_in=None,
                 omega_th=None, r_min=None, paths_tried=0):
        self.net = net
        self.status = status
        self.path = path
        self.vector = vector
        self.omega_in = omega_in
        self.omega_th = omega_th
        self.r_min = r_min
        self.paths_tried = paths_tried

    @property
    def tested(self):
        return self.status == TESTED

    def to_dict(self):
        """Plain JSON-serialisable form (runtime cache entries)."""
        return {
            "net": self.net,
            "status": self.status,
            "path": None if self.path is None else list(self.path),
            "vector": self.vector,
            "omega_in": self.omega_in,
            "omega_th": self.omega_th,
            "r_min": self.r_min,
            "paths_tried": self.paths_tried,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(data["net"], data["status"], path=data.get("path"),
                   vector=data.get("vector"),
                   omega_in=data.get("omega_in"),
                   omega_th=data.get("omega_th"),
                   r_min=data.get("r_min"),
                   paths_tried=data.get("paths_tried", 0))

    def __repr__(self):
        return "FaultSiteResult({}, {})".format(self.net, self.status)


class CampaignResult:
    """Aggregated campaign outcome."""

    def __init__(self, circuit_name, sites, calibration, report=None):
        self.circuit_name = circuit_name
        self.sites = list(sites)
        self.calibration = calibration
        #: runtime :class:`~repro.runtime.RunReport` (telemetry)
        self.report = report

    # ------------------------------------------------------------------

    def tested_sites(self):
        return [s for s in self.sites if s.tested]

    def coverage_at(self, resistance):
        """Fraction of *all* sites whose generated test detects an open
        of the given resistance."""
        if not self.sites:
            raise ValueError("campaign has no sites")
        hits = sum(1 for s in self.tested_sites()
                   if s.r_min is not None and s.r_min <= resistance)
        return hits / len(self.sites)

    def test_generation_rate(self):
        """Fraction of sites for which a sensitized test exists."""
        return len(self.tested_sites()) / len(self.sites)

    def summary(self):
        from collections import Counter
        statuses = Counter(s.status for s in self.sites)
        r_mins = [s.r_min for s in self.tested_sites()
                  if s.r_min is not None]
        return {
            "circuit": self.circuit_name,
            "n_sites": len(self.sites),
            "statuses": dict(statuses),
            "test_generation_rate": self.test_generation_rate(),
            "n_detecting": len(r_mins),
            "best_r_min": min(r_mins) if r_mins else None,
            "median_r_min": sorted(r_mins)[len(r_mins) // 2]
            if r_mins else None,
        }

    def __repr__(self):
        return "CampaignResult({}: {}/{} sites tested)".format(
            self.circuit_name, len(self.tested_sites()), len(self.sites))


def evaluate_fault_site(netlist, net, calibration, timing=None,
                        samples=None, max_paths=12, max_backtracks=1500,
                        sensing_tolerance=0.1):
    """Generate and grade a pulse test for one fault site.

    Tries candidate paths (shortest first — cheaper tests) until one is
    sensitizable, then computes the conservative ω_th from the weakest
    Monte Carlo instance and the minimal detectable resistance from the
    electrically calibrated defect model.
    """
    timing = GateTiming() if timing is None else timing
    samples = sample_population(5, base_seed=7) if samples is None else (
        samples)

    candidates = paths_through(netlist, net, max_paths=max_paths)
    candidates.sort(key=len)
    if not candidates:
        return FaultSiteResult(net, NO_PATH)

    tried = 0
    for path in candidates:
        tried += 1
        if path[-1] not in netlist.primary_outputs:
            continue
        if path.index(net) == 0:
            continue  # fault net must be a gate output along the path
        info = characterize_path_for_test(
            netlist, path, timing=timing, max_backtracks=max_backtracks)
        if info is None:
            continue
        omega_in = info["omega_in"]
        wouts = []
        for sample in samples:
            model = path_model_from_netlist(
                netlist, path, GateTiming(table=timing.table,
                                          default=timing.default,
                                          sample=sample))
            wouts.append(model.transfer(omega_in))
        weakest = min(wouts)
        if weakest <= 0.0:
            continue
        omega_th = weakest / (1.0 + sensing_tolerance)
        fault_gate_index = path.index(net) - 1
        r_min = minimum_detectable_resistance(
            info["model"], fault_gate_index, calibration, omega_in,
            omega_th)
        status = TESTED if r_min is not None else UNDETECTABLE
        return FaultSiteResult(
            net, status, path=path, vector=info["vector"],
            omega_in=omega_in, omega_th=omega_th, r_min=r_min,
            paths_tried=tried)
    return FaultSiteResult(net, UNSENSITIZABLE, paths_tried=tried)


def _site_task(payload):
    """Worker: evaluate one fault site; returns a plain dict (cacheable)."""
    result = evaluate_fault_site(
        payload["netlist"], payload["net"], payload["calibration"],
        timing=payload["timing"], samples=payload["samples"],
        max_paths=payload["max_paths"],
        sensing_tolerance=payload["sensing_tolerance"])
    return result.to_dict()


def run_campaign(netlist, calibration, timing=None, samples=None,
                 max_paths=12, site_limit=None, site_stride=1,
                 sensing_tolerance=0.1, runtime=None, progress=None):
    """Generate pulse tests for every gate-output net of ``netlist``.

    ``site_limit``/``site_stride`` subsample the fault list for quick
    runs.  ``calibration`` is a
    :class:`~repro.logic.fault_sim.DefectCalibration` (built once,
    electrically).  ``runtime`` routes the per-site work through the
    campaign runtime (parallel execution, result caching and
    checkpoint/resume); a site whose evaluation fails — even after the
    executor's retries — is reported with status ``"error"`` instead of
    killing the campaign.
    """
    timing = GateTiming() if timing is None else timing
    if samples is None:
        samples = sample_population(5, base_seed=7)
    runtime = Runtime() if runtime is None else runtime

    sites = [net for net in netlist.topological_nets()
             if netlist.gate_driving(net) is not None]
    sites = sites[::max(1, site_stride)]
    if site_limit is not None:
        sites = sites[:site_limit]

    payloads = [dict(netlist=netlist, net=net, calibration=calibration,
                     timing=timing, samples=samples, max_paths=max_paths,
                     sensing_tolerance=sensing_tolerance)
                for net in sites]
    keys = None
    if runtime.cache is not None:
        keys = [stable_hash("fault-site", netlist, net, calibration,
                            timing, samples, max_paths,
                            sensing_tolerance)
                for net in sites]
    report = RunReport("campaign:{}".format(netlist.name))
    run = runtime.run(_site_task, payloads, keys=keys,
                      label="campaign:{}".format(netlist.name),
                      report=report, progress=progress)
    results = []
    for index, net in enumerate(sites):
        value = run.value_or_none(index)
        if value is None:
            results.append(FaultSiteResult(net, ERROR))
        else:
            results.append(FaultSiteResult.from_dict(value))
    return CampaignResult(netlist.name, results, calibration,
                          report=report)
