"""Analytic logic-level pulse-propagation model (Omana-style).

The paper (Sec. 5) notes that electrical simulation of every candidate
path is impractical for realistic circuits and points at timing-accurate
logic-level models of transient-pulse propagation [Omana et al., IOLTS
2003].  This module implements such a model: each gate is a piecewise
transfer function with the same three regions observed electrically
(Fig. 10):

* ``w_in <= theta``            -> fully dampened (region 1),
* ``theta < w_in < theta+span`` -> steep attenuation (region 2),
* ``w_in >= theta+span``        -> asymptotic ``w_out = w_in - delta``
  (region 3; ``delta`` is the rise/fall delay imbalance).

Gate parameters can be set directly, derived from a
:class:`~repro.logic.simulator.GateTiming` table, or *calibrated against
the electrical simulator* (:func:`calibrate_gate_model`) — the
bottom-up/top-down synergy the paper's tool relies on.
"""

import numpy as np


class GatePulseModel:
    """Piecewise-linear pulse transfer of one gate (one polarity)."""

    def __init__(self, theta, span, delta=0.0):
        if theta < 0 or span <= 0:
            raise ValueError("theta must be >= 0 and span > 0")
        self.theta = float(theta)
        self.span = float(span)
        self.delta = float(delta)

    @classmethod
    def from_delays(cls, tp_lh, tp_hl, span_fraction=0.6):
        """Derive model parameters from gate propagation delays.

        The rejection threshold of an inertial gate tracks its slower
        propagation delay; the attenuation span is a fraction of it; the
        asymptotic offset is the edge-delay imbalance.
        """
        slower = max(tp_lh, tp_hl)
        return cls(theta=slower, span=span_fraction * slower,
                   delta=abs(tp_lh - tp_hl))

    def asymptote_start(self):
        return self.theta + self.span

    def transfer(self, w_in):
        """Output pulse width for input width ``w_in``."""
        if w_in <= self.theta:
            return 0.0
        start = self.asymptote_start()
        w_asym = max(start - self.delta, 0.0)
        if w_in >= start:
            return max(w_in - self.delta, 0.0)
        # Region 2: linear ramp 0 -> w_asym over (theta, theta+span).
        return w_asym * (w_in - self.theta) / self.span

    def required_input(self, w_out):
        """Smallest input width producing at least ``w_out`` (inverse)."""
        if w_out <= 0.0:
            return self.theta
        start = self.asymptote_start()
        w_asym = max(start - self.delta, 0.0)
        if w_out >= w_asym:
            return w_out + self.delta
        if w_asym == 0.0:
            return start
        return self.theta + self.span * w_out / w_asym

    def __repr__(self):
        return ("GatePulseModel(theta={:.0f}ps, span={:.0f}ps, "
                "delta={:.0f}ps)").format(self.theta * 1e12,
                                          self.span * 1e12,
                                          self.delta * 1e12)


class PathPulseModel:
    """Composition of gate models along a path."""

    def __init__(self, gate_models):
        self.gate_models = list(gate_models)
        if not self.gate_models:
            raise ValueError("a path needs at least one gate")

    def transfer(self, w_in):
        w = float(w_in)
        for gate in self.gate_models:
            w = gate.transfer(w)
            if w <= 0.0:
                return 0.0
        return w

    def minimum_propagatable(self):
        """Smallest input width surviving to the path output.

        Computed by inverting the chain from the output back: the last
        gate must receive at least its own ``theta`` (exclusive), etc.
        A tiny epsilon keeps the result strictly in the propagating
        region.
        """
        eps = 1e-15
        needed = eps
        for gate in reversed(self.gate_models):
            needed = gate.required_input(needed) + eps
        return needed

    def region3_onset(self):
        """Input width at which the whole path is in its asymptotic
        region (every gate past its own attenuation span)."""
        needed = 0.0
        for gate in reversed(self.gate_models):
            needed = max(gate.required_input(needed), gate.asymptote_start())
        return needed

    def curve(self, w_in_values):
        """Vectorised transfer over a grid (for plotting / fitting)."""
        return np.array([self.transfer(w) for w in w_in_values])

    def __repr__(self):
        return "PathPulseModel({} gates)".format(len(self.gate_models))


def model_for_gate(gate, timing, span_fraction=0.6):
    """Gate model derived from a :class:`GateTiming` entry."""
    tp_lh, tp_hl = timing.delays(gate)
    return GatePulseModel.from_delays(tp_lh, tp_hl,
                                      span_fraction=span_fraction)


def path_model_from_netlist(netlist, path_nets, timing, span_fraction=0.6):
    """Pulse model for a structural path (list of nets, PI first)."""
    models = []
    for net in path_nets[1:]:
        gate = netlist.gate_driving(net)
        if gate is None:
            raise ValueError("net {!r} on the path is undriven".format(net))
        models.append(model_for_gate(gate, timing, span_fraction))
    return PathPulseModel(models)


def calibrate_gate_model(kind, tech=None, fanout_loads=2,
                         w_in_grid=None, dt=None, kind_of_pulse="h"):
    """Fit a :class:`GatePulseModel` from electrical simulation.

    Builds a single-gate sensitized stage in :mod:`repro.cells`, sweeps
    the injected width and extracts (theta, span, delta) from the
    measured transfer curve.  This anchors the logic-level model to the
    electrical substrate.
    """
    from ..core.transfer import characterize_transfer
    from ..core.pulse import build_instance

    if w_in_grid is None:
        w_in_grid = np.linspace(0.04e-9, 0.5e-9, 24)

    def builder():
        return build_instance(tech=tech, gate_kinds=(kind,),
                              fanout_loads=fanout_loads,
                              side_fanout_stages=())

    curve = characterize_transfer(builder, w_in_grid, kind=kind_of_pulse,
                                  dt=dt)
    theta = curve.dampened_limit()
    onset = curve.region3_onset()
    if onset is None:
        onset = float(curve.w_in[-1])
    span = max(onset - theta, 1e-12)
    # Asymptotic offset: mean (w_in - w_out) past the onset.
    mask = curve.w_in >= onset
    if mask.any():
        delta = float(np.mean(curve.w_in[mask] - curve.w_out[mask]))
    else:
        delta = 0.0
    return GatePulseModel(theta=theta, span=span, delta=max(delta, 0.0))
