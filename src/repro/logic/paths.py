"""Structural path enumeration through a fault site.

Test generation (Sec. 5) starts from the set of candidate paths that
include the fault location; the pair (ω_in, ω_th) is then optimised over
that set.  Enumeration is bounded because path counts explode in
reconvergent circuits.
"""

from itertools import islice

import networkx as nx


def paths_through(netlist, net, max_paths=64, max_length=None):
    """PI -> PO structural paths through ``net``.

    Returns a list of net-name lists (each starts at a PI and ends at a
    PO).  At most ``max_paths`` paths are produced; ``max_length`` bounds
    the *total* path length in nets.
    """
    graph = netlist.graph()
    if net not in graph:
        raise ValueError("unknown net {!r}".format(net))

    upstream = _segments(graph, sources=netlist.primary_inputs,
                         target=net, max_count=max_paths,
                         max_length=max_length, forward=False)
    downstream = _segments(graph, sources=netlist.primary_outputs,
                           target=net, max_count=max_paths,
                           max_length=max_length, forward=True)
    paths = []
    for up in upstream:
        for down in downstream:
            if max_length is not None and (
                    len(up) + len(down) - 1 > max_length):
                continue
            paths.append(up + down[1:])
            if len(paths) >= max_paths:
                return paths
    return paths


def _segments(graph, sources, target, max_count, max_length, forward):
    """Simple paths between ``target`` and a set of terminals.

    ``forward=True`` walks target -> terminal (downstream to POs),
    ``forward=False`` walks terminal -> target (upstream from PIs).
    """
    cutoff = None if max_length is None else max_length
    segments = []
    if not forward and target in sources:
        segments.append([target])  # the net itself is a PI
    if forward and target in sources:
        segments.append([target])  # the net itself is a PO
    for terminal in sources:
        if terminal == target:
            continue
        if forward:
            generator = nx.all_simple_paths(graph, target, terminal,
                                            cutoff=cutoff)
        else:
            generator = nx.all_simple_paths(graph, terminal, target,
                                            cutoff=cutoff)
        for path in islice(generator, max_count):
            segments.append(path)
            if len(segments) >= max_count:
                return segments
    return segments


def path_gates(netlist, path_nets):
    """Gates along a path (one per net after the first)."""
    gates = []
    for net in path_nets[1:]:
        gate = netlist.gate_driving(net)
        if gate is None:
            raise ValueError(
                "path net {!r} has no driving gate".format(net))
        gates.append(gate)
    return gates


def path_inversion_parity(netlist, path_nets, side_values=None):
    """Number of inversions along the path, modulo 2.

    XOR/XNOR parity depends on the side-input values; ``side_values``
    (a net->value map) must cover their side inputs in that case.
    """
    parity = 0
    for gate, in_net in zip(path_gates(netlist, path_nets), path_nets):
        if gate.kind in ("not", "nand", "nor"):
            parity ^= 1
        elif gate.kind in ("xor", "xnor"):
            if side_values is None:
                raise ValueError(
                    "XOR on path needs side values for parity")
            ones = sum(side_values[i] for i in gate.inputs if i != in_net)
            parity ^= (ones % 2) ^ (1 if gate.kind == "xnor" else 0)
    return parity


def fanout_load_counts(netlist, path_nets):
    """Fan-out count of each on-path net (loading for the electrical
    translation of the path)."""
    fanout = netlist.fanout_map()
    return [len(fanout[net]) for net in path_nets]


def longest_paths_by_depth(netlist, net, max_paths=16):
    """Convenience: the structurally longest paths through ``net``."""
    paths = paths_through(netlist, net, max_paths=max_paths * 4)
    paths.sort(key=len, reverse=True)
    return paths[:max_paths]
