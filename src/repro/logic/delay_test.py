"""Logic-level reduced-clock DF testing: STA, calibration, R_min.

The gate-level counterpart of :mod:`repro.dft`, so the two methods can
be compared across *whole circuits*: static timing analysis (rise/fall
arrival times), T* calibration on the Monte Carlo fault-free population,
and per-fault-site minimal detectable resistance via the electrically
calibrated defect tables.

This is what makes the paper's path-local comparison (Figs. 6-9)
scale to full netlists: a defect on a short path enjoys slack
``T' - d_p`` that reduced-clock testing must overcome, while the pulse
test's detectability is slack-independent.
"""

import math

import numpy as np

from ..dft import FlipFlopTiming, calibrate_t_star
from .paths import path_gates
from .simulator import GateTiming

INVERTING_KINDS = frozenset({"not", "nand", "nor"})
NONINVERTING_KINDS = frozenset({"buf", "and", "or"})


def arrival_times(netlist, timing, launch=0.0):
    """Static timing analysis: per-net (rise, fall) arrival times.

    All primary inputs launch at ``launch`` for both edges (the common
    test-clock edge).  Returns ``{net: (t_rise, t_fall)}``.
    """
    arrivals = {}
    for pi in netlist.primary_inputs:
        arrivals[pi] = (launch, launch)
    for net in netlist.topological_nets():
        gate = netlist.gate_driving(net)
        if gate is None:
            continue
        tp_lh, tp_hl = timing.delays(gate)
        in_rise = max(arrivals[i][0] for i in gate.inputs)
        in_fall = max(arrivals[i][1] for i in gate.inputs)
        if gate.kind in INVERTING_KINDS:
            out_rise = in_fall + tp_lh
            out_fall = in_rise + tp_hl
        elif gate.kind in NONINVERTING_KINDS:
            out_rise = in_rise + tp_lh
            out_fall = in_fall + tp_hl
        else:  # xor/xnor: either input edge can cause either output edge
            worst = max(in_rise, in_fall)
            out_rise = worst + tp_lh
            out_fall = worst + tp_hl
        arrivals[net] = (out_rise, out_fall)
    return arrivals


def critical_delay(netlist, timing):
    """Worst PO arrival time (the functional critical path delay)."""
    arrivals = arrival_times(netlist, timing)
    outputs = netlist.primary_outputs or list(arrivals)
    return max(max(arrivals[po]) for po in outputs)


def path_delay(netlist, path_nets, timing, launch_direction="rise",
               side_values=None):
    """Delay of one structural path for a given launched edge.

    Tracks the edge polarity gate by gate; XOR/XNOR polarity needs the
    side values (from the sensitizing vector).
    """
    if launch_direction not in ("rise", "fall"):
        raise ValueError("launch_direction must be 'rise' or 'fall'")
    edge = launch_direction
    total = 0.0
    for gate, in_net in zip(path_gates(netlist, path_nets), path_nets):
        inverting = gate.kind in INVERTING_KINDS
        if gate.kind in ("xor", "xnor"):
            if side_values is None:
                raise ValueError("XOR on path needs side values")
            ones = sum(side_values[i] for i in gate.inputs
                       if i != in_net)
            inverting = bool(ones % 2) ^ (gate.kind == "xnor")
        edge = ("fall" if edge == "rise" else "rise") if inverting else (
            edge)
        tp_lh, tp_hl = timing.delays(gate)
        total += tp_lh if edge == "rise" else tp_hl
    return total


def edge_at_net(netlist, path_nets, target_net, launch_direction="rise",
                side_values=None):
    """Edge polarity arriving at ``target_net`` along the path."""
    edge = launch_direction
    if path_nets[0] == target_net:
        return edge
    for gate, in_net in zip(path_gates(netlist, path_nets), path_nets):
        inverting = gate.kind in INVERTING_KINDS
        if gate.kind in ("xor", "xnor"):
            if side_values is None:
                raise ValueError("XOR on path needs side values")
            ones = sum(side_values[i] for i in gate.inputs
                       if i != in_net)
            inverting = bool(ones % 2) ^ (gate.kind == "xnor")
        edge = ("fall" if edge == "rise" else "rise") if inverting else (
            edge)
        if gate.output == target_net:
            return edge
    raise ValueError("net {!r} not on path".format(target_net))


def calibrate_logic_delay_test(netlist, samples, base_timing=None,
                               flipflop=None, skew_tolerance=0.1):
    """T* for the whole circuit from the fault-free MC population.

    Per instance the critical delay is recomputed with the sample's
    per-gate timing fluctuations; then the same yield-first rule as the
    electrical flow applies (:func:`repro.dft.calibrate_t_star`).
    """
    base_timing = GateTiming() if base_timing is None else base_timing
    flipflop = FlipFlopTiming() if flipflop is None else flipflop
    delays = []
    for sample in samples:
        timing = GateTiming(table=base_timing.table,
                            default=base_timing.default, sample=sample)
        delays.append(critical_delay(netlist, timing))
    return calibrate_t_star(delays, samples, flipflop,
                            skew_tolerance=skew_tolerance)


def df_minimum_detectable_resistance(netlist, path_nets, fault_net,
                                     calibration, test, timing=None,
                                     side_values=None, sample=None,
                                     t_factor=1.0):
    """Smallest open resistance reduced-clock testing flags on a path.

    The launched edge is chosen to maximise the defect's added delay at
    the fault site (the DF test generator's freedom).  Returns None when
    even the largest calibrated R leaves the path inside the applied
    period.
    """
    timing = GateTiming() if timing is None else timing
    overhead = test.flipflop.sampled_overhead(sample)
    applied = test.applied_period(t_factor)

    best = None
    for launch in ("rise", "fall"):
        d_p = path_delay(netlist, path_nets, timing,
                         launch_direction=launch,
                         side_values=side_values)
        edge = edge_at_net(netlist, path_nets, fault_net,
                           launch_direction=launch,
                           side_values=side_values)
        extra_table = (calibration.extra_rise if edge == "rise"
                       else calibration.extra_fall)
        needed = applied - d_p - overhead
        if needed <= 0:
            return float(calibration.resistances[0])
        if needed > extra_table[-1]:
            continue
        r_min = float(np.interp(needed, extra_table,
                                calibration.resistances))
        if best is None or r_min < best:
            best = r_min
    return best


def df_best_r_min_for_site(netlist, net, calibration, test, timing=None,
                           max_paths=24, max_backtracks=1500,
                           sample=None, t_factor=1.0):
    """DF testing's best shot at a fault site: the longest sensitizable
    path through it (minimum slack).  Returns ``(r_min, path)`` with
    ``r_min=None`` when every candidate escapes."""
    from .atpg import sensitize_path
    from .paths import paths_through

    timing = GateTiming() if timing is None else timing
    candidates = paths_through(netlist, net, max_paths=max_paths)
    candidates.sort(key=len, reverse=True)
    best = (None, None)
    for path in candidates:
        if path[-1] not in netlist.primary_outputs:
            continue
        if path.index(net) == 0:
            continue
        try:
            sens = sensitize_path(netlist, path,
                                  max_backtracks=max_backtracks)
        except ValueError:
            continue
        if sens is None:
            continue
        values = netlist.evaluate(sens.vector(netlist))
        r_min = df_minimum_detectable_resistance(
            netlist, path, net, calibration, test, timing=timing,
            side_values=values, sample=sample, t_factor=t_factor)
        if r_min is not None and (best[0] is None or r_min < best[0]):
            best = (r_min, path)
    return best


def slack_of_path(netlist, path_nets, test, timing=None,
                  side_values=None, sample=None, t_factor=1.0):
    """Applied-period slack the defect must overcome on this path."""
    timing = GateTiming() if timing is None else timing
    d_p = max(
        path_delay(netlist, path_nets, timing, launch_direction=launch,
                   side_values=side_values)
        for launch in ("rise", "fall"))
    overhead = test.flipflop.sampled_overhead(sample)
    return test.applied_period(t_factor) - d_p - overhead


def infinity_if_none(value):
    """Utility for comparing optional R_min values."""
    return math.inf if value is None else value
