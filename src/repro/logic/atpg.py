"""Path-sensitization test generation (PODEM-style).

To apply the pulse test to a fault site we need a PI vector that makes
every *side input* along the chosen path non-controlling, so the injected
pulse traverses the whole path (Sec. 3: "all the side inputs of the path
are set to non-controlling values").  This is the classic path-delay-test
sensitization problem; the paper observes that "the basic algorithms used
for path DF test generation can easily be modified".

The implementation is a compact PODEM: objectives are justified by
backtracing to primary inputs, with full 3-valued implication after every
assignment and chronological backtracking on conflicts.
"""

from .netlist import LogicNetlist  # noqa: F401  (documented dependency)
from .paths import path_gates


class SensitizationResult:
    """Outcome of a sensitization attempt."""

    def __init__(self, path_nets, assignment, objectives, backtracks):
        self.path_nets = list(path_nets)
        #: full PI vector (unassigned PIs filled with 0)
        self.assignment = dict(assignment)
        self.objectives = dict(objectives)
        self.backtracks = backtracks

    def vector(self, netlist, fill=0):
        """Complete PI assignment with don't-cares filled."""
        vector = {pi: fill for pi in netlist.primary_inputs}
        vector.update(self.assignment)
        return vector

    def __repr__(self):
        return ("SensitizationResult({} objectives, {} assigned PIs, "
                "{} backtracks)").format(len(self.objectives),
                                         len(self.assignment),
                                         self.backtracks)


def side_input_objectives(netlist, path_nets):
    """The (net, value) requirements that sensitize ``path_nets``.

    Every side input of every on-path gate must sit at the gate's
    non-controlling value.  XOR/XNOR gates impose no requirement (any
    side value propagates; it only flips polarity).

    Raises ValueError when a side input *is itself on the path* — such a
    path is untestable as a single sensitized path (multi-path DFs, which
    the paper leaves out of scope).
    """
    on_path = set(path_nets)
    objectives = {}
    for gate, in_net in zip(path_gates(netlist, path_nets), path_nets):
        nc = gate.noncontrolling_value
        if nc is None:
            continue
        for side in gate.inputs:
            if side == in_net:
                continue
            if side in on_path:
                raise ValueError(
                    "side input {!r} of gate {} lies on the path itself"
                    .format(side, gate.name))
            if objectives.get(side, nc) != nc:
                raise ValueError(
                    "conflicting requirements on net {!r}".format(side))
            objectives[side] = nc
    return objectives


def sensitize_path(netlist, path_nets, max_backtracks=2000,
                   extra_objectives=None):
    """Find a PI vector sensitizing ``path_nets``.

    Returns a :class:`SensitizationResult` or ``None`` when the path is
    (found) unsensitizable within the backtrack limit.
    """
    objectives = side_input_objectives(netlist, path_nets)
    if extra_objectives:
        for net, value in extra_objectives.items():
            if objectives.get(net, value) != value:
                return None
            objectives[net] = value

    assignment = {}
    decision_stack = []  # (pi, tried_both)
    backtracks = 0

    while True:
        values = netlist.evaluate3(assignment)
        conflict = any(values[net] is not None and values[net] != want
                       for net, want in objectives.items())
        if not conflict:
            unresolved = [net for net, want in objectives.items()
                          if values[net] is None]
            if not unresolved:
                return SensitizationResult(path_nets, assignment,
                                           objectives, backtracks)
            target_net = unresolved[0]
            pi, value = _backtrace(netlist, target_net,
                                   objectives[target_net], values)
            if pi is not None:
                assignment[pi] = value
                decision_stack.append([pi, False])
                continue
            conflict = True  # nothing left to justify with: treat as conflict

        # Conflict: chronological backtracking.
        backtracks += 1
        if backtracks > max_backtracks:
            return None
        while decision_stack:
            pi, tried_both = decision_stack[-1]
            if tried_both:
                decision_stack.pop()
                del assignment[pi]
            else:
                decision_stack[-1][1] = True
                assignment[pi] = 1 - assignment[pi]
                break
        else:
            return None  # exhausted the decision tree


def _backtrace(netlist, net, want, values):
    """PODEM backtrace: walk from an objective to an unassigned PI.

    Returns ``(pi, value)`` or ``(None, None)`` when every cone input is
    already assigned (the objective cannot be influenced any more).
    """
    current, value = net, want
    for _ in range(10000):
        gate = netlist.gate_driving(current)
        if gate is None:
            if values[current] is None:
                return current, value
            return None, None
        current, value = _choose_gate_input(gate, value, values)
        if current is None:
            return None, None
    raise RuntimeError("backtrace did not terminate")


def _choose_gate_input(gate, want, values):
    """Pick an X input of ``gate`` and the value to aim for on it."""
    kind = gate.kind
    xs = [i for i in gate.inputs if values[i] is None]
    if not xs:
        return None, None
    if kind in ("not", "nand", "nor"):
        inner = 1 - want
    else:
        inner = want
    if kind in ("and", "nand"):
        # output-inner 1 needs ALL ones (pick any X, aim 1);
        # output-inner 0 needs ONE zero (pick any X, aim 0).
        return xs[0], inner
    if kind in ("or", "nor"):
        # dual of AND: inner 1 needs one 1; inner 0 needs all 0.
        return xs[0], inner
    if kind in ("buf", "not"):
        return xs[0], inner
    # XOR/XNOR: aim for the parity completing the assigned inputs,
    # assuming remaining X inputs (if several) end up 0.
    assigned_ones = sum(values[i] for i in gate.inputs
                        if values[i] is not None)
    target_parity = want if kind == "xor" else 1 - want
    return xs[0], (target_parity ^ (assigned_ones % 2)) & 1


def find_sensitizable_path(netlist, net, max_paths=64, max_backtracks=2000):
    """First sensitizable path through ``net`` plus its vector.

    Returns ``(path_nets, SensitizationResult)`` or ``(None, None)``.
    """
    from .paths import paths_through
    for path in paths_through(netlist, net, max_paths=max_paths):
        try:
            result = sensitize_path(netlist, path,
                                    max_backtracks=max_backtracks)
        except ValueError:
            continue
        if result is not None:
            return path, result
    return None, None
