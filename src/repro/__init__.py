"""Reproduction of Favalli & Metra, DATE 2007.

*Pulse propagation for the detection of small delay defects.*

Package map
-----------
``repro.spice``
    Transistor-level electrical simulator (MNA, level-1 MOSFETs, transient).
``repro.cells``
    CMOS standard cells at transistor level, technology and path builders.
``repro.faults``
    Resistive-open and bridging fault models and electrical injectors.
``repro.montecarlo``
    Parameter-fluctuation sampling and Monte Carlo execution engine.
``repro.dft``
    Reduced-clock delay-fault testing baseline (C_del).
``repro.core``
    The paper's contribution: pulse injection/sensing, (w_in, w_th)
    calibration, pulse transfer characterisation and C_pulse experiments.
``repro.logic``
    Gate-level substrate: netlists, ISCAS-85 parsing, timing simulation,
    logic-level pulse propagation, path enumeration and ATPG.
``repro.service``
    Campaign-as-a-service: HTTP/JSON job server over the campaign
    runtime (async scheduling, dynamic batch aggregation, live events).
"""

__version__ = "1.0.0"

from . import cells  # noqa: F401
from . import core  # noqa: F401
from . import dft  # noqa: F401
from . import faults  # noqa: F401
from . import logic  # noqa: F401
from . import montecarlo  # noqa: F401
from . import reporting  # noqa: F401
from . import service  # noqa: F401
from . import spice  # noqa: F401
from . import testckt  # noqa: F401

__all__ = ["spice", "cells", "faults", "montecarlo", "dft", "core",
           "logic", "reporting", "service", "testckt", "__version__"]
