"""Fault specifications (Sec. 2 of the paper).

Three electrical defect classes are modelled, all parameterised by a
resistance ``R``:

* :class:`InternalOpen` — a partial break / resistive via inside a cell,
  in series with the pull-up or pull-down network (Fig. 1a).  Slows one
  output transition polarity only, which is what makes pulses shrink.
* :class:`ExternalOpen` — a resistive open on an output interconnect
  fan-out branch (Fig. 1b).  Degrades both edges of the branch equally.
* :class:`BridgingFault` — a resistive short between the output of a gate
  on the path and the steady output of another gate (Fig. 4, non-feedback
  external bridging).
"""

PULL_UP = "pullup"
PULL_DOWN = "pulldown"


class FaultSpec:
    """Base class: a resistive defect of strength ``resistance`` ohms."""

    def __init__(self, resistance):
        resistance = float(resistance)
        if resistance <= 0.0:
            raise ValueError("fault resistance must be positive")
        self.resistance = resistance

    def with_resistance(self, resistance):
        """A copy of this fault at a different resistance value."""
        raise NotImplementedError

    def describe(self):
        raise NotImplementedError

    def __repr__(self):
        return "{}({})".format(type(self).__name__, self.describe())


class InternalOpen(FaultSpec):
    """Resistive open inside a cell's pull-up or pull-down network.

    ``stage`` is the 1-based index of the affected gate along the path;
    ``network`` selects which transition is impaired: a pull-up open slows
    rising output transitions (the paper's Fig. 1a example).
    """

    def __init__(self, stage, network, resistance):
        super().__init__(resistance)
        if network not in (PULL_UP, PULL_DOWN):
            raise ValueError("network must be 'pullup' or 'pulldown'")
        self.stage = int(stage)
        self.network = network

    def with_resistance(self, resistance):
        return InternalOpen(self.stage, self.network, resistance)

    def describe(self):
        return "internal open, stage {}, {} network, R={:.0f} ohm".format(
            self.stage, self.network, self.resistance)


class ExternalOpen(FaultSpec):
    """Resistive open on the on-path fan-out branch of a stage output.

    The branch from the stage output to the *next* on-path gate input is
    placed behind the resistance; other sinks (side fan-out, loads) stay
    directly connected, reproducing Fig. 1b where only the B->C branch is
    resistive.
    """

    def __init__(self, stage, resistance):
        super().__init__(resistance)
        self.stage = int(stage)

    def with_resistance(self, resistance):
        return ExternalOpen(self.stage, resistance)

    def describe(self):
        return "external open, stage {} output branch, R={:.0f} ohm".format(
            self.stage, self.resistance)


class FeedbackBridgingFault(FaultSpec):
    """Bridging that closes a feedback loop over part of the path.

    Sec. 2: low-resistance bridgings "give rise to functional errors or
    oscillations (in case they close inverting feedback loops)".
    Bridging stage ``to_stage``'s output back onto stage ``from_stage``'s
    output closes a loop through the gates in between; with an odd
    number of inversions the loop is inverting and oscillates below a
    technology-dependent resistance.
    """

    def __init__(self, from_stage, to_stage, resistance):
        super().__init__(resistance)
        if to_stage <= from_stage:
            raise ValueError(
                "feedback needs to_stage > from_stage")
        self.from_stage = int(from_stage)
        self.to_stage = int(to_stage)

    @property
    def loop_length(self):
        """Number of gates inside the loop."""
        return self.to_stage - self.from_stage

    def with_resistance(self, resistance):
        return FeedbackBridgingFault(self.from_stage, self.to_stage,
                                     resistance)

    def describe(self):
        return ("feedback bridging, stage {} output to stage {} output, "
                "R={:.0f} ohm").format(self.to_stage, self.from_stage,
                                       self.resistance)


class InternalBridgingFault(FaultSpec):
    """Resistive bridging involving a cell-*internal* node.

    The paper notes that "the case of internal BFs is slightly more
    complex and it is not considered here for the sake of brevity"; this
    extension models it: the internal node of a series stack (e.g. the
    mid-node of a NAND's NMOS chain) bridges to the steady output of an
    aggressor gate.  Only gates with series stacks (NAND/NOR) expose
    internal nodes; ``internal_index`` selects which one.
    """

    def __init__(self, stage, resistance, internal_index=0,
                 aggressor_value=None):
        super().__init__(resistance)
        self.stage = int(stage)
        self.internal_index = int(internal_index)
        if aggressor_value not in (None, 0, 1):
            raise ValueError("aggressor_value must be None, 0 or 1")
        self.aggressor_value = aggressor_value

    def with_resistance(self, resistance):
        return InternalBridgingFault(self.stage, resistance,
                                     self.internal_index,
                                     self.aggressor_value)

    def describe(self):
        return ("internal bridging, stage {} stack node {}, "
                "R={:.0f} ohm").format(self.stage, self.internal_index,
                                       self.resistance)


class BridgingFault(FaultSpec):
    """Non-feedback external bridging between a stage output and the
    steady output of an aggressor gate (Fig. 4).

    ``aggressor_value`` is the steady logic value the aggressor drives.
    ``None`` selects the value opposing the victim's pulse excursion,
    which is the paper's test condition (the other bridged gate's output
    "remains steady" and fights the transition).
    """

    def __init__(self, stage, resistance, aggressor_value=None):
        super().__init__(resistance)
        self.stage = int(stage)
        if aggressor_value not in (None, 0, 1):
            raise ValueError("aggressor_value must be None, 0 or 1")
        self.aggressor_value = aggressor_value

    def with_resistance(self, resistance):
        return BridgingFault(self.stage, resistance, self.aggressor_value)

    def describe(self):
        return ("bridging, stage {} output vs steady aggressor ({}), "
                "R={:.0f} ohm").format(
                    self.stage,
                    "auto" if self.aggressor_value is None
                    else self.aggressor_value,
                    self.resistance)
