"""Electrical-level fault injection.

Each injector takes a :class:`~repro.cells.PathCircuit` and a fault spec,
and returns a *new* PathCircuit whose netlist carries the defect; the
original is never mutated, so a Monte Carlo instance can be measured
fault-free and then re-measured with any number of faults.
"""

from ..cells.chain import PathCircuit
from ..cells.library import build_inverter
from ..spice import Dc
from ..spice.errors import NetlistError
from .models import (BridgingFault, ExternalOpen, FeedbackBridgingFault,
                     InternalBridgingFault, InternalOpen, PULL_UP)


def inject(path, fault):
    """Dispatch on the fault type; returns a faulty copy of ``path``."""
    if isinstance(fault, InternalOpen):
        return inject_internal_open(path, fault)
    if isinstance(fault, ExternalOpen):
        return inject_external_open(path, fault)
    if isinstance(fault, InternalBridgingFault):
        return inject_internal_bridging(path, fault)
    if isinstance(fault, FeedbackBridgingFault):
        return inject_feedback_bridging(path, fault)
    if isinstance(fault, BridgingFault):
        return inject_bridging(path, fault)
    raise NetlistError("unknown fault spec {!r}".format(fault))


def inject_internal_open(path, fault):
    """Series R between the rail and the selected network of one cell.

    Implemented by moving the rail-side source terminals of the network's
    devices onto a private node joined to the rail through ``R`` — i.e. a
    resistive via on the cell's rail connection, the classic Fig. 1a
    defect.
    """
    faulty = path.copy()
    circuit = faulty.circuit
    cell = faulty.cell_at(fault.stage)
    if fault.network == PULL_UP:
        rail_devices = cell.pullup_rail_devices
        rail = faulty.vdd_node
    else:
        rail_devices = cell.pulldown_rail_devices
        rail = "0"
    if not rail_devices:
        raise NetlistError(
            "cell {} exposes no {} rail devices".format(
                cell.name, fault.network))
    broken = circuit.new_node("{}_open".format(cell.name))
    for device_name, terminal in rail_devices:
        element = circuit.element(device_name)
        if element.node(terminal) != rail:
            raise NetlistError(
                "{}:{} expected on rail {!r}, found {!r}".format(
                    device_name, terminal, rail, element.node(terminal)))
        element.rewire(terminal, broken)
    circuit.add_resistor("R_fault", rail, broken, fault.resistance)
    return faulty


#: share of a net's wire capacitance belonging to the faulty branch (the
#: interconnect segment *after* the resistive via also has wire load)
BRANCH_WIRE_FRACTION = 0.5


def inject_external_open(path, fault):
    """Series R on the branch feeding the next on-path gate (Fig. 1b).

    The next cell's gate terminals move behind the resistance, together
    with the branch's share of the net wire capacitance — a resistive via
    sits between the driver and the rest of the branch interconnect.
    """
    faulty = path.copy()
    circuit = faulty.circuit
    net = faulty.stage_nodes[fault.stage]
    if fault.stage >= faulty.n_gates:
        raise NetlistError(
            "external open needs a downstream gate; stage {} is the last"
            .format(fault.stage))
    next_cell = faulty.cell_at(fault.stage + 1)
    # Move every terminal of the next on-path cell that reads this net
    # (its gate inputs) behind the resistance.
    sinks = []
    for device_name in next_cell.nmos_names + next_cell.pmos_names:
        element = circuit.element(device_name)
        if element.node("g") == net:
            sinks.append((device_name, "g"))
    if not sinks:
        raise NetlistError(
            "next cell {} does not read net {!r}".format(next_cell.name, net))
    far_node = circuit.split_net(net, sinks, fault.resistance,
                                 res_name="R_fault")
    # Re-apportion the wire capacitance between the two branch segments.
    wire_cap_name = "g{}.cw".format(fault.stage)
    if wire_cap_name in circuit:
        wire_cap = circuit.element(wire_cap_name)
        branch_c = wire_cap.capacitance * BRANCH_WIRE_FRACTION
        wire_cap.capacitance -= branch_c
        circuit.add_capacitor("R_fault.cw", far_node, "0", branch_c)
    return faulty


def inject_bridging(path, fault):
    """Bridge a stage output to a steady aggressor gate output (Fig. 4).

    The aggressor is a real inverter (so the contention is fought by a
    transistor channel, not an ideal source) whose input is tied to a rail
    such that its output holds the requested steady value.  By default the
    steady value opposes the victim node's *active* (pulsed/transitioned)
    excursion, assuming the input idles at 0 and pulses high — the
    dampening worst case used in Sec. 4.
    """
    faulty = path.copy()
    circuit = faulty.circuit
    victim = faulty.stage_nodes[fault.stage]

    aggressor_value = fault.aggressor_value
    if aggressor_value is None:
        # Victim idles at idle_level(stage, input_idle=0); its excursion
        # goes toward the opposite value, so the aggressor holds the idle
        # value to fight the excursion.
        aggressor_value = faulty.idle_level(fault.stage, 0)

    # Inverter output = aggressor_value  =>  input = NOT value.
    agg_in = "bf_in"
    agg_out = "bf_out"
    drive = 0.0 if aggressor_value else faulty.tech.vdd
    circuit.add_vsource("VBF", agg_in, "0", Dc(drive))
    build_inverter(circuit, "gbf", agg_in, agg_out, faulty.tech,
                   vdd=faulty.vdd_node)
    circuit.add_bridge(victim, agg_out, fault.resistance,
                       res_name="R_fault")
    return faulty


def inject_internal_bridging(path, fault):
    """Bridge a cell-internal stack node to a steady aggressor output.

    The victim cell must expose internal nodes (NAND/NOR series stacks);
    inverters have none and raise.  The aggressor construction mirrors
    :func:`inject_bridging`; by default it holds the value opposing the
    stack node's active excursion (for an NMOS stack the internal node
    is dragged high while the stack is off, so a low aggressor fights
    the pull-down the hardest).
    """
    faulty = path.copy()
    circuit = faulty.circuit
    cell = faulty.cell_at(fault.stage)
    if not cell.internal_nodes:
        raise NetlistError(
            "cell {} ({}) has no internal nodes to bridge".format(
                cell.name, cell.kind))
    try:
        victim = cell.internal_nodes[fault.internal_index]
    except IndexError:
        raise NetlistError(
            "cell {} has {} internal nodes, index {} out of range".format(
                cell.name, len(cell.internal_nodes), fault.internal_index))

    aggressor_value = fault.aggressor_value
    if aggressor_value is None:
        # NMOS-stack internal nodes (nand) sit low when conducting: hold
        # high to disturb; PMOS-stack nodes (nor) the dual.
        aggressor_value = 1 if cell.kind.startswith("nand") else 0

    agg_in = "bfi_in"
    agg_out = "bfi_out"
    drive = 0.0 if aggressor_value else faulty.tech.vdd
    circuit.add_vsource("VBFI", agg_in, "0", Dc(drive))
    build_inverter(circuit, "gbfi", agg_in, agg_out, faulty.tech,
                   vdd=faulty.vdd_node)
    circuit.add_bridge(victim, agg_out, fault.resistance,
                       res_name="R_fault")
    return faulty


def inject_feedback_bridging(path, fault):
    """Bridge a later stage output back to an earlier one (Fig. 4's
    feedback variant).  No aggressor gate is needed: the loop's own
    gates fight through the resistance."""
    faulty = path.copy()
    if fault.to_stage > faulty.n_gates:
        raise NetlistError(
            "to_stage {} beyond the path".format(fault.to_stage))
    node_early = faulty.stage_nodes[fault.from_stage]
    node_late = faulty.stage_nodes[fault.to_stage]
    faulty.circuit.add_bridge(node_late, node_early, fault.resistance,
                              res_name="R_fault")
    return faulty


def set_fault_resistance(path, resistance):
    """Adjust the injected fault's resistance in place (element R_fault).

    Avoids rebuilding the netlist when sweeping R for the same instance.
    """
    resistor = path.circuit.element("R_fault")
    if resistance <= 0.0:
        raise NetlistError("fault resistance must be positive")
    resistor.resistance = float(resistance)
    return path
