"""Resistive-open and bridging fault models + electrical injection."""

from .injection import (inject, inject_bridging, inject_external_open,
                        inject_feedback_bridging,
                        inject_internal_bridging, inject_internal_open,
                        set_fault_resistance)
from .models import (BridgingFault, ExternalOpen, FaultSpec,
                     FeedbackBridgingFault,
                     InternalBridgingFault, InternalOpen, PULL_DOWN,
                     PULL_UP)

__all__ = [
    "FaultSpec", "InternalOpen", "ExternalOpen", "BridgingFault",
    "InternalBridgingFault", "inject_internal_bridging",
    "FeedbackBridgingFault", "inject_feedback_bridging",
    "PULL_UP", "PULL_DOWN",
    "inject", "inject_internal_open", "inject_external_open",
    "inject_bridging", "set_fault_resistance",
]
