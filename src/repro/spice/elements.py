"""Circuit elements.

Elements are *symbolic*: they reference nodes by name.  The MNA compiler
(:mod:`repro.spice.mna`) resolves names to matrix indices when an analysis is
run, so elements can be rewired freely beforehand — this is what the fault
injectors in :mod:`repro.faults` rely on.
"""

from .errors import NetlistError
from .sources import make_stimulus


class Element:
    """Base class for all circuit elements.

    Terminals are stored in ``self.terminals``, an ordered mapping from
    terminal label (e.g. ``"p"``/``"n"`` or ``"d"``/``"g"``/``"s"``/``"b"``)
    to node name.
    """

    #: ordered terminal labels, overridden by subclasses
    TERMINALS = ()

    def __init__(self, name, *nodes):
        if not name:
            raise NetlistError("element name must be non-empty")
        if len(nodes) != len(self.TERMINALS):
            raise NetlistError(
                "{} expects {} terminals, got {}".format(
                    type(self).__name__, len(self.TERMINALS), len(nodes)))
        self.name = str(name)
        self.terminals = {label: str(node)
                          for label, node in zip(self.TERMINALS, nodes)}

    def nodes(self):
        """Node names this element touches, in terminal order."""
        return [self.terminals[label] for label in self.TERMINALS]

    def node(self, label):
        return self.terminals[label]

    def rewire(self, label, new_node):
        """Reconnect terminal ``label`` to ``new_node``."""
        if label not in self.terminals:
            raise NetlistError(
                "{} has no terminal {!r}".format(self.name, label))
        self.terminals[label] = str(new_node)

    def rewire_node(self, old_node, new_node):
        """Reconnect every terminal currently on ``old_node``."""
        hits = 0
        for label, node in self.terminals.items():
            if node == old_node:
                self.terminals[label] = str(new_node)
                hits += 1
        return hits

    def __repr__(self):
        pins = ", ".join("{}={}".format(k, v)
                         for k, v in self.terminals.items())
        return "{}({}, {})".format(type(self).__name__, self.name, pins)


class TwoTerminal(Element):
    TERMINALS = ("p", "n")


class Resistor(TwoTerminal):
    """Linear resistor.  ``resistance`` must be positive."""

    def __init__(self, name, p, n, resistance):
        super().__init__(name, p, n)
        resistance = float(resistance)
        if resistance <= 0.0:
            raise NetlistError(
                "resistor {} needs positive resistance, got {:g}".format(
                    name, resistance))
        self.resistance = resistance

    @property
    def conductance(self):
        return 1.0 / self.resistance


class Capacitor(TwoTerminal):
    """Linear capacitor with optional initial condition (volts across p-n)."""

    def __init__(self, name, p, n, capacitance, ic=None):
        super().__init__(name, p, n)
        capacitance = float(capacitance)
        if capacitance < 0.0:
            raise NetlistError(
                "capacitor {} needs non-negative capacitance".format(name))
        self.capacitance = capacitance
        self.ic = None if ic is None else float(ic)


class VoltageSource(TwoTerminal):
    """Independent voltage source; ``stimulus`` is a number or a Stimulus."""

    def __init__(self, name, p, n, stimulus):
        super().__init__(name, p, n)
        self.stimulus = make_stimulus(stimulus)


class CurrentSource(TwoTerminal):
    """Independent current source; positive current flows p -> n inside."""

    def __init__(self, name, p, n, stimulus):
        super().__init__(name, p, n)
        self.stimulus = make_stimulus(stimulus)
