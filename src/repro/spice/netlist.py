"""Symbolic circuit container.

A :class:`Circuit` is a named bag of elements referencing nodes by name.
Nothing is resolved to matrix indices until an analysis compiles it, so
callers (cell builders, fault injectors) can freely add, remove and rewire
elements.
"""

from .elements import (Capacitor, CurrentSource, Element, Resistor,
                       VoltageSource)
from .errors import NetlistError
from .mosfet import Mosfet, MosfetParams, NMOS, PMOS

#: node names treated as the reference (ground) node
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


def is_ground(node):
    """True if ``node`` names the reference node."""
    return node in GROUND_NAMES


class Circuit:
    """A mutable, symbolic circuit netlist."""

    def __init__(self, title=""):
        self.title = title
        self._elements = {}
        self._auto_node = 0

    # ------------------------------------------------------------------
    # Element management
    # ------------------------------------------------------------------

    def add(self, element):
        """Add an element; names must be unique within the circuit."""
        if not isinstance(element, Element):
            raise NetlistError("can only add Element instances")
        if element.name in self._elements:
            raise NetlistError(
                "duplicate element name {!r}".format(element.name))
        self._elements[element.name] = element
        return element

    def remove(self, name):
        """Remove and return the element called ``name``."""
        try:
            return self._elements.pop(name)
        except KeyError:
            raise NetlistError("no element named {!r}".format(name))

    def element(self, name):
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError("no element named {!r}".format(name))

    def __contains__(self, name):
        return name in self._elements

    def __len__(self):
        return len(self._elements)

    def elements(self, kind=None):
        """All elements, optionally filtered by class."""
        if kind is None:
            return list(self._elements.values())
        return [e for e in self._elements.values() if isinstance(e, kind)]

    def nodes(self):
        """Sorted list of non-ground node names in use."""
        seen = set()
        for element in self._elements.values():
            for node in element.nodes():
                if not is_ground(node):
                    seen.add(node)
        return sorted(seen)

    def new_node(self, prefix="n"):
        """A node name guaranteed not to collide with existing ones."""
        existing = set()
        for element in self._elements.values():
            existing.update(element.nodes())
        while True:
            self._auto_node += 1
            candidate = "{}${}".format(prefix, self._auto_node)
            if candidate not in existing:
                return candidate

    def new_name(self, prefix):
        """An element name guaranteed to be unused."""
        i = 1
        while True:
            candidate = "{}${}".format(prefix, i)
            if candidate not in self._elements:
                return candidate
            i += 1

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------

    def add_resistor(self, name, p, n, resistance):
        return self.add(Resistor(name, p, n, resistance))

    def add_capacitor(self, name, p, n, capacitance, ic=None):
        return self.add(Capacitor(name, p, n, capacitance, ic=ic))

    def add_vsource(self, name, p, n, stimulus):
        return self.add(VoltageSource(name, p, n, stimulus))

    def add_isource(self, name, p, n, stimulus):
        return self.add(CurrentSource(name, p, n, stimulus))

    def add_nmos(self, name, d, g, s, b, width, length, params):
        return self.add(Mosfet(name, d, g, s, b, NMOS, width, length, params))

    def add_pmos(self, name, d, g, s, b, width, length, params):
        return self.add(Mosfet(name, d, g, s, b, PMOS, width, length, params))

    # ------------------------------------------------------------------
    # Structural edits used by fault injection
    # ------------------------------------------------------------------

    def insert_series_resistor(self, element_name, terminal, resistance,
                               res_name=None):
        """Break ``terminal`` of an element and insert a resistor in series.

        Returns the new :class:`Resistor`.  This is the primitive used to
        model *internal* resistive opens (a partially broken source/drain
        contact inside a cell).
        """
        element = self.element(element_name)
        old_node = element.node(terminal)
        new_node = self.new_node("rop")
        element.rewire(terminal, new_node)
        if res_name is None:
            res_name = self.new_name("R_{}_{}".format(element_name, terminal))
        return self.add_resistor(res_name, old_node, new_node, resistance)

    def split_net(self, net, sink_terminals, resistance, res_name=None):
        """Insert a resistor between ``net`` and selected sink terminals.

        ``sink_terminals`` is an iterable of ``(element_name, terminal)``
        pairs; those terminals are moved onto a fresh node connected to the
        original net through ``resistance``.  This models an *external*
        resistive open on an interconnect / fan-out branch.
        """
        sinks = list(sink_terminals)
        if not sinks:
            raise NetlistError("split_net needs at least one sink terminal")
        new_node = self.new_node("{}_rop".format(net))
        for element_name, terminal in sinks:
            element = self.element(element_name)
            if element.node(terminal) != net:
                raise NetlistError(
                    "{}:{} is not connected to net {!r}".format(
                        element_name, terminal, net))
            element.rewire(terminal, new_node)
        if res_name is None:
            res_name = self.new_name("R_open_{}".format(net))
        self.add_resistor(res_name, net, new_node, resistance)
        return new_node

    def add_bridge(self, net_a, net_b, resistance, res_name=None):
        """Connect two nets with a bridging resistor and return it."""
        if res_name is None:
            res_name = self.new_name("R_bridge_{}_{}".format(net_a, net_b))
        return self.add_resistor(res_name, net_a, net_b, resistance)

    # ------------------------------------------------------------------

    def copy(self):
        """Deep-enough copy: new element objects, shared immutable params."""
        import copy as _copy
        clone = Circuit(self.title)
        clone._auto_node = self._auto_node
        for element in self._elements.values():
            clone._elements[element.name] = _copy.copy(element)
            clone._elements[element.name].terminals = dict(element.terminals)
        return clone

    def summary(self):
        """Human-readable one-line-per-element dump (for debugging)."""
        lines = ["* {}".format(self.title or "untitled circuit")]
        for element in self._elements.values():
            lines.append(repr(element))
        return "\n".join(lines)

    def __repr__(self):
        return "Circuit({!r}, {} elements, {} nodes)".format(
            self.title, len(self._elements), len(self.nodes()))


__all__ = [
    "Circuit", "GROUND_NAMES", "is_ground",
    "Resistor", "Capacitor", "VoltageSource", "CurrentSource",
    "Mosfet", "MosfetParams", "NMOS", "PMOS",
]
