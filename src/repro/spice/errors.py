"""Exception types for the electrical simulator."""


class SpiceError(Exception):
    """Base class for all errors raised by :mod:`repro.spice`."""


class NetlistError(SpiceError):
    """The circuit description is malformed (duplicate names, bad nodes...)."""


class ConvergenceError(SpiceError):
    """Newton-Raphson failed to converge.

    Carries the analysis context so callers can report which time point or
    gmin step failed.
    """

    def __init__(self, message, iterations=None, residual=None, time=None):
        super().__init__(message)
        self.iterations = iterations
        self.residual = residual
        self.time = time


class AnalysisError(SpiceError):
    """An analysis was requested with invalid arguments."""


class MeasurementError(SpiceError):
    """A waveform measurement could not be computed (e.g. no crossing)."""
