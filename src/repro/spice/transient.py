"""Transient analysis.

Fixed-step integration with a choice of backward Euler (robust, slightly
lossy) or trapezoidal (second-order, default).  Source breakpoints are not
needed because callers pick ``dt`` well below the stimulus edge times; the
benches use 1-2 ps steps against >= 25 ps edges.
"""

import numpy as np

from .batch import (BatchCompiledCircuit, gmin_ladder_batch,
                    newton_solve_batch, solve_dc_batch)
from .errors import AnalysisError, ConvergenceError
from .mna import CompiledCircuit, gmin_continuation_solve, newton_solve
from .dcop import solve_dc
from .waveform import Waveform

BACKWARD_EULER = "be"
TRAPEZOIDAL = "trap"


class TransientResult:
    """Raw transient output: times, state matrix and the index maps."""

    def __init__(self, compiled, times, states):
        self.compiled = compiled
        self.times = times
        self.states = states

    def waveform(self, nodes=None):
        """Package node voltages as a :class:`Waveform`.

        ``nodes=None`` records every node; pass an iterable to restrict.
        """
        compiled = self.compiled
        if nodes is None:
            nodes = compiled.node_order
        signals = {}
        for node in nodes:
            idx = compiled.index_of(node)
            if idx < 0:
                signals[node] = np.zeros_like(self.times)
            else:
                signals[node] = self.states[:, idx]
        return Waveform(self.times, signals)


def run_transient(circuit, tstop, dt, method=TRAPEZOIDAL, record=None,
                  gmin=1e-12, x0=None):
    """Simulate ``circuit`` from 0 to ``tstop`` with fixed step ``dt``.

    Parameters
    ----------
    circuit:
        Symbolic circuit.
    tstop, dt:
        Stop time and time step (seconds).
    method:
        ``"trap"`` (default) or ``"be"``.
    record:
        Node names to keep; ``None`` keeps all nodes.
    x0:
        Initial state vector; defaults to the DC operating point at t=0
        (with the sources evaluated at t=0).

    Returns a :class:`Waveform`.
    """
    if tstop <= 0 or dt <= 0:
        raise AnalysisError("tstop and dt must be positive")
    if method not in (BACKWARD_EULER, TRAPEZOIDAL):
        raise AnalysisError("unknown integration method {!r}".format(method))

    compiled = CompiledCircuit(circuit)
    n = compiled.n

    if x0 is None:
        x = solve_dc(compiled, t=0.0, gmin=gmin)
    else:
        x = np.array(x0, dtype=float)
        if x.shape != (n,):
            raise AnalysisError("x0 has wrong shape")

    n_steps = int(round(tstop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_steps + 1, n))
    states[0] = x

    if method == BACKWARD_EULER:
        geq_scale = 1.0 / dt
    else:
        geq_scale = 2.0 / dt
    a_base = compiled.a_static + compiled.cap_companion_matrix(geq_scale)
    geq = compiled.cap_c * geq_scale

    cap_p, cap_n = compiled.cap_p, compiled.cap_n
    mp, mq = cap_p >= 0, cap_n >= 0

    vcap_prev = compiled.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)  # caps carry no current at DC

    for step in range(1, n_steps + 1):
        t = times[step]
        rhs = np.zeros(n)
        compiled.source_rhs(t, rhs)

        # Capacitor companion current sources.
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                ieq = geq * vcap_prev
            else:
                ieq = geq * vcap_prev + icap_prev
            np.add.at(rhs, cap_p[mp], ieq[mp])
            np.subtract.at(rhs, cap_n[mq], ieq[mq])

        try:
            x = newton_solve(compiled, a_base, rhs, x, gmin=gmin, time=t)
        except ConvergenceError:
            # Retry with gmin continuation on the *same* companion system;
            # switching instants occasionally need it.  Rungs that fail
            # are skipped by the ladder (a second failure used to abort
            # the whole transient); only the final solve at the target
            # gmin is allowed to propagate.
            x = gmin_continuation_solve(compiled, a_base, rhs, x,
                                        gmin=gmin, time=t)

        states[step] = x
        vcap = compiled.cap_branch_voltages(x)
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                icap_prev = geq * (vcap - vcap_prev)
            else:
                icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap

    result = TransientResult(compiled, times, states)
    return result.waveform(record)


# ----------------------------------------------------------------------
# Batched (lockstep) transient
# ----------------------------------------------------------------------

class BatchTransientResult:
    """Raw lockstep-transient output for a whole population.

    ``states`` is ``(S, n_steps+1, n)``; per-sample views package into
    the same :class:`Waveform` objects the scalar engine produces.
    """

    def __init__(self, batch, times, states):
        self.batch = batch
        self.times = times
        self.states = states

    def waveform(self, sample, nodes=None):
        """One sample's node voltages as a :class:`Waveform`."""
        batch = self.batch
        if nodes is None:
            nodes = batch.node_order
        signals = {}
        for node in nodes:
            idx = batch.index_of(node)
            if idx < 0:
                signals[node] = np.zeros_like(self.times)
            else:
                signals[node] = self.states[sample, :, idx]
        return Waveform(self.times, signals)

    def waveforms(self, nodes=None):
        """Per-sample waveforms, aligned with the input population."""
        return [self.waveform(s, nodes)
                for s in range(self.batch.n_samples)]


def run_transient_batch(circuits, tstop, dt, method=TRAPEZOIDAL,
                        record=None, gmin=1e-12, x0=None):
    """Simulate a population of topologically identical circuits in
    lockstep from 0 to ``tstop`` with fixed step ``dt``.

    The population advances through the same time grid together: each
    Newton iteration assembles all still-active samples with precomputed
    flat stamp-index maps and performs one stacked ``np.linalg.solve``
    (see :mod:`repro.spice.batch`).  Source waveforms are precomputed
    over the whole grid, so no per-step Python loop over stimuli
    remains.  Semantics (integration method, damped Newton, per-step
    gmin-continuation retry) mirror :func:`run_transient` per sample;
    the scalar engine stays the reference implementation and the
    equivalence suite pins the two within 1e-6 V.

    Parameters mirror :func:`run_transient`; ``circuits`` is a list of
    symbolic circuits (or a prebuilt
    :class:`~repro.spice.batch.BatchCompiledCircuit`) and ``x0``, when
    given, is an ``(S, n)`` initial-state stack.

    Returns a list of :class:`Waveform`, aligned with ``circuits``.
    """
    if tstop <= 0 or dt <= 0:
        raise AnalysisError("tstop and dt must be positive")
    if method not in (BACKWARD_EULER, TRAPEZOIDAL):
        raise AnalysisError("unknown integration method {!r}".format(method))

    batch = (circuits if isinstance(circuits, BatchCompiledCircuit)
             else BatchCompiledCircuit(circuits))
    n_samples, n = batch.n_samples, batch.n

    if x0 is None:
        x = solve_dc_batch(batch, t=0.0, gmin=gmin)
    else:
        x = np.array(x0, dtype=float)
        if x.shape != (n_samples, n):
            raise AnalysisError("x0 has wrong shape")

    n_steps = int(round(tstop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_samples, n_steps + 1, n))
    states[:, 0] = x

    if method == BACKWARD_EULER:
        geq_scale = 1.0 / dt
    else:
        geq_scale = 2.0 / dt
    a_base = batch.a_static + batch.cap_companion_matrix(geq_scale)
    geq = batch.cap_c * geq_scale

    # Source-waveform tables over the whole grid (kills the per-step
    # Python loop the scalar engine pays in source_rhs).
    vsrc_tab, isrc_tab = batch.source_tables(times)
    vsrc_lo, vsrc_hi = batch.n_nodes, batch.n_nodes + batch.n_vsrc

    vcap_prev = batch.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)

    for step in range(1, n_steps + 1):
        t = times[step]
        rhs = np.zeros((n_samples, n))
        rhs[:, vsrc_lo:vsrc_hi] = vsrc_tab[:, :, step]
        if batch.n_isrc:
            rhs += isrc_tab[:, :, step] @ batch.isrc_rhs_incidence

        if batch.n_caps:
            if method == BACKWARD_EULER:
                ieq = geq * vcap_prev
            else:
                ieq = geq * vcap_prev + icap_prev
            rhs += ieq @ batch.cap_rhs_incidence

        x_prev = x
        x, conv = newton_solve_batch(batch, a_base, rhs, x_prev,
                                     gmin=gmin, time=t)
        if not conv.all():
            # gmin-continuation ladder for the failing subset only, from
            # the previous accepted state (the diverged iterate is
            # discarded, exactly like the scalar retry path).
            bad = np.flatnonzero(~conv)
            x[bad] = gmin_ladder_batch(batch, a_base[bad], rhs[bad],
                                       x_prev[bad], bad, gmin, time=t)

        states[:, step] = x
        vcap = batch.cap_branch_voltages(x)
        if batch.n_caps:
            if method == BACKWARD_EULER:
                icap_prev = geq * (vcap - vcap_prev)
            else:
                icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap

    result = BatchTransientResult(batch, times, states)
    return result.waveforms(record)


class BatchTransient:
    """Reusable lockstep transient runner over a circuit population.

    Thin stateful wrapper around :func:`run_transient_batch` for sweep
    drivers: holds the population and analysis knobs, and re-lowers on
    every :meth:`run` because sweeps mutate the circuits in place
    between runs (e.g. ``set_fault_resistance``); lowering is orders of
    magnitude cheaper than the transient itself.
    """

    def __init__(self, circuits, method=TRAPEZOIDAL, gmin=1e-12):
        self.circuits = list(circuits)
        self.method = method
        self.gmin = gmin

    @property
    def n_samples(self):
        return len(self.circuits)

    def run(self, tstop, dt, record=None, x0=None):
        """One lockstep transient; returns per-sample waveforms."""
        return run_transient_batch(self.circuits, tstop, dt,
                                   method=self.method, record=record,
                                   gmin=self.gmin, x0=x0)
