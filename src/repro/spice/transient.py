"""Transient analysis.

Two time-grid disciplines share the integration core:

* **Fixed-step** (the reference): backward Euler (robust, slightly
  lossy) or trapezoidal (second-order, default) on a uniform grid that
  always *covers* ``tstop`` (step count is a ceiling, so the last grid
  point is at or past the requested stop time).
* **Adaptive** (``adaptive=True``, trapezoidal only): local-truncation-
  error controlled stepping — step halving on rejection, bounded
  doubling on acceptance — with source-breakpoint registration so steps
  land exactly on stimulus corners (pulse edges, PWL knots).  The LTE
  estimate is the difference between the trapezoidal corrector and a
  polynomial predictor through the last accepted points; it
  overestimates the true trapezoidal LTE, which keeps the controller
  conservative where waveform measurements are taken.

The fixed-step engine remains the reference implementation; the
equivalence suite (tests/spice/test_adaptive.py) pins adaptive waveform
measurements within measurement tolerance of a 4x finer fixed grid
while using materially fewer steps.
"""

import numpy as np

from ..runtime.stats import StatsView, record
from .batch import (BatchCompiledCircuit, BatchNewtonState,
                    gmin_ladder_batch, newton_solve_batch, solve_dc_batch)
from .errors import AnalysisError, ConvergenceError
from .mna import (SOLVER_REUSE, CompiledCircuit, NewtonState,
                  gmin_continuation_solve, newton_solve,
                  resolve_solver_mode)
from .dcop import solve_dc
from .sources import collect_breakpoints
from .waveform import Waveform

BACKWARD_EULER = "be"
TRAPEZOIDAL = "trap"

#: default absolute LTE tolerance (volts).  Crossing-time accuracy is
#: the LTE divided by the local slew; at the bench's ~0.05 V/ps edges,
#: 1 mV keeps level crossings well inside the 0.1 ps measurement budget.
DEFAULT_LTE_TOL = 1e-3

#: accepted steps may grow by at most this factor per step
MAX_STEP_GROWTH = 2.0

#: target-error safety factor in the step-size controller
STEP_SAFETY = 0.9

#: deprecated read-only view of the process-root adaptive-stepper
#: counters (mirrors :data:`repro.spice.mna.NEWTON_STATS`).  Effort is
#: recorded through the context-scoped collector
#: (:mod:`repro.runtime.stats`); benchmarks that snapshot deltas around
#: a workload keep working, writes raise.
ADAPTIVE_STATS = StatsView({"runs": "adaptive_runs",
                            "accepted": "adaptive_accepted",
                            "rejected": "adaptive_rejected"})


def _fixed_step_count(tstop, dt):
    """Number of fixed steps whose grid covers ``tstop``.

    A ceiling with a relative guard against float dust: ``round`` here
    used to produce ``n_steps * dt < tstop`` for non-commensurate
    ``tstop/dt``, silently clipping the tail of an output pulse.
    """
    return max(1, int(np.ceil(tstop / dt * (1.0 - 1e-12))))


class TransientResult:
    """Raw transient output: times, state matrix and the index maps."""

    def __init__(self, compiled, times, states):
        self.compiled = compiled
        self.times = times
        self.states = states

    def waveform(self, nodes=None):
        """Package node voltages as a :class:`Waveform`.

        ``nodes=None`` records every node; pass an iterable to restrict.
        """
        compiled = self.compiled
        if nodes is None:
            nodes = compiled.node_order
        signals = {}
        for node in nodes:
            idx = compiled.index_of(node)
            if idx < 0:
                signals[node] = np.zeros_like(self.times)
            else:
                signals[node] = self.states[:, idx]
        return Waveform(self.times, signals)


# ----------------------------------------------------------------------
# Adaptive step-size control (shared by the scalar and batched engines)
# ----------------------------------------------------------------------

class _StepController:
    """LTE step-size controller with breakpoint landing.

    Owns the current time, the next proposed step and the breakpoint
    cursor.  Both adaptive engines drive it the same way: ``propose`` a
    trial step, attempt the implicit solve, then either ``accept``
    (bounded growth from the error estimate) or ``reject`` (halving;
    a step already at the ``dt_min`` floor is force-accepted instead of
    looping forever).
    """

    def __init__(self, tstop, dt, dt_min, dt_max, lte_tol):
        dt_min = dt / 16.0 if dt_min is None else float(dt_min)
        dt_max = min(tstop, 32.0 * dt) if dt_max is None else float(dt_max)
        if dt_min <= 0 or dt_max <= 0:
            raise AnalysisError("dt_min and dt_max must be positive")
        dt_min = min(dt_min, dt)
        dt_max = max(dt_max, dt)
        if lte_tol <= 0:
            raise AnalysisError("lte_tol must be positive")
        self.tstop = tstop
        self.dt = dt
        self.dt_min = dt_min
        self.dt_max = dt_max
        self.lte_tol = lte_tol
        self.t = 0.0
        self.h = min(dt, dt_max)
        self.breakpoints = []
        self._next_break = 0
        self._target = None
        self.accepted = 0
        self.rejected = 0

    def register_breakpoints(self, points):
        self.breakpoints = list(points)

    def done(self):
        return self.t >= self.tstop * (1.0 - 1e-12)

    def propose(self, history):
        """Trial step for the next attempt.

        Clamped to ``dt`` while the predictor history (``history``
        accepted points since the last discontinuity) is too short for a
        trustworthy LTE estimate, and shortened to land exactly on the
        next stimulus breakpoint or ``tstop``.
        """
        h = min(self.h, self.dt_max)
        if history < 3:
            h = min(h, self.dt)
        h = min(h, self.tstop - self.t)
        self._target = None
        while (self._next_break < len(self.breakpoints)
               and self.breakpoints[self._next_break]
               <= self.t * (1.0 + 1e-12)):
            self._next_break += 1
        if self._next_break < len(self.breakpoints):
            gap = self.breakpoints[self._next_break] - self.t
            if gap <= h * (1.0 + 1e-9):
                h = gap
                self._target = self.breakpoints[self._next_break]
        return h

    def accept(self, h, err):
        """Commit the step; returns True when it landed on a breakpoint
        (the caller must reset its predictor history across the
        discontinuity)."""
        self.accepted += 1
        record("adaptive_accepted")
        landed = self._target is not None
        if landed:
            self.t = self._target
            self._next_break += 1
        else:
            self.t += h
        if err is None or err <= 0.0:
            growth = MAX_STEP_GROWTH
        else:
            growth = min(MAX_STEP_GROWTH,
                         STEP_SAFETY * (self.lte_tol / err) ** (1.0 / 3.0))
        self.h = min(max(h * growth, self.dt_min), self.dt_max)
        return landed

    def reject(self, h):
        """Halve the step; returns True when ``h`` is already at the
        floor and the caller must force-accept (or re-raise) instead."""
        if h <= self.dt_min * (1.0 + 1e-9):
            return True
        self.rejected += 1
        record("adaptive_rejected")
        self.h = max(h * 0.5, self.dt_min)
        return False


def _predict(hist_t, hist_x, t_new):
    """Polynomial extrapolation of the state to ``t_new``.

    Quadratic through the last three accepted points (matching the
    trapezoidal rule's second order), linear with only two, None with
    fewer.  Works on both scalar ``(n,)`` and stacked ``(S, n)`` states
    since the Lagrange weights are scalars.
    """
    k = len(hist_t)
    if k < 2:
        return None
    if k >= 3:
        t0, t1, t2 = hist_t[-3], hist_t[-2], hist_t[-1]
        w0 = (t_new - t1) * (t_new - t2) / ((t0 - t1) * (t0 - t2))
        w1 = (t_new - t0) * (t_new - t2) / ((t1 - t0) * (t1 - t2))
        w2 = (t_new - t0) * (t_new - t1) / ((t2 - t0) * (t2 - t1))
        return w0 * hist_x[-3] + w1 * hist_x[-2] + w2 * hist_x[-1]
    t0, t1 = hist_t[-2], hist_t[-1]
    w = (t_new - t0) / (t1 - t0)
    return (1.0 - w) * hist_x[-2] + w * hist_x[-1]


def _push_history(hist_t, hist_x, t_new, x_new, landed):
    """Append an accepted point; a breakpoint landing restarts the
    history because the stimulus derivative is discontinuous there."""
    if landed:
        hist_t[:] = [t_new]
        hist_x[:] = [x_new]
    else:
        hist_t.append(t_new)
        hist_x.append(x_new)
        if len(hist_t) > 3:
            del hist_t[0]
            del hist_x[0]


# ----------------------------------------------------------------------
# Scalar transient
# ----------------------------------------------------------------------

def run_transient(circuit, tstop, dt, method=TRAPEZOIDAL, record=None,
                  gmin=1e-12, x0=None, adaptive=False, dt_min=None,
                  dt_max=None, lte_tol=DEFAULT_LTE_TOL, solver=None):
    """Simulate ``circuit`` from 0 to ``tstop``.

    Parameters
    ----------
    circuit:
        Symbolic circuit.
    tstop, dt:
        Stop time and time step (seconds).  With ``adaptive=True``,
        ``dt`` is the initial (and post-breakpoint) step.
    method:
        ``"trap"`` (default) or ``"be"``.  Adaptive stepping requires
        the trapezoidal method.
    record:
        Node names to keep; ``None`` keeps all nodes.
    x0:
        Initial state vector; defaults to the DC operating point at t=0
        (with the sources evaluated at t=0).
    adaptive:
        Enable LTE-controlled stepping on a non-uniform grid whose
        steps land exactly on stimulus breakpoints.
    dt_min, dt_max:
        Step bounds for the adaptive controller (defaults ``dt/16`` and
        ``min(tstop, 32*dt)``).
    lte_tol:
        Per-step error tolerance in volts (adaptive only).
    solver:
        ``"reuse"`` (modified Newton with a warm LU factorization and
        device bypass; the default) or ``"exact"`` (re-stamp and
        re-factor every iteration).  ``None`` reads ``REPRO_SOLVER``.

    Returns a :class:`Waveform` (non-uniform time base when adaptive).
    """
    if tstop <= 0 or dt <= 0:
        raise AnalysisError("tstop and dt must be positive")
    if method not in (BACKWARD_EULER, TRAPEZOIDAL):
        raise AnalysisError("unknown integration method {!r}".format(method))
    if adaptive and method != TRAPEZOIDAL:
        raise AnalysisError("adaptive stepping requires the trapezoidal "
                            "method")
    solver = resolve_solver_mode(solver)

    compiled = CompiledCircuit(circuit)
    n = compiled.n

    if x0 is None:
        x = solve_dc(compiled, t=0.0, gmin=gmin)
    else:
        x = np.array(x0, dtype=float)
        if x.shape != (n,):
            raise AnalysisError("x0 has wrong shape")

    if adaptive:
        result = _run_adaptive(compiled, x, tstop, dt, dt_min, dt_max,
                               lte_tol, gmin, solver)
        return result.waveform(record)

    n_steps = _fixed_step_count(tstop, dt)
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_steps + 1, n))
    states[0] = x

    if method == BACKWARD_EULER:
        geq_scale = 1.0 / dt
    else:
        geq_scale = 2.0 / dt
    a_base = compiled.companion_base(method, geq_scale)
    geq = compiled.cap_c * geq_scale
    newton_state = NewtonState() if solver == SOLVER_REUSE else None

    cap_p, cap_n = compiled.cap_p, compiled.cap_n
    mp, mq = cap_p >= 0, cap_n >= 0

    vcap_prev = compiled.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)  # caps carry no current at DC

    for step in range(1, n_steps + 1):
        t = times[step]
        rhs = np.zeros(n)
        compiled.source_rhs(t, rhs)

        # Capacitor companion current sources.
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                ieq = geq * vcap_prev
            else:
                ieq = geq * vcap_prev + icap_prev
            np.add.at(rhs, cap_p[mp], ieq[mp])
            np.subtract.at(rhs, cap_n[mq], ieq[mq])

        try:
            x = newton_solve(compiled, a_base, rhs, x, gmin=gmin, time=t,
                             state=newton_state)
        except ConvergenceError:
            # Retry with gmin continuation on the *same* companion system;
            # switching instants occasionally need it.  Rungs that fail
            # are skipped by the ladder (a second failure used to abort
            # the whole transient); only the final solve at the target
            # gmin is allowed to propagate.
            x = gmin_continuation_solve(compiled, a_base, rhs, x,
                                        gmin=gmin, time=t)

        states[step] = x
        vcap = compiled.cap_branch_voltages(x)
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                icap_prev = geq * (vcap - vcap_prev)
            else:
                icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap

    result = TransientResult(compiled, times, states)
    return result.waveform(record)


def _run_adaptive(compiled, x, tstop, dt, dt_min, dt_max, lte_tol, gmin,
                  solver=SOLVER_REUSE):
    """Adaptive trapezoidal transient on the scalar engine."""
    n = compiled.n
    n_nodes = compiled.n_nodes
    controller = _StepController(tstop, dt, dt_min, dt_max, lte_tol)
    stimuli = [src.stimulus for src in compiled.vsources]
    stimuli += [src.stimulus for src in compiled.isources]
    controller.register_breakpoints(collect_breakpoints(stimuli, tstop))
    record("adaptive_runs")
    newton_state = NewtonState() if solver == SOLVER_REUSE else None

    cap_p, cap_n = compiled.cap_p, compiled.cap_n
    mp, mq = cap_p >= 0, cap_n >= 0
    vcap_prev = compiled.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)

    times = [0.0]
    states = [x]
    hist_t = [0.0]
    hist_x = [x]

    while not controller.done():
        h = controller.propose(len(hist_t))
        t_new = controller.t + h
        geq_scale = 2.0 / h
        a_base = compiled.companion_base(TRAPEZOIDAL, geq_scale)
        geq = compiled.cap_c * geq_scale

        rhs = np.zeros(n)
        compiled.source_rhs(t_new, rhs)
        if compiled.n_caps:
            ieq = geq * vcap_prev + icap_prev
            np.add.at(rhs, cap_p[mp], ieq[mp])
            np.subtract.at(rhs, cap_n[mq], ieq[mq])

        try:
            try:
                x_new = newton_solve(compiled, a_base, rhs, x, gmin=gmin,
                                     time=t_new, state=newton_state)
            except ConvergenceError:
                x_new = gmin_continuation_solve(compiled, a_base, rhs, x,
                                                gmin=gmin, time=t_new)
        except ConvergenceError:
            # A non-converging trial step is a rejection like any other:
            # halve and retry (implicit steps converge more easily the
            # shorter they get).  At the floor the error propagates.
            if controller.reject(h):
                raise
            continue

        err = None
        x_pred = _predict(hist_t, hist_x, t_new)
        if x_pred is not None and n_nodes:
            err = float(np.max(np.abs((x_new - x_pred)[:n_nodes])))
            if err > lte_tol and not controller.reject(h):
                continue

        landed = controller.accept(h, err)
        x = x_new
        vcap = compiled.cap_branch_voltages(x)
        if compiled.n_caps:
            icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap
        times.append(t_new)
        states.append(x)
        _push_history(hist_t, hist_x, t_new, x, landed)

    return TransientResult(compiled, np.array(times), np.array(states))


# ----------------------------------------------------------------------
# Batched (lockstep) transient
# ----------------------------------------------------------------------

class BatchTransientResult:
    """Raw lockstep-transient output for a whole population.

    ``states`` is ``(S, n_steps+1, n)``; per-sample views package into
    the same :class:`Waveform` objects the scalar engine produces.
    """

    def __init__(self, batch, times, states):
        self.batch = batch
        self.times = times
        self.states = states

    def waveform(self, sample, nodes=None):
        """One sample's node voltages as a :class:`Waveform`."""
        batch = self.batch
        if nodes is None:
            nodes = batch.node_order
        signals = {}
        for node in nodes:
            idx = batch.index_of(node)
            if idx < 0:
                signals[node] = np.zeros_like(self.times)
            else:
                signals[node] = self.states[sample, :, idx]
        return Waveform(self.times, signals)

    def waveforms(self, nodes=None):
        """Per-sample waveforms, aligned with the input population."""
        return [self.waveform(s, nodes)
                for s in range(self.batch.n_samples)]


def run_transient_batch(circuits, tstop, dt, method=TRAPEZOIDAL,
                        record=None, gmin=1e-12, x0=None, adaptive=False,
                        dt_min=None, dt_max=None, lte_tol=DEFAULT_LTE_TOL,
                        solver=None):
    """Simulate a population of topologically identical circuits in
    lockstep from 0 to ``tstop``.

    The population advances through the same time grid together: each
    Newton iteration assembles all still-active samples with precomputed
    flat stamp-index maps and performs one stacked ``np.linalg.solve``
    (see :mod:`repro.spice.batch`).  Semantics (integration method,
    damped Newton, per-step gmin-continuation retry) mirror
    :func:`run_transient` per sample; the scalar engine stays the
    reference implementation and the equivalence suite pins the two
    within 1e-6 V.

    With ``adaptive=True`` the whole batch advances on one shared
    non-uniform grid (the union grid): per-sample LTE estimates feed a
    single step-size controller, so a step is accepted only when *every*
    sample's error clears ``lte_tol`` and the grid lands on the union of
    all samples' stimulus breakpoints.

    Parameters mirror :func:`run_transient`; ``circuits`` is a list of
    symbolic circuits (or a prebuilt
    :class:`~repro.spice.batch.BatchCompiledCircuit`) and ``x0``, when
    given, is an ``(S, n)`` initial-state stack.

    Returns a list of :class:`Waveform`, aligned with ``circuits``.
    """
    if tstop <= 0 or dt <= 0:
        raise AnalysisError("tstop and dt must be positive")
    if method not in (BACKWARD_EULER, TRAPEZOIDAL):
        raise AnalysisError("unknown integration method {!r}".format(method))
    if adaptive and method != TRAPEZOIDAL:
        raise AnalysisError("adaptive stepping requires the trapezoidal "
                            "method")
    solver = resolve_solver_mode(solver)

    batch = (circuits if isinstance(circuits, BatchCompiledCircuit)
             else BatchCompiledCircuit(circuits))
    n_samples, n = batch.n_samples, batch.n

    if x0 is None:
        x = solve_dc_batch(batch, t=0.0, gmin=gmin)
    else:
        x = np.array(x0, dtype=float)
        if x.shape != (n_samples, n):
            raise AnalysisError("x0 has wrong shape")

    if adaptive:
        result = _run_adaptive_batch(batch, x, tstop, dt, dt_min, dt_max,
                                     lte_tol, gmin, solver)
        return result.waveforms(record)

    n_steps = _fixed_step_count(tstop, dt)
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_samples, n_steps + 1, n))
    states[:, 0] = x

    if method == BACKWARD_EULER:
        geq_scale = 1.0 / dt
    else:
        geq_scale = 2.0 / dt
    a_base = batch.companion_base(method, geq_scale)
    geq = batch.cap_c * geq_scale
    newton_state = (BatchNewtonState() if solver == SOLVER_REUSE
                    else None)

    # Source-waveform tables over the whole grid (kills the per-step
    # Python loop the scalar engine pays in source_rhs).
    vsrc_tab, isrc_tab = batch.source_tables(times)
    vsrc_lo, vsrc_hi = batch.n_nodes, batch.n_nodes + batch.n_vsrc

    vcap_prev = batch.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)

    for step in range(1, n_steps + 1):
        t = times[step]
        rhs = np.zeros((n_samples, n))
        rhs[:, vsrc_lo:vsrc_hi] = vsrc_tab[:, :, step]
        if batch.n_isrc:
            rhs += isrc_tab[:, :, step] @ batch.isrc_rhs_incidence

        if batch.n_caps:
            if method == BACKWARD_EULER:
                ieq = geq * vcap_prev
            else:
                ieq = geq * vcap_prev + icap_prev
            rhs += ieq @ batch.cap_rhs_incidence

        x_prev = x
        x, conv = newton_solve_batch(batch, a_base, rhs, x_prev,
                                     gmin=gmin, time=t,
                                     state=newton_state)
        if not conv.all():
            # gmin-continuation ladder for the failing subset only, from
            # the previous accepted state (the diverged iterate is
            # discarded, exactly like the scalar retry path).
            bad = np.flatnonzero(~conv)
            x[bad] = gmin_ladder_batch(batch, a_base[bad], rhs[bad],
                                       x_prev[bad], bad, gmin, time=t)

        states[:, step] = x
        vcap = batch.cap_branch_voltages(x)
        if batch.n_caps:
            if method == BACKWARD_EULER:
                icap_prev = geq * (vcap - vcap_prev)
            else:
                icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap

    result = BatchTransientResult(batch, times, states)
    return result.waveforms(record)


def _run_adaptive_batch(batch, x, tstop, dt, dt_min, dt_max, lte_tol,
                        gmin, solver=SOLVER_REUSE):
    """Adaptive trapezoidal transient on the lockstep engine.

    The batch advances on the union grid: one controller, per-sample
    LTE estimates reduced with a max, breakpoints collected from every
    sample's stimuli.
    """
    n_samples, n = batch.n_samples, batch.n
    n_nodes = batch.n_nodes
    controller = _StepController(tstop, dt, dt_min, dt_max, lte_tol)
    stimuli = [src.stimulus for sources in batch._vsources
               for src in sources]
    stimuli += [src.stimulus for sources in batch._isources
                for src in sources]
    controller.register_breakpoints(collect_breakpoints(stimuli, tstop))
    record("adaptive_runs")
    newton_state = (BatchNewtonState() if solver == SOLVER_REUSE
                    else None)

    vcap_prev = batch.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)

    times = [0.0]
    states = [x]
    hist_t = [0.0]
    hist_x = [x]

    while not controller.done():
        h = controller.propose(len(hist_t))
        t_new = controller.t + h
        geq_scale = 2.0 / h
        a_base = batch.companion_base(TRAPEZOIDAL, geq_scale)
        geq = batch.cap_c * geq_scale

        rhs = np.zeros((n_samples, n))
        batch.source_rhs(t_new, rhs)
        if batch.n_caps:
            ieq = geq * vcap_prev + icap_prev
            rhs += ieq @ batch.cap_rhs_incidence

        try:
            x_new, conv = newton_solve_batch(batch, a_base, rhs, x,
                                             gmin=gmin, time=t_new,
                                             state=newton_state)
            if not conv.all():
                bad = np.flatnonzero(~conv)
                x_new[bad] = gmin_ladder_batch(batch, a_base[bad],
                                               rhs[bad], x[bad], bad,
                                               gmin, time=t_new)
        except ConvergenceError:
            if controller.reject(h):
                raise
            continue

        err = None
        x_pred = _predict(hist_t, hist_x, t_new)
        if x_pred is not None and n_nodes:
            err = float(np.max(np.abs((x_new - x_pred)[:, :n_nodes])))
            if err > lte_tol and not controller.reject(h):
                continue

        landed = controller.accept(h, err)
        x = x_new
        vcap = batch.cap_branch_voltages(x)
        if batch.n_caps:
            icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap
        times.append(t_new)
        states.append(x)
        _push_history(hist_t, hist_x, t_new, x, landed)

    stacked = np.transpose(np.array(states), (1, 0, 2))
    return BatchTransientResult(batch, np.array(times), stacked)


class BatchTransient:
    """Reusable lockstep transient runner over a circuit population.

    Thin stateful wrapper around :func:`run_transient_batch` for sweep
    drivers: holds the population and analysis knobs, and re-lowers on
    every :meth:`run` because sweeps mutate the circuits in place
    between runs (e.g. ``set_fault_resistance``); lowering is orders of
    magnitude cheaper than the transient itself.
    """

    def __init__(self, circuits, method=TRAPEZOIDAL, gmin=1e-12):
        self.circuits = list(circuits)
        self.method = method
        self.gmin = gmin

    @property
    def n_samples(self):
        return len(self.circuits)

    def run(self, tstop, dt, record=None, x0=None, **adaptive_kwargs):
        """One lockstep transient; returns per-sample waveforms."""
        return run_transient_batch(self.circuits, tstop, dt,
                                   method=self.method, record=record,
                                   gmin=self.gmin, x0=x0,
                                   **adaptive_kwargs)
