"""Transient analysis.

Fixed-step integration with a choice of backward Euler (robust, slightly
lossy) or trapezoidal (second-order, default).  Source breakpoints are not
needed because callers pick ``dt`` well below the stimulus edge times; the
benches use 1-2 ps steps against >= 25 ps edges.
"""

import numpy as np

from .errors import AnalysisError, ConvergenceError
from .mna import CompiledCircuit, newton_solve
from .dcop import solve_dc
from .waveform import Waveform

BACKWARD_EULER = "be"
TRAPEZOIDAL = "trap"


class TransientResult:
    """Raw transient output: times, state matrix and the index maps."""

    def __init__(self, compiled, times, states):
        self.compiled = compiled
        self.times = times
        self.states = states

    def waveform(self, nodes=None):
        """Package node voltages as a :class:`Waveform`.

        ``nodes=None`` records every node; pass an iterable to restrict.
        """
        compiled = self.compiled
        if nodes is None:
            nodes = compiled.node_order
        signals = {}
        for node in nodes:
            idx = compiled.index_of(node)
            if idx < 0:
                signals[node] = np.zeros_like(self.times)
            else:
                signals[node] = self.states[:, idx]
        return Waveform(self.times, signals)


def run_transient(circuit, tstop, dt, method=TRAPEZOIDAL, record=None,
                  gmin=1e-12, x0=None):
    """Simulate ``circuit`` from 0 to ``tstop`` with fixed step ``dt``.

    Parameters
    ----------
    circuit:
        Symbolic circuit.
    tstop, dt:
        Stop time and time step (seconds).
    method:
        ``"trap"`` (default) or ``"be"``.
    record:
        Node names to keep; ``None`` keeps all nodes.
    x0:
        Initial state vector; defaults to the DC operating point at t=0
        (with the sources evaluated at t=0).

    Returns a :class:`Waveform`.
    """
    if tstop <= 0 or dt <= 0:
        raise AnalysisError("tstop and dt must be positive")
    if method not in (BACKWARD_EULER, TRAPEZOIDAL):
        raise AnalysisError("unknown integration method {!r}".format(method))

    compiled = CompiledCircuit(circuit)
    n = compiled.n

    if x0 is None:
        x = solve_dc(compiled, t=0.0, gmin=gmin)
    else:
        x = np.array(x0, dtype=float)
        if x.shape != (n,):
            raise AnalysisError("x0 has wrong shape")

    n_steps = int(round(tstop / dt))
    times = np.linspace(0.0, n_steps * dt, n_steps + 1)
    states = np.empty((n_steps + 1, n))
    states[0] = x

    if method == BACKWARD_EULER:
        geq_scale = 1.0 / dt
    else:
        geq_scale = 2.0 / dt
    a_base = compiled.a_static + compiled.cap_companion_matrix(geq_scale)
    geq = compiled.cap_c * geq_scale

    cap_p, cap_n = compiled.cap_p, compiled.cap_n
    mp, mq = cap_p >= 0, cap_n >= 0

    vcap_prev = compiled.cap_branch_voltages(x)
    icap_prev = np.zeros_like(vcap_prev)  # caps carry no current at DC

    for step in range(1, n_steps + 1):
        t = times[step]
        rhs = np.zeros(n)
        compiled.source_rhs(t, rhs)

        # Capacitor companion current sources.
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                ieq = geq * vcap_prev
            else:
                ieq = geq * vcap_prev + icap_prev
            np.add.at(rhs, cap_p[mp], ieq[mp])
            np.subtract.at(rhs, cap_n[mq], ieq[mq])

        try:
            x = newton_solve(compiled, a_base, rhs, x, gmin=gmin, time=t)
        except ConvergenceError:
            # Retry with gmin continuation on the *same* companion system;
            # switching instants occasionally need it.
            step_gmin = 1e-3
            while step_gmin >= gmin * 0.999:
                x = newton_solve(compiled, a_base, rhs, x,
                                 gmin=step_gmin, time=t)
                step_gmin *= 0.1
            x = newton_solve(compiled, a_base, rhs, x, gmin=gmin, time=t)

        states[step] = x
        vcap = compiled.cap_branch_voltages(x)
        if compiled.n_caps:
            if method == BACKWARD_EULER:
                icap_prev = geq * (vcap - vcap_prev)
            else:
                icap_prev = geq * (vcap - vcap_prev) - icap_prev
        vcap_prev = vcap

    result = TransientResult(compiled, times, states)
    return result.waveform(record)
