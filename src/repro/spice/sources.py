"""Time-dependent source waveform descriptions.

These mirror the classic SPICE independent-source stimuli.  Each stimulus
implements ``value_at(t)`` (scalar) and ``values_at(t_array)`` (vectorised),
plus ``breakpoints(tstop)`` so the transient engine can align time steps with
sharp corners.
"""

import numpy as np

from .errors import NetlistError


class Stimulus:
    """Base class for source stimuli."""

    def value_at(self, t):
        raise NotImplementedError

    def values_at(self, t):
        t = np.asarray(t, dtype=float)
        return np.array([self.value_at(ti) for ti in t.ravel()]).reshape(t.shape)

    def breakpoints(self, tstop):
        """Times in ``[0, tstop]`` where the waveform has a corner."""
        return []


class Dc(Stimulus):
    """Constant value."""

    def __init__(self, value):
        self.value = float(value)

    def value_at(self, t):
        return self.value

    def values_at(self, t):
        t = np.asarray(t, dtype=float)
        return np.full(t.shape, self.value)

    def __repr__(self):
        return "Dc({:g})".format(self.value)


class Pulse(Stimulus):
    """SPICE ``PULSE(v1 v2 td tr pw tf per)`` stimulus.

    The waveform sits at ``v1``, ramps to ``v2`` over ``tr`` starting at
    ``td``, holds for ``pw``, ramps back over ``tf`` and (optionally)
    repeats with period ``per``.
    """

    def __init__(self, v1, v2, delay=0.0, rise=1e-12, width=1e-9,
                 fall=None, period=None):
        if rise <= 0:
            raise NetlistError("pulse rise time must be positive")
        fall = rise if fall is None else fall
        if fall <= 0:
            raise NetlistError("pulse fall time must be positive")
        if width < 0:
            raise NetlistError("pulse width must be non-negative")
        self.v1 = float(v1)
        self.v2 = float(v2)
        self.delay = float(delay)
        self.rise = float(rise)
        self.width = float(width)
        self.fall = float(fall)
        self.period = None if period is None else float(period)
        if self.period is not None and self.period <= 0:
            raise NetlistError("pulse period must be positive")

    def _single(self, tau):
        """Value within one period, ``tau`` measured from the pulse start."""
        if tau < 0.0:
            return self.v1
        if tau < self.rise:
            return self.v1 + (self.v2 - self.v1) * tau / self.rise
        tau -= self.rise
        if tau < self.width:
            return self.v2
        tau -= self.width
        if tau < self.fall:
            return self.v2 + (self.v1 - self.v2) * tau / self.fall
        return self.v1

    def value_at(self, t):
        tau = t - self.delay
        if self.period is not None and tau >= 0.0:
            tau = tau % self.period
        return self._single(tau)

    def values_at(self, t):
        """Vectorised evaluation (used by the batched engine's
        precomputed source-waveform tables)."""
        t = np.asarray(t, dtype=float)
        tau = t - self.delay
        if self.period is not None:
            tau = np.where(tau >= 0.0, np.mod(tau, self.period), tau)
        rise_end = self.rise
        flat_end = self.rise + self.width
        fall_end = flat_end + self.fall
        values = np.full(tau.shape, self.v1)
        rising = np.logical_and(tau >= 0.0, tau < rise_end)
        values = np.where(
            rising, self.v1 + (self.v2 - self.v1) * tau / self.rise, values)
        values = np.where(
            np.logical_and(tau >= rise_end, tau < flat_end), self.v2, values)
        falling = np.logical_and(tau >= flat_end, tau < fall_end)
        values = np.where(
            falling,
            self.v2 + (self.v1 - self.v2) * (tau - flat_end) / self.fall,
            values)
        return values

    def breakpoints(self, tstop):
        corners = []
        start = self.delay
        while start <= tstop:
            for c in (start,
                      start + self.rise,
                      start + self.rise + self.width,
                      start + self.rise + self.width + self.fall):
                if 0.0 <= c <= tstop:
                    corners.append(c)
            if self.period is None:
                break
            start += self.period
        return corners

    def __repr__(self):
        return ("Pulse(v1={:g}, v2={:g}, delay={:g}, rise={:g}, width={:g}, "
                "fall={:g})").format(self.v1, self.v2, self.delay, self.rise,
                                     self.width, self.fall)


class Pwl(Stimulus):
    """Piece-wise-linear stimulus defined by ``(time, value)`` points."""

    def __init__(self, points):
        pts = [(float(t), float(v)) for t, v in points]
        if not pts:
            raise NetlistError("PWL stimulus needs at least one point")
        times = [p[0] for p in pts]
        if any(t2 < t1 for t1, t2 in zip(times, times[1:])):
            raise NetlistError("PWL times must be non-decreasing")
        self.times = np.array(times)
        self.values = np.array([p[1] for p in pts])

    def value_at(self, t):
        return float(np.interp(t, self.times, self.values))

    def values_at(self, t):
        return np.interp(np.asarray(t, dtype=float), self.times, self.values)

    def breakpoints(self, tstop):
        return [t for t in self.times if 0.0 <= t <= tstop]

    def __repr__(self):
        return "Pwl({} points)".format(len(self.times))


def collect_breakpoints(stimuli, tstop, min_gap=None):
    """Merged, deduplicated stimulus corner times in ``(0, tstop)``.

    The adaptive transient engine lands a step on every breakpoint so
    that sharp waveform corners (pulse edges, PWL knots) never fall
    inside an integration step — the trapezoidal rule assumes the
    stimulus is smooth within a step.  Corners closer together than
    ``min_gap`` (default ``1e-6 * tstop``) are merged into one landing
    point; 0 and ``tstop`` are omitted because the engine starts and
    stops there anyway.
    """
    if min_gap is None:
        min_gap = 1e-6 * tstop
    points = []
    for stimulus in stimuli:
        points.extend(stimulus.breakpoints(tstop))
    merged = []
    for point in sorted(points):
        if point <= min_gap or point >= tstop - min_gap:
            continue
        if merged and point - merged[-1] <= min_gap:
            continue
        merged.append(float(point))
    return merged


def make_stimulus(value):
    """Coerce ``value`` into a :class:`Stimulus`.

    Numbers become :class:`Dc`; stimuli pass through unchanged.
    """
    if isinstance(value, Stimulus):
        return value
    if isinstance(value, (int, float)):
        return Dc(value)
    raise NetlistError(
        "cannot interpret {!r} as a source stimulus".format(value))
