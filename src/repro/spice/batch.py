"""Batched population lowering and lockstep Newton solves.

Every Monte Carlo experiment in the paper evaluates a population of
*topologically identical* circuits: only the parameter draws (device
betas, thresholds, capacitances) and the injected fault resistance differ
between samples.  :class:`BatchCompiledCircuit` lowers such a population
into stacked numpy arrays — ``(S, n, n)`` base matrices, ``(S, n_mos)``
device-parameter vectors, ``(S, n_caps)`` capacitor vectors — so an
entire population advances through a transient in lockstep:

* assembly uses *precomputed flat stamp-index maps*: every MOSFET Norton
  stamp and capacitor companion entry knows its flattened ``row*n + col``
  destination up front (entries touching ground are routed to a discard
  bin), so per-iteration assembly is one ``np.bincount`` over the whole
  batch instead of per-element ``np.add.at`` scatters;
* each Newton iteration performs ONE stacked ``np.linalg.solve`` over all
  still-active samples; converged samples drop out of the batch via a
  per-sample active mask (:func:`newton_solve_batch`).

The scalar engine in :mod:`repro.spice.mna` remains the reference
implementation; the equivalence suite pins the batched waveforms to it
within 1e-6 V.
"""

import time as _time

import numpy as np

from ..runtime.stats import current_stats
from .errors import ConvergenceError, NetlistError
from .mna import (DEFAULT_BYPASS_TOL, STALL_RATIO, _COMPANION_CACHE_MAX,
                  _getrf, _getrs, CompiledCircuit, scipy_available)
from .mosfet import evaluate_level1, evaluate_level1_fast


class BatchNewtonState:
    """Per-sample cross-timestep memory for the batched fast path.

    The stacked mirror of :class:`repro.spice.mna.NewtonState`: one LU
    factorization and one device-linearisation cache per population row,
    each with its own validity flag so samples refactor independently
    (arrays are allocated lazily on first use).
    """

    def __init__(self, bypass_tol=DEFAULT_BYPASS_TOL):
        self.bypass_tol = float(bypass_tol)
        self.lu = None
        self.piv = None
        self.lu_valid = None
        self.lu_a_base = None
        self.lu_gmin = None
        self.dev_vd = None
        self.dev_vg = None
        self.dev_vs = None
        self.dev_i = None
        self.dev_gm = None
        self.dev_gds = None
        self.dev_a_is_drain = None
        self.dev_valid = None

    def ensure(self, batch):
        if self.lu is not None:
            return
        s, n, n_mos = batch.n_samples, batch.n, batch.n_mos
        self.lu = np.zeros((s, n, n))
        self.piv = np.zeros((s, n), dtype=np.int32)
        self.lu_valid = np.zeros(s, dtype=bool)
        self.dev_vd = np.zeros((s, n_mos))
        self.dev_vg = np.zeros((s, n_mos))
        self.dev_vs = np.zeros((s, n_mos))
        self.dev_i = np.zeros((s, n_mos))
        self.dev_gm = np.zeros((s, n_mos))
        self.dev_gds = np.zeros((s, n_mos))
        self.dev_a_is_drain = np.zeros((s, n_mos), dtype=bool)
        self.dev_valid = np.zeros(s, dtype=bool)

    def invalidate_rows(self, rows):
        if self.lu_valid is not None:
            self.lu_valid[rows] = False


class BatchCompiledCircuit:
    """A population of topologically identical circuits in stacked form.

    Parameters
    ----------
    circuits:
        Iterable of symbolic circuits (or pre-compiled
        :class:`~repro.spice.mna.CompiledCircuit` instances).  Sample 0 is
        the structural template; every other sample must match its node
        ordering and element incidence exactly — only numeric values
        (conductances, capacitances, device parameters, stimuli) may
        differ.
    """

    def __init__(self, circuits):
        compiled = [c if isinstance(c, CompiledCircuit) else
                    CompiledCircuit(c) for c in circuits]
        if not compiled:
            raise NetlistError("batch needs at least one circuit")
        template = compiled[0]
        for k, other in enumerate(compiled[1:], start=1):
            self._check_topology(template, other, k)

        self.template = template
        self.n_samples = len(compiled)
        self.n = template.n
        self.n_nodes = template.n_nodes
        self.n_vsrc = template.n_vsrc
        self.node_order = template.node_order
        self.node_index = template.node_index

        # Per-sample stimuli (index arrays are shared via the template).
        self._vsources = [c.vsources for c in compiled]
        self._isources = [c.isources for c in compiled]
        self.n_isrc = len(template.isources)

        # Stacked numeric payloads.
        self.a_static = np.stack([c.a_static for c in compiled])
        self.cap_p = template.cap_p
        self.cap_n = template.cap_n
        self.cap_c = np.stack([c.cap_c for c in compiled])
        self.n_caps = template.n_caps

        self.mos_d = template.mos_d
        self.mos_g = template.mos_g
        self.mos_s = template.mos_s
        self.mos_sign = template.mos_sign
        self.mos_beta = np.stack([c.mos_beta for c in compiled])
        self.mos_vt = np.stack([c.mos_vt for c in compiled])
        self.mos_lam = np.stack([c.mos_lam for c in compiled])
        self.n_mos = template.n_mos

        self._build_stamp_maps()
        self._build_cap_maps()
        self._build_isrc_incidence()
        self._companion_cache = {}

    # ------------------------------------------------------------------

    @staticmethod
    def _check_topology(template, other, index):
        same = (other.n == template.n
                and other.n_nodes == template.n_nodes
                and other.node_order == template.node_order
                and np.array_equal(other.cap_p, template.cap_p)
                and np.array_equal(other.cap_n, template.cap_n)
                and np.array_equal(other.mos_d, template.mos_d)
                and np.array_equal(other.mos_g, template.mos_g)
                and np.array_equal(other.mos_s, template.mos_s)
                and np.array_equal(other.mos_sign, template.mos_sign)
                and np.array_equal(other.isrc_p, template.isrc_p)
                and np.array_equal(other.isrc_n, template.isrc_n)
                and len(other.vsources) == len(template.vsources))
        if not same:
            raise NetlistError(
                "sample {} is not topologically identical to sample 0; "
                "batched lowering needs a structurally uniform population"
                .format(index))

    def index_of(self, node):
        return self.template.index_of(node)

    # ------------------------------------------------------------------
    # Flat stamp-index maps
    # ------------------------------------------------------------------

    def _flat_mat(self, rows, cols):
        """Flattened ``row*n + col`` destinations; ground entries are
        routed to the discard bin ``n*n``."""
        rows = np.asarray(rows, dtype=int)
        cols = np.asarray(cols, dtype=int)
        valid = np.logical_and(rows >= 0, cols >= 0)
        return np.where(valid, rows * self.n + cols, self.n * self.n)

    def _build_stamp_maps(self):
        """Matrix/rhs destinations for both source/drain orientations.

        The level-1 evaluation swaps source and drain per device so that
        ``vds >= 0``; which orientation applies depends on the operating
        point, so both index tables are precomputed and selected per
        iteration with the ``a_is_drain`` flag.
        """
        d, g, s = self.mos_d, self.mos_g, self.mos_s
        self._mos_mat_idx = {}
        self._mos_rhs_idx = {}
        for key, (a_idx, b_idx) in (("d", (d, s)), ("s", (s, d))):
            # Column order matches the value stack in stamp_mosfets:
            # (a,g)+gm  (a,a)+gds+gmin  (a,b)-(gm+gds)
            # (b,g)-gm  (b,a)-gds       (b,b)+gm+gds+gmin
            self._mos_mat_idx[key] = np.stack([
                self._flat_mat(a_idx, g),
                self._flat_mat(a_idx, a_idx),
                self._flat_mat(a_idx, b_idx),
                self._flat_mat(b_idx, g),
                self._flat_mat(b_idx, a_idx),
                self._flat_mat(b_idx, b_idx),
            ], axis=-1)
            # rhs rows: a gets -ieq, b gets +ieq; discard bin is n.
            self._mos_rhs_idx[key] = np.stack([
                np.where(a_idx >= 0, a_idx, self.n),
                np.where(b_idx >= 0, b_idx, self.n),
            ], axis=-1)

    def _build_cap_maps(self):
        p, q = self.cap_p, self.cap_n
        self._cap_mat_idx = np.stack([
            self._flat_mat(p, p), self._flat_mat(q, q),
            self._flat_mat(p, q), self._flat_mat(q, p)], axis=-1)
        self._cap_mat_sign = np.array([1.0, 1.0, -1.0, -1.0])
        # Companion-current scatter as a dense incidence matrix so the
        # per-step rhs update is a single matmul: rhs += ieq @ inc.
        inc = np.zeros((self.n_caps, self.n))
        for j in range(self.n_caps):
            if p[j] >= 0:
                inc[j, p[j]] += 1.0
            if q[j] >= 0:
                inc[j, q[j]] -= 1.0
        self.cap_rhs_incidence = inc

    def _build_isrc_incidence(self):
        template = self.template
        inc = np.zeros((self.n_isrc, self.n))
        for k in range(self.n_isrc):
            p, q = template.isrc_p[k], template.isrc_n[k]
            if p >= 0:
                inc[k, p] -= 1.0
            if q >= 0:
                inc[k, q] += 1.0
        self.isrc_rhs_incidence = inc

    # ------------------------------------------------------------------
    # bincount-based scatter assembly
    # ------------------------------------------------------------------

    def _scatter_matrix(self, a, idx, vals):
        """Accumulate flat-indexed entries into the ``(m, n, n)`` stack
        ``a``; the per-sample discard bin ``n*n`` is dropped."""
        m = a.shape[0]
        nn1 = self.n * self.n + 1
        offsets = (np.arange(m) * nn1)[:, None]
        idx = idx.reshape(m, -1) if idx.ndim == 3 else idx.reshape(1, -1)
        flat = (idx + offsets).ravel()
        acc = np.bincount(flat, weights=vals.reshape(m, -1).ravel(),
                          minlength=m * nn1)
        a += acc.reshape(m, nn1)[:, :self.n * self.n].reshape(
            m, self.n, self.n)

    def _scatter_rhs(self, rhs, idx, vals):
        m = rhs.shape[0]
        n1 = self.n + 1
        offsets = (np.arange(m) * n1)[:, None]
        idx = idx.reshape(m, -1) if idx.ndim == 3 else idx.reshape(1, -1)
        flat = (idx + offsets).ravel()
        acc = np.bincount(flat, weights=vals.reshape(m, -1).ravel(),
                          minlength=m * n1)
        rhs += acc.reshape(m, n1)[:, :self.n]

    # ------------------------------------------------------------------
    # Assembly helpers (batched mirrors of CompiledCircuit)
    # ------------------------------------------------------------------

    def gather_voltages(self, x):
        """``(m, n_nodes+1)`` node voltages with a trailing pinned 0.0
        ground column (index -1 in the terminal maps lands there)."""
        m = x.shape[0]
        v = np.empty((m, self.n_nodes + 1))
        v[:, :self.n_nodes] = x[:, :self.n_nodes]
        v[:, -1] = 0.0
        return v

    def cap_companion_matrix(self, geq_scale):
        """Stacked companion-conductance matrices, ``geq = C * scale``."""
        a = np.zeros((self.n_samples, self.n, self.n))
        if self.n_caps == 0:
            return a
        geq = self.cap_c * geq_scale
        vals = geq[:, :, None] * self._cap_mat_sign
        self._scatter_matrix(a, self._cap_mat_idx, vals)
        return a

    def companion_base(self, scheme, geq_scale):
        """``a_static + cap_companion_matrix(geq_scale)`` stack, cached
        per ``(scheme, geq_scale)`` — the batched mirror of
        :meth:`repro.spice.mna.CompiledCircuit.companion_base` (shared,
        read-only, identity-stable for LU warm starts)."""
        key = (scheme, float(geq_scale))
        cache = self._companion_cache
        base = cache.pop(key, None)
        if base is None:
            base = self.a_static + self.cap_companion_matrix(geq_scale)
            base.setflags(write=False)
            while len(cache) >= _COMPANION_CACHE_MAX:
                cache.pop(next(iter(cache)))
        cache[key] = base
        return base

    def cap_branch_voltages(self, x):
        """Per-sample voltage across each capacitor (p - n)."""
        if self.n_caps == 0:
            return np.zeros((x.shape[0], 0))
        v = self.gather_voltages(x)
        return v[:, self.cap_p] - v[:, self.cap_n]

    def source_rhs(self, t, rhs):
        """Add per-sample independent-source contributions at ``t``."""
        for s in range(self.n_samples):
            for k, src in enumerate(self._vsources[s]):
                rhs[s, self.n_nodes + k] += src.stimulus.value_at(t)
            for k, src in enumerate(self._isources[s]):
                value = src.stimulus.value_at(t)
                p = self.template.isrc_p[k]
                q = self.template.isrc_n[k]
                if p >= 0:
                    rhs[s, p] -= value
                if q >= 0:
                    rhs[s, q] += value

    def source_tables(self, times):
        """Per-sample stimulus values over the whole time grid.

        Returns ``(vsrc_tab, isrc_tab)`` with shapes ``(S, n_vsrc, T)``
        and ``(S, n_isrc, T)``; precomputing them removes every per-step
        Python loop over sources from the transient hot path.
        """
        times = np.asarray(times, dtype=float)
        vsrc = np.zeros((self.n_samples, self.n_vsrc, times.size))
        for s, sources in enumerate(self._vsources):
            for k, src in enumerate(sources):
                vsrc[s, k] = src.stimulus.values_at(times)
        isrc = np.zeros((self.n_samples, self.n_isrc, times.size))
        for s, sources in enumerate(self._isources):
            for k, src in enumerate(sources):
                isrc[s, k] = src.stimulus.values_at(times)
        return vsrc, isrc

    def stamp_mosfets(self, x, a, rhs, sample_idx=None, gmin=1e-12):
        """Linearise and stamp every MOSFET of every sample in ``x``.

        ``x`` is ``(m, n)``; ``sample_idx`` maps its rows to population
        rows for the device-parameter lookup (default: rows 0..m-1).
        """
        if self.n_mos == 0:
            return
        if sample_idx is None:
            sample_idx = slice(None)
        v = self.gather_voltages(x)
        vd = v[:, self.mos_d]
        vg = v[:, self.mos_g]
        vs = v[:, self.mos_s]

        i_ab, gm, gds, a_is_drain = evaluate_level1(
            vd, vg, vs, self.mos_sign, self.mos_beta[sample_idx],
            self.mos_vt[sample_idx], self.mos_lam[sample_idx])

        va = np.where(a_is_drain, vd, vs)
        vb = np.where(a_is_drain, vs, vd)
        ieq = i_ab - gm * (vg - vb) - gds * (va - vb)

        sel = a_is_drain[:, :, None]
        mat_idx = np.where(sel, self._mos_mat_idx["d"],
                           self._mos_mat_idx["s"])
        mat_vals = np.stack([gm, gds + gmin, -(gm + gds),
                             -gm, -gds, gm + gds + gmin], axis=-1)
        self._scatter_matrix(a, mat_idx, mat_vals)

        rhs_idx = np.where(sel, self._mos_rhs_idx["d"],
                           self._mos_rhs_idx["s"])
        rhs_vals = np.stack([-ieq, ieq], axis=-1)
        self._scatter_rhs(rhs, rhs_idx, rhs_vals)

    # ------------------------------------------------------------------
    # Factorization-reuse fast path (stacked mirrors of CompiledCircuit)
    # ------------------------------------------------------------------

    def refresh_device_cache(self, x, state, rows, force_exact):
        """Update the per-device linearisation cache for ``rows``.

        ``x`` is the ``(m, n)`` state of the rows, ``rows`` their
        population indices into ``state``'s stacked cache, and
        ``force_exact`` an ``(m,)`` mask of rows whose devices must all
        be re-evaluated.  Returns ``(n_bypassed, exact_rows)`` — the
        total number of bypassed device evaluations and the ``(m,)``
        mask of rows whose every device was evaluated at ``x``.
        """
        m = x.shape[0]
        if self.n_mos == 0:
            return 0, np.ones(m, dtype=bool)
        v = self.gather_voltages(x)
        vd = v[:, self.mos_d]
        vg = v[:, self.mos_g]
        vs = v[:, self.mos_s]
        tol = state.bypass_tol
        moved = np.abs(vd - state.dev_vd[rows]) > tol
        np.logical_or(moved, np.abs(vg - state.dev_vg[rows]) > tol,
                      out=moved)
        np.logical_or(moved, np.abs(vs - state.dev_vs[rows]) > tol,
                      out=moved)
        moved[force_exact | ~state.dev_valid[rows]] = True
        r_idx, c_idx = np.nonzero(moved)
        if r_idx.size:
            pr = rows[r_idx]
            # same branchless kernel as the scalar fast path, so the
            # two engines' cached linearisations agree bitwise
            i_ab, gm, gds, a_is_drain = evaluate_level1_fast(
                vd[r_idx, c_idx], vg[r_idx, c_idx], vs[r_idx, c_idx],
                self.mos_sign[c_idx], self.mos_beta[pr, c_idx],
                self.mos_vt[pr, c_idx], self.mos_lam[pr, c_idx])
            state.dev_i[pr, c_idx] = i_ab
            state.dev_gm[pr, c_idx] = gm
            state.dev_gds[pr, c_idx] = gds
            state.dev_a_is_drain[pr, c_idx] = a_is_drain
            state.dev_vd[pr, c_idx] = vd[r_idx, c_idx]
            state.dev_vg[pr, c_idx] = vg[r_idx, c_idx]
            state.dev_vs[pr, c_idx] = vs[r_idx, c_idx]
        state.dev_valid[rows] = True
        return int(moved.size - r_idx.size), moved.all(axis=1)

    def stamp_jacobian_from_cache(self, a, state, rows, gmin=1e-12):
        """Stamp the small-signal (matrix-only) MOSFET entries for
        ``rows`` from the cached linearisation into the ``(m, n, n)``
        stack ``a`` — same entries :meth:`stamp_mosfets` writes."""
        if self.n_mos == 0:
            return
        gm = state.dev_gm[rows]
        gds = state.dev_gds[rows]
        sel = state.dev_a_is_drain[rows][:, :, None]
        mat_idx = np.where(sel, self._mos_mat_idx["d"],
                           self._mos_mat_idx["s"])
        mat_vals = np.stack([gm, gds + gmin, -(gm + gds),
                             -gm, -gds, gm + gds + gmin], axis=-1)
        self._scatter_matrix(a, mat_idx, mat_vals)

    def residual_from_cache(self, x, a_base, rhs_base, state, rows,
                            gmin=1e-12):
        """Stacked KCL residual ``F(x)`` of the exact stamped system,
        device currents taken from the cached linearisation (see
        :meth:`repro.spice.mna.CompiledCircuit.residual_from_cache`)."""
        f = (a_base @ x[:, :, None])[:, :, 0] - rhs_base
        n_nodes = self.n_nodes
        f[:, :n_nodes] += gmin * x[:, :n_nodes]
        if self.n_mos:
            v = self.gather_voltages(x)
            aid = state.dev_a_is_drain[rows]
            node_a = np.where(aid, self.mos_d, self.mos_s)
            node_b = np.where(aid, self.mos_s, self.mos_d)
            arange = np.arange(x.shape[0])[:, None]
            va = v[arange, node_a]
            vb = v[arange, node_b]
            i = state.dev_i[rows]
            fa = i + gmin * va
            fb = -i + gmin * vb
            sel = aid[:, :, None]
            rhs_idx = np.where(sel, self._mos_rhs_idx["d"],
                               self._mos_rhs_idx["s"])
            self._scatter_rhs(f, rhs_idx, np.stack([fa, fb], axis=-1))
        return f


# ----------------------------------------------------------------------
# Lockstep Newton
# ----------------------------------------------------------------------

def newton_solve_batch(batch, a_base, rhs_base, x0, sample_idx=None,
                       gmin=1e-12, max_iter=120, vtol=1e-6, damping=0.8,
                       time=None, state=None):
    """Damped Newton over a stack of MNA systems in lockstep.

    ``a_base``/``rhs_base`` are ``(m, n, n)``/``(m, n)`` stacks of the
    x-independent contributions; ``x0`` is the ``(m, n)`` start state.
    Each iteration stamps all still-active samples and performs one
    stacked ``np.linalg.solve``; samples whose voltage step drops below
    ``vtol`` leave the active set (their state is frozen at the accepted
    solution).  Returns ``(x, converged)`` — unlike the scalar solver
    this never raises on non-convergence, so the caller can escalate
    (gmin ladder) for the failed subset only.  Samples with singular
    matrices are reported as non-converged.

    With ``state`` (a :class:`BatchNewtonState`) and scipy available,
    the factorization-reuse/device-bypass fast path runs first; rows it
    cannot close are retried with the exact lockstep iteration below, so
    per-sample convergence behaviour is never worse than without
    ``state``.
    """
    if sample_idx is None:
        sample_idx = np.arange(np.asarray(x0).shape[0])
    sample_idx = np.asarray(sample_idx, dtype=int)
    if state is not None and scipy_available():
        x, converged = _newton_solve_batch_reuse(
            batch, a_base, rhs_base, x0, sample_idx, gmin, max_iter,
            vtol, damping, time, state)
        if converged.all():
            return x, converged
        bad = np.flatnonzero(~converged)
        state.invalidate_rows(sample_idx[bad])
        x_bad, conv_bad = _newton_solve_batch_exact(
            batch, a_base[bad], rhs_base[bad], np.asarray(x0)[bad],
            sample_idx[bad], gmin, max_iter, vtol, damping, time)
        x[bad] = x_bad
        converged[bad] = conv_bad
        return x, converged
    return _newton_solve_batch_exact(batch, a_base, rhs_base, x0,
                                     sample_idx, gmin, max_iter, vtol,
                                     damping, time)


def _newton_solve_batch_exact(batch, a_base, rhs_base, x0, sample_idx,
                              gmin, max_iter, vtol, damping, time):
    """The reference lockstep iteration (full stamp + stacked solve)."""
    x = np.array(x0, dtype=float)
    m = x.shape[0]
    n_nodes = batch.n_nodes
    stats = current_stats()
    stats.count("newton_solves", m)
    # Per-sample iteration ledger: a sample pays for every iteration it
    # stays in the active set, so chunk effort can be re-attributed to
    # the individual tasks the chunk packs together.
    sample_iters = np.zeros(m, dtype=int)
    start = _time.perf_counter()
    converged = np.zeros(m, dtype=bool)
    singular = np.zeros(m, dtype=bool)
    diag = np.arange(n_nodes)
    active = np.arange(m)
    for _iteration in range(max_iter):
        if active.size == 0:
            break
        sample_iters[active] += 1
        a = a_base[active].copy()
        rhs = rhs_base[active].copy()
        batch.stamp_mosfets(x[active], a, rhs,
                            sample_idx=sample_idx[active], gmin=gmin)
        a[:, diag, diag] += gmin
        try:
            # rhs needs an explicit trailing axis: (k, n) alone would be
            # read as one matrix by the (m,m),(m,n) gufunc signature.
            x_new = np.linalg.solve(a, rhs[:, :, None])[:, :, 0]
        except np.linalg.LinAlgError:
            # One singular sample poisons the stacked solve; fall back to
            # per-sample solves for this iteration and quarantine them.
            x_new = np.empty_like(rhs)
            for j in range(a.shape[0]):
                try:
                    x_new[j] = np.linalg.solve(a[j], rhs[j])
                except np.linalg.LinAlgError:
                    x_new[j] = x[active[j]]
                    singular[active[j]] = True
        dx = x_new - x[active]
        if n_nodes:
            vstep = np.abs(dx[:, :n_nodes]).max(axis=1)
        else:
            vstep = np.zeros(active.size)
        over = vstep > damping
        if np.any(over):
            dx[over] *= (damping / vstep[over])[:, None]
        x[active] += dx
        done = np.logical_and(vstep <= vtol, ~singular[active])
        converged[active[done]] = True
        active = active[np.logical_and(~done, ~singular[active])]
    stats.count("newton_iterations", int(sample_iters.sum()))
    stats.add_phase("newton", _time.perf_counter() - start)
    for j in range(m):
        stats.count_sample(sample_idx[j], "newton_solves", 1)
        stats.count_sample(sample_idx[j], "newton_iterations",
                           int(sample_iters[j]))
    return x, converged


def _newton_solve_batch_reuse(batch, a_base, rhs_base, x0, sample_idx,
                              gmin, max_iter, vtol, damping, time, state):
    """Modified-Newton lockstep: frozen per-sample LUs + device bypass.

    The stacked mirror of :func:`repro.spice.mna._newton_solve_reuse`,
    with every policy decision (refactor on stall, always-refactor after
    a fresh-Jacobian stall, forced-exact confirmation of a converged
    iterate) taken *per sample* so a hard sample cannot slow an easy
    one.  Rows whose solve goes singular/non-finite freeze at their last
    iterate and are reported non-converged (the wrapper retries them
    with the exact iteration).
    """
    x = np.array(x0, dtype=float)
    m = x.shape[0]
    n_nodes = batch.n_nodes
    stats = current_stats()
    stats.count("newton_solves", m)
    sample_iters = np.zeros(m, dtype=int)
    start = _time.perf_counter()
    state.ensure(batch)
    rows = sample_idx
    if state.lu_a_base is not a_base or state.lu_gmin != gmin:
        state.lu_valid[:] = False
        state.lu_a_base = a_base
        state.lu_gmin = gmin
    converged = np.zeros(m, dtype=bool)
    failed = np.zeros(m, dtype=bool)
    need_factor = ~state.lu_valid[rows]
    always_refactor = np.zeros(m, dtype=bool)
    force_exact = np.zeros(m, dtype=bool)
    prev_vstep = np.full(m, np.inf)
    diag = np.arange(n_nodes)
    active = np.arange(m)
    for _iteration in range(max_iter):
        if active.size == 0:
            break
        sample_iters[active] += 1
        arows = rows[active]
        bypassed, exact_now = batch.refresh_device_cache(
            x[active], state, arows, force_exact[active])
        if bypassed:
            stats.count("devices_bypassed", bypassed)
        factor = np.logical_or(need_factor[active],
                               always_refactor[active])
        fact = active[factor]
        if fact.size:
            frows = rows[fact]
            a = a_base[fact].copy()
            batch.stamp_jacobian_from_cache(a, state, frows, gmin=gmin)
            a[:, diag, diag] += gmin
            for j, pr in enumerate(frows):
                # an exactly singular row leaves a zero pivot in lu;
                # the solve below then goes non-finite and the row is
                # quarantined by the isfinite check
                lu, piv, _info = _getrf(a[j])
                state.lu[pr] = lu
                state.piv[pr] = piv
            state.lu_valid[frows] = True
            need_factor[fact] = False
            stats.count("lu_factorizations", int(fact.size))
        if active.size > fact.size:
            stats.count("lu_reuses", int(active.size - fact.size))
        f = batch.residual_from_cache(x[active], a_base[active],
                                      rhs_base[active], state, arows,
                                      gmin=gmin)
        dx = np.empty_like(f)
        for j, pr in enumerate(arows):
            dx[j], _info = _getrs(state.lu[pr], state.piv[pr], -f[j],
                                  overwrite_b=True)
        if n_nodes:
            vstep = np.abs(dx[:, :n_nodes]).max(axis=1)
        else:
            vstep = np.zeros(active.size)
        ok = np.isfinite(vstep)
        if not ok.all():
            bad_rows = active[~ok]
            failed[bad_rows] = True
            state.lu_valid[rows[bad_rows]] = False
        over = np.logical_and(ok, vstep > damping)
        if np.any(over):
            dx[over] *= (damping / vstep[over])[:, None]
        x[active[ok]] += dx[ok]
        conv_now = np.logical_and(ok, vstep <= vtol)
        accept = np.logical_and(conv_now, exact_now)
        confirm = np.logical_and(conv_now, ~exact_now)
        if np.any(confirm):
            stats.count("bypass_forced_exact", int(confirm.sum()))
            force_exact[active[confirm]] = True
            prev_vstep[active[confirm]] = np.inf
        converged[active[accept]] = True
        stall = np.logical_and(
            np.logical_and(ok, ~conv_now),
            vstep > STALL_RATIO * prev_vstep[active])
        if np.any(stall):
            st = active[stall]
            always_refactor[st] = np.logical_or(always_refactor[st],
                                                factor[stall])
            need_factor[st] = True
        keep = np.logical_and(ok, ~conv_now)
        prev_vstep[active[keep]] = vstep[keep]
        active = active[np.logical_and(~accept, ok)]
    stats.count("newton_iterations", int(sample_iters.sum()))
    stats.add_phase("newton", _time.perf_counter() - start)
    for j in range(m):
        stats.count_sample(sample_idx[j], "newton_solves", 1)
        stats.count_sample(sample_idx[j], "newton_iterations",
                           int(sample_iters[j]))
    return x, converged


def gmin_ladder_batch(batch, a_base, rhs_base, x0, sample_idx, gmin,
                      time=None, start_gmin=1e-3):
    """gmin continuation for a subset of samples that failed plain Newton.

    Mirrors the scalar :func:`repro.spice.mna.gmin_continuation_solve`:
    walk gmin from ``start_gmin`` down to the target in decade steps,
    keeping each rung's solution only for the samples that converged on
    it, then demand convergence at the target gmin.  All array arguments
    are already restricted to the failing subset; ``sample_idx`` maps
    them back to population rows.
    """
    x = np.array(x0, dtype=float)
    stats = current_stats()
    # One ladder escalation per failing sample, matching the scalar
    # engine's one gmin_continuation_solve call per sample-step.
    stats.count("ladder_retries", int(x.shape[0]))
    with stats.phase("ladder"):
        step_gmin = start_gmin
        while step_gmin >= gmin * 0.999:
            x_try, conv = newton_solve_batch(
                batch, a_base, rhs_base, x, sample_idx=sample_idx,
                gmin=step_gmin, time=time)
            x[conv] = x_try[conv]
            step_gmin *= 0.1
        x_final, conv = newton_solve_batch(
            batch, a_base, rhs_base, x, sample_idx=sample_idx, gmin=gmin,
            time=time)
    if not conv.all():
        raise ConvergenceError(
            "batched Newton failed to converge for {} of {} samples"
            .format(int(np.count_nonzero(~conv)), conv.size), time=time)
    return x_final


def solve_dc_batch(batch, t=0.0, x0=None, gmin=1e-12):
    """Batched DC operating point with gmin-continuation fallback."""
    rhs = np.zeros((batch.n_samples, batch.n))
    batch.source_rhs(t, rhs)
    a_base = batch.a_static
    if x0 is None:
        x0 = np.zeros((batch.n_samples, batch.n))
    else:
        x0 = np.array(x0, dtype=float)
    x, conv = newton_solve_batch(batch, a_base, rhs, x0, gmin=gmin, time=t)
    if conv.all():
        return x
    bad = np.flatnonzero(~conv)
    x[bad] = gmin_ladder_batch(batch, a_base[bad], rhs[bad], x0[bad],
                               bad, gmin, time=t)
    return x
