"""Level-1 (Shichman-Hodges) MOSFET model.

The device evaluates a quadratic I-V characteristic with channel-length
modulation applied in both triode and saturation (which keeps the output
conductance continuous across the boundary — important for Newton).  Dynamic
behaviour is modelled with lumped, constant terminal capacitances derived
from the device geometry; they are materialised as ordinary linear
capacitors by the MNA compiler.

Body effect is intentionally omitted: the cells built by :mod:`repro.cells`
tie bulks to the rails and the pulse-dampening physics studied by the paper
does not depend on it.
"""

import numpy as np

from .elements import Element
from .errors import NetlistError

NMOS = "nmos"
PMOS = "pmos"


class MosfetParams:
    """Electrical parameters of a single device instance.

    Parameters
    ----------
    kp:
        Transconductance parameter (A/V^2), i.e. ``mu * Cox``.
    vt:
        Threshold voltage magnitude (positive for both polarities).
    lam:
        Channel-length modulation (1/V).
    cgs, cgd, cdb, csb:
        Lumped terminal capacitances (F).  Gate capacitances default to a
        split of ``cox_per_area * W * L`` when built by the cell library.
    """

    __slots__ = ("kp", "vt", "lam", "cgs", "cgd", "cdb", "csb")

    def __init__(self, kp, vt, lam=0.0, cgs=0.0, cgd=0.0, cdb=0.0, csb=0.0):
        if kp <= 0.0:
            raise NetlistError("kp must be positive")
        if vt <= 0.0:
            raise NetlistError("vt magnitude must be positive")
        self.kp = float(kp)
        self.vt = float(vt)
        self.lam = float(lam)
        self.cgs = float(cgs)
        self.cgd = float(cgd)
        self.cdb = float(cdb)
        self.csb = float(csb)

    def copy(self):
        return MosfetParams(self.kp, self.vt, self.lam,
                            self.cgs, self.cgd, self.cdb, self.csb)

    def __repr__(self):
        return ("MosfetParams(kp={:.3e}, vt={:.3f}, lam={:.3f})"
                .format(self.kp, self.vt, self.lam))


class Mosfet(Element):
    """Four-terminal MOSFET (drain, gate, source, bulk)."""

    TERMINALS = ("d", "g", "s", "b")

    def __init__(self, name, d, g, s, b, polarity, width, length, params):
        super().__init__(name, d, g, s, b)
        if polarity not in (NMOS, PMOS):
            raise NetlistError(
                "polarity must be 'nmos' or 'pmos', got {!r}".format(polarity))
        if width <= 0 or length <= 0:
            raise NetlistError("W and L must be positive")
        if not isinstance(params, MosfetParams):
            raise NetlistError("params must be a MosfetParams")
        self.polarity = polarity
        self.width = float(width)
        self.length = float(length)
        self.params = params

    @property
    def beta(self):
        """Device transconductance factor ``kp * W / L`` (A/V^2)."""
        return self.params.kp * self.width / self.length

    @property
    def sign(self):
        """+1 for NMOS, -1 for PMOS (voltage/current transform)."""
        return 1.0 if self.polarity == NMOS else -1.0

    def intrinsic_capacitors(self):
        """Lumped caps as ``(suffix, node_a, node_b, value)`` tuples."""
        p = self.params
        t = self.terminals
        caps = [("cgs", t["g"], t["s"], p.cgs),
                ("cgd", t["g"], t["d"], p.cgd),
                ("cdb", t["d"], t["b"], p.cdb),
                ("csb", t["s"], t["b"], p.csb)]
        return [c for c in caps if c[3] > 0.0]


def evaluate_level1(vd, vg, vs, sign, beta, vt, lam):
    """Vectorised level-1 evaluation.

    All arguments are broadcastable arrays; ``sign`` is +1 (NMOS) or -1
    (PMOS).  Returns ``(i_ab, gm, gds, a_is_drain)`` where ``i_ab`` is the
    physical current flowing from terminal *a* to terminal *b* in the
    source/drain-swapped frame, ``a_is_drain`` says whether *a* is the
    device's nominal drain terminal, and ``gm``/``gds`` are the (physical)
    small-signal derivatives w.r.t. ``v_g - v_b`` and ``v_a - v_b``.
    """
    vd = np.asarray(vd, dtype=float)
    vg = np.asarray(vg, dtype=float)
    vs = np.asarray(vs, dtype=float)

    # Transform to an NMOS-like frame.
    tvd = sign * vd
    tvg = sign * vg
    tvs = sign * vs

    # Source/drain swap so vds >= 0 in the transformed frame.
    a_is_drain = tvd >= tvs
    tva = np.where(a_is_drain, tvd, tvs)
    tvb = np.where(a_is_drain, tvs, tvd)

    vgs = tvg - tvb
    vds = tva - tvb
    vov = vgs - vt

    cutoff = vov <= 0.0
    sat = np.logical_and(~cutoff, vds >= vov)
    triode = np.logical_and(~cutoff, ~sat)

    clm = 1.0 + lam * vds
    ids = np.zeros_like(vds)
    gm = np.zeros_like(vds)
    gds = np.zeros_like(vds)

    # Saturation.
    if np.any(sat):
        vov_s = np.where(sat, vov, 0.0)
        ids = np.where(sat, 0.5 * beta * vov_s ** 2 * clm, ids)
        gm = np.where(sat, beta * vov_s * clm, gm)
        gds = np.where(sat, 0.5 * beta * vov_s ** 2 * lam, gds)

    # Triode.
    if np.any(triode):
        core = vov * vds - 0.5 * vds ** 2
        ids = np.where(triode, beta * core * clm, ids)
        gm = np.where(triode, beta * vds * clm, gm)
        gds = np.where(
            triode, beta * ((vov - vds) * clm + lam * core), gds)

    # Physical current from a to b carries the polarity sign; the
    # derivatives are sign-free because voltages transform with the same
    # sign (see DESIGN.md / model notes).
    i_ab = sign * ids
    return i_ab, gm, gds, a_is_drain


def evaluate_level1_fast(vd, vg, vs, sign, beta, vt, lam):
    """Branchless :func:`evaluate_level1` for the solver fast path.

    Same physics, fewer numpy kernels: the three regions collapse into
    one expression by clamping the overdrive at cutoff
    (``vov = max(vgs - vt, 0)``) and clipping the channel drop at
    pinch-off (``vdse = min(vds, vov)``), which reproduces each region's
    formula exactly — saturation is triode evaluated at ``vds = vov``.
    Results agree with the masked reference to rounding order
    (machine-epsilon-level, far inside every solver tolerance).
    Arguments must already be float arrays.
    """
    tvd = sign * vd
    tvg = sign * vg
    tvs = sign * vs
    a_is_drain = tvd >= tvs
    tva = np.maximum(tvd, tvs)
    tvb = np.minimum(tvd, tvs)
    vds = tva - tvb
    vov = np.maximum((tvg - tvb) - vt, 0.0)
    vdse = np.minimum(vds, vov)
    clm = 1.0 + lam * vds
    half = vov - 0.5 * vdse
    ids = beta * half * vdse * clm
    gm = beta * vdse * clm
    gds = beta * (vov - vdse) * clm + lam * beta * half * vdse
    return sign * ids, gm, gds, a_is_drain
