"""A compact SPICE-class electrical simulator.

This subpackage is the electrical substrate for the reproduction of
Favalli & Metra, *Pulse propagation for the detection of small delay
defects* (DATE 2007): modified nodal analysis with level-1 MOSFETs, DC
operating point and fixed-step transient analysis, plus the waveform
measurements (pulse width at 0.5*VDD, propagation delay, slew) the paper's
metrics are built from.
"""

from .analysis import (ADAPTIVE_STATS, BACKWARD_EULER, DEFAULT_LTE_TOL,
                       TRAPEZOIDAL, BatchTransient, operating_point,
                       run_transient, run_transient_batch)
from .batch import BatchCompiledCircuit
from .dcsweep import SweepResult, dc_sweep
from .elements import (Capacitor, CurrentSource, Resistor, VoltageSource)
from .errors import (AnalysisError, ConvergenceError, MeasurementError,
                     NetlistError, SpiceError)
from .mosfet import Mosfet, MosfetParams, NMOS, PMOS
from .netlist import Circuit, GROUND_NAMES, is_ground
from .sources import Dc, Pulse, Pwl, Stimulus, make_stimulus
from .waveform import Waveform

__all__ = [
    "Circuit", "GROUND_NAMES", "is_ground",
    "Resistor", "Capacitor", "VoltageSource", "CurrentSource",
    "Mosfet", "MosfetParams", "NMOS", "PMOS",
    "Dc", "Pulse", "Pwl", "Stimulus", "make_stimulus",
    "operating_point", "run_transient", "run_transient_batch",
    "BatchTransient", "BatchCompiledCircuit",
    "BACKWARD_EULER", "TRAPEZOIDAL", "ADAPTIVE_STATS", "DEFAULT_LTE_TOL",
    "dc_sweep", "SweepResult",
    "Waveform",
    "SpiceError", "NetlistError", "ConvergenceError", "AnalysisError",
    "MeasurementError",
]
