"""Waveform container and the measurements the paper's metrics rest on.

Everything the evaluation needs is a waveform measurement:

* propagation delay ``d_p`` (50 % crossing to 50 % crossing),
* pulse width at ``0.5 * VDD`` (paper: "measured, for instance, at 5V DD"),
* transition (slew) times,
* pulse survival (amplitude of the widest excursion past a level).
"""

import numpy as np

from .errors import MeasurementError


class Waveform:
    """Time series for a set of nodes."""

    def __init__(self, t, signals):
        self.t = np.asarray(t, dtype=float)
        self.signals = {name: np.asarray(v, dtype=float)
                        for name, v in signals.items()}
        for name, v in self.signals.items():
            if v.shape != self.t.shape:
                raise MeasurementError(
                    "signal {!r} length differs from time base".format(name))

    def __getitem__(self, node):
        try:
            return self.signals[node]
        except KeyError:
            raise MeasurementError("no recorded signal {!r}".format(node))

    def __contains__(self, node):
        return node in self.signals

    def nodes(self):
        return sorted(self.signals)

    def value_at(self, node, time):
        """Linear interpolation of ``node`` at ``time``."""
        return float(np.interp(time, self.t, self[node]))

    # ------------------------------------------------------------------
    # Crossings
    # ------------------------------------------------------------------

    def crossing_times(self, node, level, direction=None):
        """Times where ``node`` crosses ``level``.

        ``direction`` may be ``"rise"``, ``"fall"`` or ``None`` (both).
        Crossing times are linearly interpolated.
        """
        v = self[node]
        above = v > level
        change = np.nonzero(above[1:] != above[:-1])[0]
        times = []
        for i in change:
            rising = above[i + 1]
            if direction == "rise" and not rising:
                continue
            if direction == "fall" and rising:
                continue
            v0, v1 = v[i], v[i + 1]
            t0, t1 = self.t[i], self.t[i + 1]
            frac = (level - v0) / (v1 - v0)
            times.append(t0 + frac * (t1 - t0))
        return np.array(times)

    def first_crossing(self, node, level, direction=None, after=None):
        times = self.crossing_times(node, level, direction)
        if after is not None:
            times = times[times >= after]
        if len(times) == 0:
            return None
        return float(times[0])

    # ------------------------------------------------------------------
    # Pulses
    # ------------------------------------------------------------------

    def pulse_intervals(self, node, level, polarity="high"):
        """Intervals during which the signal excurses past ``level``.

        ``polarity="high"`` finds intervals with ``v > level``;
        ``polarity="low"`` finds ``v < level``.  Returns a list of
        ``(t_start, t_end)``; intervals clipped by the simulation window
        use the window edge.
        """
        v = self[node]
        if polarity == "high":
            active = v > level
        elif polarity == "low":
            active = v < level
        else:
            raise MeasurementError("polarity must be 'high' or 'low'")

        intervals = []
        start = self.t[0] if active[0] else None
        for i in range(len(v) - 1):
            if active[i + 1] and not active[i]:
                v0, v1 = v[i], v[i + 1]
                frac = (level - v0) / (v1 - v0)
                start = self.t[i] + frac * (self.t[i + 1] - self.t[i])
            elif active[i] and not active[i + 1]:
                v0, v1 = v[i], v[i + 1]
                frac = (level - v0) / (v1 - v0)
                end = self.t[i] + frac * (self.t[i + 1] - self.t[i])
                intervals.append((start, end))
                start = None
        if start is not None:
            intervals.append((start, float(self.t[-1])))
        return intervals

    def pulse_widths(self, node, level, polarity="high"):
        """Widths of every excursion past ``level`` (see pulse_intervals)."""
        return [end - start
                for start, end in self.pulse_intervals(node, level, polarity)]

    def widest_pulse(self, node, level, polarity="high"):
        """Width of the widest excursion past ``level``; 0.0 if none.

        This is the paper's ``w_out``: the output pulse width measured at
        ``0.5 * VDD``.  A fully dampened pulse never crosses the level and
        yields 0.0.
        """
        widths = self.pulse_widths(node, level, polarity)
        return max(widths) if widths else 0.0

    # ------------------------------------------------------------------
    # Delay / slew
    # ------------------------------------------------------------------

    def propagation_delay(self, node_in, node_out, level,
                          in_direction=None, out_direction=None,
                          in_occurrence=0, after=0.0):
        """50 %-to-50 % delay between an input and an output transition.

        Measures from the ``in_occurrence``-th crossing of ``node_in``
        (optionally restricted to a direction) to the first subsequent
        crossing of ``node_out``.  Returns None if either edge is missing
        (e.g. the output never switched — the DF-testing "late/never"
        case is handled by the caller).
        """
        t_in = self.crossing_times(node_in, level, in_direction)
        t_in = t_in[t_in >= after]
        if len(t_in) <= in_occurrence:
            return None
        t0 = t_in[in_occurrence]
        t_out = self.first_crossing(node_out, level, out_direction, after=t0)
        if t_out is None:
            return None
        return t_out - t0

    def transition_time(self, node, v_low, v_high, rising=True, after=0.0):
        """Slew between the ``v_low`` and ``v_high`` levels (e.g. 10/90 %)."""
        if rising:
            t_start = self.first_crossing(node, v_low, "rise", after=after)
            if t_start is None:
                return None
            t_end = self.first_crossing(node, v_high, "rise", after=t_start)
        else:
            t_start = self.first_crossing(node, v_high, "fall", after=after)
            if t_start is None:
                return None
            t_end = self.first_crossing(node, v_low, "fall", after=t_start)
        if t_end is None:
            return None
        return t_end - t_start

    def oscillation_count(self, node, level, after=0.0):
        """Number of level crossings after ``after`` — the oscillation
        indicator for feedback-bridging diagnosis (Sec. 2: low-R bridges
        closing inverting loops may oscillate)."""
        times = self.crossing_times(node, level)
        return int((times >= after).sum())

    def is_oscillating(self, node, level, after=0.0, min_crossings=4):
        """True when the node keeps crossing ``level`` past ``after``."""
        return self.oscillation_count(node, level, after) >= min_crossings

    def peak_excursion(self, node, baseline):
        """Largest |v - baseline| over the window (pulse amplitude)."""
        v = self[node]
        return float(np.abs(v - baseline).max())

    def window(self, t_start, t_end):
        """Sub-waveform restricted to ``[t_start, t_end]``.

        Boundary samples are linearly interpolated in, so a pulse
        interval straddling ``t_start`` or ``t_end`` keeps its portion
        inside the window instead of snapping to the nearest recorded
        sample (which mis-measured clipped pulses by up to one step).
        Windows that miss the recorded span entirely yield an empty
        waveform.
        """
        if t_end < t_start:
            raise MeasurementError("window end precedes start")
        lo = max(float(t_start), float(self.t[0]))
        hi = min(float(t_end), float(self.t[-1]))
        if lo > hi:
            empty = np.empty(0)
            return Waveform(empty, {k: np.empty(0) for k in self.signals})
        if lo == hi:
            return Waveform(np.array([lo]),
                            {k: np.array([np.interp(lo, self.t, v)])
                             for k, v in self.signals.items()})
        interior = np.logical_and(self.t > lo, self.t < hi)
        new_t = np.concatenate(([lo], self.t[interior], [hi]))
        signals = {
            k: np.concatenate(([np.interp(lo, self.t, v)],
                               v[interior],
                               [np.interp(hi, self.t, v)]))
            for k, v in self.signals.items()
        }
        return Waveform(new_t, signals)

    def __repr__(self):
        return "Waveform({} points, nodes={})".format(
            len(self.t), self.nodes())
