"""Modified nodal analysis compiler and Newton solver core.

The compiler resolves a symbolic :class:`~repro.spice.netlist.Circuit` into
dense numpy structures:

* static linear conductance matrix (resistors),
* voltage-source incidence columns/rows,
* capacitor terminal index arrays (MOSFET intrinsic caps are materialised
  here),
* MOSFET terminal index arrays plus per-device parameter vectors so the
  nonlinear evaluation is a single vectorised call per Newton iteration.

The unknown vector is ``x = [node voltages..., vsource branch currents...]``.
Ground is index ``-1`` and is handled by appending a pinned 0.0 entry when
gathering voltages and by masking stamps that land on it.
"""

import time as _time

import numpy as np

from ..runtime.stats import StatsView, current_stats
from .elements import Capacitor, CurrentSource, Resistor, VoltageSource
from .errors import ConvergenceError, NetlistError
from .mosfet import Mosfet, evaluate_level1
from .netlist import is_ground

#: deprecated read-only view of the process-root solver counters.
#: Newton effort is recorded through the context-scoped collector
#: (:mod:`repro.runtime.stats`); this name survives for benchmarks that
#: snapshot ``dict(NEWTON_STATS)`` around a workload.  Writes raise.
NEWTON_STATS = StatsView({"solves": "newton_solves",
                          "iterations": "newton_iterations"})


class CompiledCircuit:
    """A circuit lowered to numeric form, ready for analysis."""

    def __init__(self, circuit):
        self.circuit = circuit
        self.node_index = {}
        order = circuit.nodes()
        for i, node in enumerate(order):
            self.node_index[node] = i
        self.node_order = order
        self.n_nodes = len(order)

        self.vsources = circuit.elements(VoltageSource)
        self.isources = circuit.elements(CurrentSource)
        self.n_vsrc = len(self.vsources)
        self.n = self.n_nodes + self.n_vsrc

        if self.n_nodes == 0:
            raise NetlistError("circuit has no non-ground nodes")

        self._build_static(circuit)
        self._build_caps(circuit)
        self._build_mosfets(circuit)

    # ------------------------------------------------------------------

    def index_of(self, node):
        """Matrix index of ``node`` (-1 for ground)."""
        if is_ground(node):
            return -1
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError("unknown node {!r}".format(node))

    # ------------------------------------------------------------------

    def _build_static(self, circuit):
        n = self.n
        a_static = np.zeros((n, n))

        for res in circuit.elements(Resistor):
            g = res.conductance
            p = self.index_of(res.node("p"))
            q = self.index_of(res.node("n"))
            if p >= 0:
                a_static[p, p] += g
            if q >= 0:
                a_static[q, q] += g
            if p >= 0 and q >= 0:
                a_static[p, q] -= g
                a_static[q, p] -= g

        for k, src in enumerate(self.vsources):
            row = self.n_nodes + k
            p = self.index_of(src.node("p"))
            q = self.index_of(src.node("n"))
            if p >= 0:
                a_static[row, p] += 1.0
                a_static[p, row] += 1.0
            if q >= 0:
                a_static[row, q] -= 1.0
                a_static[q, row] -= 1.0

        self.a_static = a_static

        # Current-source incidence (value applied at solve time).
        self.isrc_p = np.array(
            [self.index_of(s.node("p")) for s in self.isources], dtype=int)
        self.isrc_n = np.array(
            [self.index_of(s.node("n")) for s in self.isources], dtype=int)

    def _build_caps(self, circuit):
        cap_p, cap_n, cap_c = [], [], []
        self.cap_names = []
        for cap in circuit.elements(Capacitor):
            if cap.capacitance <= 0.0:
                continue
            cap_p.append(self.index_of(cap.node("p")))
            cap_n.append(self.index_of(cap.node("n")))
            cap_c.append(cap.capacitance)
            self.cap_names.append(cap.name)
        # MOSFET intrinsic capacitances become anonymous linear caps.
        for mos in circuit.elements(Mosfet):
            for suffix, node_a, node_b, value in mos.intrinsic_capacitors():
                cap_p.append(self.index_of(node_a))
                cap_n.append(self.index_of(node_b))
                cap_c.append(value)
                self.cap_names.append("{}.{}".format(mos.name, suffix))
        self.cap_p = np.array(cap_p, dtype=int)
        self.cap_n = np.array(cap_n, dtype=int)
        self.cap_c = np.array(cap_c, dtype=float)
        self.n_caps = len(cap_c)

    def _build_mosfets(self, circuit):
        mosfets = circuit.elements(Mosfet)
        self.mosfets = mosfets
        self.mos_d = np.array(
            [self.index_of(m.node("d")) for m in mosfets], dtype=int)
        self.mos_g = np.array(
            [self.index_of(m.node("g")) for m in mosfets], dtype=int)
        self.mos_s = np.array(
            [self.index_of(m.node("s")) for m in mosfets], dtype=int)
        self.mos_sign = np.array([m.sign for m in mosfets])
        self.mos_beta = np.array([m.beta for m in mosfets])
        self.mos_vt = np.array([m.params.vt for m in mosfets])
        self.mos_lam = np.array([m.params.lam for m in mosfets])
        self.n_mos = len(mosfets)

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------

    def gather_voltages(self, x):
        """Node voltages with a trailing pinned 0.0 for ground (index -1)."""
        v = np.empty(self.n_nodes + 1)
        v[:self.n_nodes] = x[:self.n_nodes]
        v[-1] = 0.0
        return v

    def cap_companion_matrix(self, geq_scale):
        """Constant companion-conductance matrix for caps, ``geq = C*scale``.

        ``geq_scale`` is ``1/h`` for backward Euler or ``2/h`` for TRAP.
        """
        a = np.zeros((self.n, self.n))
        if self.n_caps == 0:
            return a
        geq = self.cap_c * geq_scale
        p, q = self.cap_p, self.cap_n
        mp, mq = p >= 0, q >= 0
        np.add.at(a, (p[mp], p[mp]), geq[mp])
        np.add.at(a, (q[mq], q[mq]), geq[mq])
        both = np.logical_and(mp, mq)
        np.add.at(a, (p[both], q[both]), -geq[both])
        np.add.at(a, (q[both], p[both]), -geq[both])
        return a

    def cap_branch_voltages(self, x):
        """Voltage across each capacitor (p - n) for state ``x``."""
        if self.n_caps == 0:
            return np.zeros(0)
        v = self.gather_voltages(x)
        return v[self.cap_p] - v[self.cap_n]

    def source_rhs(self, t, rhs):
        """Add independent-source contributions at time ``t`` into ``rhs``."""
        for k, src in enumerate(self.vsources):
            rhs[self.n_nodes + k] += src.stimulus.value_at(t)
        for k, src in enumerate(self.isources):
            value = src.stimulus.value_at(t)
            p, q = self.isrc_p[k], self.isrc_n[k]
            if p >= 0:
                rhs[p] -= value
            if q >= 0:
                rhs[q] += value

    def stamp_mosfets(self, x, a, rhs, gmin=1e-12):
        """Linearise every MOSFET around ``x`` and stamp into ``a``/``rhs``."""
        if self.n_mos == 0:
            return
        v = self.gather_voltages(x)
        vd = v[self.mos_d]
        vg = v[self.mos_g]
        vs = v[self.mos_s]

        i_ab, gm, gds, a_is_drain = evaluate_level1(
            vd, vg, vs, self.mos_sign, self.mos_beta,
            self.mos_vt, self.mos_lam)

        node_a = np.where(a_is_drain, self.mos_d, self.mos_s)
        node_b = np.where(a_is_drain, self.mos_s, self.mos_d)
        va = np.where(a_is_drain, vd, vs)
        vb = np.where(a_is_drain, vs, vd)

        # Norton equivalent: I_ab = Ieq + gm*(vg - vb) + gds*(va - vb)
        ieq = i_ab - gm * (vg - vb) - gds * (va - vb)

        ia, ib, ig = node_a, node_b, self.mos_g
        ma, mb, mg = ia >= 0, ib >= 0, ig >= 0

        def stamp(rows, cols, vals, mask):
            if np.any(mask):
                np.add.at(a, (rows[mask], cols[mask]), vals[mask])

        # Row a: +gm*vg + gds*va - (gm+gds)*vb
        stamp(ia, ig, gm, np.logical_and(ma, mg))
        stamp(ia, ia, gds + gmin, ma)
        stamp(ia, ib, -(gm + gds), np.logical_and(ma, mb))
        # Row b: mirror
        stamp(ib, ig, -gm, np.logical_and(mb, mg))
        stamp(ib, ia, -gds, np.logical_and(mb, ma))
        stamp(ib, ib, gm + gds + gmin, mb)

        if np.any(ma):
            np.add.at(rhs, ia[ma], -ieq[ma])
        if np.any(mb):
            np.add.at(rhs, ib[mb], ieq[mb])

    def mosfet_currents(self, x):
        """Drain current of each MOSFET (positive into the drain) at ``x``."""
        if self.n_mos == 0:
            return np.zeros(0)
        v = self.gather_voltages(x)
        i_ab, _, _, a_is_drain = evaluate_level1(
            v[self.mos_d], v[self.mos_g], v[self.mos_s],
            self.mos_sign, self.mos_beta, self.mos_vt, self.mos_lam)
        # i_ab flows a -> b; when a is the drain, drain current = +i_ab.
        return np.where(a_is_drain, i_ab, -i_ab)


def newton_solve(compiled, a_base, rhs_base, x0, gmin=1e-12,
                 max_iter=120, vtol=1e-6, damping=0.8, time=None):
    """Solve the nonlinear MNA system ``F(x) = 0`` by damped Newton.

    ``a_base``/``rhs_base`` hold every contribution that does not depend on
    ``x`` (linear elements, sources, capacitor companions).  Returns the
    converged solution.
    """
    x = np.array(x0, dtype=float)
    n_nodes = compiled.n_nodes
    stats = current_stats()
    stats.count("newton_solves")
    iterations = 0
    start = _time.perf_counter()
    last_step = None
    try:
        for iteration in range(max_iter):
            iterations += 1
            a = a_base.copy()
            rhs = rhs_base.copy()
            compiled.stamp_mosfets(x, a, rhs, gmin=gmin)
            # Diagonal gmin on node rows guards against floating nodes.
            idx = np.arange(n_nodes)
            a[idx, idx] += gmin
            try:
                x_new = np.linalg.solve(a, rhs)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    "singular MNA matrix", iterations=iteration, time=time)
            dx = x_new - x
            # Limit voltage updates to keep the quadratic model honest.
            vstep = np.abs(dx[:n_nodes]).max() if n_nodes else 0.0
            if vstep > damping:
                dx *= damping / vstep
                last_step = damping
            else:
                last_step = vstep
            x = x + dx
            if vstep <= vtol:
                return x
        raise ConvergenceError(
            "Newton failed to converge", iterations=max_iter,
            residual=0.0 if last_step is None else float(last_step),
            time=time)
    finally:
        # Book iterations even on the failure path — diverging solves
        # are exactly the effort test-time tuning needs to see.
        stats.count("newton_iterations", iterations)
        stats.add_phase("newton", _time.perf_counter() - start)


def gmin_continuation_solve(compiled, a_base, rhs_base, x0, gmin=1e-12,
                            time=None, start_gmin=1e-3):
    """Newton with a gmin-continuation ladder (for hard operating points).

    Walks gmin from ``start_gmin`` down to the target in decade steps; a
    rung that fails to converge is *skipped* (the ladder continues from
    the last converged iterate) instead of aborting the whole analysis.
    The final solve at the target gmin must converge or
    :class:`ConvergenceError` propagates.
    """
    x = np.array(x0, dtype=float)
    stats = current_stats()
    stats.count("ladder_retries")
    with stats.phase("ladder"):
        step_gmin = start_gmin
        while step_gmin >= gmin * 0.999:
            try:
                x = newton_solve(compiled, a_base, rhs_base, x,
                                 gmin=step_gmin, time=time)
            except ConvergenceError:
                # A failed rung keeps the previous iterate; the next
                # (lighter or target) rung may still pull it in.
                pass
            step_gmin *= 0.1
        return newton_solve(compiled, a_base, rhs_base, x, gmin=gmin,
                            time=time)
