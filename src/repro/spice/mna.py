"""Modified nodal analysis compiler and Newton solver core.

The compiler resolves a symbolic :class:`~repro.spice.netlist.Circuit` into
dense numpy structures:

* static linear conductance matrix (resistors),
* voltage-source incidence columns/rows,
* capacitor terminal index arrays (MOSFET intrinsic caps are materialised
  here),
* MOSFET terminal index arrays plus per-device parameter vectors so the
  nonlinear evaluation is a single vectorised call per Newton iteration.

The unknown vector is ``x = [node voltages..., vsource branch currents...]``.
Ground is index ``-1`` and is handled by appending a pinned 0.0 entry when
gathering voltages and by masking stamps that land on it.
"""

import os
import time as _time

import numpy as np

try:
    # Raw LAPACK bindings: the high-level lu_factor/lu_solve wrappers
    # spend ~30 us per call on argument validation, which at MNA sizes
    # (tens of unknowns) costs more than the triangular solves they
    # wrap.  getrf also reports exact singularity via ``info`` instead
    # of a warning, which is the contract the solver needs anyway.
    from scipy.linalg.lapack import dgetrf as _getrf, dgetrs as _getrs
except ImportError:  # pragma: no cover - exercised where scipy is absent
    _getrf = None
    _getrs = None

from ..runtime.stats import StatsView, current_stats
from .elements import Capacitor, CurrentSource, Resistor, VoltageSource
from .errors import ConvergenceError, NetlistError
from .mosfet import Mosfet, evaluate_level1, evaluate_level1_fast
from .netlist import is_ground

#: deprecated read-only view of the process-root solver counters.
#: Newton effort is recorded through the context-scoped collector
#: (:mod:`repro.runtime.stats`); this name survives for benchmarks that
#: snapshot ``dict(NEWTON_STATS)`` around a workload.  Writes raise.
NEWTON_STATS = StatsView({"solves": "newton_solves",
                          "iterations": "newton_iterations"})

SOLVER_EXACT = "exact"
SOLVER_REUSE = "reuse"
SOLVER_MODES = (SOLVER_EXACT, SOLVER_REUSE)
DEFAULT_SOLVER = SOLVER_REUSE

#: a device whose terminal voltages all moved less than this since its
#: last evaluation keeps its cached linearisation (volts).  The final
#: convergence check always re-evaluates every device, so the accepted
#: solution satisfies the *exact* stamped system to ``vtol`` regardless.
DEFAULT_BYPASS_TOL = 1e-6

#: a Newton step that shrinks by less than this factor versus the
#: previous one counts as a stall and triggers a Jacobian refactor.
STALL_RATIO = 0.5

#: companion-base variants kept per compiled circuit (adaptive stepping
#: revisits a handful of step sizes; the cache makes their ``a_base``
#: identity-stable so LU warm starts survive step-size oscillation).
_COMPANION_CACHE_MAX = 8


def scipy_available():
    """True when :mod:`scipy.linalg` is importable (reuse fast path)."""
    return _getrf is not None


def resolve_solver_mode(solver=None):
    """Resolve a solver-mode knob to ``"exact"`` or ``"reuse"``.

    ``None`` falls back to the ``REPRO_SOLVER`` environment variable and
    then to :data:`DEFAULT_SOLVER`.  When scipy is unavailable the reuse
    mode silently degrades to exact — behaviour, not performance, is the
    contract there.
    """
    if solver is None:
        solver = os.environ.get("REPRO_SOLVER") or DEFAULT_SOLVER
    if solver not in SOLVER_MODES:
        raise ValueError("unknown solver mode {!r}; expected one of {}"
                         .format(solver, "/".join(SOLVER_MODES)))
    if solver == SOLVER_REUSE and not scipy_available():
        return SOLVER_EXACT
    return solver


class NewtonState:
    """Cross-timestep memory for the factorization-reuse fast path.

    One instance accompanies one transient run (one sample).  It owns

    * the frozen LU factorization of the last stamped Jacobian plus the
      identity of the ``a_base`` and the ``gmin`` it was built for (the
      LU is only reusable against the exact same companion system), and
    * the per-device linearisation cache — terminal voltages at the last
      evaluation and the resulting ``(i_ab, gm, gds, a_is_drain)`` — that
      the device-bypass logic compares against.
    """

    def __init__(self, bypass_tol=DEFAULT_BYPASS_TOL):
        self.bypass_tol = float(bypass_tol)
        self.lu = None
        self.lu_a_base = None
        self.lu_gmin = None
        self.dev_vd = None
        self.dev_vg = None
        self.dev_vs = None
        self.dev_i = None
        self.dev_gm = None
        self.dev_gds = None
        self.dev_a_is_drain = None
        #: stacked [node_a..., node_b...] scatter targets (ground = -1),
        #: maintained alongside the linearisation cache so the residual
        #: and Jacobian assembly skip the per-iteration where() shuffle
        self.node_ab = None

    def lu_matches(self, a_base, gmin):
        return (self.lu is not None and self.lu_a_base is a_base
                and self.lu_gmin == gmin)

    def invalidate(self):
        """Drop the frozen factorization (device cache stays useful)."""
        self.lu = None
        self.lu_a_base = None
        self.lu_gmin = None


class CompiledCircuit:
    """A circuit lowered to numeric form, ready for analysis."""

    def __init__(self, circuit):
        self.circuit = circuit
        self.node_index = {}
        order = circuit.nodes()
        for i, node in enumerate(order):
            self.node_index[node] = i
        self.node_order = order
        self.n_nodes = len(order)

        self.vsources = circuit.elements(VoltageSource)
        self.isources = circuit.elements(CurrentSource)
        self.n_vsrc = len(self.vsources)
        self.n = self.n_nodes + self.n_vsrc

        if self.n_nodes == 0:
            raise NetlistError("circuit has no non-ground nodes")

        self._build_static(circuit)
        self._build_caps(circuit)
        self._build_mosfets(circuit)
        self._companion_cache = {}

    # ------------------------------------------------------------------

    def index_of(self, node):
        """Matrix index of ``node`` (-1 for ground)."""
        if is_ground(node):
            return -1
        try:
            return self.node_index[node]
        except KeyError:
            raise NetlistError("unknown node {!r}".format(node))

    # ------------------------------------------------------------------

    def _build_static(self, circuit):
        n = self.n
        a_static = np.zeros((n, n))

        for res in circuit.elements(Resistor):
            g = res.conductance
            p = self.index_of(res.node("p"))
            q = self.index_of(res.node("n"))
            if p >= 0:
                a_static[p, p] += g
            if q >= 0:
                a_static[q, q] += g
            if p >= 0 and q >= 0:
                a_static[p, q] -= g
                a_static[q, p] -= g

        for k, src in enumerate(self.vsources):
            row = self.n_nodes + k
            p = self.index_of(src.node("p"))
            q = self.index_of(src.node("n"))
            if p >= 0:
                a_static[row, p] += 1.0
                a_static[p, row] += 1.0
            if q >= 0:
                a_static[row, q] -= 1.0
                a_static[q, row] -= 1.0

        self.a_static = a_static

        # Current-source incidence (value applied at solve time).
        self.isrc_p = np.array(
            [self.index_of(s.node("p")) for s in self.isources], dtype=int)
        self.isrc_n = np.array(
            [self.index_of(s.node("n")) for s in self.isources], dtype=int)

    def _build_caps(self, circuit):
        cap_p, cap_n, cap_c = [], [], []
        self.cap_names = []
        for cap in circuit.elements(Capacitor):
            if cap.capacitance <= 0.0:
                continue
            cap_p.append(self.index_of(cap.node("p")))
            cap_n.append(self.index_of(cap.node("n")))
            cap_c.append(cap.capacitance)
            self.cap_names.append(cap.name)
        # MOSFET intrinsic capacitances become anonymous linear caps.
        for mos in circuit.elements(Mosfet):
            for suffix, node_a, node_b, value in mos.intrinsic_capacitors():
                cap_p.append(self.index_of(node_a))
                cap_n.append(self.index_of(node_b))
                cap_c.append(value)
                self.cap_names.append("{}.{}".format(mos.name, suffix))
        self.cap_p = np.array(cap_p, dtype=int)
        self.cap_n = np.array(cap_n, dtype=int)
        self.cap_c = np.array(cap_c, dtype=float)
        self.n_caps = len(cap_c)

    def _build_mosfets(self, circuit):
        mosfets = circuit.elements(Mosfet)
        self.mosfets = mosfets
        self.mos_d = np.array(
            [self.index_of(m.node("d")) for m in mosfets], dtype=int)
        self.mos_g = np.array(
            [self.index_of(m.node("g")) for m in mosfets], dtype=int)
        self.mos_s = np.array(
            [self.index_of(m.node("s")) for m in mosfets], dtype=int)
        self.mos_sign = np.array([m.sign for m in mosfets])
        self.mos_beta = np.array([m.beta for m in mosfets])
        self.mos_vt = np.array([m.params.vt for m in mosfets])
        self.mos_lam = np.array([m.params.lam for m in mosfets])
        self.n_mos = len(mosfets)

    # ------------------------------------------------------------------
    # Assembly helpers
    # ------------------------------------------------------------------

    def gather_voltages(self, x):
        """Node voltages with a trailing pinned 0.0 for ground (index -1)."""
        v = np.empty(self.n_nodes + 1)
        v[:self.n_nodes] = x[:self.n_nodes]
        v[-1] = 0.0
        return v

    def cap_companion_matrix(self, geq_scale):
        """Constant companion-conductance matrix for caps, ``geq = C*scale``.

        ``geq_scale`` is ``1/h`` for backward Euler or ``2/h`` for TRAP.
        """
        a = np.zeros((self.n, self.n))
        if self.n_caps == 0:
            return a
        geq = self.cap_c * geq_scale
        p, q = self.cap_p, self.cap_n
        mp, mq = p >= 0, q >= 0
        np.add.at(a, (p[mp], p[mp]), geq[mp])
        np.add.at(a, (q[mq], q[mq]), geq[mq])
        both = np.logical_and(mp, mq)
        np.add.at(a, (p[both], q[both]), -geq[both])
        np.add.at(a, (q[both], p[both]), -geq[both])
        return a

    def companion_base(self, scheme, geq_scale):
        """``a_static + cap_companion_matrix(geq_scale)``, cached.

        Keyed per ``(scheme, geq_scale)`` so the transient drivers stop
        re-summing the same companion system on every step/attempt (the
        adaptive stepper revisits a handful of step sizes).  The returned
        array is shared and marked read-only; its *identity* stability is
        what lets :class:`NewtonState` keep a warm LU across timesteps.
        """
        key = (scheme, float(geq_scale))
        cache = self._companion_cache
        base = cache.pop(key, None)
        if base is None:
            base = self.a_static + self.cap_companion_matrix(geq_scale)
            base.setflags(write=False)
            while len(cache) >= _COMPANION_CACHE_MAX:
                cache.pop(next(iter(cache)))
        cache[key] = base
        return base

    def cap_branch_voltages(self, x):
        """Voltage across each capacitor (p - n) for state ``x``."""
        if self.n_caps == 0:
            return np.zeros(0)
        v = self.gather_voltages(x)
        return v[self.cap_p] - v[self.cap_n]

    def source_rhs(self, t, rhs):
        """Add independent-source contributions at time ``t`` into ``rhs``."""
        for k, src in enumerate(self.vsources):
            rhs[self.n_nodes + k] += src.stimulus.value_at(t)
        for k, src in enumerate(self.isources):
            value = src.stimulus.value_at(t)
            p, q = self.isrc_p[k], self.isrc_n[k]
            if p >= 0:
                rhs[p] -= value
            if q >= 0:
                rhs[q] += value

    def stamp_mosfets(self, x, a, rhs, gmin=1e-12):
        """Linearise every MOSFET around ``x`` and stamp into ``a``/``rhs``."""
        if self.n_mos == 0:
            return
        v = self.gather_voltages(x)
        vd = v[self.mos_d]
        vg = v[self.mos_g]
        vs = v[self.mos_s]

        i_ab, gm, gds, a_is_drain = evaluate_level1(
            vd, vg, vs, self.mos_sign, self.mos_beta,
            self.mos_vt, self.mos_lam)

        node_a = np.where(a_is_drain, self.mos_d, self.mos_s)
        node_b = np.where(a_is_drain, self.mos_s, self.mos_d)
        va = np.where(a_is_drain, vd, vs)
        vb = np.where(a_is_drain, vs, vd)

        # Norton equivalent: I_ab = Ieq + gm*(vg - vb) + gds*(va - vb)
        ieq = i_ab - gm * (vg - vb) - gds * (va - vb)

        ia, ib, ig = node_a, node_b, self.mos_g
        ma, mb, mg = ia >= 0, ib >= 0, ig >= 0

        def stamp(rows, cols, vals, mask):
            if np.any(mask):
                np.add.at(a, (rows[mask], cols[mask]), vals[mask])

        # Row a: +gm*vg + gds*va - (gm+gds)*vb
        stamp(ia, ig, gm, np.logical_and(ma, mg))
        stamp(ia, ia, gds + gmin, ma)
        stamp(ia, ib, -(gm + gds), np.logical_and(ma, mb))
        # Row b: mirror
        stamp(ib, ig, -gm, np.logical_and(mb, mg))
        stamp(ib, ia, -gds, np.logical_and(mb, ma))
        stamp(ib, ib, gm + gds + gmin, mb)

        if np.any(ma):
            np.add.at(rhs, ia[ma], -ieq[ma])
        if np.any(mb):
            np.add.at(rhs, ib[mb], ieq[mb])

    def refresh_device_cache(self, x, state, force_exact=False):
        """Update ``state``'s per-device linearisation cache around ``x``.

        Devices whose terminal voltages all moved less than
        ``state.bypass_tol`` since their last evaluation keep their
        cached ``(i_ab, gm, gds, a_is_drain)``; only the moved subset is
        re-evaluated (``force_exact`` re-evaluates everything).  Returns
        the number of devices bypassed.
        """
        if self.n_mos == 0:
            return 0
        v = self.gather_voltages(x)
        vd = v[self.mos_d]
        vg = v[self.mos_g]
        vs = v[self.mos_s]
        full = force_exact or state.dev_vd is None
        if not full:
            tol = state.bypass_tol
            moved = np.abs(vd - state.dev_vd) > tol
            np.logical_or(moved, np.abs(vg - state.dev_vg) > tol,
                          out=moved)
            np.logical_or(moved, np.abs(vs - state.dev_vs) > tol,
                          out=moved)
            n_moved = int(np.count_nonzero(moved))
            if n_moved == self.n_mos:
                full = True  # everything moved: vectorised full pass
        if full:
            (state.dev_i, state.dev_gm, state.dev_gds,
             state.dev_a_is_drain) = evaluate_level1_fast(
                vd, vg, vs, self.mos_sign, self.mos_beta,
                self.mos_vt, self.mos_lam)
            state.dev_vd, state.dev_vg, state.dev_vs = vd, vg, vs
            aid = state.dev_a_is_drain
            state.node_ab = np.concatenate(
                (np.where(aid, self.mos_d, self.mos_s),
                 np.where(aid, self.mos_s, self.mos_d)))
            return 0
        if n_moved:
            idx = np.flatnonzero(moved)
            i_ab, gm, gds, a_is_drain = evaluate_level1_fast(
                vd[idx], vg[idx], vs[idx], self.mos_sign[idx],
                self.mos_beta[idx], self.mos_vt[idx], self.mos_lam[idx])
            state.dev_i[idx] = i_ab
            state.dev_gm[idx] = gm
            state.dev_gds[idx] = gds
            state.dev_a_is_drain[idx] = a_is_drain
            state.dev_vd[idx] = vd[idx]
            state.dev_vg[idx] = vg[idx]
            state.dev_vs[idx] = vs[idx]
            state.node_ab[idx] = np.where(a_is_drain, self.mos_d[idx],
                                          self.mos_s[idx])
            state.node_ab[idx + self.n_mos] = np.where(
                a_is_drain, self.mos_s[idx], self.mos_d[idx])
        return self.n_mos - n_moved

    def stamp_jacobian_from_cache(self, a, state, gmin=1e-12):
        """Stamp the small-signal (matrix-only) part of every MOSFET from
        ``state``'s cached linearisation — same entries
        :meth:`stamp_mosfets` writes, without re-evaluating devices."""
        if self.n_mos == 0:
            return
        gm, gds = state.dev_gm, state.dev_gds
        ia = state.node_ab[:self.n_mos]
        ib = state.node_ab[self.n_mos:]
        ig = self.mos_g
        ma, mb, mg = ia >= 0, ib >= 0, ig >= 0

        def stamp(rows, cols, vals, mask):
            if np.any(mask):
                np.add.at(a, (rows[mask], cols[mask]), vals[mask])

        stamp(ia, ig, gm, np.logical_and(ma, mg))
        stamp(ia, ia, gds + gmin, ma)
        stamp(ia, ib, -(gm + gds), np.logical_and(ma, mb))
        stamp(ib, ig, -gm, np.logical_and(mb, mg))
        stamp(ib, ia, -gds, np.logical_and(mb, ma))
        stamp(ib, ib, gm + gds + gmin, mb)

    def residual_from_cache(self, x, a_base, rhs_base, state, gmin=1e-12):
        """KCL residual ``F(x)`` of the stamped system at ``x``.

        Device currents come from ``state``'s cache (exact when the cache
        was refreshed at ``x``; within ``(gm+gds)*bypass_tol`` for
        bypassed devices).  Row conventions match :meth:`stamp_mosfets`:
        ``F = A(x)·x - rhs`` of the exact Norton-stamped system, so a
        Newton step is ``dx = -J⁻¹ F``.
        """
        n = self.n
        f = np.empty(n + 1)
        np.matmul(a_base, x, out=f[:n])
        f[:n] -= rhs_base
        n_nodes = self.n_nodes
        f[:n_nodes] += gmin * x[:n_nodes]
        # trailing slot is a discard bin: ground stamps (index -1) land
        # there and are dropped with the final slice, mask-free
        f[n] = 0.0
        if self.n_mos:
            v = self.gather_voltages(x)
            nm = self.n_mos
            contrib = np.empty(2 * nm)
            contrib[:nm] = state.dev_i
            np.negative(state.dev_i, out=contrib[nm:])
            contrib += gmin * v[state.node_ab]
            np.add.at(f, state.node_ab, contrib)
        return f[:n]

    def mosfet_currents(self, x):
        """Drain current of each MOSFET (positive into the drain) at ``x``."""
        if self.n_mos == 0:
            return np.zeros(0)
        v = self.gather_voltages(x)
        i_ab, _, _, a_is_drain = evaluate_level1(
            v[self.mos_d], v[self.mos_g], v[self.mos_s],
            self.mos_sign, self.mos_beta, self.mos_vt, self.mos_lam)
        # i_ab flows a -> b; when a is the drain, drain current = +i_ab.
        return np.where(a_is_drain, i_ab, -i_ab)


def newton_solve(compiled, a_base, rhs_base, x0, gmin=1e-12,
                 max_iter=120, vtol=1e-6, damping=0.8, time=None,
                 state=None):
    """Solve the nonlinear MNA system ``F(x) = 0`` by damped Newton.

    ``a_base``/``rhs_base`` hold every contribution that does not depend on
    ``x`` (linear elements, sources, capacitor companions).  Returns the
    converged solution.

    With ``state`` (a :class:`NewtonState`) and scipy available, the
    factorization-reuse/device-bypass fast path runs first; the exact
    damped iteration below remains the guaranteed fallback, so
    convergence behaviour is never worse than without ``state``.
    """
    if state is not None and scipy_available():
        try:
            return _newton_solve_reuse(compiled, a_base, rhs_base, x0,
                                       state, gmin, max_iter, vtol,
                                       damping, time)
        except ConvergenceError:
            state.invalidate()
    x = np.array(x0, dtype=float)
    n_nodes = compiled.n_nodes
    stats = current_stats()
    stats.count("newton_solves")
    iterations = 0
    start = _time.perf_counter()
    last_step = None
    try:
        for iteration in range(max_iter):
            iterations += 1
            a = a_base.copy()
            rhs = rhs_base.copy()
            compiled.stamp_mosfets(x, a, rhs, gmin=gmin)
            # Diagonal gmin on node rows guards against floating nodes.
            idx = np.arange(n_nodes)
            a[idx, idx] += gmin
            try:
                x_new = np.linalg.solve(a, rhs)
            except np.linalg.LinAlgError:
                raise ConvergenceError(
                    "singular MNA matrix", iterations=iteration, time=time)
            dx = x_new - x
            # Limit voltage updates to keep the quadratic model honest.
            vstep = np.abs(dx[:n_nodes]).max() if n_nodes else 0.0
            # Report the *undamped* Newton step on failure: the damped
            # value used to masquerade as the residual and made every
            # diverging solve look like it stopped at ``damping``.
            last_step = vstep
            if vstep > damping:
                dx *= damping / vstep
            x = x + dx
            if vstep <= vtol:
                return x
        raise ConvergenceError(
            "Newton failed to converge", iterations=iterations,
            residual=0.0 if last_step is None else float(last_step),
            time=time)
    finally:
        # Book iterations even on the failure path — diverging solves
        # are exactly the effort test-time tuning needs to see.
        stats.count("newton_iterations", iterations)
        stats.add_phase("newton", _time.perf_counter() - start)


def _newton_solve_reuse(compiled, a_base, rhs_base, x0, state, gmin,
                        max_iter, vtol, damping, time):
    """Modified (Shamanskii) Newton with a frozen LU and device bypass.

    Iterates ``x += -J₀⁻¹ F(x)`` where ``F`` is the residual of the exact
    stamped system and ``J₀`` is the LU-factored Jacobian from the last
    refactor — possibly warm-started from a previous timestep via
    ``state``.  Policy:

    * refactor when there is no LU valid for this ``(a_base, gmin)``, or
      when the step fails to shrink by :data:`STALL_RATIO`;
    * a stall right after a fresh refactor switches to refactoring every
      iteration, which is algebraically exact Newton;
    * convergence is only accepted on an iteration whose devices were all
      evaluated exactly (``bypass_forced_exact`` counts the confirmation
      passes this forces).
    """
    x = np.array(x0, dtype=float)
    n_nodes = compiled.n_nodes
    stats = current_stats()
    stats.count("newton_solves")
    iterations = 0
    start = _time.perf_counter()
    diag = np.arange(n_nodes)
    refactor = not state.lu_matches(a_base, gmin)
    always_refactor = False
    force_exact = False
    prev_vstep = np.inf
    vstep = None
    try:
        for _iteration in range(max_iter):
            iterations += 1
            fully_exact = force_exact or state.dev_vd is None
            bypassed = compiled.refresh_device_cache(
                x, state, force_exact=fully_exact)
            if bypassed:
                stats.count("devices_bypassed", bypassed)
            fresh = refactor or always_refactor
            if fresh:
                # Fortran order lets getrf factor in place, copy-free.
                a = a_base.copy(order="F")
                compiled.stamp_jacobian_from_cache(a, state, gmin=gmin)
                a[diag, diag] += gmin
                lu, piv, info = _getrf(a, overwrite_a=True)
                if info != 0:
                    raise ConvergenceError(
                        "singular MNA matrix", iterations=iterations,
                        time=time)
                state.lu = (lu, piv)
                state.lu_a_base = a_base
                state.lu_gmin = gmin
                stats.count("lu_factorizations")
                refactor = False
            else:
                stats.count("lu_reuses")
            f = compiled.residual_from_cache(x, a_base, rhs_base, state,
                                             gmin=gmin)
            lu, piv = state.lu
            dx, info = _getrs(lu, piv, -f, overwrite_b=True)
            if info != 0:  # pragma: no cover - getrf guards this
                raise ConvergenceError(
                    "singular MNA matrix", iterations=iterations,
                    time=time)
            vstep = np.abs(dx[:n_nodes]).max() if n_nodes else 0.0
            if not np.isfinite(vstep):
                raise ConvergenceError(
                    "singular MNA matrix", iterations=iterations,
                    time=time)
            if vstep > damping:
                dx *= damping / vstep
            x = x + dx
            if vstep <= vtol:
                if fully_exact or bypassed == 0:
                    return x
                # Converged against cached linearisations: confirm with
                # every device re-evaluated exactly before accepting.
                stats.count("bypass_forced_exact")
                force_exact = True
                prev_vstep = np.inf
                continue
            if vstep > STALL_RATIO * prev_vstep:
                if fresh:
                    # Even a fresh Jacobian is not contracting; refactor
                    # every remaining iteration (== exact Newton).
                    always_refactor = True
                refactor = True
            prev_vstep = vstep
        raise ConvergenceError(
            "Newton failed to converge", iterations=iterations,
            residual=0.0 if vstep is None else float(vstep), time=time)
    except ConvergenceError:
        state.invalidate()
        raise
    finally:
        stats.count("newton_iterations", iterations)
        stats.add_phase("newton", _time.perf_counter() - start)


def gmin_continuation_solve(compiled, a_base, rhs_base, x0, gmin=1e-12,
                            time=None, start_gmin=1e-3):
    """Newton with a gmin-continuation ladder (for hard operating points).

    Walks gmin from ``start_gmin`` down to the target in decade steps; a
    rung that fails to converge is *skipped* (the ladder continues from
    the last converged iterate) instead of aborting the whole analysis.
    The final solve at the target gmin must converge or
    :class:`ConvergenceError` propagates.
    """
    x = np.array(x0, dtype=float)
    stats = current_stats()
    stats.count("ladder_retries")
    with stats.phase("ladder"):
        step_gmin = start_gmin
        while step_gmin >= gmin * 0.999:
            try:
                x = newton_solve(compiled, a_base, rhs_base, x,
                                 gmin=step_gmin, time=time)
            except ConvergenceError:
                # A failed rung keeps the previous iterate; the next
                # (lighter or target) rung may still pull it in.
                pass
            step_gmin *= 0.1
        return newton_solve(compiled, a_base, rhs_base, x, gmin=gmin,
                            time=time)
