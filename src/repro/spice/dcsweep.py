"""DC sweep analysis.

Sweeps one independent source over a list of values, solving the
operating point at each step with warm starts — the workhorse for
voltage-transfer characteristics and for locating the bridging critical
resistance (where a contended node crosses the downstream switching
threshold).
"""

import numpy as np

from .dcop import solve_dc
from .elements import VoltageSource, CurrentSource
from .errors import AnalysisError
from .mna import CompiledCircuit
from .sources import Dc


class SweepResult:
    """Per-node arrays over the swept values."""

    def __init__(self, values, signals):
        self.values = np.asarray(values, dtype=float)
        self.signals = {name: np.asarray(v, dtype=float)
                        for name, v in signals.items()}

    def __getitem__(self, node):
        try:
            return self.signals[node]
        except KeyError:
            raise AnalysisError("no recorded node {!r}".format(node))

    def nodes(self):
        return sorted(self.signals)

    def crossing(self, node, level):
        """First swept value where ``node`` crosses ``level``
        (linear interpolation); None if it never does."""
        v = self[node]
        above = v > level
        change = np.nonzero(above[1:] != above[:-1])[0]
        if len(change) == 0:
            return None
        i = change[0]
        frac = (level - v[i]) / (v[i + 1] - v[i])
        return float(self.values[i]
                     + frac * (self.values[i + 1] - self.values[i]))

    def __repr__(self):
        return "SweepResult({} points, nodes={})".format(
            len(self.values), self.nodes())


def dc_sweep(circuit, source_name, values, record=None, gmin=1e-12):
    """Sweep ``source_name`` over ``values``; returns a SweepResult.

    The source's stimulus is restored afterwards.  ``record=None`` keeps
    every node.
    """
    source = circuit.element(source_name)
    if not isinstance(source, (VoltageSource, CurrentSource)):
        raise AnalysisError(
            "{!r} is not an independent source".format(source_name))
    values = [float(v) for v in values]
    if not values:
        raise AnalysisError("sweep needs at least one value")

    original = source.stimulus
    try:
        compiled = CompiledCircuit(circuit)
        nodes = compiled.node_order if record is None else list(record)
        signals = {node: [] for node in nodes}
        x = None
        for value in values:
            source.stimulus = Dc(value)
            # stimulus change requires re-reading source values only;
            # the compiled structure is still valid
            x = solve_dc(compiled, t=0.0, x0=x, gmin=gmin)
            for node in nodes:
                idx = compiled.index_of(node)
                signals[node].append(0.0 if idx < 0 else float(x[idx]))
        return SweepResult(values, signals)
    finally:
        source.stimulus = original
