"""DC operating point with gmin stepping."""

import numpy as np

from .errors import ConvergenceError
from .mna import CompiledCircuit, gmin_continuation_solve, newton_solve


def solve_dc(compiled, t=0.0, x0=None, gmin=1e-12):
    """Operating point of a compiled circuit at time ``t``.

    Tries a plain Newton solve first; on failure walks gmin from a heavy
    1e-3 S down to the target in decade steps (continuation), which is
    enough for static CMOS structures.  Rungs that fail to converge are
    skipped; only the final solve at the target gmin may raise.
    """
    n = compiled.n
    rhs_base = np.zeros(n)
    compiled.source_rhs(t, rhs_base)
    a_base = compiled.a_static

    if x0 is None:
        x0 = np.zeros(n)

    try:
        return newton_solve(compiled, a_base, rhs_base, x0, gmin=gmin, time=t)
    except ConvergenceError:
        pass

    return gmin_continuation_solve(compiled, a_base, rhs_base, x0,
                                   gmin=gmin, time=t)


def dc_residual(circuit, x=None, t=0.0):
    """KCL residual of a DC solution: ``A(x) x - z`` per matrix row.

    The self-verification primitive: for a converged solution every
    node's current imbalance must be tiny.  When ``x`` is None the
    operating point is solved first.  Returns ``(residual_vector,
    compiled)``; node rows are in amperes, source rows in volts.
    """
    compiled = CompiledCircuit(circuit)
    if x is None:
        x = solve_dc(compiled, t=t)
    a = compiled.a_static.copy()
    rhs = np.zeros(compiled.n)
    compiled.source_rhs(t, rhs)
    compiled.stamp_mosfets(x, a, rhs, gmin=0.0)
    return a @ x - rhs, compiled


def operating_point(circuit, t=0.0, gmin=1e-12):
    """Operating point of a symbolic circuit as ``{node: volts}``.

    Voltage-source branch currents are reported under ``i(<source name>)``.
    """
    compiled = CompiledCircuit(circuit)
    x = solve_dc(compiled, t=t, gmin=gmin)
    result = {node: float(x[i]) for node, i in compiled.node_index.items()}
    for k, src in enumerate(compiled.vsources):
        result["i({})".format(src.name)] = float(x[compiled.n_nodes + k])
    return result
