"""Top-level analysis entry points re-exported by :mod:`repro.spice`."""

from .dcop import operating_point
from .transient import (BACKWARD_EULER, TRAPEZOIDAL, BatchTransient,
                        run_transient, run_transient_batch)

__all__ = ["operating_point", "run_transient", "run_transient_batch",
           "BatchTransient", "BACKWARD_EULER", "TRAPEZOIDAL"]
