"""Top-level analysis entry points re-exported by :mod:`repro.spice`."""

from .dcop import operating_point
from .transient import (ADAPTIVE_STATS, BACKWARD_EULER, DEFAULT_LTE_TOL,
                        TRAPEZOIDAL, BatchTransient, run_transient,
                        run_transient_batch)

__all__ = ["operating_point", "run_transient", "run_transient_batch",
           "BatchTransient", "BACKWARD_EULER", "TRAPEZOIDAL",
           "ADAPTIVE_STATS", "DEFAULT_LTE_TOL"]
