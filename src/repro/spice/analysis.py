"""Top-level analysis entry points re-exported by :mod:`repro.spice`."""

from .dcop import operating_point
from .transient import BACKWARD_EULER, TRAPEZOIDAL, run_transient

__all__ = ["operating_point", "run_transient",
           "BACKWARD_EULER", "TRAPEZOIDAL"]
