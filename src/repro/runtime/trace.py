"""Opt-in JSONL trace sink for campaign runs.

One line per event, appended as it happens, so a killed campaign still
leaves a usable trace prefix behind.  The runner emits one ``task``
event per *executed* task (cache hits are not re-executed and produce
no event) carrying the cache key, wall duration and the full solver
stats record, plus one ``report`` event per run with the aggregated
summary.  Batched runs additionally emit one ``task`` event per chunk
*item* with that item's per-sample attribution.

Enable with ``Runtime(trace=path)``, the CLI ``--trace PATH`` flag or
the ``REPRO_TRACE`` environment variable.  Lines are strict JSON
(non-finite floats are encoded, never emitted as bare ``NaN`` tokens),
so ``jq``/``pandas.read_json(lines=True)`` consume them directly.
"""

import json

from .cache import encode_jsonable
from .schema import SCHEMA_VERSION, check_schema_version


class TraceWriter:
    """Append-only JSONL event writer."""

    def __init__(self, path):
        self.path = str(path)
        self._handle = None
        self.n_events = 0

    def emit(self, event):
        """Append one event dict as a JSON line (flushed immediately).

        Every line is stamped with the current ``schema_version`` (the
        event dict wins if it already carries one), so trace consumers
        can reject files written by an incompatible future tree.
        """
        if self._handle is None:
            self._handle = open(self.path, "a")
        event = dict(event)
        event.setdefault("schema_version", SCHEMA_VERSION)
        line = json.dumps(encode_jsonable(event), sort_keys=True,
                          allow_nan=False)
        self._handle.write(line + "\n")
        self._handle.flush()
        self.n_events += 1

    def close(self):
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self):
        return "TraceWriter({!r}, {} events)".format(self.path,
                                                     self.n_events)


def read_trace(path, check_schema=True):
    """Load a JSONL trace back into a list of event dicts (tests/tools).

    With ``check_schema`` (the default) every event's
    ``schema_version`` is validated and an unknown major raises
    :class:`~repro.runtime.schema.SchemaVersionError`; pre-versioning
    traces (no field) load unchanged.
    """
    events = []
    with open(path) as handle:
        for number, line in enumerate(handle, 1):
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if check_schema:
                check_schema_version(
                    event, what="trace event {}:{}".format(path, number))
            events.append(event)
    return events
