"""Stable content hashing for cache keys.

The result cache is content-addressed: a task's key is a hash of every
input that can change its result (technology parameters, fault spec,
pulse/clock configuration, sample seed, time step...).  The hash must be
stable across processes and interpreter runs, so objects are first
lowered to a canonical JSON-serialisable *token*:

* floats are rendered with ``repr`` (shortest round-trip form);
* dicts are sorted by key, sets are sorted;
* numpy scalars and arrays are lowered to Python numbers / lists;
* objects exposing ``cache_token()`` delegate to it;
* other objects fall back to ``(class name, sorted public attributes)``.

Python's built-in ``hash`` is unsuitable (per-process salting); we use
SHA-256 over the canonical JSON encoding.
"""

import hashlib
import json

import numpy as np


def canonical_token(obj):
    """Lower ``obj`` to a canonical JSON-serialisable structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, (float, np.floating)):
        # lower numpy floats first: np.float64 subclasses float but
        # repr()s differently between numpy versions
        return repr(float(obj))
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, np.ndarray):
        return ["ndarray", list(obj.shape),
                [canonical_token(v) for v in obj.ravel().tolist()]]
    if isinstance(obj, (list, tuple)):
        return [canonical_token(v) for v in obj]
    if isinstance(obj, (set, frozenset)):
        return sorted(canonical_token(v) for v in obj)
    if isinstance(obj, dict):
        return [[canonical_token(k), canonical_token(v)]
                for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))]
    token_method = getattr(obj, "cache_token", None)
    if callable(token_method):
        return [type(obj).__name__, canonical_token(token_method())]
    if callable(obj):
        # A worker function: its qualified name identifies the code path.
        name = getattr(obj, "__qualname__", None) or repr(obj)
        return ["callable", getattr(obj, "__module__", "?"), name]
    attrs = getattr(obj, "__dict__", None)
    if attrs is not None:
        public = {k: v for k, v in attrs.items() if not k.startswith("_")}
        return [type(obj).__name__, canonical_token(public)]
    raise TypeError(
        "cannot build a stable cache token for {!r}".format(obj))


def stable_hash(*parts):
    """SHA-256 hex digest (truncated) of the canonical token of ``parts``."""
    token = canonical_token(list(parts))
    payload = json.dumps(token, separators=(",", ":"), sort_keys=False)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:32]
