"""Campaign execution runtime.

Process-pool Monte Carlo execution with content-addressed result
caching, checkpoint/resume and run telemetry.  See DESIGN.md
("Campaign runtime") for the architecture.
"""

from .cache import CacheMiss, ResultCache, atomic_write
from .chaos import KILL_EXIT_CODE, ChaosConfig, ChaosSpecError
from .checkpoint import CampaignCheckpoint
from .executors import (FAILED, PoisonTask, ProcessPoolExecutor,
                        SerialExecutor, TaskOutcome, TaskTimeout,
                        WorkerCrash, WorkerError, backoff_schedule,
                        default_n_jobs)
from .hashing import canonical_token, stable_hash
from .runner import (DEFAULT_BATCH_SIZE, DEFAULT_CACHE_DIR,
                     CampaignCancelled, CampaignRun, Runtime,
                     engine_cache_tag)
from .schema import (SCHEMA_VERSION, SchemaVersionError,
                     check_schema_version)
from .stats import (SolverStats, StatsView, current_stats, record,
                    root_stats, stats_scope)
from .telemetry import RunReport
from .trace import TraceWriter, read_trace

__all__ = [
    "Runtime", "CampaignRun", "RunReport", "DEFAULT_CACHE_DIR",
    "DEFAULT_BATCH_SIZE", "engine_cache_tag", "CampaignCancelled",
    "SerialExecutor", "ProcessPoolExecutor", "TaskOutcome", "FAILED",
    "WorkerError", "TaskTimeout", "WorkerCrash", "PoisonTask",
    "default_n_jobs", "backoff_schedule",
    "ChaosConfig", "ChaosSpecError", "KILL_EXIT_CODE",
    "ResultCache", "CacheMiss", "atomic_write", "CampaignCheckpoint",
    "stable_hash", "canonical_token",
    "SCHEMA_VERSION", "SchemaVersionError", "check_schema_version",
    "SolverStats", "StatsView", "stats_scope", "current_stats",
    "root_stats", "record", "TraceWriter", "read_trace",
]
