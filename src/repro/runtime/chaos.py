"""Deterministic fault injection for campaign-hardening tests.

Production campaigns die in three characteristic ways: a worker process
is killed mid-chunk (OOM, segfault), a solve diverges and hangs its
pool slot, or a cached result object is torn/corrupted on disk.  This
module injects exactly those faults, *deterministically*: every
decision is a pure hash of ``(seed, fault kind, task tokens)``, so a
chaos campaign is reproducible bit-for-bit and its recovery path can be
asserted against an undisturbed serial run.

Enable with ``Runtime(chaos=...)`` (a :class:`ChaosConfig` or a spec
string) or the ``REPRO_CHAOS`` environment variable::

    REPRO_CHAOS="kill=0.2,corrupt=0.1,hang=0.05,seed=7" pulsetest ...

Spec keys: ``kill`` / ``hang`` / ``corrupt`` (rates in [0, 1]),
``seed`` (int), ``hang_s`` (simulated hang duration, seconds),
``kill_attempts`` / ``hang_attempts`` (how many of a task's executions
are at risk; default 1 = first execution only, so a retried task always
recovers and fault-free result parity is guaranteed — raise them to
exercise the poison-quarantine path).

Worker kills and hangs only apply under the process-pool backend (the
serial backend *is* the undisturbed reference and killing it would kill
the campaign); cache corruption applies wherever a result cache is
attached.
"""

import hashlib
import os
import struct
import time

#: exit code chaos-killed workers die with (recognisable in postmortems)
KILL_EXIT_CODE = 87

_RATE_KEYS = {"kill": "kill_p", "hang": "hang_p", "corrupt": "corrupt_p"}
_INT_KEYS = {"seed": "seed", "kill_attempts": "kill_attempts",
             "hang_attempts": "hang_attempts"}


class ChaosSpecError(ValueError):
    """A chaos spec string (``REPRO_CHAOS``) is malformed."""


class ChaosConfig:
    """Seeded fault-injection knobs (picklable; travels to workers)."""

    __slots__ = ("kill_p", "hang_p", "corrupt_p", "seed", "hang_s",
                 "kill_attempts", "hang_attempts")

    def __init__(self, kill_p=0.0, hang_p=0.0, corrupt_p=0.0, seed=0,
                 hang_s=30.0, kill_attempts=1, hang_attempts=1):
        for name, value in (("kill", kill_p), ("hang", hang_p),
                            ("corrupt", corrupt_p)):
            if not 0.0 <= float(value) <= 1.0:
                raise ChaosSpecError(
                    "chaos {} rate must be in [0, 1], got {!r}".format(
                        name, value))
        self.kill_p = float(kill_p)
        self.hang_p = float(hang_p)
        self.corrupt_p = float(corrupt_p)
        self.seed = int(seed)
        self.hang_s = float(hang_s)
        self.kill_attempts = int(kill_attempts)
        self.hang_attempts = int(hang_attempts)

    # ------------------------------------------------------------------

    @classmethod
    def parse(cls, text):
        """Build a config from a ``"kill=0.2,corrupt=0.1,seed=7"`` spec."""
        if isinstance(text, cls):
            return text
        kwargs = {}
        for part in str(text).split(","):
            part = part.strip()
            if not part:
                continue
            key, sep, value = part.partition("=")
            key = key.strip()
            if not sep:
                raise ChaosSpecError(
                    "chaos spec entries look like key=value, got "
                    "{!r}".format(part))
            try:
                if key in _RATE_KEYS:
                    kwargs[_RATE_KEYS[key]] = float(value)
                elif key in _INT_KEYS:
                    kwargs[_INT_KEYS[key]] = int(value)
                elif key == "hang_s":
                    kwargs["hang_s"] = float(value)
                else:
                    raise ChaosSpecError(
                        "unknown chaos knob {!r} (known: {})".format(
                            key, ", ".join(sorted(
                                list(_RATE_KEYS) + list(_INT_KEYS)
                                + ["hang_s"]))))
            except ValueError as exc:
                if isinstance(exc, ChaosSpecError):
                    raise
                raise ChaosSpecError(
                    "bad value for chaos knob {!r}: {!r}".format(
                        key, value)) from None
        return cls(**kwargs)

    @classmethod
    def from_env(cls, name="REPRO_CHAOS"):
        """Config from the environment, or None when unset/empty."""
        text = os.environ.get(name)
        return cls.parse(text) if text else None

    @property
    def active(self):
        return self.kill_p > 0 or self.hang_p > 0 or self.corrupt_p > 0

    # ------------------------------------------------------------------
    # Deterministic decisions
    # ------------------------------------------------------------------

    def _roll(self, kind, *tokens):
        """A uniform [0, 1) draw, pure in (seed, kind, tokens)."""
        text = "{}|{}|{}".format(self.seed, kind,
                                 "|".join(str(t) for t in tokens))
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        return struct.unpack("<Q", digest[:8])[0] / 2.0 ** 64

    def should_kill(self, index, attempt):
        return (self.kill_p > 0 and attempt < self.kill_attempts
                and self._roll("kill", index, attempt) < self.kill_p)

    def should_hang(self, index, attempt):
        return (self.hang_p > 0 and attempt < self.hang_attempts
                and self._roll("hang", index, attempt) < self.hang_p)

    def should_corrupt(self, key):
        return (self.corrupt_p > 0
                and self._roll("corrupt", key) < self.corrupt_p)

    # ------------------------------------------------------------------
    # Fault actors (called from the executor / runner)
    # ------------------------------------------------------------------

    def maybe_kill(self, index, attempt):
        """Die like an OOM-killed worker: immediate, no cleanup."""
        if self.should_kill(index, attempt):
            os._exit(KILL_EXIT_CODE)

    def maybe_hang(self, index, attempt):
        """Simulate a diverging solve occupying its pool slot."""
        if self.should_hang(index, attempt):
            time.sleep(self.hang_s)

    def corrupt_object(self, cache, key):
        """Overwrite ``key``'s stored object with garbage bytes.

        Mimics a torn write / bit-rotted entry: the file exists (so
        ``contains`` still answers True) but no longer parses.  Returns
        True when an object file was actually clobbered.
        """
        clobbered = False
        for path in cache._paths(key):
            if os.path.exists(path):
                with open(path, "wb") as handle:
                    handle.write(b"\x00chaos-corrupted\xff\xfe")
                clobbered = True
        return clobbered

    def __repr__(self):
        return ("ChaosConfig(kill={}, hang={}, corrupt={}, seed={})"
                .format(self.kill_p, self.hang_p, self.corrupt_p,
                        self.seed))
