"""Content-addressed on-disk result cache.

Layout (under the cache root, default ``.repro_cache/``)::

    objects/ab/abcdef...0123.json   # JSON-serialisable values
    objects/ab/abcdef...0123.npz    # numpy-array values
    objects/quarantine/             # corrupt entries set aside by get()
    manifests/<campaign>.json       # checkpoint manifests (checkpoint.py)

Keys are the stable hashes of :mod:`repro.runtime.hashing`; values are
whatever a campaign task returned.  JSON is the primary format (with a
small escape hatch for embedded numpy arrays); values that are a bare
array or a flat ``{str: ndarray}`` mapping are stored as ``.npz``
instead.  Writes are atomic and durable (temp file + fsync +
``os.replace`` + directory fsync, see :func:`atomic_write`) so neither
a killed campaign nor a power loss leaves a truncated entry behind.
"""

import json
import logging
import math
import os
import tempfile

import numpy as np

_ARRAY_TAG = "__ndarray__"
_FLOAT_TAG = "__float__"


def fsync_directory(path):
    """Flush a directory's entry table to disk (best effort).

    ``os.replace`` is atomic against concurrent readers but the rename
    itself lives in the directory inode — without this a power loss can
    forget a fully-written file.  Platforms whose directories cannot be
    opened/fsynced (some network filesystems, Windows) are tolerated.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write(path, writer, binary=False, durable=True):
    """Write ``path`` atomically: temp file + fsync + ``os.replace``.

    The single durable-write helper shared by the result cache, the
    checkpoint manifests and the service job store.  ``writer`` receives
    the open temp-file handle.  With ``durable`` (the default) the temp
    file is fsynced before the rename and the directory after it, so a
    power loss can neither tear the object nor lose the rename; pass
    ``durable=False`` only for scratch data where tearing is acceptable.
    """
    directory = os.path.dirname(path) or "."
    fd, tmp = tempfile.mkstemp(dir=directory, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb" if binary else "w") as handle:
            writer(handle)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if durable:
            fsync_directory(directory)
    except BaseException:
        if os.path.exists(tmp):
            os.unlink(tmp)
        raise


def _encode_float(value):
    """A float as strict JSON.

    ``json.dump`` emits bare ``NaN``/``Infinity`` tokens for non-finite
    floats — JavaScript, not JSON, and rejected by strict parsers.  A
    dampened pulse legitimately measures a NaN width, so non-finite
    values are first-class here: they round-trip via a tagged dict.
    """
    if math.isfinite(value):
        return value
    if math.isnan(value):
        return {_FLOAT_TAG: "nan"}
    return {_FLOAT_TAG: "inf" if value > 0 else "-inf"}


def _encode(value):
    """Lower ``value`` to a strict-JSON-serialisable structure."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return _encode_float(value)
    if isinstance(value, (np.floating,)):
        return _encode_float(float(value))
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.bool_,)):
        return bool(value)
    if isinstance(value, np.ndarray):
        # tolist() yields plain floats, so _encode tags any non-finite
        # entries; _decode re-assembles the array from the decoded list.
        return {_ARRAY_TAG: _encode(value.tolist()),
                "dtype": str(value.dtype)}
    if isinstance(value, (list, tuple)):
        return [_encode(v) for v in value]
    if isinstance(value, dict):
        out = {}
        for k, v in value.items():
            if not isinstance(k, str):
                raise TypeError(
                    "cache values need string dict keys, got {!r}".format(k))
            out[k] = _encode(v)
        return out
    raise TypeError(
        "cannot cache value of type {}".format(type(value).__name__))


def _decode(value):
    if isinstance(value, dict):
        if _FLOAT_TAG in value:
            return float(value[_FLOAT_TAG])
        if _ARRAY_TAG in value:
            return np.asarray(_decode(value[_ARRAY_TAG]),
                              dtype=value.get("dtype"))
        return {k: _decode(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_decode(v) for v in value]
    return value


#: public aliases for other strict-JSON writers (the trace sink)
encode_jsonable = _encode
decode_jsonable = _decode


def _is_npz_value(value):
    if isinstance(value, np.ndarray):
        return True
    return (isinstance(value, dict) and bool(value)
            and all(isinstance(k, str) and isinstance(v, np.ndarray)
                    for k, v in value.items()))


class CacheMiss(Exception):
    """Raised by :meth:`ResultCache.get` for unknown keys."""


class ResultCache:
    """Content-addressed store for campaign task results.

    Unreadable entries (truncated JSON, torn npz, bit rot) never fail a
    campaign: :meth:`get` quarantines the bad file under
    ``objects/quarantine/`` and reports a :class:`CacheMiss`, so the
    runner simply recomputes the sample.  ``quarantined`` counts the
    entries set aside over this instance's lifetime (the runner folds
    the delta into the campaign report).
    """

    def __init__(self, root=".repro_cache"):
        self.root = str(root)
        #: corrupt entries moved aside by :meth:`get`
        self.quarantined = 0

    # ------------------------------------------------------------------

    def _object_dir(self, key):
        return os.path.join(self.root, "objects", key[:2])

    def _paths(self, key):
        base = os.path.join(self._object_dir(key), key)
        return base + ".json", base + ".npz"

    def quarantine_dir(self):
        return os.path.join(self.root, "objects", "quarantine")

    def _quarantine(self, path, key, error):
        """Move an unreadable object aside; never raises.

        The original file is preserved (renamed into
        ``objects/quarantine/``) for postmortems rather than deleted —
        a recompute will land a fresh object at the original path.
        """
        destination = os.path.join(self.quarantine_dir(),
                                   os.path.basename(path))
        try:
            os.makedirs(self.quarantine_dir(), exist_ok=True)
            os.replace(path, destination)
        except OSError:
            # quarantine is best effort; an undeletable corrupt file
            # still reads as a miss on this run
            destination = None
        self.quarantined += 1
        logging.getLogger("repro.cache").warning(
            "quarantined corrupt cache object for key %s (%s: %s)%s",
            key, type(error).__name__, error,
            " -> {}".format(destination) if destination else "")

    def contains(self, key):
        json_path, npz_path = self._paths(key)
        return os.path.exists(json_path) or os.path.exists(npz_path)

    def get(self, key):
        """Return the stored value, or raise :class:`CacheMiss`.

        A present-but-unreadable object (corrupt JSON/npz) is treated
        as a miss: the bad file moves to ``objects/quarantine/`` and
        the sample recomputes — one rotten entry must not kill a
        campaign.
        """
        json_path, npz_path = self._paths(key)
        if os.path.exists(json_path):
            try:
                with open(json_path) as handle:
                    return _decode(json.load(handle))
            except Exception as exc:  # noqa: BLE001 - corrupt object
                self._quarantine(json_path, key, exc)
                raise CacheMiss(key) from None
        if os.path.exists(npz_path):
            try:
                with np.load(npz_path) as data:
                    if data.files == ["__single__"]:
                        return data["__single__"]
                    return {name: data[name] for name in data.files}
            except Exception as exc:  # noqa: BLE001 - corrupt object
                self._quarantine(npz_path, key, exc)
                raise CacheMiss(key) from None
        raise CacheMiss(key)

    def put(self, key, value):
        """Store ``value`` under ``key`` (atomic; overwrites)."""
        directory = self._object_dir(key)
        os.makedirs(directory, exist_ok=True)
        json_path, npz_path = self._paths(key)
        if _is_npz_value(value):
            arrays = ({"__single__": value}
                      if isinstance(value, np.ndarray) else value)
            self._atomic_write(npz_path, lambda h: np.savez(h, **arrays),
                               binary=True)
        else:
            encoded = _encode(value)
            # allow_nan=False backstops the encoder: a bare NaN token
            # can never reach disk.
            self._atomic_write(
                json_path,
                lambda h: json.dump(encoded, h, allow_nan=False))
        return key

    def _atomic_write(self, path, writer, binary=False):
        atomic_write(path, writer, binary=binary)

    # ------------------------------------------------------------------

    def n_objects(self):
        """Number of readable stored entries (walks the object tree;
        quarantined corpses are not entries)."""
        objects = os.path.join(self.root, "objects")
        if not os.path.isdir(objects):
            return 0
        count = 0
        for directory, subdirs, files in os.walk(objects):
            if directory == objects and "quarantine" in subdirs:
                subdirs.remove("quarantine")
            count += sum(1 for f in files if not f.endswith(".tmp"))
        return count

    def __repr__(self):
        return "ResultCache({!r})".format(self.root)
