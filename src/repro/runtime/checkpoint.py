"""Campaign checkpoint manifests.

Long sweeps are restartable jobs: the runner periodically writes a
manifest listing the task keys already completed, so an interrupted
campaign re-invoked with the same configuration resumes from finished
samples instead of restarting.  Results themselves live in the
content-addressed :class:`~repro.runtime.cache.ResultCache`; the
manifest only records *progress* (and makes resume work even before the
runner consults the cache key by key).

Manifests are stored under ``<cache root>/manifests/<campaign key>.json``
and written atomically and durably (see
:func:`~repro.runtime.cache.atomic_write`), so neither a kill mid-write
nor a power loss corrupts one.
"""

import json
import os

from .cache import atomic_write


class CampaignCheckpoint:
    """Periodic progress manifest for one campaign."""

    def __init__(self, campaign_key, root=".repro_cache", every=8):
        self.campaign_key = str(campaign_key)
        self.root = str(root)
        self.every = max(1, int(every))
        #: task keys known complete (loaded + marked this run)
        self.completed = set()
        self.n_tasks = None
        self._dirty = 0

    @property
    def path(self):
        return os.path.join(self.root, "manifests",
                            self.campaign_key + ".json")

    # ------------------------------------------------------------------

    def load(self):
        """Load a previous run's manifest; returns the completed keys."""
        try:
            with open(self.path) as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return set()
        if manifest.get("campaign") != self.campaign_key:
            return set()
        self.completed.update(manifest.get("completed", []))
        return set(self.completed)

    @property
    def pending_marks(self):
        """Marks recorded since the last flush (0 = manifest current)."""
        return self._dirty

    def mark_done(self, task_key):
        """Record one completed task; flushes every ``every`` marks.

        Periodic flushing alone lets the manifest trail the result
        cache by up to ``every - 1`` entries; the runner closes that
        gap by calling :meth:`flush` on every exit path (clean finish
        and exception unwind alike).
        """
        if task_key in self.completed:
            return
        self.completed.add(task_key)
        self._dirty += 1
        if self._dirty >= self.every:
            self.flush()

    def flush(self):
        """Atomically (re)write the manifest."""
        directory = os.path.dirname(self.path)
        os.makedirs(directory, exist_ok=True)
        manifest = {
            "campaign": self.campaign_key,
            "n_tasks": self.n_tasks,
            "n_completed": len(self.completed),
            "completed": sorted(self.completed),
        }
        atomic_write(self.path,
                     lambda handle: json.dump(manifest, handle))
        self._dirty = 0

    def __repr__(self):
        return "CampaignCheckpoint({}..., {} done)".format(
            self.campaign_key[:8], len(self.completed))
