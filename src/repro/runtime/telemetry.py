"""Run telemetry: per-sample timing, solver effort, failure taxonomy.

Every campaign produces a :class:`RunReport` — the observable record of
what the runtime did: how many tasks ran vs. came from the cache, how
long each took, how much Newton effort the electrical solver spent, and
which exception classes failures fell into.  The report serialises to
JSON so benchmark harnesses and CI can track the numbers across PRs.
"""

import json
import time
from collections import Counter


class RunReport:
    """Telemetry for one campaign execution."""

    def __init__(self, label="campaign"):
        self.label = label
        self.cache_hits = 0
        self.cache_misses = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.retries = 0
        self.resumed = 0
        #: per-executed-task wall-clock durations (seconds)
        self.durations = []
        self.newton_solves = 0
        self.newton_iterations = 0
        #: ``{exception class name: count}``
        self.failure_taxonomy = Counter()
        self._t_start = None
        self.wall_time = 0.0
        self.executor = None

    # ------------------------------------------------------------------

    def start(self, executor=None):
        self._t_start = time.perf_counter()
        if executor is not None:
            self.executor = repr(executor)
        return self

    def finish(self):
        """Close the current phase; wall time accumulates so one report
        can span several runtime phases (calibration + sweeps)."""
        if self._t_start is not None:
            self.wall_time += time.perf_counter() - self._t_start
            self._t_start = None
        return self

    def record_hit(self, resumed=False):
        self.cache_hits += 1
        if resumed:
            self.resumed += 1

    def record_outcome(self, outcome):
        """Fold one executor :class:`TaskOutcome` into the counters."""
        self.cache_misses += 1
        self.durations.append(outcome.duration)
        self.retries += outcome.retries
        self.newton_solves += outcome.newton_solves
        self.newton_iterations += outcome.newton_iterations
        if outcome.ok:
            self.completed += 1
        else:
            self.failed += 1
            self.failure_taxonomy[outcome.error_type] += 1
            if outcome.timed_out:
                self.timeouts += 1

    # ------------------------------------------------------------------

    @property
    def n_tasks(self):
        return self.cache_hits + self.cache_misses

    def samples_per_second(self):
        """Executed-task throughput over the campaign's wall clock."""
        if self.wall_time <= 0.0:
            return 0.0
        return self.cache_misses / self.wall_time

    def summary(self):
        durations = sorted(self.durations)
        return {
            "label": self.label,
            "executor": self.executor,
            "n_tasks": self.n_tasks,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self.resumed,
            "wall_time_s": self.wall_time,
            "samples_per_second": self.samples_per_second(),
            "task_time_total_s": sum(durations),
            "task_time_median_s": (
                durations[len(durations) // 2] if durations else None),
            "task_time_max_s": durations[-1] if durations else None,
            "newton_solves": self.newton_solves,
            "newton_iterations": self.newton_iterations,
            "failure_taxonomy": dict(self.failure_taxonomy),
        }

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, sort_keys=True)
        return path

    def format_report(self):
        """Human-readable multi-line summary (CLI output)."""
        s = self.summary()
        lines = [
            "run report [{}]".format(self.label),
            "  tasks: {} ({} executed, {} cache hits)".format(
                s["n_tasks"], s["cache_misses"], s["cache_hits"]),
            "  wall time: {:.2f}s ({:.2f} samples/s)".format(
                s["wall_time_s"], s["samples_per_second"]),
        ]
        if self.executor:
            lines.insert(1, "  executor: {}".format(self.executor))
        if self.newton_solves:
            lines.append(
                "  newton: {} solves, {} iterations".format(
                    s["newton_solves"], s["newton_iterations"]))
        if self.failed:
            taxonomy = ", ".join(
                "{}x{}".format(count, name)
                for name, count in sorted(self.failure_taxonomy.items()))
            lines.append("  failures: {} ({}), {} timeouts, {} retries"
                         .format(s["failed"], taxonomy, s["timeouts"],
                                 s["retries"]))
        return "\n".join(lines)

    def __repr__(self):
        return ("RunReport({!r}, {} tasks, {} hits, {} failed)"
                .format(self.label, self.n_tasks, self.cache_hits,
                        self.failed))
