"""Run telemetry: per-sample timing, solver effort, failure taxonomy.

Every campaign produces a :class:`RunReport` — the observable record of
what the runtime did: how many tasks ran vs. came from the cache, how
long each took, how much solver effort each burned (Newton solves and
iterations, adaptive accepted/rejected steps, gmin-ladder retries,
per-phase timings) and which exception classes failures fell into.
Solver counters arrive as context-scoped snapshots on each
:class:`~repro.runtime.executors.TaskOutcome` (recorded in the worker,
shipped across the process boundary), so serial and process-pool runs
of the same campaign report identical totals.  The report serialises to
JSON so benchmark harnesses and CI can track the numbers across PRs.
"""

import json
import time
from collections import Counter

from .schema import SCHEMA_VERSION, check_schema_version
from .stats import SolverStats


def _median(sorted_values):
    """True median of an ascending list (mean of the middle pair when
    the length is even — ``values[n // 2]`` alone is the *upper* middle
    element and overstates the typical task on even-length runs)."""
    n = len(sorted_values)
    if n == 0:
        return None
    mid = n // 2
    if n % 2:
        return sorted_values[mid]
    return 0.5 * (sorted_values[mid - 1] + sorted_values[mid])


class RunReport:
    """Telemetry for one campaign execution."""

    def __init__(self, label="campaign"):
        self.label = label
        self.cache_hits = 0
        self.cache_misses = 0
        self.completed = 0
        self.failed = 0
        self.timeouts = 0
        self.retries = 0
        self.resumed = 0
        #: worker deaths observed (including crashes later recovered by
        #: a retry — the final outcome carries the cumulative count)
        self.worker_crashes = 0
        #: tasks quarantined as poison (repeat crashers / hangs)
        self.poisoned = 0
        #: executor pool respawns after a fault or timeout reclaim
        self.pool_rebuilds = 0
        #: corrupt cache objects set aside and recomputed
        self.cache_quarantined = 0
        #: per-executed-task wall-clock durations (seconds); batched
        #: chunks contribute one entry per *item* (chunk time / items)
        self.durations = []
        #: aggregated solver effort across every executed task
        self.solver = SolverStats()
        #: escalation waves folded into this report (adaptive-precision
        #: campaigns submit one :meth:`Runtime.run` per wave)
        self.waves = 0
        #: ``{exception class name: count}``
        self.failure_taxonomy = Counter()
        self._t_start = None
        self.wall_time = 0.0
        self.executor = None

    # ------------------------------------------------------------------

    def start(self, executor=None):
        self._t_start = time.perf_counter()
        if executor is not None:
            self.executor = repr(executor)
        return self

    def finish(self):
        """Close the current phase; wall time accumulates so one report
        can span several runtime phases (calibration + sweeps)."""
        if self._t_start is not None:
            self.wall_time += time.perf_counter() - self._t_start
            self._t_start = None
        return self

    def record_hit(self, resumed=False):
        self.cache_hits += 1
        if resumed:
            self.resumed += 1

    def record_wave(self, count=1):
        """Book ``count`` escalation waves (sequential-allocation runs
        folded into this report by an adaptive-precision campaign)."""
        self.waves += count

    def record_outcome(self, outcome, n_items=1):
        """Fold one executor :class:`TaskOutcome` into the counters.

        ``n_items`` re-attributes a chunk task of the batched engine to
        the items it packs together: task counts, failure taxonomy and
        durations are booked per item (each item charged an equal share
        of the chunk's wall time), while solver counters fold once from
        the outcome's stats snapshot so totals stay exact.
        """
        n_items = max(1, int(n_items))
        self.cache_misses += n_items
        share = outcome.duration / n_items
        self.durations.extend([share] * n_items)
        self.retries += outcome.retries
        # worker deaths are booked even when a retry recovered the task
        # (the final ok outcome carries the cumulative crash count) — a
        # crash that happened must not disappear from the record
        self.worker_crashes += getattr(outcome, "crashes", 0)
        if outcome.stats:
            self.solver.merge(outcome.stats)
        if outcome.ok:
            self.completed += n_items
        else:
            self.failed += n_items
            self.failure_taxonomy[outcome.error_type] += n_items
            if outcome.timed_out:
                self.timeouts += n_items
            if getattr(outcome, "poisoned", False):
                self.poisoned += n_items

    # ------------------------------------------------------------------

    @property
    def n_tasks(self):
        return self.cache_hits + self.cache_misses

    @property
    def newton_solves(self):
        return self.solver.total("newton_solves")

    @property
    def newton_iterations(self):
        return self.solver.total("newton_iterations")

    @property
    def adaptive_runs(self):
        return self.solver.total("adaptive_runs")

    @property
    def adaptive_accepted(self):
        return self.solver.total("adaptive_accepted")

    @property
    def adaptive_rejected(self):
        return self.solver.total("adaptive_rejected")

    @property
    def ladder_retries(self):
        return self.solver.total("ladder_retries")

    @property
    def lu_factorizations(self):
        return self.solver.total("lu_factorizations")

    @property
    def lu_reuses(self):
        return self.solver.total("lu_reuses")

    @property
    def devices_bypassed(self):
        return self.solver.total("devices_bypassed")

    @property
    def bypass_forced_exact(self):
        return self.solver.total("bypass_forced_exact")

    def samples_per_second(self):
        """Completed-task throughput over the campaign's wall clock.

        Only tasks that produced a result count — failed and timed-out
        tasks are reported separately (``failed``/``timeouts``), not
        laundered into the throughput figure.
        """
        if self.wall_time <= 0.0:
            return 0.0
        return self.completed / self.wall_time

    def summary(self):
        durations = sorted(self.durations)
        return {
            "schema_version": SCHEMA_VERSION,
            "label": self.label,
            "executor": self.executor,
            "n_tasks": self.n_tasks,
            "completed": self.completed,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "worker_crashes": self.worker_crashes,
            "poisoned": self.poisoned,
            "pool_rebuilds": self.pool_rebuilds,
            "cache_quarantined": self.cache_quarantined,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "resumed": self.resumed,
            "waves": self.waves,
            "wall_time_s": self.wall_time,
            "samples_per_second": self.samples_per_second(),
            "task_time_total_s": sum(durations),
            "task_time_median_s": _median(durations),
            "task_time_max_s": durations[-1] if durations else None,
            "newton_solves": self.newton_solves,
            "newton_iterations": self.newton_iterations,
            "adaptive_runs": self.adaptive_runs,
            "adaptive_accepted": self.adaptive_accepted,
            "adaptive_rejected": self.adaptive_rejected,
            "ladder_retries": self.ladder_retries,
            "lu_factorizations": self.lu_factorizations,
            "lu_reuses": self.lu_reuses,
            "devices_bypassed": self.devices_bypassed,
            "bypass_forced_exact": self.bypass_forced_exact,
            "solver_phase_s": dict(self.solver.phase_s),
            "failure_taxonomy": dict(self.failure_taxonomy),
        }

    def to_json(self, path):
        with open(path, "w") as handle:
            json.dump(self.summary(), handle, indent=2, sort_keys=True)
        return path

    @staticmethod
    def load_summary(path):
        """Read back a :meth:`to_json` summary, validating its schema.

        Raises :class:`~repro.runtime.schema.SchemaVersionError` when
        the stored record comes from an unknown schema major.
        """
        with open(path) as handle:
            return check_schema_version(json.load(handle),
                                        what="run report " + str(path))

    def format_report(self):
        """Human-readable multi-line summary (CLI output)."""
        s = self.summary()
        lines = [
            "run report [{}]".format(self.label),
            "  tasks: {} ({} executed, {} cache hits, {} failed)".format(
                s["n_tasks"], s["cache_misses"], s["cache_hits"],
                s["failed"]),
            "  wall time: {:.2f}s ({:.2f} completed samples/s)".format(
                s["wall_time_s"], s["samples_per_second"]),
        ]
        if self.executor:
            lines.insert(1, "  executor: {}".format(self.executor))
        if self.newton_solves:
            newton = "  newton: {} solves, {} iterations".format(
                s["newton_solves"], s["newton_iterations"])
            if self.ladder_retries:
                newton += ", {} ladder retries".format(s["ladder_retries"])
            lines.append(newton)
        if self.adaptive_runs:
            lines.append(
                "  adaptive: {} accepted / {} rejected steps in {} runs"
                .format(s["adaptive_accepted"], s["adaptive_rejected"],
                        s["adaptive_runs"]))
        if self.lu_factorizations or self.lu_reuses:
            lines.append(
                "  fast path: {} LU factorizations, {} reuses, "
                "{} devices bypassed".format(
                    s["lu_factorizations"], s["lu_reuses"],
                    s["devices_bypassed"]))
        if s["solver_phase_s"]:
            lines.append("  solver phases: " + ", ".join(
                "{} {:.2f}s".format(name, seconds)
                for name, seconds in sorted(s["solver_phase_s"].items())))
        if self.failed:
            taxonomy = ", ".join(
                "{}x{}".format(count, name)
                for name, count in sorted(self.failure_taxonomy.items()))
            lines.append("  failures: {} ({}), {} timeouts, {} retries"
                         .format(s["failed"], taxonomy, s["timeouts"],
                                 s["retries"]))
        if (self.worker_crashes or self.poisoned or self.pool_rebuilds
                or self.cache_quarantined):
            lines.append(
                "  robustness: {} worker crashes, {} poisoned, "
                "{} pool rebuilds, {} cache quarantined".format(
                    s["worker_crashes"], s["poisoned"],
                    s["pool_rebuilds"], s["cache_quarantined"]))
        return "\n".join(lines)

    def __repr__(self):
        return ("RunReport({!r}, {} tasks, {} hits, {} failed)"
                .format(self.label, self.n_tasks, self.cache_hits,
                        self.failed))
