"""Executor backends for campaign tasks.

A *task* is ``fn(payload)`` where ``fn`` is a module-level callable and
``payload`` is picklable; both constraints only matter for the process
pool (the serial backend also accepts closures).  Executors return
:class:`TaskOutcome` records aligned with the payload list, so result
ordering never depends on worker scheduling — a prerequisite for
bit-identical serial/parallel campaigns.

The process backend wraps :class:`concurrent.futures.ProcessPoolExecutor`
with chunked dispatch, a per-task timeout and bounded retry, and it
survives the pathologies production actually sees:

* a worker killed mid-chunk (OOM, segfault) breaks the whole stdlib
  pool — the backend books honest ``WorkerCrash`` outcomes for the
  chunks that were running, rebuilds the pool, and re-dispatches only
  the chunks that never ran (a pool fault is not a task fault);
* a task that keeps crashing the pool is quarantined as a
  ``PoisonTask`` after ``crash_quarantine`` crashes instead of taking
  the campaign down with it on every retry;
* a hung solve's expired chunk triggers actual worker termination and
  a pool respawn, so the slot is reclaimed *mid-round* instead of
  limping one worker short until the round ends;
* a task that times out ``timeout_quarantine`` times is treated as a
  deterministic hang and quarantined, so retries stop burning
  ``retries x timeout`` of wall-clock on it;
* retry rounds are separated by exponential backoff with deterministic
  seeded jitter (transient resource exhaustion gets time to clear).

The failure taxonomy on outcomes is ``crashed`` / ``timed_out`` /
``poisoned`` (plus ordinary task exceptions); all three travel through
:class:`~repro.runtime.telemetry.RunReport` and the JSONL trace.
"""

import concurrent.futures
import multiprocessing
import os
import random
import time
from concurrent.futures.process import BrokenProcessPool

from .stats import stats_scope


class _FailedSentinel:
    """Marks a sample slot whose evaluation failed (vs. a legitimate
    ``None`` result)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<FAILED>"

    def __reduce__(self):
        return (_FailedSentinel, ())


#: singleton placed in result slots of failed/timed-out samples
FAILED = _FailedSentinel()


class WorkerError(RuntimeError):
    """A task failed in a worker process.

    Carries the original exception's class name and message (the
    exception object itself may not survive pickling back from the
    worker).
    """

    def __init__(self, error_type, message):
        super().__init__("{}: {}".format(error_type, message))
        self.error_type = error_type
        self.error_message = message


class TaskTimeout(WorkerError):
    """A task exceeded the executor's per-task timeout."""

    def __init__(self, seconds):
        super().__init__("TaskTimeout",
                         "no result within {:.1f}s".format(seconds))
        self.seconds = seconds


class WorkerCrash(WorkerError):
    """A worker process died (OOM, segfault, hard kill) mid-chunk.

    Distinct from a task raising: the task never produced an outcome —
    its worker vanished and the stdlib pool broke.  The executor
    rebuilds the pool and retries the task within its retry budget.
    """

    def __init__(self, message="worker process died mid-chunk"):
        super().__init__("WorkerCrash", message)


class PoisonTask(WorkerError):
    """A task was quarantined after repeatedly crashing or hanging.

    Poisoned tasks are excluded from further retry rounds: one
    deterministically-lethal input must not keep killing workers or
    burning ``retries x timeout`` of wall-clock for the whole campaign.
    """

    def __init__(self, message="task quarantined as poison"):
        super().__init__("PoisonTask", message)


def backoff_schedule(base, rounds, seed=0):
    """Per-retry-round sleep schedule: exponential with seeded jitter.

    Round ``r`` (0-based) waits ``base * 2**r`` scaled by a jitter
    factor drawn uniformly from [0.5, 1.5) — deterministic in ``seed``
    so identical campaigns back off identically (reproducible wall
    clocks in tests) while distinct seeds decorrelate retry storms
    across concurrent campaigns.
    """
    rng = random.Random(seed)
    return [base * (2.0 ** r) * (0.5 + rng.random())
            for r in range(max(0, int(rounds)))]


class TaskOutcome:
    """Result record for one task (picklable).

    ``stats`` is the full solver-effort snapshot of the task's
    instrumentation scope (see :mod:`repro.runtime.stats`): Newton
    solves/iterations, adaptive accepted/rejected steps, ladder
    retries, per-phase timings and — for chunk tasks of the batched
    engine — a per-sample attribution table.  It is recorded in the
    worker and travels back across the process boundary with the
    result, so parallel campaigns report the same counters as serial
    ones.

    ``crashes`` counts how many times this task's worker died across
    all rounds (nonzero even on a final ``ok`` outcome — a recovered
    crash still happened and the report books it); ``crashed`` /
    ``poisoned`` mark the final state itself.
    """

    __slots__ = ("index", "value", "error_type", "error_message",
                 "duration", "retries", "timed_out", "stats",
                 "crashed", "poisoned", "crashes")

    def __init__(self, index, value=None, error_type=None,
                 error_message=None, duration=0.0, retries=0,
                 timed_out=False, stats=None, crashed=False,
                 poisoned=False, crashes=0):
        self.index = index
        self.value = value
        self.error_type = error_type
        self.error_message = error_message
        self.duration = duration
        self.retries = retries
        self.timed_out = timed_out
        self.stats = stats
        self.crashed = crashed
        self.poisoned = poisoned
        self.crashes = crashes

    def _counter(self, name):
        if not self.stats:
            return 0
        return self.stats.get("counters", {}).get(name, 0)

    @property
    def newton_solves(self):
        return self._counter("newton_solves")

    @property
    def newton_iterations(self):
        return self._counter("newton_iterations")

    @property
    def ok(self):
        return self.error_type is None

    def error(self):
        """The failure as an exception object (None when ok)."""
        if self.ok:
            return None
        if self.poisoned:
            return PoisonTask(self.error_message)
        if self.timed_out:
            return TaskTimeout(self.duration)
        if self.crashed:
            return WorkerCrash(self.error_message)
        return WorkerError(self.error_type, self.error_message)

    def __repr__(self):
        state = "ok" if self.ok else self.error_type
        return "TaskOutcome({}, {}, {:.3f}s)".format(
            self.index, state, self.duration)


def _execute_one(fn, payload, index, chaos=None, attempt=0):
    """Run one task inside its own instrumentation scope.

    The scope isolates this task's solver effort from everything else
    in the process (no global diffing, so concurrent tasks cannot
    clobber each other's counters); the snapshot rides back on the
    outcome and the scope's totals still fold into the process root for
    the deprecated global views.

    ``chaos`` (a :class:`~repro.runtime.chaos.ChaosConfig`) may kill
    this worker or stall the task *before* any work happens, so an
    injected fault never leaks a half-computed result.
    """
    if chaos is not None:
        chaos.maybe_kill(index, attempt)
        chaos.maybe_hang(index, attempt)
    start = time.perf_counter()
    with stats_scope() as stats:
        try:
            value = fn(payload)
        except Exception as exc:  # noqa: BLE001 - taxonomy to caller
            return TaskOutcome(
                index, error_type=type(exc).__name__,
                error_message=str(exc),
                duration=time.perf_counter() - start,
                stats=stats.snapshot())
    return TaskOutcome(
        index, value=value, duration=time.perf_counter() - start,
        stats=stats.snapshot())


def _execute_chunk(fn, payloads, indices, chaos=None, attempt=0):
    """Worker-side entry point: run a chunk of tasks sequentially."""
    return [_execute_one(fn, payload, index, chaos=chaos, attempt=attempt)
            for payload, index in zip(payloads, indices)]


class SerialExecutor:
    """In-process execution preserving today's semantics.

    Accepts closures (nothing is pickled); ``timeout`` cannot be
    enforced in-process and is ignored; failed tasks are retried up to
    ``retries`` times.  Chaos injection does not apply here — the
    serial backend is the undisturbed reference a chaos campaign is
    compared against (and killing the only process would kill the
    campaign, not a worker).
    """

    n_jobs = 1
    pool_rebuilds = 0

    def __init__(self, retries=0):
        self.retries = int(retries)

    def map_tasks(self, fn, payloads, on_result=None):
        outcomes = []
        for index, payload in enumerate(payloads):
            outcome = _execute_one(fn, payload, index)
            for attempt in range(self.retries):
                if outcome.ok:
                    break
                outcome = _execute_one(fn, payload, index)
                outcome.retries = attempt + 1
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    def __repr__(self):
        return "SerialExecutor()"


def default_n_jobs():
    """Job count from ``REPRO_JOBS`` (falls back to the CPU count)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


class ProcessPoolExecutor:
    """Parallel backend on :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    n_jobs:
        Worker process count (default: ``REPRO_JOBS`` or the CPU count).
    chunk_size:
        Tasks per dispatch unit.  ``None`` picks ``ceil(n / (4 *
        n_jobs))`` so each worker sees a few chunks (load balancing)
        while amortising IPC for cheap tasks.
    timeout:
        Per-task wall-clock budget in seconds (``None`` = unbounded).  A
        chunk gets ``timeout * len(chunk)``; on expiry its tasks are
        marked timed out, the hung worker is terminated with its pool,
        and everything still unfinished re-dispatches on a fresh pool —
        the slot is reclaimed immediately, not at round end.
    retries:
        How many extra rounds failed/timed-out/crashed tasks get.
        Retries run with chunk size 1 so a poison task cannot shadow
        its chunk mates.
    backoff / backoff_seed:
        Base sleep (seconds) between retry rounds; round ``r`` waits
        ``backoff * 2**r`` with deterministic seeded jitter in
        [0.5x, 1.5x) (see :func:`backoff_schedule`).  0 disables.
    crash_quarantine:
        A task observed in this many pool crashes is quarantined as
        :class:`PoisonTask` and never re-dispatched.
    timeout_quarantine:
        A task that times out this many times is treated as a
        deterministic hang and quarantined likewise.
    mp_context:
        ``multiprocessing`` start method (default ``fork`` when
        available, else ``spawn``).
    chaos:
        Optional :class:`~repro.runtime.chaos.ChaosConfig` shipped to
        workers for deterministic fault injection (tests/CI only).

    The instance-level ``pool_rebuilds`` counter records how many times
    a pool was torn down by a fault (worker death or timeout reclaim)
    and respawned for the remaining work; the runner folds it into the
    :class:`~repro.runtime.telemetry.RunReport`.
    """

    def __init__(self, n_jobs=None, chunk_size=None, timeout=None,
                 retries=1, mp_context=None, backoff=0.05,
                 backoff_seed=0, crash_quarantine=3,
                 timeout_quarantine=2, chaos=None):
        self.n_jobs = default_n_jobs() if n_jobs is None else max(
            1, int(n_jobs))
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff = float(backoff)
        self.backoff_seed = int(backoff_seed)
        self.crash_quarantine = max(1, int(crash_quarantine))
        self.timeout_quarantine = max(1, int(timeout_quarantine))
        self.chaos = chaos
        self.pool_rebuilds = 0
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._mp_context = mp_context

    # ------------------------------------------------------------------

    def _resolve_chunk_size(self, n_tasks):
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        return max(1, -(-n_tasks // (4 * self.n_jobs)))

    def _make_pool(self, n_tasks):
        context = multiprocessing.get_context(self._mp_context)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.n_jobs, max(1, n_tasks)),
            mp_context=context)

    @staticmethod
    def _shutdown(pool, kill):
        if kill:
            # A worker may be stuck inside a diverging solve; shutdown()
            # would join it forever.  Terminate best-effort instead.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Outcome factories for the non-task failure modes
    # ------------------------------------------------------------------

    def _crash_outcome(self, index, attempt, crashes):
        if crashes >= self.crash_quarantine:
            return TaskOutcome(
                index, error_type="PoisonTask",
                error_message="quarantined after crashing the worker "
                "pool {} times".format(crashes),
                retries=attempt, crashed=True, poisoned=True,
                crashes=crashes)
        return TaskOutcome(
            index, error_type="WorkerCrash",
            error_message="worker process died mid-chunk "
            "(pool fault, crash {} of {} tolerated)".format(
                crashes, self.crash_quarantine - 1),
            retries=attempt, crashed=True, crashes=crashes)

    def _timeout_outcome(self, index, budget, attempt, n_timeouts,
                         crashes):
        if n_timeouts >= self.timeout_quarantine:
            return TaskOutcome(
                index, error_type="PoisonTask",
                error_message="quarantined as a deterministic hang "
                "after {} timeouts (no result within {:.1f}s "
                "each)".format(n_timeouts, budget),
                duration=budget, retries=attempt, timed_out=True,
                poisoned=True, crashes=crashes)
        return TaskOutcome(
            index, error_type="TaskTimeout",
            error_message="no result within {:.1f}s".format(budget),
            duration=budget, timed_out=True, retries=attempt,
            crashes=crashes)

    # ------------------------------------------------------------------

    def map_tasks(self, fn, payloads, on_result=None):
        payloads = list(payloads)
        outcomes = [None] * len(payloads)
        pending = list(range(len(payloads)))
        # Shared across rounds: how often each task's worker died and
        # how often it timed out — the quarantine thresholds look at
        # the whole history, not one round.
        crash_counts = {}
        timeout_counts = {}
        delays = backoff_schedule(self.backoff, self.retries,
                                  self.backoff_seed)
        for attempt in range(self.retries + 1):
            if not pending:
                break
            if attempt and delays[attempt - 1] > 0:
                time.sleep(delays[attempt - 1])
            # First round uses load-balancing chunks; retry rounds
            # isolate each task.
            size = 1 if attempt else self._resolve_chunk_size(len(pending))
            chunks = [pending[i:i + size]
                      for i in range(0, len(pending), size)]
            results = self._run_round(fn, payloads, chunks, attempt,
                                      on_result, crash_counts,
                                      timeout_counts)
            still_pending = []
            for index, outcome in results.items():
                outcomes[index] = outcome
                if not outcome.ok and not outcome.poisoned:
                    still_pending.append(index)
            pending = sorted(still_pending)
        for outcome in outcomes:
            # failures (including quarantined poison) were never
            # streamed; the caller's on_result sees every final outcome
            if outcome is not None and not outcome.ok \
                    and on_result is not None:
                on_result(outcome)
        return outcomes

    def _run_round(self, fn, payloads, chunks, attempt=0, on_result=None,
                   crash_counts=None, timeout_counts=None):
        """Run one dispatch round; returns ``{index: TaskOutcome}``.

        A round may span several pool lifetimes: a pool fault (worker
        death) or a timeout reclaim kills the current pool, and the
        chunks that never got to run re-dispatch on a fresh one.  Each
        respawn increments ``pool_rebuilds``.
        """
        crash_counts = {} if crash_counts is None else crash_counts
        timeout_counts = {} if timeout_counts is None else timeout_counts
        results = {}
        remaining = [list(chunk) for chunk in chunks]
        while remaining:
            remaining = self._dispatch(fn, payloads, remaining, attempt,
                                       on_result, results, crash_counts,
                                       timeout_counts)
        return results

    def _dispatch(self, fn, payloads, chunks, attempt, on_result,
                  results, crash_counts, timeout_counts):
        """One pool lifetime; returns the chunks to re-dispatch.

        Chunk results are consumed *as they complete* and successful
        outcomes are streamed to ``on_result`` immediately, so the
        caller's incremental cache writes / checkpoints land even if
        the campaign is killed mid-round.  A chunk's timeout clock
        starts when its future is observed running (queued chunks are
        not charged for time spent waiting behind busy workers).

        Returns a non-empty list only after a pool fault or a timeout
        reclaim: the unfinished chunks that should run on a fresh pool.
        """
        pool = self._make_pool(sum(len(c) for c in chunks))
        kill = False
        futures = {}
        started = set()
        settled = set()

        def settle(future):
            """Book one completed future; False on a pool-wide fault.

            A pool fault (``BrokenProcessPool``) is *not* recorded as a
            per-chunk task error — the tasks never ran (or their worker
            vanished), and booking them as ordinary failures would put
            a misleading taxonomy on work the pool lost, not the task.
            The caller classifies and re-dispatches instead.
            """
            chunk = futures[future]
            try:
                outcomes = future.result()
            except (BrokenProcessPool,
                    concurrent.futures.CancelledError):
                return False
            except Exception as exc:  # noqa: BLE001 - chunk fault
                for index in chunk:
                    results[index] = TaskOutcome(
                        index, error_type=type(exc).__name__,
                        error_message=str(exc), retries=attempt,
                        crashes=crash_counts.get(index, 0))
                settled.add(future)
                return True
            # on_result runs *outside* the pool-fault guard: an
            # exception it raises (cooperative cancellation, a broken
            # cache) is the caller unwinding the round, not a task
            # failure to be recorded.
            for outcome in outcomes:
                outcome.retries = attempt
                outcome.crashes = crash_counts.get(outcome.index, 0)
                results[outcome.index] = outcome
                if outcome.ok and on_result is not None:
                    on_result(outcome)
            settled.add(future)
            return True

        def drain_break():
            """Classify every unfinished chunk after a pool fault.

            Chunks that completed before the break settle normally.
            Of the rest, those observed *running* are crash suspects:
            their tasks get honest ``WorkerCrash`` outcomes (or
            ``PoisonTask`` past the quarantine threshold) and rejoin
            via the ordinary retry rounds.  Chunks that never started
            are innocent — they re-dispatch on the fresh pool without
            being booked as failures at all.
            """
            leftover = [f for f in futures if f not in settled]
            concurrent.futures.wait(leftover, timeout=5.0)
            unfinished = []
            for future in leftover:
                if future.done():
                    try:
                        exception = future.exception(timeout=0)
                    except (concurrent.futures.CancelledError,
                            concurrent.futures.TimeoutError):
                        exception = BrokenProcessPool()
                    if not isinstance(exception,
                                      (BrokenProcessPool, type(None))):
                        settle(future)  # genuine chunk error
                        continue
                    if exception is None:
                        settle(future)  # finished before the break
                        continue
                unfinished.append(future)
            suspects = [f for f in unfinished if f in started]
            if not suspects:
                # The break won the race against our running() polls;
                # without a better signal every unfinished chunk is a
                # suspect (prevents an unobserved crasher from being
                # re-dispatched forever as "innocent").
                suspects = list(unfinished)
            for future in suspects:
                for index in futures[future]:
                    crash_counts[index] = crash_counts.get(index, 0) + 1
                    results[index] = self._crash_outcome(
                        index, attempt, crash_counts[index])
            return [futures[f] for f in unfinished
                    if f not in set(suspects)]

        try:
            order = []
            for chunk in chunks:
                future = pool.submit(
                    _execute_chunk, fn, [payloads[i] for i in chunk],
                    chunk, self.chaos, attempt)
                futures[future] = chunk
                order.append(future)
            waiting = set(futures)
            # The stdlib pool prefetches work items into its IPC call
            # queue, so ``future.running()`` is True for chunks still
            # sitting in the pipe behind busy workers.  Only the first
            # ``n_slots`` running futures (submission order == worker
            # pickup order) can actually be executing; only those get a
            # timeout clock and crash suspicion — a chunk queued behind
            # a hog must be neither charged for the wait nor blamed for
            # a crash it could not have caused.
            n_slots = min(self.n_jobs, len(order))
            deadlines = {}
            while waiting:
                now = time.monotonic()
                running_now = [f for f in order
                               if f in waiting and f.running()]
                for future in running_now[:n_slots]:
                    if future not in started:
                        started.add(future)
                        if self.timeout is not None:
                            deadlines[future] = now + self.timeout * len(
                                futures[future])
                if self.timeout is not None:
                    expired = [f for f in waiting
                               if f in deadlines
                               and deadlines[f] <= now]
                    if expired:
                        kill = True
                        self.pool_rebuilds += 1
                        for future in expired:
                            waiting.discard(future)
                            chunk = futures[future]
                            budget = self.timeout * len(chunk)
                            for index in chunk:
                                timeout_counts[index] = \
                                    timeout_counts.get(index, 0) + 1
                                results[index] = self._timeout_outcome(
                                    index, budget, attempt,
                                    timeout_counts[index],
                                    crash_counts.get(index, 0))
                        # Actual slot reclaim: the hung worker dies
                        # with this pool and everything still waiting
                        # re-dispatches on a fresh one, so the round
                        # does not run a worker short until it ends.
                        return [futures[f] for f in waiting]
                    wait_s = min([deadlines[f] - now
                                  for f in waiting if f in deadlines]
                                 + [0.25])
                    wait_s = max(wait_s, 0.01)
                else:
                    # short poll (instead of blocking forever) keeps
                    # the `started` set fresh so a pool fault can tell
                    # running chunks from queued ones
                    wait_s = 0.25
                done, _ = concurrent.futures.wait(
                    waiting, timeout=wait_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                broke = False
                for future in done:
                    waiting.discard(future)
                    try:
                        if not settle(future):
                            broke = True
                    except BaseException:
                        # The caller is unwinding (cancellation): don't
                        # join workers still grinding through chunks —
                        # their per-item results were never settled and
                        # a cancelled run must return promptly.
                        kill = True
                        raise
                if broke:
                    kill = True
                    self.pool_rebuilds += 1
                    return drain_break()
            return []
        finally:
            self._shutdown(pool, kill=kill)

    def __repr__(self):
        return "ProcessPoolExecutor(n_jobs={}, timeout={})".format(
            self.n_jobs, self.timeout)
