"""Executor backends for campaign tasks.

A *task* is ``fn(payload)`` where ``fn`` is a module-level callable and
``payload`` is picklable; both constraints only matter for the process
pool (the serial backend also accepts closures).  Executors return
:class:`TaskOutcome` records aligned with the payload list, so result
ordering never depends on worker scheduling — a prerequisite for
bit-identical serial/parallel campaigns.

The process backend wraps :class:`concurrent.futures.ProcessPoolExecutor`
with chunked dispatch, a per-task timeout and bounded retry, so one
diverging Newton solve can neither hang a sweep forever nor kill it.
"""

import concurrent.futures
import multiprocessing
import os
import time

from .stats import stats_scope


class _FailedSentinel:
    """Marks a sample slot whose evaluation failed (vs. a legitimate
    ``None`` result)."""

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "<FAILED>"

    def __reduce__(self):
        return (_FailedSentinel, ())


#: singleton placed in result slots of failed/timed-out samples
FAILED = _FailedSentinel()


class WorkerError(RuntimeError):
    """A task failed in a worker process.

    Carries the original exception's class name and message (the
    exception object itself may not survive pickling back from the
    worker).
    """

    def __init__(self, error_type, message):
        super().__init__("{}: {}".format(error_type, message))
        self.error_type = error_type
        self.error_message = message


class TaskTimeout(WorkerError):
    """A task exceeded the executor's per-task timeout."""

    def __init__(self, seconds):
        super().__init__("TaskTimeout",
                         "no result within {:.1f}s".format(seconds))
        self.seconds = seconds


class TaskOutcome:
    """Result record for one task (picklable).

    ``stats`` is the full solver-effort snapshot of the task's
    instrumentation scope (see :mod:`repro.runtime.stats`): Newton
    solves/iterations, adaptive accepted/rejected steps, ladder
    retries, per-phase timings and — for chunk tasks of the batched
    engine — a per-sample attribution table.  It is recorded in the
    worker and travels back across the process boundary with the
    result, so parallel campaigns report the same counters as serial
    ones.
    """

    __slots__ = ("index", "value", "error_type", "error_message",
                 "duration", "retries", "timed_out", "stats")

    def __init__(self, index, value=None, error_type=None,
                 error_message=None, duration=0.0, retries=0,
                 timed_out=False, stats=None):
        self.index = index
        self.value = value
        self.error_type = error_type
        self.error_message = error_message
        self.duration = duration
        self.retries = retries
        self.timed_out = timed_out
        self.stats = stats

    def _counter(self, name):
        if not self.stats:
            return 0
        return self.stats.get("counters", {}).get(name, 0)

    @property
    def newton_solves(self):
        return self._counter("newton_solves")

    @property
    def newton_iterations(self):
        return self._counter("newton_iterations")

    @property
    def ok(self):
        return self.error_type is None

    def error(self):
        """The failure as an exception object (None when ok)."""
        if self.ok:
            return None
        if self.timed_out:
            return TaskTimeout(self.duration)
        return WorkerError(self.error_type, self.error_message)

    def __repr__(self):
        state = "ok" if self.ok else self.error_type
        return "TaskOutcome({}, {}, {:.3f}s)".format(
            self.index, state, self.duration)


def _execute_one(fn, payload, index):
    """Run one task inside its own instrumentation scope.

    The scope isolates this task's solver effort from everything else
    in the process (no global diffing, so concurrent tasks cannot
    clobber each other's counters); the snapshot rides back on the
    outcome and the scope's totals still fold into the process root for
    the deprecated global views.
    """
    start = time.perf_counter()
    with stats_scope() as stats:
        try:
            value = fn(payload)
        except Exception as exc:  # noqa: BLE001 - taxonomy to caller
            return TaskOutcome(
                index, error_type=type(exc).__name__,
                error_message=str(exc),
                duration=time.perf_counter() - start,
                stats=stats.snapshot())
    return TaskOutcome(
        index, value=value, duration=time.perf_counter() - start,
        stats=stats.snapshot())


def _execute_chunk(fn, payloads, indices):
    """Worker-side entry point: run a chunk of tasks sequentially."""
    return [_execute_one(fn, payload, index)
            for payload, index in zip(payloads, indices)]


class SerialExecutor:
    """In-process execution preserving today's semantics.

    Accepts closures (nothing is pickled); ``timeout`` cannot be
    enforced in-process and is ignored; failed tasks are retried up to
    ``retries`` times.
    """

    n_jobs = 1

    def __init__(self, retries=0):
        self.retries = int(retries)

    def map_tasks(self, fn, payloads, on_result=None):
        outcomes = []
        for index, payload in enumerate(payloads):
            outcome = _execute_one(fn, payload, index)
            for attempt in range(self.retries):
                if outcome.ok:
                    break
                outcome = _execute_one(fn, payload, index)
                outcome.retries = attempt + 1
            outcomes.append(outcome)
            if on_result is not None:
                on_result(outcome)
        return outcomes

    def __repr__(self):
        return "SerialExecutor()"


def default_n_jobs():
    """Job count from ``REPRO_JOBS`` (falls back to the CPU count)."""
    env = os.environ.get("REPRO_JOBS")
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


class ProcessPoolExecutor:
    """Parallel backend on :class:`concurrent.futures.ProcessPoolExecutor`.

    Parameters
    ----------
    n_jobs:
        Worker process count (default: ``REPRO_JOBS`` or the CPU count).
    chunk_size:
        Tasks per dispatch unit.  ``None`` picks ``ceil(n / (4 *
        n_jobs))`` so each worker sees a few chunks (load balancing)
        while amortising IPC for cheap tasks.
    timeout:
        Per-task wall-clock budget in seconds (``None`` = unbounded).  A
        chunk gets ``timeout * len(chunk)``; on expiry its tasks are
        marked timed out and the pool is recycled (best effort: hung
        workers are terminated).
    retries:
        How many extra rounds failed/timed-out tasks get.  Retries run
        with chunk size 1 so a poison task cannot shadow its chunk
        mates.
    mp_context:
        ``multiprocessing`` start method (default ``fork`` when
        available, else ``spawn``).
    """

    def __init__(self, n_jobs=None, chunk_size=None, timeout=None,
                 retries=1, mp_context=None):
        self.n_jobs = default_n_jobs() if n_jobs is None else max(
            1, int(n_jobs))
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.retries = int(retries)
        if mp_context is None:
            methods = multiprocessing.get_all_start_methods()
            mp_context = "fork" if "fork" in methods else "spawn"
        self._mp_context = mp_context

    # ------------------------------------------------------------------

    def _resolve_chunk_size(self, n_tasks):
        if self.chunk_size is not None:
            return max(1, int(self.chunk_size))
        return max(1, -(-n_tasks // (4 * self.n_jobs)))

    def _make_pool(self, n_tasks):
        context = multiprocessing.get_context(self._mp_context)
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=min(self.n_jobs, max(1, n_tasks)),
            mp_context=context)

    @staticmethod
    def _shutdown(pool, kill):
        if kill:
            # A worker may be stuck inside a diverging solve; shutdown()
            # would join it forever.  Terminate best-effort instead.
            processes = getattr(pool, "_processes", None) or {}
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:  # noqa: BLE001 - teardown best effort
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
        else:
            pool.shutdown(wait=True)

    # ------------------------------------------------------------------

    def map_tasks(self, fn, payloads, on_result=None):
        payloads = list(payloads)
        outcomes = [None] * len(payloads)
        pending = list(range(len(payloads)))
        for attempt in range(self.retries + 1):
            if not pending:
                break
            # First round uses load-balancing chunks; retry rounds
            # isolate each task.
            size = 1 if attempt else self._resolve_chunk_size(len(pending))
            chunks = [pending[i:i + size]
                      for i in range(0, len(pending), size)]
            results = self._run_round(fn, payloads, chunks, attempt,
                                      on_result)
            still_pending = []
            for index, outcome in results.items():
                outcomes[index] = outcome
                if not outcome.ok:
                    still_pending.append(index)
            pending = still_pending
        for index in pending:
            if on_result is not None:
                on_result(outcomes[index])
        return outcomes

    def _run_round(self, fn, payloads, chunks, attempt=0, on_result=None):
        """Run one dispatch round; returns ``{index: TaskOutcome}``.

        Chunk results are consumed *as they complete* and successful
        outcomes are streamed to ``on_result`` immediately, so the
        caller's incremental cache writes / checkpoints land even if
        the campaign is killed mid-round.  A chunk's timeout clock
        starts when its future is observed running (queued chunks are
        not charged for time spent waiting behind busy workers).
        """
        results = {}
        pool = self._make_pool(sum(len(c) for c in chunks))
        hung = False

        def settle_ok(future):
            chunk = futures[future]
            try:
                outcomes = future.result()
            except Exception as exc:  # noqa: BLE001 - pool fault
                for index in chunk:
                    results[index] = TaskOutcome(
                        index, error_type=type(exc).__name__,
                        error_message=str(exc))
                return
            # on_result runs *outside* the pool-fault guard: an
            # exception it raises (cooperative cancellation, a broken
            # cache) is the caller unwinding the round, not a task
            # failure to be recorded.
            for outcome in outcomes:
                outcome.retries = attempt
                results[outcome.index] = outcome
                if outcome.ok and on_result is not None:
                    on_result(outcome)

        try:
            futures = {}
            for chunk in chunks:
                future = pool.submit(_execute_chunk, fn,
                                     [payloads[i] for i in chunk], chunk)
                futures[future] = chunk
            waiting = set(futures)
            deadlines = {}
            while waiting:
                now = time.monotonic()
                if self.timeout is not None:
                    for future in waiting:
                        if future not in deadlines and future.running():
                            deadlines[future] = now + self.timeout * len(
                                futures[future])
                    expired = [f for f in waiting
                               if deadlines.get(f, now + 1.0) <= now]
                    for future in expired:
                        hung = True
                        waiting.discard(future)
                        future.cancel()
                        chunk = futures[future]
                        budget = self.timeout * len(chunk)
                        for index in chunk:
                            results[index] = TaskOutcome(
                                index, error_type="TaskTimeout",
                                error_message="no result within "
                                "{:.1f}s".format(budget),
                                duration=budget, timed_out=True,
                                retries=attempt)
                    if not waiting:
                        break
                    # cap the wait so newly started chunks get clocks
                    wait_s = min([deadlines[f] - now
                                  for f in waiting if f in deadlines]
                                 + [0.25])
                    wait_s = max(wait_s, 0.01)
                else:
                    wait_s = None
                done, _ = concurrent.futures.wait(
                    waiting, timeout=wait_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    waiting.discard(future)
                    try:
                        settle_ok(future)
                    except BaseException:
                        # The caller is unwinding (cancellation): don't
                        # join workers still grinding through chunks —
                        # their per-item results were never settled and
                        # a cancelled run must return promptly.
                        hung = True
                        raise
        finally:
            self._shutdown(pool, kill=hung)
        return results

    def __repr__(self):
        return "ProcessPoolExecutor(n_jobs={}, timeout={})".format(
            self.n_jobs, self.timeout)
