"""Schema versioning for persisted runtime records.

Three kinds of records outlive the process that wrote them: run-report
JSON summaries, JSONL trace events, and the service job store's job
records.  Each carries a ``schema_version`` of the form
``"<major>.<minor>"``:

* **major** bumps on incompatible shape changes (renamed/retyped
  fields).  Readers reject records from an unknown major instead of
  silently misreading them.
* **minor** bumps on additive changes (new optional fields).  Readers
  accept any minor of a known major and ignore fields they do not know.

Records written before versioning existed carry no field at all; they
are grandfathered in as major 1 (their shape *is* the 1.x shape).
"""

#: version stamped on every record written by this tree
#: (1.1: additive ``waves`` field on run-report summaries, per-point
#: ``n`` section on coverage-result exports; 1.2: additive robustness
#: counters — ``worker_crashes`` / ``poisoned`` / ``pool_rebuilds`` /
#: ``cache_quarantined`` on summaries, ``crashes`` on trace task events)
SCHEMA_VERSION = "1.2"

#: majors this tree knows how to read
KNOWN_MAJORS = (1,)


class SchemaVersionError(ValueError):
    """A stored record's ``schema_version`` has an unknown major."""


def parse_version(text):
    """``"<major>.<minor>"`` -> ``(major, minor)`` ints.

    Raises :class:`SchemaVersionError` on malformed strings (a record
    whose version field cannot be parsed is as unreadable as one from
    an unknown major).
    """
    try:
        major, _, minor = str(text).partition(".")
        return int(major), int(minor or 0)
    except (TypeError, ValueError):
        raise SchemaVersionError(
            "malformed schema_version {!r}".format(text)) from None


def stamp(record):
    """Stamp ``record`` (a dict) with the current schema version."""
    record.setdefault("schema_version", SCHEMA_VERSION)
    return record


def check_schema_version(record, what="record"):
    """Validate a stored record's version; returns the record.

    Accepts any minor of a known major and pre-versioning records
    (missing field); raises :class:`SchemaVersionError` for unknown
    majors — forward-compat records from a future tree must not be
    half-read.
    """
    version = record.get("schema_version") if isinstance(record, dict) \
        else None
    if version is None:
        return record
    major, _ = parse_version(version)
    if major not in KNOWN_MAJORS:
        raise SchemaVersionError(
            "{} has schema_version {} (major {}); this tree reads "
            "major(s) {}".format(what, version, major,
                                 ", ".join(map(str, KNOWN_MAJORS))))
    return record
