"""Context-scoped solver instrumentation.

Solver effort used to be tracked in module-global mutable dicts
(``repro.spice.mna.NEWTON_STATS`` and
``repro.spice.transient.ADAPTIVE_STATS``).  Globals lose information in
exactly the situations the campaign runtime cares about: counters
incremented inside worker processes never travel back to the parent's
:class:`~repro.runtime.telemetry.RunReport`, two concurrent scopes in
one process clobber each other's deltas, and a lockstep batch lumps a
whole chunk's effort into one number with no per-sample attribution.

This module replaces them with an explicit collector:

* :class:`SolverStats` — a plain counter record (Newton solves and
  iterations, adaptive accepted/rejected steps, gmin-ladder retries,
  per-phase timings, and an optional per-sample attribution table for
  the batched engine).
* :func:`stats_scope` — a nestable ``contextvars``-backed scope.  Code
  on the solver hot path records into :func:`current_stats`, which is
  the innermost open scope (or the process-root collector when none is
  open).  When a scope exits, its counters fold into the enclosing
  scope, so totals are conserved all the way up to the root.
* :class:`StatsView` — the deprecated read-only mapping the old global
  dict names are bound to.  It reads the process-root collector live,
  so existing benchmarks that snapshot ``dict(NEWTON_STATS)`` around a
  workload keep working; writes raise ``TypeError``.

The executor opens one scope per campaign task
(:func:`repro.runtime.executors._execute_one`) and ships the snapshot
back across the process boundary on the
:class:`~repro.runtime.executors.TaskOutcome`.
"""

import contextvars
import threading
import time
from collections.abc import Mapping
from contextlib import contextmanager

#: every counter a :class:`SolverStats` tracks
COUNTER_NAMES = (
    "newton_solves",
    "newton_iterations",
    "adaptive_runs",
    "adaptive_accepted",
    "adaptive_rejected",
    "ladder_retries",
    # factorization-reuse fast path (repro.spice.mna.NewtonState)
    "lu_factorizations",
    "lu_reuses",
    "devices_bypassed",
    "bypass_forced_exact",
)

#: counters the batched engine attributes per sample row
SAMPLE_COUNTER_NAMES = ("newton_solves", "newton_iterations")

#: guards cross-thread merges into a shared parent (scope exits are rare
#: — once per task — so a single module lock costs nothing)
_MERGE_LOCK = threading.Lock()


class SolverStats:
    """One collector's worth of solver-effort counters.

    ``samples`` maps a batch row index to its share of the effort; the
    batched engine fills it so chunk tasks can be re-attributed per
    item.  It is *scope-local*: :meth:`merge` deliberately folds only
    the totals, because row indices from different chunks would collide.
    """

    __slots__ = ("counters", "phase_s", "samples")

    def __init__(self):
        self.counters = dict.fromkeys(COUNTER_NAMES, 0)
        self.phase_s = {}
        self.samples = {}

    # -- recording -----------------------------------------------------

    def count(self, name, amount=1):
        """Increment counter ``name`` (unknown names raise KeyError)."""
        self.counters[name] = self.counters[name] + amount

    def count_sample(self, row, name, amount=1):
        """Attribute ``amount`` of counter ``name`` to batch row ``row``."""
        record = self.samples.get(int(row))
        if record is None:
            record = dict.fromkeys(SAMPLE_COUNTER_NAMES, 0)
            self.samples[int(row)] = record
        record[name] = record[name] + amount

    def add_phase(self, name, seconds):
        """Accumulate wall time under phase ``name``.

        Phases may nest (the gmin ladder's Newton solves count under
        both ``"newton"`` and ``"ladder"``), so phase times are a
        breakdown, not a partition of the task duration.
        """
        self.phase_s[name] = self.phase_s.get(name, 0.0) + float(seconds)

    @contextmanager
    def phase(self, name):
        start = time.perf_counter()
        try:
            yield
        finally:
            self.add_phase(name, time.perf_counter() - start)

    # -- folding / transport -------------------------------------------

    def merge(self, other):
        """Fold another collector (or a :meth:`snapshot` dict) in.

        Only totals and phase timings travel; per-sample attribution
        stays with the scope that recorded it (see class docstring).
        """
        if isinstance(other, SolverStats):
            counters, phase_s = other.counters, other.phase_s
        else:
            counters = other.get("counters", {})
            phase_s = other.get("phase_s", {})
        with _MERGE_LOCK:
            for name, amount in counters.items():
                if amount:
                    self.counters[name] = (
                        self.counters.get(name, 0) + amount)
            for name, seconds in phase_s.items():
                if seconds:
                    self.phase_s[name] = (
                        self.phase_s.get(name, 0.0) + seconds)
        return self

    def snapshot(self):
        """Picklable plain-dict copy (travels on ``TaskOutcome``)."""
        return {
            "counters": dict(self.counters),
            "phase_s": dict(self.phase_s),
            "samples": {row: dict(rec)
                        for row, rec in self.samples.items()},
        }

    def total(self, name):
        return self.counters.get(name, 0)

    def __repr__(self):
        active = {k: v for k, v in self.counters.items() if v}
        return "SolverStats({})".format(active or "empty")


#: process-root collector — the sink of last resort when no scope is
#: open, and the transitive destination of every closed scope's totals
_ROOT = SolverStats()

_SCOPE = contextvars.ContextVar("repro_solver_stats")


def root_stats():
    """The process-root collector (what the deprecated views read)."""
    return _ROOT


def current_stats():
    """The innermost open scope's collector, or the process root."""
    return _SCOPE.get(_ROOT)


@contextmanager
def stats_scope(stats=None):
    """Open a nested instrumentation scope.

    Everything recorded while the scope is active lands on its
    collector only; on exit the totals fold into the enclosing scope
    (ultimately the process root), so outer observers still see the
    effort — just not while it is being attributed elsewhere.
    """
    stats = SolverStats() if stats is None else stats
    token = _SCOPE.set(stats)
    try:
        yield stats
    finally:
        _SCOPE.reset(token)
        current_stats().merge(stats)


def record(name, amount=1):
    """Increment ``name`` on the active collector (hot-path helper)."""
    current_stats().count(name, amount)


class StatsView(Mapping):
    """Deprecated read-only live view of the process-root collector.

    Bound to the historical global names (``NEWTON_STATS``,
    ``ADAPTIVE_STATS``) with their historical key spellings.  Reading
    works exactly as before for code that snapshots deltas around a
    workload; mutation raises ``TypeError`` — hot paths must record
    through :func:`current_stats` instead.
    """

    __slots__ = ("_keymap",)

    def __init__(self, keymap):
        self._keymap = dict(keymap)

    def __getitem__(self, key):
        return _ROOT.counters[self._keymap[key]]

    def __iter__(self):
        return iter(self._keymap)

    def __len__(self):
        return len(self._keymap)

    def __setitem__(self, key, value):
        raise TypeError(
            "{} is a deprecated read-only view; record solver effort "
            "via repro.runtime.stats.current_stats()".format(
                type(self).__name__))

    def __repr__(self):
        return repr(dict(self))
