"""The campaign runner: executor + cache + checkpoint + telemetry.

:class:`Runtime` is the facade the experiment drivers use.  It maps a
module-level task function over a list of picklable payloads and

* skips tasks whose content-addressed key is already in the result
  cache (repeated figure regenerations, overlapping resistance sweeps,
  resumed campaigns);
* dispatches the rest through the configured executor backend;
* persists each fresh result and periodically checkpoints a manifest so
  an interrupted campaign resumes from completed samples;
* folds everything into a :class:`~repro.runtime.telemetry.RunReport`.

Results are placed by task index, so campaign output is bit-identical
between the serial and process-pool backends.
"""

import os

from .cache import CacheMiss, ResultCache
from .chaos import ChaosConfig
from .checkpoint import CampaignCheckpoint
from .executors import (FAILED, ProcessPoolExecutor, SerialExecutor,
                        default_n_jobs)
from .hashing import stable_hash
from .telemetry import RunReport
from .trace import TraceWriter

#: default on-disk cache location (overridden by ``REPRO_CACHE_DIR``)
DEFAULT_CACHE_DIR = ".repro_cache"

#: samples per lockstep batch in :meth:`Runtime.run_batched`; one chunk
#: is one executor task, so this is also the parallel dispatch grain
DEFAULT_BATCH_SIZE = 32


class CampaignCancelled(Exception):
    """A run was cancelled cooperatively via its ``should_stop`` callback.

    Raised by :meth:`Runtime.run`/:meth:`Runtime.run_batched` between
    settled tasks/chunks.  By the time this propagates the checkpoint
    manifest has been flushed and every already-settled result is in the
    cache, so re-running the same campaign resumes instead of
    restarting — a cancelled run is a paused run, not a torn one.
    """

    def __init__(self, label, done=0, total=0):
        super().__init__("campaign {!r} cancelled after {}/{} tasks"
                         .format(label, done, total))
        self.label = label
        self.done = done
        self.total = total


def engine_cache_tag(engine="scalar", adaptive=False, lte_tol=None,
                     solver=None):
    """Cache-key tag tuple for the simulation-engine configuration.

    Results from different engines, time-grid disciplines or Newton
    solver modes agree only to tolerance, never bit-exactly, so their
    cached rows must not alias.  The scalar fixed-step exact-Newton
    reference contributes no tokens (keeps every pre-existing cache
    entry valid); the batched engine, the adaptive grid and the
    factorization-reuse solver each add a discriminating token, and the
    adaptive tag includes the LTE tolerance because it changes the
    produced waveforms.
    """
    tag = []
    if engine != "scalar":
        tag.append("engine={}".format(engine))
    if adaptive:
        tag.append("grid=adaptive")
        if lte_tol is not None:
            tag.append("lte_tol={!r}".format(float(lte_tol)))
    if solver is not None and solver != "exact":
        tag.append("solver={}".format(solver))
    return tuple(tag)


class CampaignRun:
    """Outcome of one :meth:`Runtime.run` call."""

    def __init__(self, values, errors, report):
        #: per-task values; failed slots hold the ``FAILED`` sentinel
        self.values = list(values)
        #: ``{index: exception}`` for failed tasks
        self.errors = dict(errors)
        self.report = report

    def ok_values(self):
        return [v for v in self.values if v is not FAILED]

    def value_or_none(self, index):
        value = self.values[index]
        return None if value is FAILED else value

    def __len__(self):
        return len(self.values)

    def __repr__(self):
        return "CampaignRun({} tasks, {} failed)".format(
            len(self.values), len(self.errors))


class Runtime:
    """Campaign execution runtime.

    Parameters
    ----------
    executor:
        An executor backend (default: :class:`SerialExecutor`).
    cache:
        A :class:`ResultCache` (or path string), or None to disable
        result caching and checkpointing.
    checkpoint_every:
        Completed tasks between manifest writes.
    trace:
        A :class:`~repro.runtime.trace.TraceWriter` (or path string) to
        append one JSONL event per executed task, or None (default) to
        disable tracing.
    should_stop:
        Optional zero-argument callable polled between settled
        tasks/chunks by every :meth:`run`/:meth:`run_batched` call on
        this runtime (a per-call ``should_stop`` overrides it).  When
        it returns true the run flushes its checkpoint and raises
        :class:`CampaignCancelled` — cooperative cancellation for
        long-lived hosts such as the job service.
    chaos:
        A :class:`~repro.runtime.chaos.ChaosConfig` (or spec string such
        as ``"kill=0.2,corrupt=0.1,seed=7"``) enabling deterministic
        fault injection: worker kills/hangs are shipped to a process
        pool executor, cache corruption is applied right after each
        ``put``.  The serial backend is never disturbed — it is the
        reference a chaos campaign's results are compared against.
    """

    def __init__(self, executor=None, cache=None, checkpoint_every=8,
                 trace=None, should_stop=None, chaos=None):
        self.executor = SerialExecutor() if executor is None else executor
        if isinstance(cache, str):
            cache = ResultCache(cache)
        self.cache = cache
        self.checkpoint_every = checkpoint_every
        if isinstance(trace, str):
            trace = TraceWriter(trace)
        self.trace = trace
        self.should_stop = should_stop
        if isinstance(chaos, str):
            chaos = ChaosConfig.parse(chaos)
        self.chaos = chaos
        if chaos is not None and hasattr(self.executor, "chaos"):
            self.executor.chaos = chaos

    # ------------------------------------------------------------------

    @classmethod
    def from_env(cls, jobs=None, cache_dir=None, timeout=None, retries=1,
                 checkpoint_every=8, trace=None, chaos=None):
        """Build a runtime from ``REPRO_JOBS`` / ``REPRO_CACHE_DIR``.

        ``jobs=None`` reads ``REPRO_JOBS`` (unset: serial); ``jobs=0``
        means "all CPUs".  ``cache_dir=None`` reads ``REPRO_CACHE_DIR``
        (unset: caching disabled).  ``trace=None`` reads ``REPRO_TRACE``
        (unset: tracing disabled).  ``chaos=None`` reads ``REPRO_CHAOS``
        (unset: no fault injection).
        """
        if jobs is None:
            env = os.environ.get("REPRO_JOBS")
            jobs = int(env) if env else 1
        jobs = default_n_jobs() if jobs == 0 else max(1, int(jobs))
        if jobs > 1:
            executor = ProcessPoolExecutor(n_jobs=jobs, timeout=timeout,
                                           retries=retries)
        else:
            executor = SerialExecutor(retries=retries)
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR")
        cache = ResultCache(cache_dir) if cache_dir else None
        if trace is None:
            trace = os.environ.get("REPRO_TRACE") or None
        if chaos is None:
            chaos = ChaosConfig.from_env()
        return cls(executor=executor, cache=cache,
                   checkpoint_every=checkpoint_every, trace=trace,
                   chaos=chaos)

    @classmethod
    def from_config(cls, config):
        """Runtime described by an ``ExperimentConfig``-like object."""
        return cls.from_env(jobs=getattr(config, "n_jobs", None),
                            cache_dir=getattr(config, "cache_dir", None),
                            trace=getattr(config, "trace", None))

    @property
    def parallel(self):
        return getattr(self.executor, "n_jobs", 1) > 1

    # ------------------------------------------------------------------
    # Trace sink
    # ------------------------------------------------------------------

    def _trace_task(self, label, index, key, outcome, **extra):
        """Emit one ``task`` event for an executed (non-cached) task."""
        if self.trace is None:
            return
        event = {
            "event": "task",
            "label": label,
            "index": index,
            "key": key,
            "ok": outcome.ok,
            "error": outcome.error_type,
            "duration_s": outcome.duration,
            "retries": outcome.retries,
            "crashes": outcome.crashes,
            "stats": outcome.stats,
        }
        event.update(extra)
        self.trace.emit(event)

    def _trace_chunk(self, label, chunk, keys, outcome):
        """Emit one ``task`` event per *item* of a batched chunk.

        Each item carries its own slice of the chunk's effort: the
        per-sample attribution recorded by the lockstep engine (rows in
        the chunk's stats snapshot) and an equal share of the chunk's
        wall time.
        """
        if self.trace is None:
            return
        samples = (outcome.stats or {}).get("samples") or {}
        shared = dict(outcome.stats or {})
        shared.pop("samples", None)
        share = outcome.duration / max(1, len(chunk))
        for position, index in enumerate(chunk):
            per_item = samples.get(position)
            self.trace.emit({
                "event": "task",
                "label": label,
                "index": index,
                "key": keys[index] if keys is not None else None,
                "ok": outcome.ok,
                "error": outcome.error_type,
                "duration_s": share,
                "retries": outcome.retries,
                "crashes": outcome.crashes,
                "stats": ({"counters": per_item} if per_item is not None
                          else None),
                "chunk": outcome.index,
                "chunk_size": len(chunk),
                "chunk_stats": shared if position == 0 else None,
            })

    def _trace_report(self, report):
        if self.trace is None:
            return
        self.trace.emit({"event": "report", "label": report.label,
                         "summary": report.summary()})

    # ------------------------------------------------------------------

    def _scan_cache(self, keys, values, n, label, report, settle):
        """Fill ``values`` from the cache; returns (checkpoint, pending).

        ``pending`` holds the indices whose key missed (all indices when
        caching is disabled); ``checkpoint`` is None without a cache.
        """
        pending = list(range(n))
        if self.cache is None or keys is None:
            return None, pending
        if len(keys) != n:
            raise ValueError("need one cache key per payload")
        campaign_key = stable_hash("campaign", label, list(keys))
        checkpoint = CampaignCheckpoint(
            campaign_key, root=self.cache.root,
            every=self.checkpoint_every)
        previously = checkpoint.load()
        checkpoint.n_tasks = n
        pending = []
        for index, key in enumerate(keys):
            try:
                values[index] = self.cache.get(key)
            except CacheMiss:
                pending.append(index)
                continue
            report.record_hit(resumed=key in previously)
            checkpoint.mark_done(key)
            settle()
        return checkpoint, pending

    def _cancel_check(self, should_stop, label, done, total):
        """The cancellation poll shared by :meth:`run`/:meth:`run_batched`.

        Returns a zero-argument callable raising
        :class:`CampaignCancelled` when the effective ``should_stop``
        (per-call, else runtime-wide) reports true.
        """
        if should_stop is None:
            should_stop = self.should_stop

        def check():
            if should_stop is not None and should_stop():
                raise CampaignCancelled(label, done=done[0], total=total)

        return check

    def _robustness_baseline(self):
        """Snapshot the cumulative fault counters before a run.

        ``pool_rebuilds`` lives on the (long-lived, shareable) executor
        and ``quarantined`` on the cache; a report must book only this
        run's delta, not every run's history.
        """
        return (getattr(self.executor, "pool_rebuilds", 0),
                self.cache.quarantined if self.cache is not None else 0)

    def _fold_robustness(self, report, baseline):
        rebuilds, quarantined = baseline
        report.pool_rebuilds += (
            getattr(self.executor, "pool_rebuilds", 0) - rebuilds)
        if self.cache is not None:
            report.cache_quarantined += (
                self.cache.quarantined - quarantined)

    def _chaos_corrupt(self, key):
        """Chaos hook: maybe clobber the object just written for ``key``
        (exercises the corrupt-cache quarantine path on the next read)."""
        if (self.chaos is not None and self.cache is not None
                and self.chaos.should_corrupt(key)):
            self.chaos.corrupt_object(self.cache, key)

    def run(self, fn, payloads, keys=None, label="campaign",
            report=None, progress=None, should_stop=None):
        """Map ``fn`` over ``payloads``; returns a :class:`CampaignRun`.

        ``keys`` enables caching/checkpointing: one stable cache key per
        payload (see :func:`repro.runtime.hashing.stable_hash`).
        ``progress(done, total)`` is invoked after every settled task.
        ``should_stop()`` is polled after every settled task; when true
        the run raises :class:`CampaignCancelled` with the checkpoint
        manifest flushed (the run stays resumable).
        """
        payloads = list(payloads)
        n = len(payloads)
        report = RunReport(label) if report is None else report
        report.start(self.executor)
        values = [FAILED] * n
        errors = {}
        done = [0]
        check_cancel = self._cancel_check(should_stop, label, done, n)

        def settle(count=1):
            done[0] += count
            if progress is not None:
                progress(done[0], n)

        robustness = self._robustness_baseline()
        checkpoint, pending = self._scan_cache(keys, values, n, label,
                                               report, settle)

        def on_result(outcome):
            index = pending[outcome.index]
            if outcome.ok and self.cache is not None and keys is not None:
                self.cache.put(keys[index], outcome.value)
                self._chaos_corrupt(keys[index])
                checkpoint.mark_done(keys[index])
            self._trace_task(label, index,
                             keys[index] if keys is not None else None,
                             outcome)
            settle()
            check_cancel()

        # The manifest must always flush — a clean finish may hold up to
        # ``checkpoint_every - 1`` unflushed marks, and an exception
        # escaping the dispatch (cache write failure, cancellation,
        # KeyboardInterrupt) must not lose the progress already made.
        try:
            check_cancel()
            if pending:
                outcomes = self.executor.map_tasks(
                    fn, [payloads[i] for i in pending],
                    on_result=on_result)
                for outcome in outcomes:
                    index = pending[outcome.index]
                    report.record_outcome(outcome)
                    if outcome.ok:
                        values[index] = outcome.value
                    else:
                        errors[index] = outcome.error()
        finally:
            if checkpoint is not None:
                checkpoint.flush()
            self._fold_robustness(report, robustness)
            report.finish()
        self._trace_report(report)
        return CampaignRun(values, errors, report)

    def run_batched(self, fn, payloads, keys=None, batch_size=None,
                    label="campaign", report=None, progress=None,
                    should_stop=None):
        """Map a *chunk* task over ``payloads`` in lockstep batches.

        ``fn`` receives a **list** of payloads and must return a list of
        values of the same length (the batched-engine contract: one
        worker invocation simulates a whole chunk of samples in
        lockstep).  Each chunk is one executor task, so this composes
        with the process pool — chunks fan out over workers while the
        batched engine vectorises within each.  Cache and checkpoint
        granularity stays **per item**: cached items never re-enter a
        chunk, and every item of a completed chunk is persisted under
        its own key.  A failed chunk marks all of its items failed.
        ``should_stop()`` is polled between settled chunks (see
        :meth:`run`); a cancelled run keeps every completed chunk.
        """
        payloads = list(payloads)
        n = len(payloads)
        batch_size = (DEFAULT_BATCH_SIZE if batch_size is None
                      else max(1, int(batch_size)))
        report = RunReport(label) if report is None else report
        report.start(self.executor)
        values = [FAILED] * n
        errors = {}
        done = [0]
        check_cancel = self._cancel_check(should_stop, label, done, n)

        def settle(count=1):
            done[0] += count
            if progress is not None:
                progress(done[0], n)

        robustness = self._robustness_baseline()
        checkpoint, pending = self._scan_cache(keys, values, n, label,
                                               report, settle)
        chunks = [pending[i:i + batch_size]
                  for i in range(0, len(pending), batch_size)]

        def unpack(outcome):
            """Chunk values, or an exception when the chunk is unusable."""
            chunk = chunks[outcome.index]
            if not outcome.ok:
                return outcome.error()
            chunk_values = outcome.value
            if (not isinstance(chunk_values, (list, tuple))
                    or len(chunk_values) != len(chunk)):
                return ValueError(
                    "chunk task returned {} values for {} payloads".format(
                        len(chunk_values) if isinstance(
                            chunk_values, (list, tuple)) else
                        type(chunk_values).__name__, len(chunk)))
            return list(chunk_values)

        def on_result(outcome):
            chunk = chunks[outcome.index]
            unpacked = unpack(outcome)
            if (isinstance(unpacked, list) and self.cache is not None
                    and keys is not None):
                for index, value in zip(chunk, unpacked):
                    self.cache.put(keys[index], value)
                    self._chaos_corrupt(keys[index])
                    checkpoint.mark_done(keys[index])
            self._trace_chunk(label, chunk, keys, outcome)
            settle(len(chunk))
            check_cancel()

        try:
            check_cancel()
            if chunks:
                outcomes = self.executor.map_tasks(
                    fn, [[payloads[i] for i in chunk] for chunk in chunks],
                    on_result=on_result)
                for outcome in outcomes:
                    chunk = chunks[outcome.index]
                    # A chunk is an executor artifact, not a campaign
                    # unit: book its effort per item so batched and
                    # scalar campaigns report comparable task counts.
                    report.record_outcome(outcome, n_items=len(chunk))
                    unpacked = unpack(outcome)
                    if isinstance(unpacked, list):
                        for index, value in zip(chunk, unpacked):
                            values[index] = value
                    else:
                        for index in chunk:
                            errors[index] = unpacked
        finally:
            if checkpoint is not None:
                checkpoint.flush()
            self._fold_robustness(report, robustness)
            report.finish()
        self._trace_report(report)
        return CampaignRun(values, errors, report)
