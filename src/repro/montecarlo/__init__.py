"""Monte Carlo parameter-fluctuation sampling and execution."""

from .engine import MonteCarloResult, run_population
from .sampling import (GLOBAL_FIELDS, NominalModel, VariationModel,
                       sample_population)
from .statistics import (coverage_fraction, samples_for_halfwidth,
                         summarize, wilson_excludes, wilson_halfwidth,
                         wilson_interval)

__all__ = [
    "VariationModel", "NominalModel", "sample_population", "GLOBAL_FIELDS",
    "run_population", "MonteCarloResult",
    "coverage_fraction", "summarize", "wilson_interval",
    "wilson_halfwidth", "wilson_excludes", "samples_for_halfwidth",
]
