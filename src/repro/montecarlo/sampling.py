"""Parameter-fluctuation sampling (the paper's Monte Carlo population).

Section 4: "a sample S of circuit instances ... has been generated
according to a normal distribution of main circuit parameters with a 10%
standard deviation".  We split the fluctuation into a die-to-die (global)
component applied to the technology and a within-die (local) per-device
component, both normally distributed and truncated at 3 sigma.

Determinism matters: the same instance must be measurable fault-free and
faulty with *identical* device parameters, and instances must be
reproducible across processes.  Per-device factors are therefore derived
from a hash of ``(instance seed, device name)`` rather than from draw
order.
"""

import zlib

import numpy as np

#: technology fields subject to die-to-die fluctuation
GLOBAL_FIELDS = ("kpn", "kpp", "vtn", "vtp", "cox_area", "cov_width",
                 "cj_width", "c_wire")


def _truncated_normal(rng, sigma, size=None):
    """N(1, sigma) truncated to [1 - 3 sigma, 1 + 3 sigma]."""
    draw = rng.normal(1.0, sigma, size=size)
    return np.clip(draw, 1.0 - 3.0 * sigma, 1.0 + 3.0 * sigma)


class VariationModel:
    """One Monte Carlo circuit instance's parameter fluctuations.

    Parameters
    ----------
    seed:
        Instance identity; everything below is a pure function of it.
    sigma_global:
        Die-to-die relative sigma applied to technology fields.
    sigma_local:
        Within-die relative sigma applied per device (kp, vt, caps).
    sigma_timing:
        Relative sigma for auxiliary timing quantities (flip-flop CQ/setup,
        sensing-circuit threshold, clock period) — the "uncertainties" lists
        of Sec. 3.
    """

    def __init__(self, seed, sigma_global=0.05, sigma_local=0.05,
                 sigma_timing=0.03):
        self.seed = int(seed)
        self.sigma_global = float(sigma_global)
        self.sigma_local = float(sigma_local)
        self.sigma_timing = float(sigma_timing)
        rng = np.random.default_rng(self.seed)
        factors = _truncated_normal(rng, self.sigma_global,
                                    size=len(GLOBAL_FIELDS))
        self.global_factors = dict(zip(GLOBAL_FIELDS, factors))

    # ------------------------------------------------------------------

    def apply_to_technology(self, tech):
        """Technology with this instance's die-to-die factors applied."""
        if self.sigma_global == 0.0:
            return tech
        return tech.scaled(self.global_factors)

    def _named_rng(self, name):
        token = zlib.crc32(name.encode("utf-8"))
        return np.random.default_rng((self.seed << 32) ^ token)

    def device_factors(self, device_name):
        """Within-die (kp, vt, c) factors for one transistor."""
        if self.sigma_local == 0.0:
            return 1.0, 1.0, 1.0
        rng = self._named_rng("dev:" + device_name)
        kp_f, vt_f, c_f = _truncated_normal(rng, self.sigma_local, size=3)
        return float(kp_f), float(vt_f), float(c_f)

    def timing_factor(self, label):
        """Multiplicative fluctuation for a named timing quantity."""
        if self.sigma_timing == 0.0:
            return 1.0
        rng = self._named_rng("time:" + label)
        return float(_truncated_normal(rng, self.sigma_timing))

    def __repr__(self):
        return ("VariationModel(seed={}, sg={:g}, sl={:g}, st={:g})"
                .format(self.seed, self.sigma_global, self.sigma_local,
                        self.sigma_timing))


class NominalModel(VariationModel):
    """The no-fluctuation instance (all factors exactly 1)."""

    def __init__(self):
        super().__init__(seed=0, sigma_global=0.0, sigma_local=0.0,
                         sigma_timing=0.0)

    def __repr__(self):
        return "NominalModel()"


def sample_population(n_samples, base_seed=1, **kwargs):
    """The paper's sample ``S``: ``n_samples`` deterministic instances."""
    if n_samples < 1:
        raise ValueError("need at least one sample")
    return [VariationModel(seed=base_seed + i, **kwargs)
            for i in range(n_samples)]
