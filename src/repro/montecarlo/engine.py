"""Monte Carlo execution engine.

Deliberately simple: a worker function is applied to every
:class:`~repro.montecarlo.sampling.VariationModel` in a population.
Failures can either propagate or be collected, and a progress callback
keeps long electrical sweeps observable.

``run_population`` is now a thin shim over the campaign runtime
(:mod:`repro.runtime`): the default path preserves the historical
serial semantics exactly, while passing an executor routes the
population through a parallel backend.  Failed samples are marked with
the :data:`~repro.runtime.executors.FAILED` sentinel internally, so a
worker that legitimately returns ``None`` is distinguishable from a
failed one.
"""

from ..runtime.executors import FAILED, SerialExecutor


class MonteCarloResult:
    """Results of a population run, aligned with the sample list.

    Failed samples (collect mode) are stored internally as the
    ``FAILED`` sentinel; the public :attr:`values` view renders them as
    ``None`` for backward compatibility, while :meth:`ok_values` keeps
    legitimate ``None`` results and drops only genuine failures.
    """

    def __init__(self, samples, values, errors):
        self.samples = list(samples)
        self._values = list(values)
        #: ``{index: exception}`` for failed samples (collect_errors mode)
        self.errors = dict(errors)

    @property
    def values(self):
        """Per-sample values, ``None`` in failed slots."""
        return [None if v is FAILED else v for v in self._values]

    def __len__(self):
        return len(self._values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        value = self._values[index]
        return None if value is FAILED else value

    def ok_values(self):
        """Values from samples that completed without error."""
        return [v for v in self._values if v is not FAILED]

    @property
    def n_failed(self):
        return len(self.errors)


def run_population(worker, samples, progress=None, collect_errors=False,
                   executor=None, batch_worker=None, batch_size=32):
    """Apply ``worker(sample)`` to every sample.

    Parameters
    ----------
    worker:
        Callable taking a variation model and returning any value.
        Must be picklable (module-level) for process-pool executors.
        May be ``None`` when ``batch_worker`` is given.
    samples:
        Iterable of variation models.
    progress:
        Optional callable ``(index, total, sample)`` invoked before each
        evaluation (serial) or dispatch (parallel).
    collect_errors:
        When True, exceptions are recorded per-sample instead of
        aborting the sweep.
    executor:
        Optional runtime executor backend
        (:class:`~repro.runtime.SerialExecutor` or
        :class:`~repro.runtime.ProcessPoolExecutor`).  ``None`` keeps
        the historical in-process loop, including fail-fast semantics:
        without ``collect_errors`` the first error aborts the sweep
        immediately.
    batch_worker:
        Optional callable taking a *list* of samples and returning a
        list of per-sample values (the batched lockstep-engine path).
        When given it replaces ``worker`` and samples are dispatched in
        chunks of ``batch_size``; a failing chunk marks all of its
        samples failed (collect mode) or aborts the sweep.
    """
    samples = list(samples)
    total = len(samples)
    if batch_worker is not None:
        return _run_population_batched(batch_worker, samples, total,
                                       progress, collect_errors,
                                       executor, batch_size)
    if executor is None or (isinstance(executor, SerialExecutor)
                            and executor.retries == 0):
        values = []
        errors = {}
        for index, sample in enumerate(samples):
            if progress is not None:
                progress(index, total, sample)
            if collect_errors:
                try:
                    values.append(worker(sample))
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    values.append(FAILED)
                    errors[index] = exc
            else:
                values.append(worker(sample))
        return MonteCarloResult(samples, values, errors)

    if progress is not None:
        for index, sample in enumerate(samples):
            progress(index, total, sample)
    outcomes = executor.map_tasks(worker, samples)
    values = [FAILED] * total
    errors = {}
    for outcome in outcomes:
        if outcome.ok:
            values[outcome.index] = outcome.value
        else:
            errors[outcome.index] = outcome.error()
    if errors and not collect_errors:
        raise errors[min(errors)]
    return MonteCarloResult(samples, values, errors)


def _unpack_chunk(value, chunk_len):
    """Chunk-worker values, or an exception when the result is unusable."""
    if not isinstance(value, (list, tuple)) or len(value) != chunk_len:
        got = (len(value) if isinstance(value, (list, tuple))
               else type(value).__name__)
        return ValueError("batch worker returned {} values for {} samples"
                          .format(got, chunk_len))
    return list(value)


def _run_population_batched(batch_worker, samples, total, progress,
                            collect_errors, executor, batch_size):
    """Chunked dispatch path of :func:`run_population`.

    Each chunk of samples is one ``batch_worker`` invocation (and one
    executor task in parallel mode); a failing chunk marks all of its
    samples with the FAILED sentinel when ``collect_errors`` is set.
    """
    batch_size = max(1, int(batch_size))
    chunks = [list(range(start, min(start + batch_size, total)))
              for start in range(0, total, batch_size)]
    values = [FAILED] * total
    errors = {}

    def record_chunk(chunk, result):
        unpacked = _unpack_chunk(result, len(chunk))
        if isinstance(unpacked, list):
            for index, value in zip(chunk, unpacked):
                values[index] = value
        else:
            for index in chunk:
                errors[index] = unpacked

    if executor is None or (isinstance(executor, SerialExecutor)
                            and executor.retries == 0):
        for chunk in chunks:
            if progress is not None:
                for index in chunk:
                    progress(index, total, samples[index])
            if collect_errors:
                try:
                    result = batch_worker([samples[i] for i in chunk])
                except Exception as exc:  # noqa: BLE001 - reported to caller
                    for index in chunk:
                        errors[index] = exc
                    continue
            else:
                result = batch_worker([samples[i] for i in chunk])
            record_chunk(chunk, result)
            if errors and not collect_errors:
                raise errors[min(errors)]
        return MonteCarloResult(samples, values, errors)

    if progress is not None:
        for index, sample in enumerate(samples):
            progress(index, total, sample)
    outcomes = executor.map_tasks(
        batch_worker, [[samples[i] for i in chunk] for chunk in chunks])
    for outcome in outcomes:
        chunk = chunks[outcome.index]
        if outcome.ok:
            record_chunk(chunk, outcome.value)
        else:
            for index in chunk:
                errors[index] = outcome.error()
    if errors and not collect_errors:
        raise errors[min(errors)]
    return MonteCarloResult(samples, values, errors)
