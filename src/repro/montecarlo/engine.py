"""Monte Carlo execution engine.

Deliberately simple: a worker function is applied to every
:class:`~repro.montecarlo.sampling.VariationModel` in a population.
Failures can either propagate or be collected, and a progress callback
keeps long electrical sweeps observable.
"""


class MonteCarloResult:
    """Results of a population run, aligned with the sample list."""

    def __init__(self, samples, values, errors):
        self.samples = list(samples)
        self.values = list(values)
        #: ``{index: exception}`` for failed samples (collect_errors mode)
        self.errors = dict(errors)

    def __len__(self):
        return len(self.values)

    def __iter__(self):
        return iter(self.values)

    def __getitem__(self, index):
        return self.values[index]

    def ok_values(self):
        """Values from samples that completed without error."""
        return [v for i, v in enumerate(self.values)
                if i not in self.errors]

    @property
    def n_failed(self):
        return len(self.errors)


def run_population(worker, samples, progress=None, collect_errors=False):
    """Apply ``worker(sample)`` to every sample.

    Parameters
    ----------
    worker:
        Callable taking a variation model and returning any value.
    samples:
        Iterable of variation models.
    progress:
        Optional callable ``(index, total, sample)`` invoked before each
        evaluation.
    collect_errors:
        When True, exceptions are recorded per-sample (value ``None``)
        instead of aborting the sweep.
    """
    samples = list(samples)
    values = []
    errors = {}
    total = len(samples)
    for index, sample in enumerate(samples):
        if progress is not None:
            progress(index, total, sample)
        if collect_errors:
            try:
                values.append(worker(sample))
            except Exception as exc:  # noqa: BLE001 - reported to caller
                values.append(None)
                errors[index] = exc
        else:
            values.append(worker(sample))
    return MonteCarloResult(samples, values, errors)
