"""Small statistics helpers used by the coverage experiments."""

import math

import numpy as np


def coverage_fraction(values, predicate):
    """Fraction of ``values`` satisfying ``predicate`` (the paper's C_del /
    C_pulse definition: fraction of IC instances flagged by the test)."""
    values = list(values)
    if not values:
        raise ValueError("coverage of an empty population is undefined")
    hits = sum(1 for v in values if predicate(v))
    return hits / len(values)


def summarize(values):
    """Mean / std / min / max / quartiles of a numeric sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "q25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "q75": float(np.percentile(arr, 75)),
    }


def wilson_interval(hits, total, z=1.96):
    """Wilson score interval for a coverage fraction.

    Coverage curves from modest MC populations need error bars; the Wilson
    interval behaves sanely at 0 and 1 where the normal approximation
    collapses.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= hits <= total:
        raise ValueError("hits must lie in [0, total]")
    p = hits / total
    denom = 1.0 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    half = (z * math.sqrt(p * (1 - p) / total
                          + z * z / (4 * total * total))) / denom
    return max(0.0, centre - half), min(1.0, centre + half)


def wilson_halfwidth(hits, total, z=1.96):
    """Half the Wilson interval's width (the adaptive campaigns' per-point
    precision measure).

    The interval is clipped to [0, 1], so near the boundaries the
    half-width is smaller than the unclipped ``half`` term — exactly the
    quantity a sequential stopping rule should compare against a target
    precision, because the clipped interval is what gets reported.
    """
    lo, hi = wilson_interval(hits, total, z=z)
    return 0.5 * (hi - lo)


def wilson_excludes(hits, total, target, z=1.96):
    """True when the Wilson interval lies entirely on one side of
    ``target`` — the point's above/below-target question is answered.

    Boundary targets are decided by counts, not by the interval: the
    clipped interval always touches 0.0/1.0, so "coverage reaches 1.0"
    is conclusively false as soon as one sample misses (and symmetrically
    for 0.0), never conclusively true.
    """
    if target >= 1.0:
        return hits < total
    if target <= 0.0:
        return hits > 0
    lo, hi = wilson_interval(hits, total, z=z)
    return hi < target or lo > target


def samples_for_halfwidth(width, z=1.96):
    """Smallest n with a worst-case (p = 0.5) Wilson half-width <= width.

    Sizes the escalation-wave ceiling of an adaptive campaign: beyond
    this population even the hardest point stops on precision rather
    than on sample exhaustion.
    """
    if not 0.0 < width < 0.5:
        raise ValueError("width must lie in (0, 0.5)")
    n = 1
    while wilson_halfwidth(n - n // 2, n, z=z) > width:
        n *= 2
    lo, hi = n // 2, n
    while lo + 1 < hi:
        mid = (lo + hi) // 2
        if wilson_halfwidth(mid - mid // 2, mid, z=z) > width:
            lo = mid
        else:
            hi = mid
    return hi
