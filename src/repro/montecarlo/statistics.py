"""Small statistics helpers used by the coverage experiments."""

import math

import numpy as np


def coverage_fraction(values, predicate):
    """Fraction of ``values`` satisfying ``predicate`` (the paper's C_del /
    C_pulse definition: fraction of IC instances flagged by the test)."""
    values = list(values)
    if not values:
        raise ValueError("coverage of an empty population is undefined")
    hits = sum(1 for v in values if predicate(v))
    return hits / len(values)


def summarize(values):
    """Mean / std / min / max / quartiles of a numeric sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarise an empty sample")
    return {
        "n": int(arr.size),
        "mean": float(arr.mean()),
        "std": float(arr.std(ddof=1)) if arr.size > 1 else 0.0,
        "min": float(arr.min()),
        "max": float(arr.max()),
        "q25": float(np.percentile(arr, 25)),
        "median": float(np.percentile(arr, 50)),
        "q75": float(np.percentile(arr, 75)),
    }


def wilson_interval(hits, total, z=1.96):
    """Wilson score interval for a coverage fraction.

    Coverage curves from modest MC populations need error bars; the Wilson
    interval behaves sanely at 0 and 1 where the normal approximation
    collapses.
    """
    if total <= 0:
        raise ValueError("total must be positive")
    if not 0 <= hits <= total:
        raise ValueError("hits must lie in [0, total]")
    p = hits / total
    denom = 1.0 + z * z / total
    centre = (p + z * z / (2 * total)) / denom
    half = (z * math.sqrt(p * (1 - p) / total
                          + z * z / (4 * total * total))) / denom
    return max(0.0, centre - half), min(1.0, centre + half)
