"""Technology description and per-device parameter derivation.

The reproduction uses a generic quarter-micron-class CMOS technology tuned
so that the studied structures land on the paper's scales: stage delays of
one to two hundred picoseconds, path delays around a nanosecond, minimal
propagatable pulse widths of a few hundred picoseconds (Fig. 10 plots
``w_in`` between 0.3 and 0.5 ns).

All numbers are instance attributes so Monte Carlo sampling can perturb
them per circuit instance (die-to-die part) while
:class:`~repro.montecarlo.sampling.VariationModel` adds per-device
(within-die) factors.
"""

from ..spice.mosfet import MosfetParams


class Technology:
    """Process + sizing assumptions used by the cell library.

    Parameters
    ----------
    vdd:
        Supply voltage (V).
    vtn, vtp:
        Threshold magnitudes (V), both positive.
    kpn, kpp:
        Process transconductance ``mu * Cox`` (A/V^2).
    lambda_n, lambda_p:
        Channel-length modulation (1/V).
    length:
        Drawn channel length (m).
    wn_unit, wp_unit:
        Unit widths (m) for NMOS/PMOS in a 1x inverter.
    cox_area:
        Gate-oxide capacitance per area (F/m^2).
    cov_width:
        Gate-drain/source overlap capacitance per width (F/m).
    cj_width:
        Junction capacitance per width at drain/source (F/m).
    c_wire:
        Wire capacitance added at every cell output (F).
    edge_time:
        Nominal rise/fall time of externally injected stimuli (s).
    """

    FIELDS = ("vdd", "vtn", "vtp", "kpn", "kpp", "lambda_n", "lambda_p",
              "length", "wn_unit", "wp_unit", "cox_area", "cov_width",
              "cj_width", "c_wire", "edge_time")

    def __init__(self, name="generic250", vdd=2.5, vtn=0.50, vtp=0.55,
                 kpn=120e-6, kpp=40e-6, lambda_n=0.06, lambda_p=0.08,
                 length=0.25e-6, wn_unit=0.8e-6, wp_unit=2.0e-6,
                 cox_area=6.0e-3, cov_width=0.35e-9, cj_width=0.9e-9,
                 c_wire=12e-15, edge_time=60e-12):
        self.name = name
        self.vdd = float(vdd)
        self.vtn = float(vtn)
        self.vtp = float(vtp)
        self.kpn = float(kpn)
        self.kpp = float(kpp)
        self.lambda_n = float(lambda_n)
        self.lambda_p = float(lambda_p)
        self.length = float(length)
        self.wn_unit = float(wn_unit)
        self.wp_unit = float(wp_unit)
        self.cox_area = float(cox_area)
        self.cov_width = float(cov_width)
        self.cj_width = float(cj_width)
        self.c_wire = float(c_wire)
        self.edge_time = float(edge_time)

    # ------------------------------------------------------------------

    @property
    def vdd_half(self):
        """The 50 % measurement level used throughout the paper."""
        return 0.5 * self.vdd

    def gate_input_capacitance(self, wn=None, wp=None):
        """Input capacitance presented by a gate of the given widths (F)."""
        wn = self.wn_unit if wn is None else wn
        wp = self.wp_unit if wp is None else wp
        area = (wn + wp) * self.length
        overlap = 2.0 * (wn + wp) * self.cov_width
        return self.cox_area * area + overlap

    def mosfet_params(self, polarity, width, kp_factor=1.0, vt_factor=1.0,
                      c_factor=1.0):
        """Build :class:`MosfetParams` for a device of ``width``.

        The ``*_factor`` arguments carry per-device Monte Carlo variation.
        """
        if polarity == "nmos":
            kp, vt, lam = self.kpn, self.vtn, self.lambda_n
        elif polarity == "pmos":
            kp, vt, lam = self.kpp, self.vtp, self.lambda_p
        else:
            raise ValueError("polarity must be 'nmos' or 'pmos'")
        c_gate = self.cox_area * width * self.length
        c_ov = self.cov_width * width
        c_j = self.cj_width * width
        return MosfetParams(
            kp=kp * kp_factor,
            vt=vt * vt_factor,
            lam=lam,
            cgs=(0.5 * c_gate + c_ov) * c_factor,
            cgd=(0.5 * c_gate * 0.5 + c_ov) * c_factor,
            cdb=c_j * c_factor,
            csb=0.5 * c_j * c_factor,
        )

    # ------------------------------------------------------------------

    def copy(self, **overrides):
        """Copy with selected fields overridden."""
        kwargs = {f: getattr(self, f) for f in self.FIELDS}
        kwargs.update(overrides)
        return Technology(name=self.name, **kwargs)

    def scaled(self, factors):
        """Copy with multiplicative ``{field: factor}`` perturbations."""
        kwargs = {f: getattr(self, f) for f in self.FIELDS}
        for field, factor in factors.items():
            if field not in kwargs:
                raise ValueError("unknown technology field {!r}".format(field))
            kwargs[field] = kwargs[field] * factor
        return Technology(name=self.name, **kwargs)

    def __repr__(self):
        return "Technology({!r}, vdd={:g}V)".format(self.name, self.vdd)


def default_technology():
    """The nominal technology used by all experiments."""
    return Technology()
