"""Bus-line structures (the conclusions' handshake-bus use case).

"Since the proposed method is completely independent of synchronization
constraints, it can also be used to test bus lines using handshake
protocols to transfer data."

A bus line here is driver -> distributed RC interconnect -> receiver.
Resistive vias along the wire are the classic open-defect location; the
pulse test needs no clock at either end, so a request/acknowledge
handshake can frame it.
"""

from ..spice import Circuit, Dc
from ..spice.errors import NetlistError
from .library import build_inverter, unit_device_factors
from .technology import default_technology


class BusLineCircuit:
    """A built bus line plus measurement metadata."""

    def __init__(self, circuit, tech, wire_nodes, input_source,
                 driver_cell, receiver_cell):
        self.circuit = circuit
        self.tech = tech
        #: wire nodes from the driver output to the receiver input
        self.wire_nodes = list(wire_nodes)
        self.input_source = input_source
        self.driver_cell = driver_cell
        self.receiver_cell = receiver_cell

    @property
    def input_node(self):
        return "bus_in"

    @property
    def output_node(self):
        return "bus_out"

    @property
    def n_segments(self):
        return len(self.wire_nodes) - 1

    def set_input_pulse(self, width, kind="h", delay=None, edge=None):
        """Same stimulus contract as PathCircuit.set_input_pulse."""
        from ..spice.sources import make_stimulus
        from ..spice import Pulse
        edge = self.tech.edge_time if edge is None else edge
        delay = 4 * edge if delay is None else delay
        flat = max(width - edge, 0.0)
        if kind == "h":
            v1, v2 = 0.0, self.tech.vdd
        elif kind == "l":
            v1, v2 = self.tech.vdd, 0.0
        else:
            raise NetlistError("pulse kind must be 'h' or 'l'")
        self.circuit.element(self.input_source).stimulus = make_stimulus(
            Pulse(v1, v2, delay=delay, rise=edge, width=flat, fall=edge))
        return delay

    def copy(self):
        return BusLineCircuit(self.circuit.copy(), self.tech,
                              self.wire_nodes, self.input_source,
                              self.driver_cell, self.receiver_cell)

    def __repr__(self):
        return "BusLineCircuit({} wire segments)".format(self.n_segments)


def build_bus_line(tech=None, n_segments=8, wire_resistance=600.0,
                   wire_capacitance=180e-15, driver_strength=4.0,
                   device_factors=None, title="bus line"):
    """Driver + distributed-RC wire + receiver.

    ``wire_resistance``/``wire_capacitance`` are wire totals, split
    evenly over ``n_segments`` pi-ish sections (C at segment ends).
    """
    if n_segments < 1:
        raise NetlistError("need at least one wire segment")
    tech = default_technology() if tech is None else tech
    device_factors = (unit_device_factors if device_factors is None
                      else device_factors)

    circuit = Circuit(title)
    circuit.add_vsource("VDD", "vdd", "0", Dc(tech.vdd))
    circuit.add_vsource("VIN", "bus_in", "0", Dc(0.0))

    driver = build_inverter(circuit, "busdrv", "bus_in", "w0", tech,
                            device_factors=device_factors,
                            strength=driver_strength)

    r_seg = wire_resistance / n_segments
    c_seg = wire_capacitance / n_segments
    wire_nodes = ["w0"]
    circuit.add_capacitor("cw0", "w0", "0", 0.5 * c_seg)
    for i in range(1, n_segments + 1):
        node = "w{}".format(i)
        circuit.add_resistor("rw{}".format(i), wire_nodes[-1], node,
                             r_seg)
        cap = c_seg if i < n_segments else 0.5 * c_seg
        circuit.add_capacitor("cw{}".format(i), node, "0", cap)
        wire_nodes.append(node)

    # Driver and receiver invert once each, so bus_out tracks the input
    # pulse polarity.
    receiver = build_inverter(circuit, "busrcv", wire_nodes[-1],
                              "bus_out", tech,
                              device_factors=device_factors,
                              strength=1.5)
    return BusLineCircuit(circuit, tech, wire_nodes, "VIN", driver,
                          receiver)


def inject_wire_open(bus, segment, resistance, res_name="R_fault"):
    """Resistive via at the boundary entering wire segment ``segment``.

    Implemented as extra series resistance in that segment's resistor —
    a partial break of the corresponding via/wire piece.
    """
    if not 1 <= segment <= bus.n_segments:
        raise NetlistError("segment {} out of range".format(segment))
    faulty = bus.copy()
    circuit = faulty.circuit
    wire_res = circuit.element("rw{}".format(segment))
    mid = circuit.new_node("via")
    downstream = wire_res.node("n")
    wire_res.rewire("n", mid)
    circuit.add_resistor(res_name, mid, downstream, resistance)
    return faulty
