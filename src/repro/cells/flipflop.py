"""Transistor-level D flip-flop (transmission-gate master-slave).

The DF-testing baseline's timing parameters τ_CQ and τ_DC (setup) are
behavioural inputs in Sec. 4; this cell lets the repository *measure*
them electrically instead of assuming them:

    d --TG(clk=0)--+-- inv -- m2 --TG(clk=1)--+-- inv -- q
                   |feedback inv, TG(clk=1)   |feedback inv, TG(clk=0)

``measure_clk_to_q`` and ``measure_setup_time`` drive the cell through
real transients; :func:`flipflop_timing_from_electrical` packages the
results as the behavioural :class:`repro.dft.FlipFlopTiming`.
"""

from ..spice import Circuit, Dc, Pulse, run_transient
from .library import _params, build_inverter, unit_device_factors
from .technology import default_technology


def build_transmission_gate(circuit, name, a, b, ctrl, ctrl_b, tech,
                            device_factors=unit_device_factors,
                            vdd="vdd", strength=1.0):
    """NMOS+PMOS pass gate between ``a`` and ``b``.

    Conducting when ``ctrl`` is high (NMOS gate) / ``ctrl_b`` low.
    """
    wn = tech.wn_unit * strength
    wp = tech.wp_unit * strength
    mn = "{}.MN".format(name)
    mp = "{}.MP".format(name)
    circuit.add_nmos(mn, a, ctrl, b, "0", wn, tech.length,
                     _params(tech, "nmos", wn, mn, device_factors))
    circuit.add_pmos(mp, a, ctrl_b, b, vdd, wp, tech.length,
                     _params(tech, "pmos", wp, mp, device_factors))
    return mn, mp


class FlipFlopCircuit:
    """A built DFF plus its stimulus handles."""

    def __init__(self, circuit, tech, d_source, clk_source):
        self.circuit = circuit
        self.tech = tech
        self.d_source = d_source
        self.clk_source = clk_source

    @property
    def q_node(self):
        return "q"


def build_dff(tech=None, device_factors=unit_device_factors,
              title="tg dff"):
    """Positive-edge-triggered TG master-slave DFF.

    Master transparent while clk is low, slave while clk is high.
    """
    tech = default_technology() if tech is None else tech
    c = Circuit(title)
    c.add_vsource("VDD", "vdd", "0", Dc(tech.vdd))
    c.add_vsource("VD", "d", "0", Dc(0.0))
    c.add_vsource("VCLK", "clk", "0", Dc(0.0))
    kwargs = {"device_factors": device_factors}

    build_inverter(c, "ckb", "clk", "clkb", tech, **kwargs)

    # Master: input TG transparent when clk low (ctrl = clkb).
    build_transmission_gate(c, "tgi", "d", "m1", "clkb", "clk", tech,
                            **kwargs)
    build_inverter(c, "mi1", "m1", "m2", tech, **kwargs)
    build_inverter(c, "mi2", "m2", "mfb", tech, strength=0.5, **kwargs)
    build_transmission_gate(c, "tgmf", "mfb", "m1", "clk", "clkb", tech,
                            strength=0.5, **kwargs)

    # Slave: TG transparent when clk high.
    build_transmission_gate(c, "tgs", "m2", "s1", "clk", "clkb", tech,
                            **kwargs)
    build_inverter(c, "si1", "s1", "q", tech, strength=2.0, **kwargs)
    build_inverter(c, "si2", "q", "sfb", tech, strength=0.5, **kwargs)
    build_transmission_gate(c, "tgsf", "sfb", "s1", "clkb", "clk", tech,
                            strength=0.5, **kwargs)
    c.add_capacitor("cq", "q", "0", 3 * tech.gate_input_capacitance())
    return FlipFlopCircuit(c, tech, "VD", "VCLK")


def _capture_run(dff, data_time, clk_time, d_value=1, dt=3e-12,
                 tail=1.2e-9):
    """Drive D to ``d_value`` at ``data_time``, clock at ``clk_time``.

    The internal latches power up bistably, so an *init* clock pulse
    first captures the opposite value, guaranteeing the measured edge
    produces a real Q transition.
    """
    tech = dff.tech
    edge = tech.edge_time
    from ..spice.sources import make_stimulus, Pwl
    v_from = 0.0 if d_value else tech.vdd
    v_to = tech.vdd if d_value else 0.0
    dff.circuit.element(dff.d_source).stimulus = make_stimulus(
        Pulse(v_from, v_to, delay=data_time, rise=edge, width=1.0))
    # init pulse well before data_time, then the measured edge
    t_init = min(data_time, clk_time) * 0.3
    w_init = min(data_time, clk_time) * 0.25
    dff.circuit.element(dff.clk_source).stimulus = make_stimulus(Pwl([
        (0.0, 0.0),
        (t_init, 0.0),
        (t_init + edge, tech.vdd),
        (t_init + w_init, tech.vdd),
        (t_init + w_init + edge, 0.0),
        (clk_time - 0.5 * edge, 0.0),
        (clk_time + 0.5 * edge, tech.vdd),
    ]))
    tstop = clk_time + tail
    return run_transient(dff.circuit, tstop, dt,
                         record=["d", "clk", dff.q_node])


def measure_clk_to_q(dff=None, tech=None, dt=3e-12, clk_time=1.6e-9):
    """τ_CQ: 50% clock edge to 50% Q edge with ample setup."""
    dff = build_dff(tech=tech) if dff is None else dff
    waveform = _capture_run(dff, data_time=0.7e-9, clk_time=clk_time,
                            dt=dt)
    half = dff.tech.vdd_half
    after = clk_time - 3 * dff.tech.edge_time
    t_clk = waveform.first_crossing("clk", half, "rise", after=after)
    t_q = waveform.first_crossing(dff.q_node, half, "rise",
                                  after=t_clk)
    if t_q is None:
        raise ValueError("flip-flop failed to capture with ample setup")
    return t_q - t_clk


def measure_setup_time(dff=None, tech=None, dt=3e-12, resolution=4e-12,
                       window=0.5e-9, degradation=1.3):
    """Setup time by bisection on the data-to-clock interval.

    The setup time is the smallest D-before-clk interval at which the
    cell still captures with a clk-to-q no worse than ``degradation`` x
    the ample-setup value (the standard setup definition).
    """
    dff = build_dff(tech=tech) if dff is None else dff
    clk_time = 1.6e-9
    nominal_cq = measure_clk_to_q(dff, dt=dt, clk_time=clk_time)
    half = dff.tech.vdd_half
    after = clk_time - 3 * dff.tech.edge_time

    def captures(setup):
        waveform = _capture_run(dff, data_time=clk_time - setup,
                                clk_time=clk_time, dt=dt)
        t_clk = waveform.first_crossing("clk", half, "rise",
                                        after=after)
        t_q = waveform.first_crossing(dff.q_node, half, "rise",
                                      after=t_clk)
        if t_q is None:
            return False
        return (t_q - t_clk) <= degradation * nominal_cq

    lo, hi = 0.0, window
    if not captures(hi):
        raise ValueError("flip-flop never captures within the window")
    while hi - lo > resolution:
        mid = 0.5 * (lo + hi)
        if captures(mid):
            hi = mid
        else:
            lo = mid
    return hi


def flipflop_timing_from_electrical(tech=None, dt=3e-12):
    """Measured behavioural timing for :mod:`repro.dft`."""
    from ..dft import FlipFlopTiming

    dff = build_dff(tech=tech)
    tau_cq = measure_clk_to_q(dff, dt=dt)
    tau_dc = measure_setup_time(dff, dt=dt)
    return FlipFlopTiming(tau_cq=tau_cq, tau_dc=tau_dc)
