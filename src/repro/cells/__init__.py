"""Transistor-level CMOS cells, technology and sensitized-path builders."""

from .bus import BusLineCircuit, build_bus_line, inject_wire_open
from .chain import PathCircuit, build_path
from .flipflop import (FlipFlopCircuit, build_dff, build_transmission_gate,
                       flipflop_timing_from_electrical, measure_clk_to_q,
                       measure_setup_time)
from .library import (CellInstance, GATE_KINDS, build_gate, build_inverter,
                      build_nand, build_nor, unit_device_factors)
from .technology import Technology, default_technology

__all__ = [
    "Technology", "default_technology",
    "CellInstance", "GATE_KINDS", "build_gate", "build_inverter",
    "build_nand", "build_nor", "unit_device_factors",
    "PathCircuit", "build_path",
    "BusLineCircuit", "build_bus_line", "inject_wire_open",
    "FlipFlopCircuit", "build_dff", "build_transmission_gate",
    "measure_clk_to_q", "measure_setup_time",
    "flipflop_timing_from_electrical",
]
