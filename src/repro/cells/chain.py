"""Sensitized-path circuit builder.

This reproduces the paper's experimental structure: a path of ``n`` CMOS
gates with every side input tied to its non-controlling value, the path
input driven by an ideal source (pulse generator / launching flip-flop
abstraction), realistic fan-out loading at each stage, and an explicit side
fan-out gate at the stage targeted by external-open experiments (Fig. 1b:
node B drives the on-path branch B->C and an off-path sink).
"""

from ..spice import Circuit, Dc, Pulse
from ..spice.errors import NetlistError
from .library import build_gate, build_inverter, unit_device_factors
from .technology import default_technology


class PathCircuit:
    """A built sensitized path plus everything needed to measure it."""

    def __init__(self, circuit, tech, stage_nodes, cells, input_source,
                 vdd_node="vdd", side_fanout_cells=None):
        self.circuit = circuit
        self.tech = tech
        #: node names along the path: stage_nodes[0] is the driven input,
        #: stage_nodes[-1] the path output (a PO in the paper's setting)
        self.stage_nodes = list(stage_nodes)
        self.cells = list(cells)
        self.input_source = input_source
        self.vdd_node = vdd_node
        self.side_fanout_cells = dict(side_fanout_cells or {})

    @property
    def input_node(self):
        return self.stage_nodes[0]

    @property
    def output_node(self):
        return self.stage_nodes[-1]

    @property
    def n_gates(self):
        return len(self.cells)

    def inversions_to(self, stage_index):
        """Number of logic inversions from the input to stage output
        ``stage_index`` (1-based; 0 = the path input itself)."""
        return sum(1 for cell in self.cells[:stage_index] if cell.inverting)

    def idle_level(self, stage_index, input_level):
        """Static logic value of stage node ``stage_index`` when the input
        idles at ``input_level`` (0/1)."""
        if self.inversions_to(stage_index) % 2 == 0:
            return input_level
        return 1 - input_level

    def set_input(self, stimulus):
        """Replace the input source stimulus."""
        from ..spice.sources import make_stimulus
        self.circuit.element(self.input_source).stimulus = (
            make_stimulus(stimulus))

    def set_input_pulse(self, width, kind="h", delay=None, edge=None):
        """Drive the input with a pulse of the given 50 %-width.

        ``kind="h"`` is a 0->VDD->0 pulse, ``kind="l"`` VDD->0->VDD.  The
        ``width`` argument is interpreted at the 50 % level, so the flat
        top is ``width - edge`` long (SPICE ``pw`` counts only the flat
        part and each ramp contributes half an edge at 50 %).
        """
        tech = self.tech
        edge = tech.edge_time if edge is None else edge
        delay = 4 * edge if delay is None else delay
        flat = width - edge
        if flat < 0.0:
            # Narrower than one edge: keep ramps but shrink the plateau
            # to zero; the 50%-width is then ~edge (the floor for the
            # injector hardware).
            flat = 0.0
        if kind == "h":
            v1, v2 = 0.0, tech.vdd
        elif kind == "l":
            v1, v2 = tech.vdd, 0.0
        else:
            raise NetlistError("pulse kind must be 'h' or 'l'")
        self.set_input(Pulse(v1, v2, delay=delay, rise=edge, width=flat,
                             fall=edge))
        return delay

    def set_input_transition(self, direction="rise", delay=None, edge=None):
        """Drive the input with a single transition (DF-testing stimulus)."""
        tech = self.tech
        edge = tech.edge_time if edge is None else edge
        delay = 4 * edge if delay is None else delay
        if direction == "rise":
            v1, v2 = 0.0, tech.vdd
        elif direction == "fall":
            v1, v2 = tech.vdd, 0.0
        else:
            raise NetlistError("direction must be 'rise' or 'fall'")
        # A one-shot transition: a pulse whose plateau outlasts any window.
        self.set_input(Pulse(v1, v2, delay=delay, rise=edge, width=1.0,
                             fall=edge))
        return delay

    def cell_at(self, stage_index):
        """Cell driving stage node ``stage_index`` (1-based)."""
        if not 1 <= stage_index <= self.n_gates:
            raise NetlistError(
                "stage index {} out of range".format(stage_index))
        return self.cells[stage_index - 1]

    def copy(self):
        clone = PathCircuit(
            self.circuit.copy(), self.tech, self.stage_nodes, self.cells,
            self.input_source, self.vdd_node, self.side_fanout_cells)
        return clone


def build_path(tech=None, gate_kinds=("inv",) * 7, device_factors=None,
               fanout_loads=2, side_fanout_stages=(2,), input_idle=0,
               title="sensitized path"):
    """Build the paper's sensitized-path test structure.

    Parameters
    ----------
    tech:
        Technology (defaults to :func:`default_technology`).
    gate_kinds:
        Gate kind per stage, e.g. ``("inv", "nand2", ...)``; length sets
        the path length (paper: 7 gates).
    device_factors:
        Per-device variation callable ``name -> (kp_f, vt_f, c_f)``.
    fanout_loads:
        Equivalent fan-out (in unit-gate input capacitances) loading every
        stage output in addition to the on-path gate and wire.
    side_fanout_stages:
        1-based stage indices that receive a *real* side inverter on their
        output (the off-path branch of Fig. 1b).  External-open injection
        splits the net between these sinks and the on-path sink.
    input_idle:
        Idle logic value of the path input; pulses start from it.
    """
    tech = default_technology() if tech is None else tech
    device_factors = unit_device_factors if device_factors is None else (
        device_factors)

    circuit = Circuit(title)
    circuit.add_vsource("VDD", "vdd", "0", Dc(tech.vdd))
    idle_v = tech.vdd if input_idle else 0.0
    circuit.add_vsource("VIN", "a0", "0", Dc(idle_v))

    stage_nodes = ["a0"]
    cells = []
    side_fanout_cells = {}

    for i, kind in enumerate(gate_kinds, start=1):
        in_node = stage_nodes[-1]
        out_node = "a{}".format(i)
        cell, side_nodes = build_gate(
            circuit, kind, "g{}".format(i), in_node, out_node, tech,
            device_factors=device_factors)
        # Tie side inputs to sensitizing values (Sec. 3 of the paper):
        # uniform non-controlling for NAND/NOR, per-pin values for
        # complex AOI/OAI gates.
        for side in side_nodes:
            if cell.side_ties is not None:
                value = cell.side_ties[side]
            else:
                value = cell.noncontrolling_value()
            _tie_node(circuit, side, "vdd" if value == 1 else "0")
        # Fan-out loading: equivalent capacitance of `fanout_loads` unit
        # gate inputs.
        if fanout_loads > 0:
            c_fan = fanout_loads * tech.gate_input_capacitance()
            circuit.add_capacitor("g{}.cfan".format(i), out_node, "0", c_fan)
        # Real off-path sink (needed as the healthy branch for external
        # opens and as the observable aggressor neighbourhood).
        if i in set(side_fanout_stages):
            side_cell = build_inverter(
                circuit, "g{}s".format(i), out_node, "a{}s".format(i), tech,
                device_factors=device_factors)
            circuit.add_capacitor(
                "g{}s.cl".format(i), "a{}s".format(i), "0",
                2 * tech.gate_input_capacitance())
            side_fanout_cells[i] = side_cell
        cells.append(cell)
        stage_nodes.append(out_node)

    return PathCircuit(circuit, tech, stage_nodes, cells, "VIN",
                       side_fanout_cells=side_fanout_cells)


def _tie_node(circuit, node, rail):
    """Tie ``node`` to a rail by rewiring every terminal referencing it."""
    for element in circuit.elements():
        element.rewire_node(node, rail)
