"""Transistor-level CMOS standard cells.

Each builder instantiates devices into a :class:`~repro.spice.Circuit` and
returns a :class:`CellInstance` describing the structure — which devices
form the pull-up/pull-down rail connections, which nodes are internal —
because the fault injectors need that information to model internal
resistive opens (Fig. 1a of the paper: a series resistance between VDD and
the pull-up network).

All cells here are single-stage inverting CMOS gates (INV/NAND/NOR); BUF is
the two-inverter composite.  Device names are ``<cell>.<device>`` and
internal nodes ``<cell>:<node>`` so instances never collide.
"""

from ..spice.errors import NetlistError


def unit_device_factors(_device_name):
    """Default per-device variation: no fluctuation."""
    return 1.0, 1.0, 1.0


class CellInstance:
    """Structural record of one placed cell."""

    def __init__(self, name, kind, inputs, output, nmos_names, pmos_names,
                 pullup_rail_devices, pulldown_rail_devices,
                 internal_nodes, inverting=True, side_ties=None):
        self.name = name
        self.kind = kind
        self.inputs = list(inputs)
        self.output = output
        self.nmos_names = list(nmos_names)
        self.pmos_names = list(pmos_names)
        #: (device_name, terminal) pairs whose rewiring models an internal
        #: resistive open in the pull-up network
        self.pullup_rail_devices = list(pullup_rail_devices)
        #: same for the pull-down network
        self.pulldown_rail_devices = list(pulldown_rail_devices)
        self.internal_nodes = list(internal_nodes)
        self.inverting = inverting
        #: per-side-input tie values (``{node: 0/1}``) for complex gates
        #: whose pins have different non-controlling values (AOI/OAI);
        #: None for simple gates (use :meth:`noncontrolling_value`)
        self.side_ties = dict(side_ties) if side_ties else None

    def noncontrolling_value(self):
        """Logic value that keeps a side input transparent (1 for NAND/INV
        paths through NAND, 0 for NOR)."""
        if self.kind.startswith("nand") or self.kind in ("inv", "buf"):
            return 1
        if self.kind.startswith("nor"):
            return 0
        raise NetlistError(
            "no non-controlling value defined for {!r}".format(self.kind))

    def __repr__(self):
        return "CellInstance({} {}: {} -> {})".format(
            self.kind, self.name, self.inputs, self.output)


def _params(tech, polarity, width, device_name, device_factors):
    kp_f, vt_f, c_f = device_factors(device_name)
    return tech.mosfet_params(polarity, width, kp_factor=kp_f,
                              vt_factor=vt_f, c_factor=c_f)


def _add_wire_load(circuit, tech, name, output):
    if tech.c_wire > 0.0:
        circuit.add_capacitor("{}.cw".format(name), output, "0", tech.c_wire)


def build_inverter(circuit, name, a, y, tech, vdd="vdd",
                   device_factors=unit_device_factors, strength=1.0):
    """Static CMOS inverter; ``strength`` scales both device widths."""
    wn = tech.wn_unit * strength
    wp = tech.wp_unit * strength
    mn = "{}.MN".format(name)
    mp = "{}.MP".format(name)
    circuit.add_nmos(mn, y, a, "0", "0", wn, tech.length,
                     _params(tech, "nmos", wn, mn, device_factors))
    circuit.add_pmos(mp, y, a, vdd, vdd, wp, tech.length,
                     _params(tech, "pmos", wp, mp, device_factors))
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "inv", [a], y, [mn], [mp],
        pullup_rail_devices=[(mp, "s")],
        pulldown_rail_devices=[(mn, "s")],
        internal_nodes=[])


def build_nand(circuit, name, inputs, y, tech, vdd="vdd",
               device_factors=unit_device_factors, strength=1.0):
    """N-input NAND: series NMOS stack (widths scaled by the stack depth
    for comparable drive), parallel PMOS."""
    n = len(inputs)
    if n < 2:
        raise NetlistError("NAND needs at least 2 inputs")
    wn = tech.wn_unit * strength * n
    wp = tech.wp_unit * strength
    nmos, pmos, internal = [], [], []
    # Series NMOS chain from y down to ground; input[0] is nearest y.
    top = y
    for i, a in enumerate(inputs):
        bottom = "0" if i == n - 1 else "{}:n{}".format(name, i)
        if bottom != "0":
            internal.append(bottom)
        mn = "{}.MN{}".format(name, i)
        circuit.add_nmos(mn, top, a, bottom, "0", wn, tech.length,
                         _params(tech, "nmos", wn, mn, device_factors))
        nmos.append(mn)
        top = bottom
    for i, a in enumerate(inputs):
        mp = "{}.MP{}".format(name, i)
        circuit.add_pmos(mp, y, a, vdd, vdd, wp, tech.length,
                         _params(tech, "pmos", wp, mp, device_factors))
        pmos.append(mp)
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "nand{}".format(n), inputs, y, nmos, pmos,
        pullup_rail_devices=[(mp, "s") for mp in pmos],
        pulldown_rail_devices=[(nmos[-1], "s")],
        internal_nodes=internal)


def build_nor(circuit, name, inputs, y, tech, vdd="vdd",
              device_factors=unit_device_factors, strength=1.0):
    """N-input NOR: parallel NMOS, series PMOS stack (width-scaled)."""
    n = len(inputs)
    if n < 2:
        raise NetlistError("NOR needs at least 2 inputs")
    wn = tech.wn_unit * strength
    wp = tech.wp_unit * strength * n
    nmos, pmos, internal = [], [], []
    for i, a in enumerate(inputs):
        mn = "{}.MN{}".format(name, i)
        circuit.add_nmos(mn, y, a, "0", "0", wn, tech.length,
                         _params(tech, "nmos", wn, mn, device_factors))
        nmos.append(mn)
    # Series PMOS chain from vdd down to y; input[0] nearest vdd.
    top = vdd
    for i, a in enumerate(inputs):
        bottom = y if i == n - 1 else "{}:p{}".format(name, i)
        if bottom != y:
            internal.append(bottom)
        mp = "{}.MP{}".format(name, i)
        circuit.add_pmos(mp, bottom, a, top, vdd, wp, tech.length,
                         _params(tech, "pmos", wp, mp, device_factors))
        pmos.append(mp)
        top = bottom
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "nor{}".format(n), inputs, y, nmos, pmos,
        pullup_rail_devices=[(pmos[0], "s")],
        pulldown_rail_devices=[(mn, "s") for mn in nmos],
        internal_nodes=internal)


def build_xor2(circuit, name, a, b, y, tech, vdd="vdd",
               device_factors=unit_device_factors, strength=1.0):
    """Static complementary CMOS XOR2 (2 inverters + 8 transistors).

    Pull-up paths conduct for (a=1,b=0) and (a=0,b=1); pull-down for
    (1,1) and (0,0).  Used by the transition detector of
    :mod:`repro.testckt`; not part of the sensitized-chain gate kinds
    because XOR has no non-controlling side value.
    """
    an = "{}:an".format(name)
    bn = "{}:bn".format(name)
    inv_a = build_inverter(circuit, "{}_ia".format(name), a, an, tech,
                           vdd=vdd, device_factors=device_factors,
                           strength=strength)
    inv_b = build_inverter(circuit, "{}_ib".format(name), b, bn, tech,
                           vdd=vdd, device_factors=device_factors,
                           strength=strength)

    wn = tech.wn_unit * strength * 2   # series stacks widened
    wp = tech.wp_unit * strength * 2
    length = tech.length
    mid_p1 = "{}:p1".format(name)
    mid_p2 = "{}:p2".format(name)
    mid_n1 = "{}:n1".format(name)
    mid_n2 = "{}:n2".format(name)

    def nmos(suffix, d, g, s):
        dev = "{}.MN{}".format(name, suffix)
        circuit.add_nmos(dev, d, g, s, "0", wn, length,
                         _params(tech, "nmos", wn, dev, device_factors))
        return dev

    def pmos(suffix, d, g, s):
        dev = "{}.MP{}".format(name, suffix)
        circuit.add_pmos(dev, d, g, s, vdd, wp, length,
                         _params(tech, "pmos", wp, dev, device_factors))
        return dev

    # Pull-up: (gate an, gate b) series and (gate a, gate bn) series.
    pmos_names = [
        pmos("0", mid_p1, an, vdd), pmos("1", y, b, mid_p1),
        pmos("2", mid_p2, a, vdd), pmos("3", y, bn, mid_p2),
    ]
    # Pull-down: (a, b) series and (an, bn) series.
    nmos_names = [
        nmos("0", y, a, mid_n1), nmos("1", mid_n1, b, "0"),
        nmos("2", y, an, mid_n2), nmos("3", mid_n2, bn, "0"),
    ]
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "xor2", [a, b], y,
        inv_a.nmos_names + inv_b.nmos_names + nmos_names,
        inv_a.pmos_names + inv_b.pmos_names + pmos_names,
        pullup_rail_devices=[("{}.MP0".format(name), "s"),
                             ("{}.MP2".format(name), "s")],
        pulldown_rail_devices=[("{}.MN1".format(name), "s"),
                               ("{}.MN3".format(name), "s")],
        internal_nodes=[an, bn, mid_p1, mid_p2, mid_n1, mid_n2],
        inverting=False)


def build_aoi21(circuit, name, a, b, c, y, tech, vdd="vdd",
                device_factors=unit_device_factors, strength=1.0):
    """AND-OR-INVERT: ``y = NOT(a AND b OR c)``.

    A path through pin ``a`` is sensitized by ``b=1, c=0`` (the gate then
    inverts ``a``).  Series branches are width-doubled.
    """
    wn1, wn2 = tech.wn_unit * strength * 2, tech.wn_unit * strength
    wp = tech.wp_unit * strength * 2
    length = tech.length
    x = "{}:n0".format(name)
    m = "{}:p0".format(name)

    def nmos(suffix, d, g, s, w):
        dev = "{}.MN{}".format(name, suffix)
        circuit.add_nmos(dev, d, g, s, "0", w, length,
                         _params(tech, "nmos", w, dev, device_factors))
        return dev

    def pmos(suffix, d, g, s):
        dev = "{}.MP{}".format(name, suffix)
        circuit.add_pmos(dev, d, g, s, vdd, wp, length,
                         _params(tech, "pmos", wp, dev, device_factors))
        return dev

    # PDN: series(a, b) parallel c
    nmos_names = [nmos("a", y, a, x, wn1), nmos("b", x, b, "0", wn1),
                  nmos("c", y, c, "0", wn2)]
    # PUN: c in series with parallel(a, b)
    pmos_names = [pmos("c", m, c, vdd), pmos("a", y, a, m),
                  pmos("b", y, b, m)]
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "aoi21", [a, b, c], y, nmos_names, pmos_names,
        pullup_rail_devices=[("{}.MPc".format(name), "s")],
        pulldown_rail_devices=[("{}.MNb".format(name), "s"),
                               ("{}.MNc".format(name), "s")],
        internal_nodes=[x, m],
        side_ties={b: 1, c: 0})


def build_oai21(circuit, name, a, b, c, y, tech, vdd="vdd",
                device_factors=unit_device_factors, strength=1.0):
    """OR-AND-INVERT: ``y = NOT((a OR b) AND c)``.

    A path through pin ``a`` is sensitized by ``b=0, c=1``.
    """
    wn = tech.wn_unit * strength * 2
    wp1, wp2 = tech.wp_unit * strength * 2, tech.wp_unit * strength
    length = tech.length
    x = "{}:n0".format(name)
    m = "{}:p0".format(name)

    def nmos(suffix, d, g, s):
        dev = "{}.MN{}".format(name, suffix)
        circuit.add_nmos(dev, d, g, s, "0", wn, length,
                         _params(tech, "nmos", wn, dev, device_factors))
        return dev

    def pmos(suffix, d, g, s, w):
        dev = "{}.MP{}".format(name, suffix)
        circuit.add_pmos(dev, d, g, s, vdd, w, length,
                         _params(tech, "pmos", w, dev, device_factors))
        return dev

    # PDN: parallel(a, b) in series with c
    nmos_names = [nmos("a", y, a, x), nmos("b", y, b, x),
                  nmos("c", x, c, "0")]
    # PUN: series(a, b) parallel c
    pmos_names = [pmos("a", m, a, vdd, wp1), pmos("b", y, b, m, wp1),
                  pmos("c", y, c, vdd, wp2)]
    _add_wire_load(circuit, tech, name, y)
    return CellInstance(
        name, "oai21", [a, b, c], y, nmos_names, pmos_names,
        pullup_rail_devices=[("{}.MPa".format(name), "s"),
                             ("{}.MPc".format(name), "s")],
        pulldown_rail_devices=[("{}.MNc".format(name), "s")],
        internal_nodes=[x, m],
        side_ties={b: 0, c: 1})


#: gate kinds the chain builder understands
GATE_KINDS = ("inv", "nand2", "nand3", "nor2", "nor3", "aoi21", "oai21")


def build_gate(circuit, kind, name, path_input, output, tech, vdd="vdd",
               device_factors=unit_device_factors, strength=1.0):
    """Place a gate of ``kind`` with ``path_input`` on its first pin.

    For multi-input gates the side inputs are created as fresh nodes named
    ``<name>:side<i>``; they are returned so the caller can tie them to
    sensitizing values (uniform non-controlling for NAND/NOR, per-pin
    ``cell.side_ties`` for AOI/OAI).  Returns ``(cell, side_nodes)``.
    """
    kw = {"vdd": vdd, "device_factors": device_factors, "strength": strength}
    if kind == "inv":
        cell = build_inverter(circuit, name, path_input, output, tech, **kw)
        return cell, []
    if kind not in GATE_KINDS:
        raise NetlistError("unknown cell kind {!r}".format(kind))
    if kind in ("aoi21", "oai21"):
        side_nodes = ["{}:side1".format(name), "{}:side2".format(name)]
        builder = build_aoi21 if kind == "aoi21" else build_oai21
        cell = builder(circuit, name, path_input, side_nodes[0],
                       side_nodes[1], output, tech, **kw)
        return cell, side_nodes
    fan_in = int(kind[-1])
    side_nodes = ["{}:side{}".format(name, i) for i in range(1, fan_in)]
    inputs = [path_input] + side_nodes
    if kind.startswith("nand"):
        cell = build_nand(circuit, name, inputs, output, tech, **kw)
    else:
        cell = build_nor(circuit, name, inputs, output, tech, **kw)
    return cell, side_nodes
