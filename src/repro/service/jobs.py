"""Job model for the campaign service.

A *job* is one submitted experiment spec plus its lifecycle record.
The state machine is strict — every transition is validated::

    QUEUED ──> RUNNING ──> DONE
       │          ├──────> FAILED
       └──────────┴──────> CANCELLED

Terminal states (``DONE``/``FAILED``/``CANCELLED``) are final; a
"restarted" job is a *new* submission of the same spec, which the
content-addressed result cache turns into a resume.

Specs are plain JSON dicts with a ``kind`` discriminator::

    {"kind": "coverage", "fault": "open"|"bridging",
     "config": {ExperimentConfig knobs}}
    {"kind": "campaign", "seed": 432, "samples": 5, "sites": null,
     "stride": 2, "fast": false}
    {"kind": "transfer", "config": {ExperimentConfig knobs}}
    {"kind": "sweep", "measure": "pulse"|"delay",
     "fault": "external_open"|"internal_open"|"bridging", "stage": 2,
     "resistances": [...], "omega_in": 4e-10, "pulse_kind": "h",
     "direction": "rise", "n_samples": 4, "seed": 1, "dt": 5e-12,
     "adaptive": false, "lte_tol": null, "batch_size": null}

``sweep`` jobs are the dynamically batchable unit: queued sweeps whose
engine signature matches (see :mod:`repro.service.aggregator`) are
coalesced into one stacked lockstep run.
"""

import threading
import time
import uuid

from ..runtime.schema import check_schema_version, stamp

QUEUED = "QUEUED"
RUNNING = "RUNNING"
DONE = "DONE"
FAILED = "FAILED"
CANCELLED = "CANCELLED"

#: states a job can never leave
TERMINAL_STATES = frozenset({DONE, FAILED, CANCELLED})

_TRANSITIONS = {
    QUEUED: frozenset({RUNNING, CANCELLED}),
    RUNNING: frozenset({DONE, FAILED, CANCELLED}),
    DONE: frozenset(),
    FAILED: frozenset(),
    CANCELLED: frozenset(),
}

JOB_KINDS = ("coverage", "campaign", "transfer", "sweep")

SWEEP_FAULT_KINDS = ("external_open", "internal_open", "bridging")


class SpecError(ValueError):
    """A submitted job spec is malformed (HTTP 400)."""


class InvalidTransition(RuntimeError):
    """An illegal job state transition was attempted."""


def new_job_id():
    return uuid.uuid4().hex[:12]


def _require(condition, message):
    if not condition:
        raise SpecError(message)


def _as_float(spec, key, default=None, required=False):
    value = spec.get(key, default)
    if value is None:
        _require(not required, "sweep spec needs {!r}".format(key))
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise SpecError("{!r} must be a number, got {!r}".format(
            key, value)) from None


def _as_int(spec, key, default=None, minimum=None):
    value = spec.get(key, default)
    if value is None:
        return None
    try:
        value = int(value)
    except (TypeError, ValueError):
        raise SpecError("{!r} must be an integer, got {!r}".format(
            key, spec.get(key))) from None
    if minimum is not None and value < minimum:
        raise SpecError("{!r} must be >= {}, got {}".format(
            key, minimum, value))
    return value


def _validated_config(spec):
    """Validate an embedded ExperimentConfig section; returns the dict."""
    from ..core.experiments import ExperimentConfig

    config = spec.get("config") or {}
    _require(isinstance(config, dict), "'config' must be an object")
    try:
        ExperimentConfig.from_jsonable(config)
    except (TypeError, ValueError) as exc:
        raise SpecError("invalid experiment config: {}".format(exc)) \
            from None
    return dict(config)


def normalize_spec(spec):
    """Validate a submitted spec; returns its canonical dict form.

    Raises :class:`SpecError` with a submitter-actionable message on
    anything malformed — a bad spec must be rejected at submission
    time (HTTP 400), never discovered mid-run.
    """
    _require(isinstance(spec, dict), "job spec must be a JSON object")
    kind = spec.get("kind")
    _require(kind in JOB_KINDS,
             "unknown job kind {!r} (one of {})".format(
                 kind, ", ".join(JOB_KINDS)))
    if kind == "coverage":
        fault = spec.get("fault", "open")
        _require(fault in ("open", "bridging"),
                 "coverage fault must be 'open' or 'bridging', got "
                 "{!r}".format(fault))
        return {"kind": kind, "fault": fault,
                "config": _validated_config(spec)}
    if kind == "transfer":
        return {"kind": kind, "config": _validated_config(spec)}
    if kind == "campaign":
        return {
            "kind": kind,
            "seed": _as_int(spec, "seed", default=432),
            "samples": _as_int(spec, "samples", default=5, minimum=1),
            "sites": _as_int(spec, "sites", minimum=1),
            "stride": _as_int(spec, "stride", default=2, minimum=1),
            "fast": bool(spec.get("fast", False)),
        }
    # kind == "sweep"
    measure = spec.get("measure", "pulse")
    _require(measure in ("pulse", "delay"),
             "sweep measure must be 'pulse' or 'delay', got {!r}"
             .format(measure))
    fault = spec.get("fault", "external_open")
    _require(fault in SWEEP_FAULT_KINDS,
             "sweep fault must be one of {}, got {!r}".format(
                 ", ".join(SWEEP_FAULT_KINDS), fault))
    resistances = spec.get("resistances")
    _require(isinstance(resistances, (list, tuple)) and resistances,
             "sweep spec needs a non-empty 'resistances' list")
    try:
        resistances = [float(r) for r in resistances]
    except (TypeError, ValueError):
        raise SpecError("'resistances' must be numbers") from None
    solver = spec.get("solver")
    _require(solver is None or solver in ("exact", "reuse"),
             "solver must be 'exact' or 'reuse', got {!r}".format(solver))
    out = {
        "kind": kind,
        "measure": measure,
        "fault": fault,
        "stage": _as_int(spec, "stage", default=2, minimum=0),
        "resistances": resistances,
        "n_samples": _as_int(spec, "n_samples", default=4, minimum=1),
        "seed": _as_int(spec, "seed", default=1),
        "dt": _as_float(spec, "dt", default=5e-12),
        "adaptive": bool(spec.get("adaptive", False)),
        "lte_tol": _as_float(spec, "lte_tol"),
        "solver": solver,
        "batch_size": _as_int(spec, "batch_size", minimum=1),
    }
    if measure == "pulse":
        out["omega_in"] = _as_float(spec, "omega_in", default=0.40e-9)
        out["pulse_kind"] = str(spec.get("pulse_kind", "h"))
        _require(out["pulse_kind"] in ("h", "l"),
                 "pulse_kind must be 'h' or 'l'")
    else:
        out["direction"] = str(spec.get("direction", "rise"))
        _require(out["direction"] in ("rise", "fall"),
                 "direction must be 'rise' or 'fall'")
    return out


class Job:
    """One submitted job: spec + lifecycle record + cancel flag.

    The mutable lifecycle fields are owned by the
    :class:`~repro.service.manager.JobManager` (guarded by its lock);
    the cancel flag is a :class:`threading.Event` so the HTTP thread
    can request cancellation while a worker thread polls it through
    the runtime's ``should_stop`` hook.
    """

    def __init__(self, spec, priority=0, job_id=None, submitted_at=None):
        self.id = new_job_id() if job_id is None else str(job_id)
        self.spec = spec
        self.priority = int(priority)
        self.state = QUEUED
        self.submitted_at = (time.time() if submitted_at is None
                             else float(submitted_at))
        self.started_at = None
        self.finished_at = None
        self.error = None
        #: failure taxonomy entry for FAILED jobs — the exception class
        #: name (``WorkerCrash``, ``PoisonTask``, ``TaskTimeout``, or an
        #: ordinary task exception), machine-readable unlike ``error``
        self.error_kind = None
        #: JSON-serialisable result payload (kind-specific)
        self.result = None
        #: the job's RunReport summary dict (per-job telemetry scope)
        self.report = None
        self.progress = {"done": 0, "total": None}
        #: True when this record was re-queued by a server restart
        self.resumed = False
        self._cancel = threading.Event()

    # ------------------------------------------------------------------

    def request_cancel(self):
        self._cancel.set()

    @property
    def cancel_requested(self):
        return self._cancel.is_set()

    def should_stop(self):
        """Cancellation poll handed to ``Runtime(should_stop=...)``."""
        return self._cancel.is_set()

    @property
    def terminal(self):
        return self.state in TERMINAL_STATES

    def transition(self, new_state):
        """Move to ``new_state``; raises :class:`InvalidTransition`."""
        allowed = _TRANSITIONS.get(self.state, frozenset())
        if new_state not in allowed:
            raise InvalidTransition(
                "job {}: cannot transition {} -> {} (allowed: {})"
                .format(self.id, self.state, new_state,
                        ", ".join(sorted(allowed)) or "none"))
        self.state = new_state
        now = time.time()
        if new_state == RUNNING:
            self.started_at = now
        elif new_state in TERMINAL_STATES:
            self.finished_at = now
        return self

    # ------------------------------------------------------------------

    def to_record(self):
        """The job as a schema-stamped, JSON-serialisable record."""
        return stamp({
            "id": self.id,
            "spec": self.spec,
            "priority": self.priority,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_kind": self.error_kind,
            "result": self.result,
            "report": self.report,
            "progress": dict(self.progress),
            "resumed": self.resumed,
            "cancel_requested": self.cancel_requested,
        })

    @classmethod
    def from_record(cls, record):
        """Rebuild a job from a stored record (schema-checked)."""
        check_schema_version(record, what="job record")
        job = cls(record["spec"], priority=record.get("priority", 0),
                  job_id=record["id"],
                  submitted_at=record.get("submitted_at"))
        job.state = record.get("state", QUEUED)
        job.started_at = record.get("started_at")
        job.finished_at = record.get("finished_at")
        job.error = record.get("error")
        job.error_kind = record.get("error_kind")
        job.result = record.get("result")
        job.report = record.get("report")
        job.progress = dict(record.get("progress")
                            or {"done": 0, "total": None})
        job.resumed = bool(record.get("resumed", False))
        return job

    def __repr__(self):
        return "Job({}, {}, {})".format(self.id, self.spec.get("kind"),
                                        self.state)
