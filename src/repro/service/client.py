"""urllib-based SDK for the job service (no third-party deps).

Mirrors the HTTP API one method per endpoint, decodes strict-JSON
bodies back into Python (NaN/Inf round-trip), and maps the service's
error statuses onto exceptions:

* 4xx/5xx with a JSON ``{"error": ...}`` body ->
  :class:`ServiceError` carrying the status;
* 429 -> :class:`ServiceUnavailable` carrying the parsed
  ``Retry-After`` hint so callers can back off and resubmit.

:meth:`ServiceClient.watch` is the convenience loop used by the CLI:
long-polls the event endpoint, hands each event to a callback, and
returns the final job record once the job is terminal.
"""

import json
import time
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from ..runtime.cache import decode_jsonable, encode_jsonable


class ServiceError(RuntimeError):
    """Non-2xx response from the service."""

    def __init__(self, status, message):
        super().__init__("HTTP {}: {}".format(status, message))
        self.status = status


class ServiceUnavailable(ServiceError):
    """429 backpressure; retry after :attr:`retry_after` seconds."""

    def __init__(self, message, retry_after=1.0):
        super().__init__(429, message)
        self.retry_after = float(retry_after)


class ServiceClient:
    """Thin JSON-over-HTTP client for one service base URL."""

    def __init__(self, base_url, timeout=60.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(self, method, path, payload=None, timeout=None):
        url = self.base_url + path
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(encode_jsonable(payload),
                              allow_nan=False).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = Request(url, data=data, headers=headers, method=method)
        try:
            with urlopen(request,
                         timeout=self.timeout if timeout is None
                         else timeout) as response:
                return decode_jsonable(
                    json.loads(response.read().decode("utf-8")))
        except HTTPError as exc:
            body = exc.read().decode("utf-8", "replace")
            try:
                message = json.loads(body).get("error", body)
            except ValueError:
                message = body.strip() or exc.reason
            if exc.code == 429:
                raise ServiceUnavailable(
                    message,
                    retry_after=float(exc.headers.get("Retry-After")
                                      or 1.0)) from None
            raise ServiceError(exc.code, message) from None
        except URLError as exc:
            raise ServiceError(0, "cannot reach {}: {}".format(
                url, exc.reason)) from None

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self):
        return self._request("GET", "/healthz")

    def submit(self, spec, priority=0):
        """POST /jobs; returns the created job record."""
        return self._request("POST", "/jobs",
                             {"spec": spec, "priority": priority})["job"]

    def submit_retrying(self, spec, priority=0, attempts=8):
        """Submit with automatic backoff on 429 backpressure."""
        for attempt in range(attempts):
            try:
                return self.submit(spec, priority=priority)
            except ServiceUnavailable as exc:
                if attempt == attempts - 1:
                    raise
                time.sleep(min(exc.retry_after, 10.0))

    def job(self, job_id):
        return self._request("GET", "/jobs/{}".format(job_id))["job"]

    def jobs(self):
        return self._request("GET", "/jobs")["jobs"]

    def cancel(self, job_id):
        return self._request("DELETE", "/jobs/{}".format(job_id))["job"]

    def events(self, job_id, after=-1, wait=0.0):
        """One long-poll read; returns the response dict."""
        path = "/jobs/{}/events?after={}&wait={}".format(
            job_id, int(after), float(wait))
        return self._request("GET", path,
                             timeout=self.timeout + float(wait))

    def stream_events(self, job_id, after=-1):
        """Iterate the chunked ndjson live stream (blocking generator)."""
        url = "{}/jobs/{}/events?stream=1&after={}".format(
            self.base_url, job_id, int(after))
        request = Request(url, headers={"Accept": "application/x-ndjson"})
        with urlopen(request, timeout=None) as response:
            for line in response:
                line = line.strip()
                if line:
                    yield decode_jsonable(json.loads(
                        line.decode("utf-8")))

    # ------------------------------------------------------------------
    # Convenience loops
    # ------------------------------------------------------------------

    def watch(self, job_id, on_event=None, poll_wait=10.0):
        """Follow a job to completion; returns its final record.

        Long-polls the event endpoint, invoking ``on_event(event)``
        for every event as it arrives (heartbeats are not synthesised
        here — quiet periods simply produce empty polls).
        """
        after = -1
        while True:
            response = self.events(job_id, after=after, wait=poll_wait)
            for event in response["events"]:
                after = event["seq"]
                if on_event is not None:
                    on_event(event)
            job = self.job(job_id)
            if job["state"] in ("DONE", "FAILED", "CANCELLED"):
                # drain anything emitted between the poll and the GET
                tail = self.events(job_id, after=after, wait=0.0)
                if on_event is not None:
                    for event in tail["events"]:
                        on_event(event)
                return job

    def wait(self, job_id, poll=0.5, timeout=None):
        """Poll GET /jobs/<id> until terminal; returns the record."""
        deadline = (None if timeout is None
                    else time.monotonic() + float(timeout))
        while True:
            job = self.job(job_id)
            if job["state"] in ("DONE", "FAILED", "CANCELLED"):
                return job
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    "job {} still {} after {}s".format(
                        job_id, job["state"], timeout))
            time.sleep(poll)
