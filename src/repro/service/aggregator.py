"""Dynamic batch aggregation: continuous batching for queued sweeps.

The serving pattern from LLM inference applied to the batched MNA
engine: queued ``sweep`` jobs whose *engine signature* matches are
coalesced into one stacked :meth:`Runtime.run_batched` call, so the
lockstep transient engine amortises its per-step stacked solve over
samples belonging to *different submitters*.

The signature captures exactly the fields that must agree for two
jobs' samples to share a lockstep chunk:

* same measurement (``pulse`` + omega_in/kind, or ``delay`` +
  direction) and resistance grid — a chunk task reads these from its
  first payload and applies them to every sample in the chunk;
* same fault kind and stage — injection changes the circuit topology,
  and the batch compiler stacks only topology-identical circuits;
* same time-grid discipline (``dt``, ``adaptive``, ``lte_tol``) and
  Newton solver mode — the cache-compatible engine tag of
  :func:`repro.runtime.engine_cache_tag`.  The solver is *resolved*
  (None -> the host's effective default) before hashing, so an
  explicit ``solver="reuse"`` coalesces with an unset solver on a
  default-configured host but never with ``solver="exact"``.

``n_samples``, ``seed``, ``priority`` and ``batch_size`` are *not*
part of the signature: they vary freely across coalesced jobs.
Cache/checkpoint granularity stays per item, so coalescing never
changes what lands in the cache — only how many stacked solves it
took to get there.
"""

from ..runtime import stable_hash
from .runners import sweep_payloads


def sweep_signature(spec):
    """Coalescing key for a normalized sweep spec (None if not a sweep)."""
    from ..spice.mna import resolve_solver_mode

    if spec.get("kind") != "sweep":
        return None
    return stable_hash(
        "sweep-signature",
        spec.get("measure", "pulse"),
        spec.get("omega_in"), spec.get("pulse_kind"),
        spec.get("direction"),
        spec.get("fault"), spec.get("stage"),
        [float(r) for r in spec["resistances"]],
        spec.get("dt"), bool(spec.get("adaptive")), spec.get("lte_tol"),
        resolve_solver_mode(spec.get("solver")))


def compatible(spec_a, spec_b):
    """True when two specs may share one lockstep batch."""
    sig_a, sig_b = sweep_signature(spec_a), sweep_signature(spec_b)
    return sig_a is not None and sig_a == sig_b


def build_group_payloads(specs, with_keys=True):
    """Concatenated payloads/keys for a group of compatible sweep specs.

    Returns ``(payloads, keys, offsets)`` where ``offsets[i]`` is the
    ``(start, end)`` slice of job *i*'s samples in the concatenated
    list.  ``keys`` is None when ``with_keys`` is false.
    """
    payloads, keys, offsets = [], [], []
    for spec in specs:
        job_payloads, job_keys = sweep_payloads(spec, with_keys=with_keys)
        offsets.append((len(payloads), len(payloads) + len(job_payloads)))
        payloads.extend(job_payloads)
        if with_keys:
            keys.extend(job_keys)
    return payloads, (keys if with_keys else None), offsets


def split_group_values(values, offsets):
    """Slice a group run's value list back into per-job row lists."""
    return [values[start:end] for start, end in offsets]


def group_batch_size(specs, default=None):
    """The lockstep batch size for a coalesced group.

    The *largest* requested size wins (a submitter asking for small
    batches is bounding memory per chunk, not forbidding neighbours;
    the widest request sets the stacking the group can exploit);
    ``default`` applies when no spec asks for anything.
    """
    sizes = [spec["batch_size"] for spec in specs
             if spec.get("batch_size")]
    if not sizes:
        return default
    return max(sizes)
