"""The job manager: queue + workers + events + durability.

Owns the whole job lifecycle between the HTTP layer and the campaign
runtime:

* :meth:`JobManager.submit` validates the spec, persists a QUEUED
  record and enqueues the job (raising
  :class:`~repro.service.queue.QueueFull` for the 429 path);
* a fixed pool of worker threads (``max_concurrency``) drains the
  priority queue; a worker that dequeues a ``sweep`` job additionally
  drains signature-compatible queued sweeps and runs the whole group
  as one stacked lockstep batch (see
  :mod:`repro.service.aggregator`);
* every job gets its own telemetry scope: a per-job
  :class:`JobEventLog` receives the runtime's trace events (task
  completions with solver counters, cumulative report summaries) plus
  manager lifecycle events — this is what ``GET /jobs/<id>/events``
  streams;
* every state transition is persisted through the
  :class:`~repro.service.store.JobStore`, so a restarted manager
  re-serves finished jobs from disk and re-queues interrupted ones
  (the runtime checkpoint under the shared cache turns re-execution
  into a resume);
* ``DELETE`` maps to cooperative cancellation: queued jobs cancel
  immediately, running jobs get their ``should_stop`` flag set and
  transition to CANCELLED when the runtime raises
  :class:`~repro.runtime.CampaignCancelled` (checkpoint flushed — the
  cancelled job is resumable).
"""

import os
import threading
import time

from ..runtime import (SCHEMA_VERSION, CampaignCancelled,
                       ProcessPoolExecutor, RunReport, ResultCache,
                       Runtime, SerialExecutor)
from ..runtime.cache import encode_jsonable
from . import jobs as J
from .aggregator import (build_group_payloads, group_batch_size,
                         split_group_values, sweep_signature)
from .jobs import Job
from .queue import PriorityJobQueue
from .runners import execute_spec
from .store import JobStore

#: default service data directory (job records + shared result cache)
DEFAULT_DATA_DIR = ".repro_service"


class JobEventLog:
    """Append-only per-job event buffer with long-poll support.

    Events get a monotonically increasing ``seq`` (their index) and a
    wall-clock ``ts``; readers pass the last ``seq`` they saw and block
    on :meth:`since` until something newer lands or the timeout runs
    out.  Values are strict-JSON encoded on append so HTTP/JSONL
    serialisation can never fail mid-stream.
    """

    def __init__(self):
        self._events = []
        self._cond = threading.Condition()

    def append(self, event):
        event = dict(event)
        event.setdefault("schema_version", SCHEMA_VERSION)
        event["ts"] = time.time()
        with self._cond:
            event["seq"] = len(self._events)
            self._events.append(encode_jsonable(event))
            self._cond.notify_all()
        return event["seq"]

    def since(self, after=-1, timeout=0.0):
        """Events with ``seq > after``; blocks up to ``timeout`` s."""
        after = int(after)
        with self._cond:
            if timeout and timeout > 0:
                self._cond.wait_for(
                    lambda: len(self._events) > after + 1,
                    timeout=timeout)
            return list(self._events[after + 1:])

    def __len__(self):
        with self._cond:
            return len(self._events)


class _JobTraceSink:
    """Routes one runtime's trace events into a job's event log."""

    def __init__(self, log):
        self.log = log

    def emit(self, event):
        self.log.append(event)


class _GroupTraceSink:
    """Trace fan-out for a coalesced sweep group.

    Per-item ``task`` events carry a global sample index; the sink
    maps each to its owning job (rewriting the index to the job-local
    position) so every submitter sees only their own samples' solver
    effort.  Cumulative ``report`` events describe the whole group and
    are broadcast to every member.
    """

    def __init__(self, logs, offsets):
        self.logs = list(logs)
        self.offsets = list(offsets)

    def emit(self, event):
        index = event.get("index")
        if event.get("event") == "task" and index is not None:
            for log, (start, end) in zip(self.logs, self.offsets):
                if start <= index < end:
                    local = dict(event)
                    local["index"] = index - start
                    log.append(local)
                    return
        for log in self.logs:
            log.append(event)


class JobManager:
    """Queue, execute, observe and persist service jobs.

    Parameters
    ----------
    data_dir:
        Durable root: job records under ``jobs/``, the shared runtime
        result cache (and checkpoint manifests) under ``cache/``.
    max_concurrency:
        Worker threads — jobs running at once (groups count as one).
    queue_capacity:
        Queued-job bound; beyond it :meth:`submit` raises
        :class:`QueueFull` (the HTTP 429 path).
    runtime_jobs:
        Worker *processes* per job's runtime (1 = in-thread serial).
    cache:
        False disables the shared result cache (jobs stop being
        resumable; used by parity tests).
    aggregate / aggregate_limit:
        Enable sweep coalescing and cap how many queued sweeps one
        worker may drain into a single stacked run (the lead job plus
        ``aggregate_limit - 1`` others).
    runner:
        ``callable(spec, runtime, progress) -> (result, report)``
        override (tests inject stubs; default
        :func:`~repro.service.runners.execute_spec`).
    runtime_factory:
        ``callable(trace, should_stop) -> Runtime`` override.
    """

    def __init__(self, data_dir=DEFAULT_DATA_DIR, max_concurrency=2,
                 queue_capacity=64, runtime_jobs=1, cache=True,
                 aggregate=True, aggregate_limit=4, runner=None,
                 runtime_factory=None):
        self.data_dir = str(data_dir)
        self.store = JobStore(self.data_dir)
        self.queue = PriorityJobQueue(queue_capacity)
        self.max_concurrency = max(1, int(max_concurrency))
        self.runtime_jobs = max(1, int(runtime_jobs))
        self.cache_enabled = bool(cache)
        self.aggregate = bool(aggregate)
        self.aggregate_limit = max(1, int(aggregate_limit))
        self.runner = execute_spec if runner is None else runner
        self.runtime_factory = (self._default_runtime_factory
                                if runtime_factory is None
                                else runtime_factory)
        self.jobs = {}
        self.events = {}
        #: True when the last :meth:`start` recovery skipped unparsable
        #: job records (details in ``store.load_errors`` and the log)
        self.recovered_with_errors = False
        self._lock = threading.RLock()
        self._stop = threading.Event()
        self._threads = []
        self._running = set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    @property
    def cache_dir(self):
        return os.path.join(self.data_dir, "cache")

    def _default_runtime_factory(self, trace, should_stop):
        if self.runtime_jobs > 1:
            executor = ProcessPoolExecutor(n_jobs=self.runtime_jobs)
        else:
            executor = SerialExecutor()
        cache = (ResultCache(self.cache_dir) if self.cache_enabled
                 else None)
        return Runtime(executor=executor, cache=cache, trace=trace,
                       should_stop=should_stop)

    def start(self):
        """Recover persisted jobs and spawn the worker pool."""
        self._recover()
        for number in range(self.max_concurrency):
            thread = threading.Thread(
                target=self._worker, name="job-worker-{}".format(number),
                daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, wait=True, cancel_running=False):
        """Stop the workers; optionally cancel in-flight jobs first.

        Without ``cancel_running`` an in-flight job keeps running until
        its worker finishes it (its record is persisted either way); a
        job still RUNNING when the process dies is re-queued — and
        resumed from its checkpoint — on the next :meth:`start`.
        """
        self._stop.set()
        if cancel_running:
            with self._lock:
                for job_id in list(self._running):
                    self.jobs[job_id].request_cancel()
        if wait:
            for thread in self._threads:
                thread.join(timeout=30.0)
        self._threads = []

    def _recover(self):
        """Rebuild world state from the job store (restart path)."""
        records = self.store.load_all()
        self.recovered_with_errors = bool(self.store.load_errors)
        for record in records:
            with self._lock:
                if record["id"] in self.jobs:
                    # Submitted to *this* manager before start(): it is
                    # already registered and queued — re-queueing would
                    # run it twice.
                    continue
                job = Job.from_record(record)
                self.jobs[job.id] = job
                self.events[job.id] = JobEventLog()
            if job.state in (J.QUEUED, J.RUNNING):
                # An interrupted run: whatever completed is in the
                # shared cache and its checkpoint manifest, so
                # re-queueing re-executes only the remainder.
                job.state = J.QUEUED
                job.started_at = None
                job.resumed = True
                self.store.save(job.to_record())
                self._emit_state(job, note="requeued after restart")
                self.queue.put(job, force=True)

    # ------------------------------------------------------------------
    # Submission / inspection / cancellation (HTTP-facing)
    # ------------------------------------------------------------------

    def submit(self, spec, priority=0):
        """Validate, persist and enqueue a job; returns the Job.

        Raises :class:`~repro.service.jobs.SpecError` (400) or
        :class:`~repro.service.queue.QueueFull` (429).
        """
        job = Job(J.normalize_spec(spec), priority=priority)
        with self._lock:
            self.jobs[job.id] = job
            self.events[job.id] = JobEventLog()
        try:
            self.store.save(job.to_record())
            self.queue.put(job)
        except BaseException:
            with self._lock:
                self.jobs.pop(job.id, None)
                self.events.pop(job.id, None)
            self.store.delete(job.id)
            raise
        self._emit_state(job)
        return job

    def get_job(self, job_id):
        with self._lock:
            if job_id not in self.jobs:
                raise KeyError(job_id)
            return self.jobs[job_id]

    def list_jobs(self):
        """Every known job record, oldest submission first."""
        with self._lock:
            jobs = list(self.jobs.values())
        jobs.sort(key=lambda j: j.submitted_at)
        return [job.to_record() for job in jobs]

    def cancel(self, job_id):
        """Request cancellation; returns the (possibly updated) Job.

        A still-queued job transitions to CANCELLED immediately; a
        running job is flagged and transitions when its runtime
        acknowledges between chunks (cooperative).  Terminal jobs are
        left untouched.
        """
        job = self.get_job(job_id)
        with self._lock:
            if job.terminal:
                return job
            job.request_cancel()
            if job.state == J.QUEUED and self.queue.remove(job.id):
                job.transition(J.CANCELLED)
                self.store.save(job.to_record())
                self._emit_state(job, note="cancelled while queued")
        return job

    def events_since(self, job_id, after=-1, timeout=0.0):
        """Long-poll read of one job's event stream."""
        with self._lock:
            if job_id not in self.events:
                raise KeyError(job_id)
            log = self.events[job_id]
        return log.since(after=after, timeout=timeout)

    def stats(self):
        with self._lock:
            running = len(self._running)
            total = len(self.jobs)
        return {
            "queue_depth": len(self.queue),
            "queue_capacity": self.queue.capacity,
            "running": running,
            "max_concurrency": self.max_concurrency,
            "jobs": total,
            "aggregate": self.aggregate,
            "recovered_with_errors": self.recovered_with_errors,
        }

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    def _emit_state(self, job, note=None):
        event = {"event": "state", "job": job.id, "state": job.state,
                 "error": job.error}
        if note:
            event["note"] = note
        self.events[job.id].append(event)

    def _begin(self, job):
        """QUEUED -> RUNNING (or straight to CANCELLED); False to skip."""
        with self._lock:
            if job.cancel_requested:
                if not job.terminal:
                    job.transition(J.CANCELLED)
                    self.store.save(job.to_record())
                    self._emit_state(job, note="cancelled before start")
                return False
            job.transition(J.RUNNING)
            self._running.add(job.id)
        self.store.save(job.to_record())
        self._emit_state(job)
        return True

    def _finish(self, job, state, result=None, report=None, error=None,
                error_kind=None):
        with self._lock:
            job.result = result
            job.report = report
            job.error = error
            job.error_kind = error_kind
            job.transition(state)
            self._running.discard(job.id)
        self.store.save(job.to_record())
        self._emit_state(job)

    def _progress_cb(self, job):
        def progress(done, total):
            job.progress = {"done": int(done), "total": int(total)}
            self.events[job.id].append(
                {"event": "progress", "job": job.id, "done": int(done),
                 "total": int(total)})
        return progress

    def _worker(self):
        while not self._stop.is_set():
            job = self.queue.get(timeout=0.2)
            if job is None:
                continue
            group = [job]
            signature = (sweep_signature(job.spec) if self.aggregate
                         else None)
            if signature is not None and self.aggregate_limit > 1:
                group += self.queue.take_matching(
                    lambda other: sweep_signature(other.spec)
                    == signature,
                    self.aggregate_limit - 1)
            try:
                if len(group) == 1:
                    self._run_single(job)
                else:
                    self._run_group(group)
            except Exception as exc:  # noqa: BLE001 - worker must survive
                for member in group:
                    if member.terminal:
                        continue
                    # a member that never began (e.g. _begin itself
                    # blew up on a store write) is still QUEUED, and
                    # QUEUED -> FAILED is not a legal edge
                    if member.state == J.QUEUED:
                        member.transition(J.RUNNING)
                    self._finish(member, J.FAILED,
                                 error="{}: {}".format(
                                     type(exc).__name__, exc),
                                 error_kind=type(exc).__name__)

    def _run_single(self, job):
        if not self._begin(job):
            return
        sink = _JobTraceSink(self.events[job.id])
        runtime = self.runtime_factory(trace=sink,
                                       should_stop=job.should_stop)
        try:
            result, report = self.runner(job.spec, runtime,
                                         self._progress_cb(job))
        except CampaignCancelled:
            self._finish(job, J.CANCELLED)
        except Exception as exc:  # noqa: BLE001 - job failure taxonomy
            self._finish(job, J.FAILED,
                         error="{}: {}".format(type(exc).__name__, exc),
                         error_kind=type(exc).__name__)
        else:
            self._finish(job, J.DONE, result=result, report=report)

    def _run_group(self, group):
        """One stacked lockstep run for a coalesced sweep group."""
        from ..core.coverage import _sweep_chunk_task

        live = []
        for job in group:
            if self._begin(job):
                live.append(job)
        if not live:
            return
        if len(live) == 1:
            # every mate was cancelled before start; no point batching
            job = live[0]
            self._group_note([job], 1)
            return self._run_job_body(job)
        payloads, keys, offsets = build_group_payloads(
            [job.spec for job in live], with_keys=self.cache_enabled)
        self._group_note(live, len(live))
        logs = [self.events[job.id] for job in live]
        sink = _GroupTraceSink(logs, offsets)

        def group_should_stop():
            # Cancelling one member must not kill its batch mates:
            # the group stops early only when *every* member asked to.
            return all(job.cancel_requested for job in live)

        runtime = self.runtime_factory(trace=sink,
                                       should_stop=group_should_stop)
        report = RunReport("sweep-group")

        def progress(done, total):
            for job in live:
                self.events[job.id].append(
                    {"event": "progress", "job": job.id,
                     "scope": "group", "done": int(done),
                     "total": int(total)})

        try:
            run = runtime.run_batched(
                _sweep_chunk_task, payloads, keys=keys,
                batch_size=group_batch_size([j.spec for j in live]),
                label="sweep-group", report=report, progress=progress)
        except CampaignCancelled:
            for job in live:
                self._finish(job, J.CANCELLED)
            return
        except Exception as exc:  # noqa: BLE001 - job failure taxonomy
            for job in live:
                self._finish(job, J.FAILED,
                             error="{}: {}".format(type(exc).__name__,
                                                   exc),
                             error_kind=type(exc).__name__)
            return
        summary = report.summary()
        summary["aggregated_jobs"] = [job.id for job in live]
        per_job = split_group_values(run.values, offsets)
        for job, rows, (start, end) in zip(live, per_job, offsets):
            bad = [i - start for i in run.errors if start <= i < end]
            if bad:
                kinds = sorted({type(run.errors[i]).__name__
                                for i in run.errors
                                if start <= i < end})
                self._finish(job, J.FAILED, report=summary,
                             error="samples {} failed ({})".format(
                                 bad, ", ".join(kinds)),
                             error_kind=kinds[0])
            else:
                result = {"rows": [[float(v) for v in row]
                                   for row in rows],
                          "resistances": list(job.spec["resistances"]),
                          "n_samples": len(rows)}
                self._finish(job, J.DONE, result=result, report=summary)

    def _group_note(self, live, size):
        for job in live:
            self.events[job.id].append(
                {"event": "aggregated", "job": job.id, "group_size": size,
                 "group_jobs": [j.id for j in live]})

    def _run_job_body(self, job):
        """The post-_begin body of :meth:`_run_single` (already RUNNING)."""
        sink = _JobTraceSink(self.events[job.id])
        runtime = self.runtime_factory(trace=sink,
                                       should_stop=job.should_stop)
        try:
            result, report = self.runner(job.spec, runtime,
                                         self._progress_cb(job))
        except CampaignCancelled:
            self._finish(job, J.CANCELLED)
        except Exception as exc:  # noqa: BLE001 - job failure taxonomy
            self._finish(job, J.FAILED,
                         error="{}: {}".format(type(exc).__name__, exc),
                         error_kind=type(exc).__name__)
        else:
            self._finish(job, J.DONE, result=result, report=report)
