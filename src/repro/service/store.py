"""Durable job store: one JSON record per job under the data dir.

Layout (under the service data dir, default ``.repro_service/``)::

    jobs/<job id>.json     # schema-stamped job records (this module)
    cache/                 # the shared runtime ResultCache + manifests

Records are written atomically (temp file + ``os.replace``) on every
state transition, so a killed server never leaves a torn record; a
restarted server rebuilds its world from this directory — terminal
jobs answer GETs without recomputation, and QUEUED/RUNNING records are
re-queued (the runtime checkpoint under ``cache/`` turns their
re-execution into a resume).

Values are encoded with the strict-JSON codec of
:mod:`repro.runtime.cache` so NaN measurement results (a dampened
pulse has no width) survive the round trip.
"""

import json
import os
import tempfile

from ..runtime.cache import decode_jsonable, encode_jsonable
from ..runtime.schema import check_schema_version


class JobStore:
    """Atomic per-job JSON records under ``<root>/jobs/``."""

    def __init__(self, root):
        self.root = str(root)

    @property
    def jobs_dir(self):
        return os.path.join(self.root, "jobs")

    def path(self, job_id):
        return os.path.join(self.jobs_dir, str(job_id) + ".json")

    # ------------------------------------------------------------------

    def save(self, record):
        """Atomically (re)write one job record."""
        os.makedirs(self.jobs_dir, exist_ok=True)
        path = self.path(record["id"])
        fd, tmp = tempfile.mkstemp(dir=self.jobs_dir, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(encode_jsonable(record), handle,
                          sort_keys=True, allow_nan=False)
            os.replace(tmp, path)
        except BaseException:
            if os.path.exists(tmp):
                os.unlink(tmp)
            raise
        return path

    def load(self, job_id):
        """One stored record (schema-checked); raises ``KeyError``."""
        try:
            with open(self.path(job_id)) as handle:
                record = decode_jsonable(json.load(handle))
        except OSError:
            raise KeyError(job_id) from None
        return check_schema_version(record,
                                    what="job record {}".format(job_id))

    def load_all(self):
        """Every stored record, oldest submission first.

        Records that fail to parse are skipped (a torn ``.tmp`` file
        or foreign junk must not brick the whole server on boot);
        schema-incompatible records *raise* — silently dropping jobs a
        future tree wrote would look like data loss.
        """
        if not os.path.isdir(self.jobs_dir):
            return []
        records = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as handle:
                    record = decode_jsonable(json.load(handle))
            except (OSError, ValueError):
                continue
            records.append(check_schema_version(
                record, what="job record {}".format(name)))
        records.sort(key=lambda r: r.get("submitted_at") or 0.0)
        return records

    def delete(self, job_id):
        try:
            os.unlink(self.path(job_id))
            return True
        except OSError:
            return False

    def __repr__(self):
        return "JobStore({!r})".format(self.root)
