"""Durable job store: one JSON record per job under the data dir.

Layout (under the service data dir, default ``.repro_service/``)::

    jobs/<job id>.json     # schema-stamped job records (this module)
    cache/                 # the shared runtime ResultCache + manifests

Records are written atomically and durably (temp file + fsync +
``os.replace`` + directory fsync, via
:func:`~repro.runtime.cache.atomic_write`) on every state transition,
so neither a killed server nor a power loss leaves a torn record; a
restarted server rebuilds its world from this directory — terminal
jobs answer GETs without recomputation, and QUEUED/RUNNING records are
re-queued (the runtime checkpoint under ``cache/`` turns their
re-execution into a resume).

Values are encoded with the strict-JSON codec of
:mod:`repro.runtime.cache` so NaN measurement results (a dampened
pulse has no width) survive the round trip.
"""

import json
import logging
import os

from ..runtime.cache import atomic_write, decode_jsonable, encode_jsonable
from ..runtime.schema import check_schema_version

logger = logging.getLogger("repro.service")


class JobStore:
    """Atomic per-job JSON records under ``<root>/jobs/``."""

    def __init__(self, root):
        self.root = str(root)
        #: paths that failed to parse on the last :meth:`load_all`
        self.load_errors = []

    @property
    def jobs_dir(self):
        return os.path.join(self.root, "jobs")

    def path(self, job_id):
        return os.path.join(self.jobs_dir, str(job_id) + ".json")

    # ------------------------------------------------------------------

    def save(self, record):
        """Atomically (re)write one job record."""
        os.makedirs(self.jobs_dir, exist_ok=True)
        path = self.path(record["id"])
        atomic_write(path, lambda handle: json.dump(
            encode_jsonable(record), handle, sort_keys=True,
            allow_nan=False))
        return path

    def load(self, job_id):
        """One stored record (schema-checked); raises ``KeyError``."""
        try:
            with open(self.path(job_id)) as handle:
                record = decode_jsonable(json.load(handle))
        except OSError:
            raise KeyError(job_id) from None
        return check_schema_version(record,
                                    what="job record {}".format(job_id))

    def load_all(self):
        """Every stored record, oldest submission first.

        Records that fail to parse are skipped — a torn ``.tmp`` file
        or foreign junk must not brick the whole server on boot — but
        never *silently*: each skip is logged with its path and
        collected in ``load_errors`` so the manager can surface a
        ``recovered_with_errors`` flag instead of pretending the boot
        was clean.  Schema-incompatible records *raise* — silently
        dropping jobs a future tree wrote would look like data loss.
        """
        self.load_errors = []
        if not os.path.isdir(self.jobs_dir):
            return []
        records = []
        for name in sorted(os.listdir(self.jobs_dir)):
            if not name.endswith(".json"):
                continue
            path = os.path.join(self.jobs_dir, name)
            try:
                with open(path) as handle:
                    record = decode_jsonable(json.load(handle))
            except (OSError, ValueError) as exc:
                logger.warning(
                    "skipping unparsable job record %s (%s: %s)",
                    path, type(exc).__name__, exc)
                self.load_errors.append(path)
                continue
            records.append(check_schema_version(
                record, what="job record {}".format(name)))
        records.sort(key=lambda r: r.get("submitted_at") or 0.0)
        return records

    def delete(self, job_id):
        try:
            os.unlink(self.path(job_id))
            return True
        except OSError:
            return False

    def __repr__(self):
        return "JobStore({!r})".format(self.root)
