"""stdlib HTTP/JSON front-end for the job manager.

Endpoints (all JSON, strict — NaN/Inf travel as tagged dicts via the
:mod:`repro.runtime.cache` codec):

========  =========================  =====================================
Method    Path                       Meaning
========  =========================  =====================================
POST      /jobs                      submit ``{"spec": ..., "priority"}``
                                     -> 201 job record; 400 bad spec;
                                     429 + Retry-After when queue is full
GET       /jobs                      list all job records
GET       /jobs/<id>                 one job record (404 unknown)
GET       /jobs/<id>/events          event log; ``?after=N`` skips past
                                     events, ``?wait=S`` long-polls,
                                     ``?stream=1`` switches to a chunked
                                     ndjson live stream
DELETE    /jobs/<id>                 cooperative cancel
GET       /healthz                   liveness + queue stats
========  =========================  =====================================

Built on :class:`http.server.ThreadingHTTPServer` (one thread per
connection, HTTP/1.1 keep-alive) — no third-party dependency, which is
a hard project constraint.  The event stream uses manual chunked
transfer encoding: one JSON event per line, a heartbeat line when the
job is quiet, terminated when the job reaches a terminal state and the
log is drained.
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from ..runtime.cache import decode_jsonable, encode_jsonable
from .jobs import SpecError
from .queue import QueueFull

#: default long-poll / stream idle timeout bounds (seconds)
MAX_WAIT = 30.0
STREAM_HEARTBEAT = 5.0


def _json_bytes(payload):
    return (json.dumps(encode_jsonable(payload), sort_keys=True,
                       allow_nan=False) + "\n").encode("utf-8")


class ServiceRequestHandler(BaseHTTPRequestHandler):
    """Routes HTTP requests onto the attached :class:`JobManager`."""

    protocol_version = "HTTP/1.1"
    server_version = "repro-service/1.0"

    # The manager is attached to the *server* object (one per server,
    # shared by every handler thread).
    @property
    def manager(self):
        return self.server.manager

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            super().log_message(format, *args)

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def _send_json(self, status, payload, headers=None):
        body = _json_bytes(payload)
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status, message, headers=None):
        self._send_json(status, {"error": message}, headers=headers)

    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return decode_jsonable(json.loads(raw.decode("utf-8")))
        except (ValueError, UnicodeDecodeError) as exc:
            raise SpecError("invalid JSON body: {}".format(exc)) from exc

    def _route(self):
        parts = urlsplit(self.path)
        segments = [s for s in parts.path.split("/") if s]
        query = {k: v[-1] for k, v in parse_qs(parts.query).items()}
        return segments, query

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------

    def do_GET(self):  # noqa: N802 - stdlib casing
        segments, query = self._route()
        try:
            if segments == ["healthz"]:
                stats = self.manager.stats()
                stats["status"] = "ok"
                return self._send_json(200, stats)
            if segments == ["jobs"]:
                return self._send_json(200,
                                       {"jobs": self.manager.list_jobs()})
            if len(segments) == 2 and segments[0] == "jobs":
                job = self.manager.get_job(segments[1])
                return self._send_json(200, {"job": job.to_record()})
            if (len(segments) == 3 and segments[0] == "jobs"
                    and segments[2] == "events"):
                return self._events(segments[1], query)
            return self._error(404, "no such route {!r}".format(self.path))
        except KeyError:
            return self._error(404,
                               "unknown job {!r}".format(segments[1]))

    def do_POST(self):  # noqa: N802 - stdlib casing
        segments, _ = self._route()
        if segments != ["jobs"]:
            return self._error(404, "no such route {!r}".format(self.path))
        try:
            body = self._read_body()
            spec = body.get("spec") if isinstance(body, dict) else None
            if spec is None:
                raise SpecError("body must be {'spec': {...}}")
            priority = int(body.get("priority", 0))
            job = self.manager.submit(spec, priority=priority)
        except SpecError as exc:
            return self._error(400, str(exc))
        except QueueFull as exc:
            return self._error(
                429, str(exc),
                headers={"Retry-After":
                         str(int(round(exc.retry_after)))})
        return self._send_json(201, {"job": job.to_record()})

    def do_DELETE(self):  # noqa: N802 - stdlib casing
        segments, _ = self._route()
        if len(segments) != 2 or segments[0] != "jobs":
            return self._error(404, "no such route {!r}".format(self.path))
        try:
            job = self.manager.cancel(segments[1])
        except KeyError:
            return self._error(404,
                               "unknown job {!r}".format(segments[1]))
        return self._send_json(200, {"job": job.to_record()})

    # ------------------------------------------------------------------
    # Events: long-poll + chunked ndjson stream
    # ------------------------------------------------------------------

    def _events(self, job_id, query):
        job = self.manager.get_job(job_id)  # KeyError -> 404 upstream
        after = int(query.get("after", -1))
        if query.get("stream") in ("1", "true", "yes"):
            return self._stream_events(job, after)
        wait = min(float(query.get("wait", 0.0)), MAX_WAIT)
        if job.terminal:
            wait = 0.0  # nothing new will ever arrive; answer now
        events = self.manager.events_since(job_id, after=after,
                                           timeout=wait)
        next_after = events[-1]["seq"] if events else after
        return self._send_json(200, {
            "job": job_id, "state": job.state,
            "events": events, "next_after": next_after})

    def _write_chunk(self, payload):
        data = _json_bytes(payload)
        self.wfile.write("{:x}\r\n".format(len(data)).encode("ascii"))
        self.wfile.write(data)
        self.wfile.write(b"\r\n")
        self.wfile.flush()

    def _stream_events(self, job, after):
        """Live ndjson via chunked transfer encoding.

        Ends (with the zero-length terminator chunk) once the job is
        terminal and every event has been delivered; emits heartbeat
        lines while the job is quiet so proxies and clients can tell a
        slow job from a dead connection.
        """
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Cache-Control", "no-cache")
        self.end_headers()
        try:
            while True:
                events = self.manager.events_since(
                    job.id, after=after, timeout=STREAM_HEARTBEAT)
                for event in events:
                    self._write_chunk(event)
                    after = event["seq"]
                if job.terminal and not events:
                    break
                if not events:
                    self._write_chunk({"event": "heartbeat",
                                       "job": job.id,
                                       "state": job.state})
            self.wfile.write(b"0\r\n\r\n")
            self.wfile.flush()
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream; nothing to clean up
        self.close_connection = True


class JobServer:
    """Owns a :class:`ThreadingHTTPServer` bound to the manager.

    ``port=0`` binds an ephemeral port (tests); the resolved address
    is available as :attr:`port` / :attr:`url` after construction.
    """

    def __init__(self, manager, host="127.0.0.1", port=0, verbose=False):
        self.manager = manager
        self.httpd = ThreadingHTTPServer((host, port),
                                         ServiceRequestHandler)
        self.httpd.daemon_threads = True
        self.httpd.manager = manager
        self.httpd.verbose = verbose
        self._thread = None

    @property
    def host(self):
        return self.httpd.server_address[0]

    @property
    def port(self):
        return self.httpd.server_address[1]

    @property
    def url(self):
        return "http://{}:{}".format(self.host, self.port)

    def serve_forever(self):
        self.httpd.serve_forever(poll_interval=0.2)

    def start_background(self):
        self._thread = threading.Thread(target=self.serve_forever,
                                        name="job-server", daemon=True)
        self._thread.start()
        return self

    def shutdown(self):
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
