"""Spec execution: job specs -> experiment drivers -> JSON results.

One function per job kind, all dispatched through
:func:`execute_spec`.  Every runner routes its electrical work through
the caller-provided :class:`~repro.runtime.Runtime`, which is where the
service wires in the per-job telemetry scope (trace sink feeding the
job's event stream), the shared result cache, and the cooperative
``should_stop`` cancellation hook.  Heavy imports stay inside the
functions so importing :mod:`repro.service` does not pull the whole
electrical stack into processes that only submit jobs.
"""

from ..runtime import RunReport
from .jobs import SpecError


def execute_spec(spec, runtime, progress=None):
    """Run a normalized job spec; returns ``(result, report_summary)``.

    ``result`` is the kind-specific JSON-serialisable payload;
    ``report_summary`` is the job's :class:`RunReport` summary dict
    (None for kinds whose driver does not expose one).  Raises
    :class:`~repro.runtime.CampaignCancelled` when the runtime's
    ``should_stop`` fires mid-run.
    """
    kind = spec.get("kind")
    if kind == "coverage":
        return _run_coverage(spec, runtime)
    if kind == "campaign":
        return _run_campaign(spec, runtime, progress)
    if kind == "transfer":
        return _run_transfer(spec, runtime)
    if kind == "sweep":
        return _run_sweep(spec, runtime, progress)
    raise SpecError("unknown job kind {!r}".format(kind))


# ----------------------------------------------------------------------
# coverage / transfer / campaign
# ----------------------------------------------------------------------

def _curves_payload(result):
    return {label: {"resistances": curve.resistances,
                    "hits": curve.hits,
                    "n": curve.ns,
                    "coverage": curve.coverage}
            for label, curve in result.curves.items()}


def _run_coverage(spec, runtime):
    from ..core.experiments import (ExperimentConfig,
                                    run_bridging_coverage,
                                    run_open_coverage)

    config = ExperimentConfig.from_jsonable(spec.get("config"))
    driver = (run_open_coverage if spec.get("fault", "open") == "open"
              else run_bridging_coverage)
    experiment = driver(config, runtime=runtime)
    result = {
        "fault": spec.get("fault", "open"),
        "calibration": {
            "omega_in": experiment.calibration.omega_in,
            "omega_th": experiment.calibration.omega_th,
            "t_star": experiment.dftest.t_star,
        },
        "pulse": _curves_payload(experiment.pulse),
        "delay": _curves_payload(experiment.delay),
    }
    report = (experiment.report.summary()
              if experiment.report is not None else None)
    return result, report


def _run_transfer(spec, runtime):
    from ..core.experiments import (ExperimentConfig,
                                    run_transfer_experiment)

    config = ExperimentConfig.from_jsonable(spec.get("config"))
    experiment = run_transfer_experiment(config, runtime=runtime)
    curve = experiment.nominal_curve
    result = {
        "nominal": {"w_in": [float(w) for w in curve.w_in],
                    "w_out": [float(w) for w in curve.w_out]},
        "scatter": [{"w_in": float(w),
                     "w_out": [float(v)
                               for v in experiment.sample_wouts[w]],
                     "spread": float(experiment.spread(w))}
                    for w in experiment.probe_widths],
    }
    return result, None


def _run_campaign(spec, runtime, progress):
    from ..logic import (DefectCalibration, generate_c432_like,
                         run_campaign)
    from ..montecarlo import sample_population

    fast = bool(spec.get("fast"))
    calibration = DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3],
        dt=5e-12 if fast else 3e-12, runtime=runtime)
    netlist = generate_c432_like(seed=spec.get("seed", 432))
    samples = sample_population(spec.get("samples", 5), base_seed=7)
    result = run_campaign(netlist, calibration, samples=samples,
                          site_stride=spec.get("stride", 2),
                          site_limit=spec.get("sites"),
                          runtime=runtime, progress=progress)
    payload = dict(result.summary())
    payload["coverage"] = [
        {"resistance": r, "coverage": result.coverage_at(r)}
        for r in (2e3, 5e3, 10e3, 20e3, 40e3)]
    report = (result.report.summary()
              if result.report is not None else None)
    return payload, report


# ----------------------------------------------------------------------
# sweep (the dynamically batchable kind)
# ----------------------------------------------------------------------

def sweep_fault(spec):
    """The fault prototype a sweep spec describes."""
    from ..faults import (PULL_UP, BridgingFault, ExternalOpen,
                          InternalOpen)

    stage = spec.get("stage", 2)
    resistance = spec["resistances"][0]
    kind = spec.get("fault", "external_open")
    if kind == "external_open":
        return ExternalOpen(stage, resistance)
    if kind == "internal_open":
        return InternalOpen(stage, PULL_UP, resistance)
    if kind == "bridging":
        return BridgingFault(stage, resistance)
    raise SpecError("unknown sweep fault {!r}".format(kind))


def sweep_measure_spec(spec):
    """The measurement kwargs of a sweep spec (pulse vs delay)."""
    if spec.get("measure", "pulse") == "pulse":
        return {"measure": "pulse",
                "omega_in": float(spec.get("omega_in", 0.40e-9)),
                "kind": spec.get("pulse_kind", "h")}
    return {"measure": "delay",
            "direction": spec.get("direction", "rise")}


def sweep_payloads(spec, with_keys=True):
    """Per-sample payloads + cache keys for one sweep spec.

    Delegates to :func:`repro.core.coverage.build_sweep_payloads` so a
    row computed by the service lands under exactly the same
    content-addressed key as the same row computed by an in-process
    coverage sweep — service and CLI share one cache.
    """
    from ..core.coverage import build_sweep_payloads
    from ..montecarlo import sample_population

    samples = sample_population(spec.get("n_samples", 4),
                                base_seed=spec.get("seed", 1))
    return build_sweep_payloads(
        samples, sweep_fault(spec), spec["resistances"],
        dt=spec.get("dt"), engine="batched",
        adaptive=bool(spec.get("adaptive")), lte_tol=spec.get("lte_tol"),
        solver=spec.get("solver"), with_keys=with_keys,
        **sweep_measure_spec(spec))


def _run_sweep(spec, runtime, progress):
    from ..core.coverage import _sweep_chunk_task

    payloads, keys = sweep_payloads(
        spec, with_keys=runtime.cache is not None)
    report = RunReport("sweep")
    run = runtime.run_batched(_sweep_chunk_task, payloads, keys=keys,
                              batch_size=spec.get("batch_size"),
                              label="sweep", report=report,
                              progress=progress)
    if run.errors:
        raise run.errors[min(run.errors)]
    result = {"rows": [[float(v) for v in row] for row in run.values],
              "resistances": list(spec["resistances"]),
              "n_samples": len(run.values)}
    return result, report.summary()
