"""Campaign-as-a-service: a job server over the campaign runtime.

Long Monte Carlo campaigns stop being one-shot CLI invocations and
become *jobs*: submitted over a stdlib HTTP/JSON API, scheduled by a
bounded priority queue with backpressure, executed through the shared
:class:`~repro.runtime.Runtime` (content-addressed cache + checkpoint,
so jobs survive server restarts and identical resubmissions are free),
observable through per-job live event streams, and cancellable
cooperatively mid-run.

Queued ``sweep`` jobs with matching engine signatures are additionally
*coalesced* — continuous batching for the stacked lockstep MNA engine:
samples from different submitters share one ``run_batched`` call while
each submitter keeps their own results, events and cache keys.

Layers (each importable on its own):

* :mod:`repro.service.jobs` — specs, states, the Job record;
* :mod:`repro.service.queue` — bounded priority FIFO (429 source);
* :mod:`repro.service.store` — durable per-job JSON records;
* :mod:`repro.service.runners` — spec -> experiment driver dispatch;
* :mod:`repro.service.aggregator` — sweep coalescing signatures;
* :mod:`repro.service.manager` — workers, events, recovery;
* :mod:`repro.service.server` — the stdlib HTTP front-end;
* :mod:`repro.service.client` — the urllib SDK.
"""

from .aggregator import compatible, sweep_signature
from .client import ServiceClient, ServiceError, ServiceUnavailable
from .jobs import (CANCELLED, DONE, FAILED, JOB_KINDS, QUEUED, RUNNING,
                   TERMINAL_STATES, InvalidTransition, Job, SpecError,
                   normalize_spec)
from .manager import DEFAULT_DATA_DIR, JobEventLog, JobManager
from .queue import PriorityJobQueue, QueueFull
from .runners import execute_spec
from .server import JobServer, ServiceRequestHandler
from .store import JobStore

__all__ = [
    "Job", "JobManager", "JobServer", "JobStore", "JobEventLog",
    "PriorityJobQueue", "QueueFull", "ServiceClient", "ServiceError",
    "ServiceUnavailable", "ServiceRequestHandler", "SpecError",
    "InvalidTransition", "normalize_spec", "execute_spec",
    "sweep_signature", "compatible", "DEFAULT_DATA_DIR",
    "QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED",
    "TERMINAL_STATES", "JOB_KINDS",
]
