"""Bounded priority FIFO queue for the job manager.

Ordering: higher ``priority`` first, FIFO (submission order) within a
priority level.  The queue is bounded: a full queue raises
:class:`QueueFull` so the HTTP layer can answer ``429 Too Many
Requests`` with a ``Retry-After`` hint instead of buffering without
limit — backpressure is part of the API contract, not an accident.
"""

import heapq
import itertools
import threading


class QueueFull(RuntimeError):
    """The job queue is at capacity; resubmit after ``retry_after``."""

    def __init__(self, capacity, retry_after=1.0):
        super().__init__(
            "job queue full ({} queued); retry in {:.0f}s".format(
                capacity, retry_after))
        self.capacity = capacity
        self.retry_after = retry_after


class PriorityJobQueue:
    """Thread-safe bounded priority FIFO of :class:`Job` objects."""

    def __init__(self, capacity=64):
        self.capacity = max(1, int(capacity))
        self._heap = []  # (-priority, seq, job)
        self._seq = itertools.count()
        self._cond = threading.Condition()

    def __len__(self):
        with self._cond:
            return len(self._heap)

    # ------------------------------------------------------------------

    def put(self, job, force=False):
        """Enqueue ``job``; raises :class:`QueueFull` at capacity.

        ``force`` bypasses the capacity check — used only by restart
        recovery, which must never drop jobs that were already
        accepted by a previous server process.
        """
        with self._cond:
            if not force and len(self._heap) >= self.capacity:
                raise QueueFull(self.capacity,
                                retry_after=self.retry_after_hint())
            heapq.heappush(self._heap,
                           (-int(job.priority), next(self._seq), job))
            self._cond.notify()

    def get(self, timeout=None):
        """Pop the highest-priority job, or None on timeout."""
        with self._cond:
            if not self._cond.wait_for(lambda: self._heap,
                                       timeout=timeout):
                return None
            return heapq.heappop(self._heap)[2]

    def remove(self, job_id):
        """Remove a queued job by id; True when it was still queued.

        The cancel path: a job that never started can go straight to
        CANCELLED, but only one caller may win the race against the
        worker that would dequeue it.
        """
        with self._cond:
            for position, (_, _, job) in enumerate(self._heap):
                if job.id == job_id:
                    self._heap.pop(position)
                    heapq.heapify(self._heap)
                    return True
            return False

    def take_matching(self, predicate, limit):
        """Atomically remove and return up to ``limit`` matching jobs.

        The aggregator's drain: called by a worker that just dequeued
        a batchable job to coalesce compatible queued jobs into the
        same lockstep run.  Jobs are taken in queue (priority, FIFO)
        order.
        """
        if limit <= 0:
            return []
        taken = []
        with self._cond:
            keep = []
            for entry in sorted(self._heap):
                if len(taken) < limit and predicate(entry[2]):
                    taken.append(entry[2])
                else:
                    keep.append(entry)
            if taken:
                self._heap = keep
                heapq.heapify(self._heap)
        return taken

    # ------------------------------------------------------------------

    def snapshot(self):
        """Queued jobs in dispatch order (for listings; non-destructive)."""
        with self._cond:
            return [entry[2] for entry in sorted(self._heap)]

    def retry_after_hint(self, seconds_per_job=1.0):
        """A Retry-After suggestion scaled to the current backlog."""
        with self._cond:
            return max(1.0, len(self._heap) * float(seconds_per_job))
