"""CSV / JSON export of experiment artefacts.

Downstream users re-plot the figures with their own tooling; these
helpers serialise waveforms, transfer curves and coverage results in
plain formats (no extra dependencies).
"""

import csv
import json


def waveform_to_csv(waveform, path, nodes=None):
    """Write a waveform as a ``time,node1,node2,...`` CSV file."""
    nodes = waveform.nodes() if nodes is None else list(nodes)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["time"] + nodes)
        for i, t in enumerate(waveform.t):
            writer.writerow([repr(float(t))]
                            + [repr(float(waveform[n][i]))
                               for n in nodes])
    return path


def transfer_curve_to_csv(curve, path):
    """Write a transfer curve as ``w_in,w_out`` rows."""
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["w_in", "w_out"])
        for w_in, w_out in zip(curve.w_in, curve.w_out):
            writer.writerow([repr(float(w_in)), repr(float(w_out))])
    return path


def coverage_result_to_dict(result):
    """JSON-ready dict of a :class:`~repro.core.CoverageResult`.

    Schema 1.1: the additive ``n`` section carries each curve's
    per-point population — adaptive-precision campaigns stop easy R
    points early, so their curves have a different n per point.  The
    legacy ``n_samples`` scalar (the largest per-point n) stays for 1.0
    readers, which simply overstate the error bars of early-stopped
    points.
    """
    from ..runtime.schema import stamp

    return stamp({
        "resistances": [float(r) for r in result.resistances],
        "curves": {
            label: [float(c) for c in result.curve(label).coverage]
            for label in result.labels()
        },
        "hits": {
            label: [int(h) for h in result.curve(label).hits]
            for label in result.labels()
        },
        "n_samples": {
            label: result.curve(label).n_samples
            for label in result.labels()
        },
        "n": {
            label: [int(n) for n in result.curve(label).ns]
            for label in result.labels()
        },
    })


def coverage_result_to_json(result, path):
    """Write a coverage result as a JSON document."""
    with open(path, "w") as handle:
        json.dump(coverage_result_to_dict(result), handle, indent=2)
    return path


def campaign_to_json(campaign, path):
    """Write a logic-level campaign result as JSON."""
    payload = {
        "summary": campaign.summary(),
        "sites": [
            {
                "net": site.net,
                "status": site.status,
                "path": site.path,
                "omega_in": site.omega_in,
                "omega_th": site.omega_th,
                "r_min": site.r_min,
            }
            for site in campaign.sites
        ],
    }
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2, default=str)
    return path


def load_json(path):
    """Read back any JSON artefact written by this module."""
    with open(path) as handle:
        return json.load(handle)
