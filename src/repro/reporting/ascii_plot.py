"""Minimal ASCII line plots for terminal inspection of figure shapes."""


def ascii_plot(series, width=64, height=16, x_label="", y_label=""):
    """Plot ``{label: (xs, ys)}`` on a shared-axis character canvas.

    Intended for eyeballing coverage curves and transfer functions in the
    bench output, not for publication.
    """
    points = []
    for xs, ys in series.values():
        points.extend(zip(xs, ys))
    if not points:
        raise ValueError("nothing to plot")
    x_min = min(p[0] for p in points)
    x_max = max(p[0] for p in points)
    y_min = min(p[1] for p in points)
    y_max = max(p[1] for p in points)
    if x_max == x_min:
        x_max = x_min + 1.0
    if y_max == y_min:
        y_max = y_min + 1.0

    canvas = [[" "] * width for _ in range(height)]
    markers = "ox+*#@"
    for index, (label, (xs, ys)) in enumerate(series.items()):
        mark = markers[index % len(markers)]
        for x, y in zip(xs, ys):
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = int((y - y_min) / (y_max - y_min) * (height - 1))
            canvas[height - 1 - row][col] = mark

    lines = []
    lines.append("{:>10} +{}".format("{:.3g}".format(y_max),
                                     "".join(canvas[0])))
    for row in canvas[1:-1]:
        lines.append("{:>10} |{}".format("", "".join(row)))
    lines.append("{:>10} +{}".format("{:.3g}".format(y_min),
                                     "".join(canvas[-1])))
    lines.append("{:>11}{:<32}{:>32}".format(
        "", "{:.3g}".format(x_min), "{:.3g}".format(x_max)))
    legend = "   ".join("{} {}".format(markers[i % len(markers)], label)
                        for i, label in enumerate(series))
    lines.append("  legend: " + legend)
    if x_label or y_label:
        lines.append("  x: {}   y: {}".format(x_label, y_label))
    return "\n".join(lines)
