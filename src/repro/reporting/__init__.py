"""Plain-text reporting for the benchmark harness."""

from .ascii_plot import ascii_plot
from .io import (campaign_to_json, coverage_result_to_dict,
                 coverage_result_to_json, load_json,
                 transfer_curve_to_csv, waveform_to_csv)
from .tables import coverage_table, format_series, format_table

__all__ = ["format_table", "format_series", "coverage_table", "ascii_plot",
           "waveform_to_csv", "transfer_curve_to_csv",
           "coverage_result_to_dict", "coverage_result_to_json",
           "campaign_to_json", "load_json"]
