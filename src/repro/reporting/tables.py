"""Plain-text tables and series for the benchmark harness output.

The benches print the same rows/series the paper's figures plot; these
helpers keep that output consistent and terminal-friendly.
"""


def format_table(headers, rows, precision=3):
    """Fixed-width table; floats rendered with ``precision`` digits."""
    def fmt(value):
        if isinstance(value, float):
            return "{:.{p}g}".format(value, p=precision + 2)
        return str(value)

    str_rows = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(name, xs, ys, x_label="x", y_label="y", x_scale=1.0,
                  y_scale=1.0, precision=4):
    """One figure series as labelled columns."""
    rows = [(x * x_scale, y * y_scale) for x, y in zip(xs, ys)]
    return "{}\n{}".format(
        name, format_table([x_label, y_label], rows, precision=precision))


def coverage_table(result, x_label="R (ohm)"):
    """Tabulate a :class:`~repro.core.CoverageResult` like a paper figure:
    one row per resistance, one column per test-parameter setting."""
    labels = result.labels()
    headers = [x_label] + labels
    rows = []
    for i, r in enumerate(result.resistances):
        rows.append([r] + [result.curve(label).coverage[i]
                           for label in labels])
    return format_table(headers, rows)
