"""Clock distribution network model.

Sections 1 and 4: DF testing "should account not only for the
uncertainties on the path's delays, but also for the uncertainties
related to the timing of the clock distribution network.  In fact, the
buffers used to regenerate the clock signals may be affected by delay
fluctuations" — and the launching and capturing flip-flops generally
hang off *different* branches, so their skews do not cancel.

This module models a balanced binary clock buffer tree whose per-buffer
delays fluctuate with the die's variation model.  The skew between two
leaves is the difference of their branch-delay sums; the *applied* test
period seen by a launch/capture pair is the nominal one plus that skew.
The pulse method needs none of this — its generator and detector are
local — which is exactly the asymmetry Figs. 6/7 quantify.
"""

class ClockTree:
    """Balanced binary buffer tree with ``depth`` levels.

    Leaves are indexed 0 .. 2**depth - 1; the path from the root to a
    leaf crosses ``depth`` buffers.  Each buffer's delay is
    ``buffer_delay`` scaled by a per-buffer factor from the variation
    model (deterministic per instance and per buffer position).
    """

    def __init__(self, depth=4, buffer_delay=70e-12):
        if depth < 1:
            raise ValueError("tree depth must be >= 1")
        if buffer_delay <= 0:
            raise ValueError("buffer delay must be positive")
        self.depth = int(depth)
        self.buffer_delay = float(buffer_delay)

    @property
    def n_leaves(self):
        return 2 ** self.depth

    def _buffer_factor(self, sample, level, index):
        if sample is None:
            return 1.0
        return sample.timing_factor(
            "clk:{}:{}".format(level, index))

    def leaf_delay(self, leaf, sample=None):
        """Root-to-leaf insertion delay for one die instance."""
        if not 0 <= leaf < self.n_leaves:
            raise ValueError("leaf {} out of range".format(leaf))
        total = 0.0
        for level in range(self.depth):
            # node index of the buffer crossed at this level
            node = leaf >> (self.depth - 1 - level)
            total += self.buffer_delay * self._buffer_factor(
                sample, level, node)
        return total

    def skew(self, launch_leaf, capture_leaf, sample=None):
        """Capture-minus-launch insertion-delay difference.

        Positive skew means the capture clock arrives late, *extending*
        the applied period; negative skew shortens it (the dangerous
        direction for false negatives... and for yield when calibrating).
        """
        return (self.leaf_delay(capture_leaf, sample)
                - self.leaf_delay(launch_leaf, sample))

    def applied_period(self, nominal_period, launch_leaf, capture_leaf,
                       sample=None):
        """Effective test period for a launch/capture pair on one die."""
        return nominal_period + self.skew(launch_leaf, capture_leaf,
                                          sample)

    def worst_case_skew(self, samples, launch_leaf, capture_leaf):
        """Most period-shortening skew across a population."""
        return min(self.skew(launch_leaf, capture_leaf, sample)
                   for sample in samples)

    def skew_population(self, samples, launch_leaf, capture_leaf):
        """Skews across a population (for distribution statistics)."""
        return [self.skew(launch_leaf, capture_leaf, sample)
                for sample in samples]

    def __repr__(self):
        return "ClockTree(depth={}, buffer_delay={:.0f}ps)".format(
            self.depth, self.buffer_delay * 1e12)


def farthest_leaf_pair(tree):
    """A launch/capture pair on maximally disjoint branches (the worst
    case the paper's argument uses: only the root is shared)."""
    return 0, tree.n_leaves - 1


def calibrate_t_star_with_tree(fault_free_delays, samples, flipflop,
                               tree, launch_leaf, capture_leaf):
    """T* calibration with the explicit tree-skew model.

    The yield constraint: no fault-free instance may fail under its own
    die's skew realisation:

        min_s [T* + skew_s] >= max_s [d_s + overhead_s]

    (conservatively decoupled: T* = max_s(d_s + overhead_s) - min_s skew_s).
    """
    from .reduced_clock import DelayFaultTest

    if len(fault_free_delays) != len(samples):
        raise ValueError("delays and samples must be aligned")
    worst_data = max(
        d + flipflop.sampled_overhead(s)
        for d, s in zip(fault_free_delays, samples))
    worst_skew = tree.worst_case_skew(samples, launch_leaf, capture_leaf)
    t_star = worst_data - worst_skew
    # Express the tree margin as an equivalent skew tolerance so the
    # standard DelayFaultTest API applies.
    tolerance = max(0.0, -worst_skew / t_star)
    return DelayFaultTest(t_star, flipflop,
                          skew_tolerance=min(tolerance, 0.99))
