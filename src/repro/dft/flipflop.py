"""Behavioural flip-flop timing model for the DF-testing baseline.

Section 4: the test circuitry includes a launching flip-flop FF0 and a
capturing flip-flop FF1; a faulty instance is detected when

    T' < d_p(R) + tau_CQ + tau_DC

where ``tau_CQ`` is FF0's clock-to-Q delay and ``tau_DC`` FF1's setup
time.  Both fluctuate with process variation; per-instance factors come
from the variation model's timing stream.
"""


class FlipFlopTiming:
    """Nominal flip-flop timing parameters (seconds)."""

    def __init__(self, tau_cq=80e-12, tau_dc=60e-12):
        if tau_cq < 0 or tau_dc < 0:
            raise ValueError("flip-flop timing must be non-negative")
        self.tau_cq = float(tau_cq)
        self.tau_dc = float(tau_dc)

    @property
    def nominal_overhead(self):
        """tau_CQ + tau_DC under nominal conditions."""
        return self.tau_cq + self.tau_dc

    def sampled_overhead(self, sample=None):
        """Per-instance tau_CQ + tau_DC with timing fluctuation applied."""
        if sample is None:
            return self.nominal_overhead
        return (self.tau_cq * sample.timing_factor("ff0.cq")
                + self.tau_dc * sample.timing_factor("ff1.setup"))

    def __repr__(self):
        return "FlipFlopTiming(tau_cq={:.0f}ps, tau_dc={:.0f}ps)".format(
            self.tau_cq * 1e12, self.tau_dc * 1e12)
