"""Output-transition-ordering DF testing (the [7] baseline).

The paper discusses Singh's self-timed structural method (ITC 2005):
sample outputs repeatedly and flag a delay fault when "the switching
order of any two outputs is opposite to that evaluated by means of
fault-free simulation", noting two weaknesses — the ordered transitions
must not be "too close" (fine ordering is impaired by timing
fluctuations) and the comparison couldn't be made quantitatively
"because of the lack of experimental data".

This module supplies that comparison: a dual-path structure whose two
outputs have a designed arrival-time gap, an ordering test calibrated on
the fault-free Monte Carlo population (guard band such that no healthy
instance flips), and a coverage sweep against fault resistance.
"""

from ..cells import build_path, default_technology
from ..faults import inject, set_fault_resistance
from ..montecarlo import run_population
from ..spice import run_transient


class DualPathCircuit:
    """Two sensitized chains sharing one launched input transition.

    ``path_a`` (the shorter/faster one) hosts the fault; ``path_b`` is
    the reference whose output nominally switches *after* path_a's.
    """

    def __init__(self, path_a, path_b):
        self.path_a = path_a
        self.path_b = path_b

    @property
    def tech(self):
        return self.path_a.tech


def build_dual_path(tech=None, length_a=5, length_b=7, sample=None):
    """Two independent chains measured under the same instance.

    Electrically the chains live in separate circuits (no coupling
    exists between them in the real structure either); what they share
    is the die: the same variation model perturbs both.
    """
    tech = default_technology() if tech is None else tech
    kwargs = {}
    if sample is not None:
        tech = sample.apply_to_technology(tech)
        kwargs["device_factors"] = sample.device_factors
    path_a = build_path(tech=tech, gate_kinds=("inv",) * length_a,
                        title="ordering path A", **kwargs)
    path_b = build_path(tech=tech, gate_kinds=("inv",) * length_b,
                        title="ordering path B", **kwargs)
    return DualPathCircuit(path_a, path_b)


def output_arrival(path, direction="rise", dt=3e-12):
    """Absolute 50% arrival time of the path output transition."""
    delay = path.set_input_transition(direction)
    tstop = delay + path.n_gates * 0.35e-9 + 1.2e-9
    waveform = run_transient(path.circuit, tstop, dt,
                             record=[path.input_node, path.output_node])
    level = path.tech.vdd_half
    return waveform.first_crossing(path.output_node, level, after=delay)


class OrderingTest:
    """Calibrated transition-ordering test.

    ``guard`` is the minimum healthy separation observed across the
    fault-free population; detection requires the *order to flip*
    (t_a > t_b), exactly the [7] decision rule.
    """

    def __init__(self, nominal_gap, guard):
        self.nominal_gap = nominal_gap
        self.guard = guard

    def detects(self, t_a, t_b):
        """Fault indication: path A's output now switches after B's."""
        if t_a is None:
            return True  # output never switched: gross defect
        if t_b is None:
            return False  # reference broken: not attributable to A
        return t_a > t_b

    def __repr__(self):
        return ("OrderingTest(nominal_gap={:.0f}ps, guard={:.0f}ps)"
                .format(self.nominal_gap * 1e12, self.guard * 1e12))


def calibrate_ordering_test(samples, tech=None, length_a=5, length_b=7,
                            direction="rise", dt=3e-12):
    """Measure the fault-free gap distribution; fail loudly when any
    healthy instance already flips (ordering "too fine" — the paper's
    caveat about close transitions)."""
    gaps = []

    def worker(sample):
        dual = build_dual_path(tech=tech, length_a=length_a,
                               length_b=length_b, sample=sample)
        t_a = output_arrival(dual.path_a, direction, dt=dt)
        t_b = output_arrival(dual.path_b, direction, dt=dt)
        return t_b - t_a

    gaps = run_population(worker, samples).values
    guard = min(gaps)
    if guard <= 0.0:
        raise ValueError(
            "transition ordering flips on a fault-free instance; the "
            "two outputs are too close for this population "
            "(min gap {:.0f} ps)".format(guard * 1e12))
    return OrderingTest(nominal_gap=sum(gaps) / len(gaps), guard=guard)


def sweep_ordering_measurements(samples, fault_family, resistances,
                                tech=None, length_a=5, length_b=7,
                                direction="rise", dt=3e-12):
    """Per-sample, per-R (t_a, t_b) pairs with the fault in path A."""

    def worker(sample):
        dual = build_dual_path(tech=tech, length_a=length_a,
                               length_b=length_b, sample=sample)
        faulty_a = inject(dual.path_a, fault_family(resistances[0]))
        t_b = output_arrival(dual.path_b, direction, dt=dt)
        row = []
        for r in resistances:
            set_fault_resistance(faulty_a, r)
            t_a = output_arrival(faulty_a, direction, dt=dt)
            row.append((t_a, t_b))
        return row

    return run_population(worker, samples).values


def ordering_coverage(raw, resistances, test):
    """C_order(R): fraction of instances whose output order flipped."""
    n = len(raw)
    coverage = []
    for ri in range(len(resistances)):
        hits = sum(1 for si in range(n)
                   if test.detects(*raw[si][ri]))
        coverage.append(hits / n)
    return coverage
