"""Reduced-clock delay-fault testing baseline (C_del)."""

from .clock_network import (ClockTree, calibrate_t_star_with_tree,
                            farthest_leaf_pair)
from .flipflop import FlipFlopTiming
from .ordering import (DualPathCircuit, OrderingTest, build_dual_path,
                       calibrate_ordering_test, ordering_coverage,
                       output_arrival, sweep_ordering_measurements)
from .reduced_clock import DelayFaultTest, calibrate_t_star

__all__ = ["FlipFlopTiming", "DelayFaultTest", "calibrate_t_star",
           "ClockTree", "calibrate_t_star_with_tree", "farthest_leaf_pair",
           "DualPathCircuit", "OrderingTest", "build_dual_path",
           "calibrate_ordering_test", "sweep_ordering_measurements",
           "ordering_coverage", "output_arrival"]
