"""Reduced-clock-period delay-fault testing (the comparison baseline).

The faster-than-at-speed technique of Sec. 4: apply an input transition,
sample the path output with a clock period ``T'`` smaller than the
functional one, and flag instances whose transition arrives after the
sampling instant.

Calibration mirrors the paper: Monte Carlo fault-free simulation selects a
nominal ``T*`` such that *no false positive occurs even if the applied
clock period is 10 % below nominal* — the margin absorbing clock skew and
clock-distribution-network uncertainty, the very effect the pulse method
is immune to.
"""

import math


class DelayFaultTest:
    """A calibrated reduced-clock test for one path."""

    def __init__(self, t_star, flipflop, skew_tolerance=0.1):
        if t_star <= 0:
            raise ValueError("T* must be positive")
        if not 0.0 <= skew_tolerance < 1.0:
            raise ValueError("skew tolerance must be in [0, 1)")
        self.t_star = float(t_star)
        self.flipflop = flipflop
        self.skew_tolerance = float(skew_tolerance)

    def applied_period(self, t_factor=1.0):
        """The clock period actually hitting the die: ``t_factor * T*``.

        The paper evaluates t_factor in {0.9, 1.0, 1.1} to show the
        sensitivity of DF testing to clock-network fluctuations.
        """
        return self.t_star * t_factor

    def detects(self, path_delay, sample=None, t_factor=1.0):
        """Detection condition: T' < d_p + tau_CQ + tau_DC.

        ``path_delay = math.inf`` (output never switched / functional
        error) is always detected.
        """
        if math.isinf(path_delay):
            return True
        total = path_delay + self.flipflop.sampled_overhead(sample)
        return self.applied_period(t_factor) < total

    def __repr__(self):
        return "DelayFaultTest(T*={:.0f}ps, skew_tol={:.0%})".format(
            self.t_star * 1e12, self.skew_tolerance)


def calibrate_t_star(fault_free_delays, samples, flipflop,
                     skew_tolerance=0.1):
    """Choose T* from fault-free Monte Carlo results.

    ``fault_free_delays`` are per-sample path delays (seconds), aligned
    with ``samples``.  The requirement is that no fault-free instance
    fails even when the applied period droops to ``(1 - skew_tolerance) *
    T*``:

        (1 - skew_tolerance) * T* >= max_s (d_s + overhead_s)
    """
    if len(fault_free_delays) != len(samples):
        raise ValueError("delays and samples must be aligned")
    if not fault_free_delays:
        raise ValueError("calibration needs at least one sample")
    worst = max(
        delay + flipflop.sampled_overhead(sample)
        for delay, sample in zip(fault_free_delays, samples))
    if math.isinf(worst):
        raise ValueError("a fault-free instance never propagated; "
                         "the structure is broken, not calibratable")
    t_star = worst / (1.0 - skew_tolerance)
    return DelayFaultTest(t_star, flipflop, skew_tolerance)
