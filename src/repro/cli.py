"""Command-line interface: ``pulsetest <command>``.

Runs the paper's experiments from the shell and prints the same series
the figures plot.  Heavy electrical sweeps honour ``REPRO_FAST=1``.
"""

import argparse
import sys

from .core.experiments import (ExperimentConfig, run_bridging_coverage,
                               run_open_coverage,
                               run_path_characterization,
                               run_transfer_experiment,
                               run_waveform_experiment)
from .reporting import ascii_plot, coverage_table, format_table


def _cmd_waveforms(args):
    experiment = run_waveform_experiment(args.kind, args.resistance,
                                         w_in=args.w_in)
    half = 0.5 * experiment.vdd
    rows = []
    for node in experiment.nodes:
        rows.append([
            node,
            experiment.excursion(experiment.fault_free, node),
            experiment.excursion(experiment.faulty, node),
        ])
    print("fault: {}".format(experiment.fault.describe()))
    print(format_table(
        ["node", "fault-free excursion (V)", "faulty excursion (V)"], rows))
    print("\npulse dampened at output: {}".format(
        experiment.dampened_at_output()))
    print("(excursions below {:.2f} V mean the pulse died)".format(half))
    return 0


def _cmd_coverage(args):
    config = ExperimentConfig.from_env()
    if args.fault == "open":
        experiment = run_open_coverage(config)
    else:
        experiment = run_bridging_coverage(config)
    print("calibration: omega_in={:.0f}ps omega_th={:.0f}ps T*={:.0f}ps"
          .format(experiment.calibration.omega_in * 1e12,
                  experiment.calibration.omega_th * 1e12,
                  experiment.dftest.t_star * 1e12))
    print("\nC_pulse (proposed method)")
    print(coverage_table(experiment.pulse))
    print("\nC_del (reduced-clock DF testing)")
    print(coverage_table(experiment.delay))
    series = {}
    for label in experiment.pulse.labels():
        curve = experiment.pulse.curve(label)
        series["pulse " + label] = (curve.resistances, curve.coverage)
    for label in experiment.delay.labels():
        curve = experiment.delay.curve(label)
        series["del " + label] = (curve.resistances, curve.coverage)
    print()
    print(ascii_plot(series, x_label="R (ohm)", y_label="coverage"))
    return 0


def _cmd_transfer(args):
    experiment = run_transfer_experiment()
    curve = experiment.nominal_curve
    rows = [(w * 1e12, o * 1e12)
            for w, o in zip(curve.w_in, curve.w_out)]
    print(format_table(["w_in (ps)", "w_out (ps)"], rows))
    print("\nregions: dampened up to {:.0f} ps, asymptotic from {:.0f} ps"
          .format(curve.dampened_limit() * 1e12,
                  (curve.region3_onset() or float("nan")) * 1e12))
    print("\nMonte Carlo scatter at candidate omega_in values:")
    rows = []
    for w in experiment.probe_widths:
        values = experiment.sample_wouts[w]
        rows.append([w * 1e12, min(values) * 1e12, max(values) * 1e12,
                     experiment.spread(w) * 1e12])
    print(format_table(
        ["w_in (ps)", "min w_out (ps)", "max w_out (ps)", "spread (ps)"],
        rows))
    return 0


def _cmd_paths(args):
    result = run_path_characterization()
    print("circuit: {}   fault net: {}".format(result.circuit_name,
                                               result.fault_net))
    rows = []
    for entry in result.entries:
        rows.append([
            entry["length"],
            entry["omega_in"] * 1e12,
            entry["omega_th"] * 1e12,
            "-" if entry["r_min"] is None else entry["r_min"],
        ])
    print(format_table(
        ["path gates", "omega_in (ps)", "omega_th (ps)", "R_min (ohm)"],
        rows))
    best = result.best()
    if best is not None:
        print("\nbest path: R_min = {:.0f} ohm at omega_in = {:.0f} ps"
              .format(best["r_min"], best["omega_in"] * 1e12))
    return 0


def _cmd_campaign(args):
    from .logic import (DefectCalibration, generate_c432_like,
                        run_campaign)

    calibration = DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3],
        dt=5e-12 if args.fast else 3e-12)
    netlist = generate_c432_like(seed=args.seed)
    result = run_campaign(netlist, calibration,
                          site_stride=args.stride)
    summary = result.summary()
    print("circuit: {}   fault sites: {}".format(summary["circuit"],
                                                 summary["n_sites"]))
    print("statuses: {}".format(summary["statuses"]))
    print("test generation rate: {:.0%}".format(
        summary["test_generation_rate"]))
    rows = [[r, result.coverage_at(r)]
            for r in (2e3, 5e3, 10e3, 20e3, 40e3)]
    print()
    print(format_table(["R (ohm)", "site coverage"], rows))
    if summary["best_r_min"] is not None:
        print("\nbest generated test detects R >= {:.0f} ohm".format(
            summary["best_r_min"]))
    return 0


def _cmd_onchip(args):
    from .faults import (BridgingFault, ExternalOpen, InternalOpen,
                         PULL_UP)
    from .testckt import build_onchip_test, run_onchip_test

    fault = None
    if args.fault == "internal_rop":
        fault = InternalOpen(2, PULL_UP, args.resistance)
    elif args.fault == "external_rop":
        fault = ExternalOpen(2, args.resistance)
    elif args.fault == "bridging":
        fault = BridgingFault(2, args.resistance)

    bench = build_onchip_test(fault=fault)
    detected, waveform = run_onchip_test(
        bench, dt=5e-12 if args.fast else 3e-12)
    flag = waveform.value_at(bench.detector.flag_node, waveform.t[-1])
    half = bench.tech.vdd_half
    print("structure: {}".format(bench))
    print("generated pulse at the path input: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.input_node, half, "high")
        * 1e12))
    print("pulse at the path output: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.output_node, half, "low")
        * 1e12))
    print("detector flag: {:.2f} V -> {}".format(
        flag, "FAULT DETECTED" if detected else "pass"))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="pulsetest",
        description=("Pulse propagation for the detection of small delay "
                     "defects (Favalli & Metra, DATE 2007) - experiment "
                     "runner"))
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("waveforms",
                       help="faulty vs fault-free waveforms (Figs. 2/3/5)")
    p.add_argument("kind",
                   choices=["internal_rop", "external_rop", "bridging"])
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--w-in", type=float, default=0.40e-9)
    p.set_defaults(func=_cmd_waveforms)

    p = sub.add_parser("coverage",
                       help="C_pulse / C_del vs R (Figs. 6-9)")
    p.add_argument("fault", choices=["open", "bridging"])
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("transfer",
                       help="w_out(w_in) transfer relation (Fig. 10)")
    p.set_defaults(func=_cmd_transfer)

    p = sub.add_parser("paths",
                       help="per-path (omega_in, omega_th, R_min) (Fig. 11)")
    p.set_defaults(func=_cmd_paths)

    p = sub.add_parser("onchip",
                       help="fully structural on-chip pulse test "
                            "(generator + path + detector)")
    p.add_argument("--fault",
                   choices=["none", "internal_rop", "external_rop",
                            "bridging"], default="none")
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_onchip)

    p = sub.add_parser("campaign",
                       help="full-circuit test campaign (extension)")
    p.add_argument("--seed", type=int, default=432)
    p.add_argument("--stride", type=int, default=2,
                   help="fault-site subsampling stride")
    p.add_argument("--fast", action="store_true",
                   help="coarser electrical calibration")
    p.set_defaults(func=_cmd_campaign)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
