"""Command-line interface: ``pulsetest <command>``.

Runs the paper's experiments from the shell and prints the same series
the figures plot.  Heavy electrical sweeps honour ``REPRO_FAST=1``.
"""

import argparse
import sys

from .core.experiments import (ExperimentConfig, run_bridging_coverage,
                               run_open_coverage,
                               run_path_characterization,
                               run_transfer_experiment,
                               run_waveform_experiment)
from .reporting import ascii_plot, coverage_table, format_table


def _cmd_waveforms(args):
    experiment = run_waveform_experiment(args.kind, args.resistance,
                                         w_in=args.w_in)
    half = 0.5 * experiment.vdd
    rows = []
    for node in experiment.nodes:
        rows.append([
            node,
            experiment.excursion(experiment.fault_free, node),
            experiment.excursion(experiment.faulty, node),
        ])
    print("fault: {}".format(experiment.fault.describe()))
    print(format_table(
        ["node", "fault-free excursion (V)", "faulty excursion (V)"], rows))
    print("\npulse dampened at output: {}".format(
        experiment.dampened_at_output()))
    print("(excursions below {:.2f} V mean the pulse died)".format(half))
    return 0


def _cmd_coverage(args):
    config = ExperimentConfig.from_env()
    if args.jobs is not None:
        config.n_jobs = args.jobs
    if args.cache_dir:
        config.cache_dir = args.cache_dir
    if args.engine is not None:
        config.engine = args.engine
    if args.batch_size is not None:
        config.batch_size = args.batch_size
    if args.adaptive:
        config.adaptive = True
    if args.lte_tol is not None:
        config.adaptive = True
        config.lte_tol = args.lte_tol
    if args.trace:
        config.trace = args.trace
    if args.fault == "open":
        experiment = run_open_coverage(config)
    else:
        experiment = run_bridging_coverage(config)
    print("calibration: omega_in={:.0f}ps omega_th={:.0f}ps T*={:.0f}ps"
          .format(experiment.calibration.omega_in * 1e12,
                  experiment.calibration.omega_th * 1e12,
                  experiment.dftest.t_star * 1e12))
    print("\nC_pulse (proposed method)")
    print(coverage_table(experiment.pulse))
    print("\nC_del (reduced-clock DF testing)")
    print(coverage_table(experiment.delay))
    series = {}
    for label in experiment.pulse.labels():
        curve = experiment.pulse.curve(label)
        series["pulse " + label] = (curve.resistances, curve.coverage)
    for label in experiment.delay.labels():
        curve = experiment.delay.curve(label)
        series["del " + label] = (curve.resistances, curve.coverage)
    print()
    print(ascii_plot(series, x_label="R (ohm)", y_label="coverage"))
    if experiment.report is not None:
        print()
        print(experiment.report.format_report())
    return 0


def _cmd_transfer(args):
    experiment = run_transfer_experiment()
    curve = experiment.nominal_curve
    rows = [(w * 1e12, o * 1e12)
            for w, o in zip(curve.w_in, curve.w_out)]
    print(format_table(["w_in (ps)", "w_out (ps)"], rows))
    print("\nregions: dampened up to {:.0f} ps, asymptotic from {:.0f} ps"
          .format(curve.dampened_limit() * 1e12,
                  (curve.region3_onset() or float("nan")) * 1e12))
    print("\nMonte Carlo scatter at candidate omega_in values:")
    rows = []
    for w in experiment.probe_widths:
        values = experiment.sample_wouts[w]
        rows.append([w * 1e12, min(values) * 1e12, max(values) * 1e12,
                     experiment.spread(w) * 1e12])
    print(format_table(
        ["w_in (ps)", "min w_out (ps)", "max w_out (ps)", "spread (ps)"],
        rows))
    return 0


def _cmd_paths(args):
    result = run_path_characterization()
    print("circuit: {}   fault net: {}".format(result.circuit_name,
                                               result.fault_net))
    rows = []
    for entry in result.entries:
        rows.append([
            entry["length"],
            entry["omega_in"] * 1e12,
            entry["omega_th"] * 1e12,
            "-" if entry["r_min"] is None else entry["r_min"],
        ])
    print(format_table(
        ["path gates", "omega_in (ps)", "omega_th (ps)", "R_min (ohm)"],
        rows))
    best = result.best()
    if best is not None:
        print("\nbest path: R_min = {:.0f} ohm at omega_in = {:.0f} ps"
              .format(best["r_min"], best["omega_in"] * 1e12))
    return 0


def _cmd_campaign(args):
    from .logic import (DefectCalibration, generate_c432_like,
                        run_campaign)
    from .montecarlo import sample_population
    from .runtime import Runtime

    runtime = Runtime.from_env(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        timeout=args.task_timeout,
        trace=args.trace)
    calibration = DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3],
        dt=5e-12 if args.fast else 3e-12, runtime=runtime)
    netlist = generate_c432_like(seed=args.seed)
    samples = sample_population(args.samples, base_seed=7)
    result = run_campaign(netlist, calibration, samples=samples,
                          site_stride=args.stride,
                          site_limit=args.sites, runtime=runtime)
    summary = result.summary()
    print("circuit: {}   fault sites: {}".format(summary["circuit"],
                                                 summary["n_sites"]))
    print("statuses: {}".format(summary["statuses"]))
    print("test generation rate: {:.0%}".format(
        summary["test_generation_rate"]))
    rows = [[r, result.coverage_at(r)]
            for r in (2e3, 5e3, 10e3, 20e3, 40e3)]
    print()
    print(format_table(["R (ohm)", "site coverage"], rows))
    if summary["best_r_min"] is not None:
        print("\nbest generated test detects R >= {:.0f} ohm".format(
            summary["best_r_min"]))
    if result.report is not None:
        print()
        print(result.report.format_report())
        if args.resume and result.report.cache_hits:
            print("resumed: {} of {} sites came from the cache".format(
                result.report.cache_hits, result.report.n_tasks))
        if args.report_json:
            result.report.to_json(args.report_json)
            print("report written to {}".format(args.report_json))
    return 0


def _cmd_onchip(args):
    from .faults import (BridgingFault, ExternalOpen, InternalOpen,
                         PULL_UP)
    from .testckt import build_onchip_test, run_onchip_test

    fault = None
    if args.fault == "internal_rop":
        fault = InternalOpen(2, PULL_UP, args.resistance)
    elif args.fault == "external_rop":
        fault = ExternalOpen(2, args.resistance)
    elif args.fault == "bridging":
        fault = BridgingFault(2, args.resistance)

    bench = build_onchip_test(fault=fault)
    detected, waveform = run_onchip_test(
        bench, dt=5e-12 if args.fast else 3e-12)
    flag = waveform.value_at(bench.detector.flag_node, waveform.t[-1])
    half = bench.tech.vdd_half
    print("structure: {}".format(bench))
    print("generated pulse at the path input: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.input_node, half, "high")
        * 1e12))
    print("pulse at the path output: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.output_node, half, "low")
        * 1e12))
    print("detector flag: {:.2f} V -> {}".format(
        flag, "FAULT DETECTED" if detected else "pass"))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="pulsetest",
        description=("Pulse propagation for the detection of small delay "
                     "defects (Favalli & Metra, DATE 2007) - experiment "
                     "runner"))
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("waveforms",
                       help="faulty vs fault-free waveforms (Figs. 2/3/5)")
    p.add_argument("kind",
                   choices=["internal_rop", "external_rop", "bridging"])
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--w-in", type=float, default=0.40e-9)
    p.set_defaults(func=_cmd_waveforms)

    p = sub.add_parser("coverage",
                       help="C_pulse / C_del vs R (Figs. 6-9)")
    p.add_argument("fault", choices=["open", "bridging"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1; "
                        "0 = all CPUs)")
    p.add_argument("--cache-dir", default=None,
                   help="enable the on-disk result cache at this path")
    p.add_argument("--engine", choices=["scalar", "batched"],
                   default=None,
                   help="transient backend for the population sweeps "
                        "(default: REPRO_ENGINE or scalar)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="samples per lockstep batch (batched engine)")
    p.add_argument("--adaptive", action="store_true",
                   help="LTE-controlled adaptive time grid "
                        "(default: REPRO_ADAPTIVE or fixed-step)")
    p.add_argument("--lte-tol", type=float, default=None,
                   help="adaptive per-step error tolerance in volts "
                        "(implies --adaptive; default: engine default)")
    p.add_argument("--trace", default=None,
                   help="append one JSONL event per executed task to "
                        "this file (default: REPRO_TRACE or off)")
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("transfer",
                       help="w_out(w_in) transfer relation (Fig. 10)")
    p.set_defaults(func=_cmd_transfer)

    p = sub.add_parser("paths",
                       help="per-path (omega_in, omega_th, R_min) (Fig. 11)")
    p.set_defaults(func=_cmd_paths)

    p = sub.add_parser("onchip",
                       help="fully structural on-chip pulse test "
                            "(generator + path + detector)")
    p.add_argument("--fault",
                   choices=["none", "internal_rop", "external_rop",
                            "bridging"], default="none")
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_onchip)

    p = sub.add_parser("campaign",
                       help="full-circuit test campaign (extension)")
    p.add_argument("--seed", type=int, default=432)
    p.add_argument("--stride", type=int, default=2,
                   help="fault-site subsampling stride")
    p.add_argument("--fast", action="store_true",
                   help="coarser electrical calibration")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1; "
                        "0 = all CPUs)")
    p.add_argument("--samples", type=int, default=5,
                   help="Monte Carlo population size per site")
    p.add_argument("--sites", type=int, default=None,
                   help="limit the number of fault sites")
    p.add_argument("--cache-dir", default=".repro_cache",
                   help="result cache / checkpoint location")
    p.add_argument("--no-cache", action="store_true",
                   help="disable result caching and checkpointing")
    p.add_argument("--resume", action="store_true",
                   help="report how much of the campaign was resumed "
                        "from a previous (possibly interrupted) run")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-site wall-clock budget in seconds")
    p.add_argument("--report-json", default=None,
                   help="write the run report to this JSON file")
    p.add_argument("--trace", default=None,
                   help="append one JSONL event per executed task to "
                        "this file (default: REPRO_TRACE or off)")
    p.set_defaults(func=_cmd_campaign)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
