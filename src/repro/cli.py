"""Command-line interface: ``pulsetest <command>``.

Runs the paper's experiments from the shell and prints the same series
the figures plot.  Heavy electrical sweeps honour ``REPRO_FAST=1``.
"""

import argparse
import sys

from . import __version__
from .core.experiments import (ExperimentConfig, run_adaptive_coverage,
                               run_bridging_coverage, run_open_coverage,
                               run_path_characterization,
                               run_transfer_experiment,
                               run_waveform_experiment)
from .reporting import ascii_plot, coverage_table, format_table

#: exit codes: 0 ok, 2 argparse, 3 failed tasks / FAILED job,
#: 4 cancelled job, 5 service unreachable or over capacity
EXIT_FAILED = 3
EXIT_CANCELLED = 4
EXIT_SERVICE = 5


def _report_exit(args, report):
    """Exit code for a run with a telemetry report attached.

    Failed or timed-out tasks make the invocation exit nonzero
    (``--no-fail-on-errors`` restores the old always-zero behaviour
    for callers that only care about the printed curves).
    """
    if report is None or not getattr(args, "fail_on_errors", True):
        return 0
    summary = report.summary()
    if summary.get("failed") or summary.get("timeouts"):
        print("\n{} task(s) failed, {} timed out -> exit {}".format(
            summary.get("failed", 0), summary.get("timeouts", 0),
            EXIT_FAILED), file=sys.stderr)
        return EXIT_FAILED
    return 0


def _cmd_waveforms(args):
    experiment = run_waveform_experiment(args.kind, args.resistance,
                                         w_in=args.w_in)
    half = 0.5 * experiment.vdd
    rows = []
    for node in experiment.nodes:
        rows.append([
            node,
            experiment.excursion(experiment.fault_free, node),
            experiment.excursion(experiment.faulty, node),
        ])
    print("fault: {}".format(experiment.fault.describe()))
    print(format_table(
        ["node", "fault-free excursion (V)", "faulty excursion (V)"], rows))
    print("\npulse dampened at output: {}".format(
        experiment.dampened_at_output()))
    print("(excursions below {:.2f} V mean the pulse died)".format(half))
    return 0


def _cmd_coverage(args):
    config = ExperimentConfig.from_env()
    if args.jobs is not None:
        config.n_jobs = args.jobs
    if args.cache_dir:
        config.cache_dir = args.cache_dir
    if args.engine is not None:
        config.engine = args.engine
    if args.batch_size is not None:
        config.batch_size = args.batch_size
    if args.adaptive:
        config.adaptive = True
    if args.lte_tol is not None:
        config.adaptive = True
        config.lte_tol = args.lte_tol
    if args.solver is not None:
        config.solver = args.solver
    if args.trace:
        config.trace = args.trace
    if (args.ci_width is not None or args.min_wave is not None
            or args.refine_r is not None):
        return _run_adaptive_coverage_cmd(args, config)
    if args.fault == "open":
        experiment = run_open_coverage(config)
    else:
        experiment = run_bridging_coverage(config)
    print("calibration: omega_in={:.0f}ps omega_th={:.0f}ps T*={:.0f}ps"
          .format(experiment.calibration.omega_in * 1e12,
                  experiment.calibration.omega_th * 1e12,
                  experiment.dftest.t_star * 1e12))
    print("\nC_pulse (proposed method)")
    print(coverage_table(experiment.pulse))
    print("\nC_del (reduced-clock DF testing)")
    print(coverage_table(experiment.delay))
    series = {}
    for label in experiment.pulse.labels():
        curve = experiment.pulse.curve(label)
        series["pulse " + label] = (curve.resistances, curve.coverage)
    for label in experiment.delay.labels():
        curve = experiment.delay.curve(label)
        series["del " + label] = (curve.resistances, curve.coverage)
    print()
    print(ascii_plot(series, x_label="R (ohm)", y_label="coverage"))
    if experiment.report is not None:
        print()
        print(experiment.report.format_report())
    return _report_exit(args, experiment.report)


def _run_adaptive_coverage_cmd(args, config):
    """The adaptive-precision branch of the ``coverage`` verb."""
    from .core.coverage import CoverageResult

    kwargs = {}
    if args.ci_width is not None:
        kwargs["ci_width"] = args.ci_width
    if args.min_wave is not None:
        kwargs["min_wave"] = args.min_wave
    if args.refine_r is not None:
        kwargs["refine_rel_tol"] = args.refine_r
    experiment = run_adaptive_coverage(config, fault=args.fault, **kwargs)
    print("calibration: omega_in={:.0f}ps omega_th={:.0f}ps T*={:.0f}ps"
          .format(experiment.calibration.omega_in * 1e12,
                  experiment.calibration.omega_th * 1e12,
                  experiment.dftest.t_star * 1e12))
    for title, sweep, curves in (
            ("C_pulse (proposed method)", experiment.pulse_sweep,
             experiment.pulse_curves),
            ("C_del (reduced-clock DF testing)", experiment.delay_sweep,
             experiment.delay_curves)):
        print("\n{} — adaptive grid, per-point n in [{}, {}]".format(
            title, min(sweep.ns), max(sweep.ns)))
        print(coverage_table(
            CoverageResult(sweep.resistances, curves, sweep.raw())))
        for target in sorted(sweep.crossings):
            crossing = sweep.crossings[target]
            print("coverage {:.0%} crossing localised to "
                  "[{:.0f}, {:.0f}] ohm (detected at {:.0f})".format(
                      target, crossing["lo"], crossing["hi"],
                      crossing["detected_at"]))
    transients = experiment.transients
    print("\ntransients: {} adaptive vs {} fixed-grid default vs {} "
          "matched-resolution grid ({:.0%} saved)".format(
              transients["adaptive"], transients["fixed_grid"],
              transients["matched_resolution"],
              experiment.reduction_vs_matched()))
    if experiment.report is not None:
        print()
        print(experiment.report.format_report())
        print("escalation waves: {}".format(experiment.report.waves))
    return _report_exit(args, experiment.report)


def _cmd_transfer(args):
    experiment = run_transfer_experiment()
    curve = experiment.nominal_curve
    rows = [(w * 1e12, o * 1e12)
            for w, o in zip(curve.w_in, curve.w_out)]
    print(format_table(["w_in (ps)", "w_out (ps)"], rows))
    print("\nregions: dampened up to {:.0f} ps, asymptotic from {:.0f} ps"
          .format(curve.dampened_limit() * 1e12,
                  (curve.region3_onset() or float("nan")) * 1e12))
    print("\nMonte Carlo scatter at candidate omega_in values:")
    rows = []
    for w in experiment.probe_widths:
        values = experiment.sample_wouts[w]
        rows.append([w * 1e12, min(values) * 1e12, max(values) * 1e12,
                     experiment.spread(w) * 1e12])
    print(format_table(
        ["w_in (ps)", "min w_out (ps)", "max w_out (ps)", "spread (ps)"],
        rows))
    return 0


def _cmd_paths(args):
    result = run_path_characterization()
    print("circuit: {}   fault net: {}".format(result.circuit_name,
                                               result.fault_net))
    rows = []
    for entry in result.entries:
        rows.append([
            entry["length"],
            entry["omega_in"] * 1e12,
            entry["omega_th"] * 1e12,
            "-" if entry["r_min"] is None else entry["r_min"],
        ])
    print(format_table(
        ["path gates", "omega_in (ps)", "omega_th (ps)", "R_min (ohm)"],
        rows))
    best = result.best()
    if best is not None:
        print("\nbest path: R_min = {:.0f} ohm at omega_in = {:.0f} ps"
              .format(best["r_min"], best["omega_in"] * 1e12))
    return 0


def _cmd_campaign(args):
    from .logic import (DefectCalibration, generate_c432_like,
                        run_campaign)
    from .montecarlo import sample_population
    from .runtime import Runtime

    runtime = Runtime.from_env(
        jobs=args.jobs,
        cache_dir=None if args.no_cache else args.cache_dir,
        timeout=args.task_timeout,
        trace=args.trace,
        chaos=args.chaos)
    calibration = DefectCalibration.from_electrical(
        "external", [1e3, 4e3, 12e3, 40e3],
        dt=5e-12 if args.fast else 3e-12, runtime=runtime)
    netlist = generate_c432_like(seed=args.seed)
    samples = sample_population(args.samples, base_seed=7)
    result = run_campaign(netlist, calibration, samples=samples,
                          site_stride=args.stride,
                          site_limit=args.sites, runtime=runtime)
    summary = result.summary()
    print("circuit: {}   fault sites: {}".format(summary["circuit"],
                                                 summary["n_sites"]))
    print("statuses: {}".format(summary["statuses"]))
    print("test generation rate: {:.0%}".format(
        summary["test_generation_rate"]))
    rows = [[r, result.coverage_at(r)]
            for r in (2e3, 5e3, 10e3, 20e3, 40e3)]
    print()
    print(format_table(["R (ohm)", "site coverage"], rows))
    if summary["best_r_min"] is not None:
        print("\nbest generated test detects R >= {:.0f} ohm".format(
            summary["best_r_min"]))
    if result.report is not None:
        print()
        print(result.report.format_report())
        if args.resume and result.report.cache_hits:
            print("resumed: {} of {} sites came from the cache".format(
                result.report.cache_hits, result.report.n_tasks))
        if args.report_json:
            result.report.to_json(args.report_json)
            print("report written to {}".format(args.report_json))
    status = _report_exit(args, result.report)
    if status == 0 and getattr(args, "fail_on_errors", True):
        errors = summary["statuses"].get("error", 0)
        if errors:
            print("\n{} site(s) errored -> exit {}".format(
                errors, EXIT_FAILED), file=sys.stderr)
            status = EXIT_FAILED
    return status


def _cmd_onchip(args):
    from .faults import (BridgingFault, ExternalOpen, InternalOpen,
                         PULL_UP)
    from .testckt import build_onchip_test, run_onchip_test

    fault = None
    if args.fault == "internal_rop":
        fault = InternalOpen(2, PULL_UP, args.resistance)
    elif args.fault == "external_rop":
        fault = ExternalOpen(2, args.resistance)
    elif args.fault == "bridging":
        fault = BridgingFault(2, args.resistance)

    bench = build_onchip_test(fault=fault)
    detected, waveform = run_onchip_test(
        bench, dt=5e-12 if args.fast else 3e-12)
    flag = waveform.value_at(bench.detector.flag_node, waveform.t[-1])
    half = bench.tech.vdd_half
    print("structure: {}".format(bench))
    print("generated pulse at the path input: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.input_node, half, "high")
        * 1e12))
    print("pulse at the path output: {:.0f} ps".format(
        waveform.widest_pulse(bench.path.output_node, half, "low")
        * 1e12))
    print("detector flag: {:.2f} V -> {}".format(
        flag, "FAULT DETECTED" if detected else "pass"))
    return 0


# ----------------------------------------------------------------------
# Service verbs (campaign-as-a-service)
# ----------------------------------------------------------------------

def _cmd_serve(args):
    from .service import JobManager, JobServer

    manager = JobManager(
        data_dir=args.data_dir,
        max_concurrency=args.concurrency,
        queue_capacity=args.queue_capacity,
        runtime_jobs=args.jobs or 1,
        cache=not args.no_cache,
        aggregate=not args.no_aggregate,
        aggregate_limit=args.aggregate_limit).start()
    server = JobServer(manager, host=args.host, port=args.port,
                       verbose=args.verbose)
    print("serving jobs on {} (data dir: {})".format(
        server.url, args.data_dir), flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down", file=sys.stderr)
    finally:
        server.shutdown()
        manager.stop()
    return 0


def _service_spec(args):
    """Build the job spec the ``submit`` verb describes."""
    kind = args.kind
    if kind == "coverage":
        if args.fast:
            config = {"n_samples": 3, "dt": 5e-12, "n_paths": 3,
                      "rop_resistances": [1e3, 5e3, 20e3, 60e3],
                      "bridging_resistances": [500.0, 2e3, 8e3, 30e3]}
        else:
            config = ExperimentConfig.from_env().to_jsonable()
        return {"kind": "coverage", "fault": args.fault or "open",
                "config": config}
    if kind == "campaign":
        return {"kind": "campaign", "seed": args.seed,
                "samples": args.samples, "sites": args.sites,
                "stride": args.stride, "fast": args.fast}
    if kind == "transfer":
        return {"kind": "transfer",
                "config": ExperimentConfig.from_env().to_jsonable()}
    spec = {"kind": "sweep", "measure": args.measure,
            "fault": args.fault or "external_open", "stage": args.stage,
            "resistances": [float(r)
                            for r in args.resistances.split(",")],
            "n_samples": args.samples, "seed": args.seed}
    if args.dt is not None:
        spec["dt"] = args.dt
    if args.batch_size is not None:
        spec["batch_size"] = args.batch_size
    return spec


def _job_exit_code(record):
    state = record["state"]
    if state == "DONE":
        return 0
    if state == "CANCELLED":
        return EXIT_CANCELLED
    return EXIT_FAILED


def _print_event(event):
    name = event.get("event")
    if name == "state":
        line = "[{}] state={}".format(event.get("job"),
                                      event.get("state"))
        if event.get("error"):
            line += " error={}".format(event["error"])
    elif name == "progress":
        line = "[{}] progress {}/{}".format(
            event.get("job"), event.get("done"), event.get("total"))
    elif name == "aggregated":
        line = "[{}] coalesced into a {}-job batch".format(
            event.get("job"), event.get("group_size"))
    else:
        return  # per-task trace events are too chatty for the console
    print(line, flush=True)


def _client(args):
    from .service import ServiceClient

    return ServiceClient(args.url)


def _cmd_submit(args):
    from .service import ServiceError, ServiceUnavailable

    client = _client(args)
    spec = _service_spec(args)
    try:
        record = client.submit(spec, priority=args.priority)
    except ServiceUnavailable as exc:
        print("queue full; retry in {:.0f}s".format(exc.retry_after),
              file=sys.stderr)
        return EXIT_SERVICE
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_SERVICE
    print("submitted {} job {} (state {})".format(
        spec["kind"], record["id"], record["state"]))
    if not args.watch:
        return 0
    final = client.watch(record["id"], on_event=_print_event)
    print("final state: {}".format(final["state"]))
    return _job_exit_code(final)


def _cmd_jobs(args):
    from .service import ServiceError

    try:
        records = _client(args).jobs()
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_SERVICE
    rows = [[r["id"], r["spec"].get("kind"), r["state"], r["priority"],
             "{}/{}".format(r["progress"]["done"], r["progress"]["total"])
             if r.get("progress") else "-",
             r.get("error") or ""] for r in records]
    print(format_table(
        ["id", "kind", "state", "prio", "progress", "error"], rows))
    return 0


def _cmd_watch(args):
    from .service import ServiceError

    try:
        final = _client(args).watch(args.job_id, on_event=_print_event)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_SERVICE
    print("final state: {}".format(final["state"]))
    return _job_exit_code(final)


def _cmd_cancel(args):
    from .service import ServiceError

    try:
        record = _client(args).cancel(args.job_id)
    except ServiceError as exc:
        print(str(exc), file=sys.stderr)
        return EXIT_SERVICE
    print("job {} -> {}".format(record["id"], record["state"]))
    return 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="pulsetest",
        description=("Pulse propagation for the detection of small delay "
                     "defects (Favalli & Metra, DATE 2007) - experiment "
                     "runner"))
    parser.add_argument("--version", action="version",
                        version="%(prog)s " + __version__)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("waveforms",
                       help="faulty vs fault-free waveforms (Figs. 2/3/5)")
    p.add_argument("kind",
                   choices=["internal_rop", "external_rop", "bridging"])
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--w-in", type=float, default=0.40e-9)
    p.set_defaults(func=_cmd_waveforms)

    p = sub.add_parser("coverage",
                       help="C_pulse / C_del vs R (Figs. 6-9)")
    p.add_argument("fault", choices=["open", "bridging"])
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1; "
                        "0 = all CPUs)")
    p.add_argument("--cache-dir", default=None,
                   help="enable the on-disk result cache at this path")
    p.add_argument("--engine", choices=["scalar", "batched"],
                   default=None,
                   help="transient backend for the population sweeps "
                        "(default: REPRO_ENGINE or scalar)")
    p.add_argument("--batch-size", type=int, default=None,
                   help="samples per lockstep batch (batched engine)")
    p.add_argument("--adaptive", action="store_true",
                   help="LTE-controlled adaptive time grid "
                        "(default: REPRO_ADAPTIVE or fixed-step)")
    p.add_argument("--lte-tol", type=float, default=None,
                   help="adaptive per-step error tolerance in volts "
                        "(implies --adaptive; default: engine default)")
    p.add_argument("--solver", choices=["exact", "reuse"], default=None,
                   help="Newton variant: reuse = factorization-reuse "
                        "fast path, exact = per-iteration refactor "
                        "(default: REPRO_SOLVER or reuse)")
    p.add_argument("--trace", default=None,
                   help="append one JSONL event per executed task to "
                        "this file (default: REPRO_TRACE or off)")
    p.add_argument("--ci-width", type=float, default=None,
                   help="adaptive campaign: stop sampling an R point "
                        "once its Wilson CI half-width falls below this "
                        "(enables the adaptive-precision engine; "
                        "default 0.15)")
    p.add_argument("--min-wave", type=int, default=None,
                   help="adaptive campaign: samples in the first "
                        "escalation wave (doubles until the full "
                        "population; enables the adaptive engine; "
                        "default 8)")
    p.add_argument("--refine-r", type=float, default=None,
                   help="adaptive campaign: relative tolerance the "
                        "coverage-crossing bisection drives the R "
                        "bracket to (enables the adaptive engine; "
                        "default 0.1)")
    p.add_argument("--fail-on-errors", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="exit nonzero when any task failed or timed out "
                        "(default: on)")
    p.set_defaults(func=_cmd_coverage)

    p = sub.add_parser("transfer",
                       help="w_out(w_in) transfer relation (Fig. 10)")
    p.set_defaults(func=_cmd_transfer)

    p = sub.add_parser("paths",
                       help="per-path (omega_in, omega_th, R_min) (Fig. 11)")
    p.set_defaults(func=_cmd_paths)

    p = sub.add_parser("onchip",
                       help="fully structural on-chip pulse test "
                            "(generator + path + detector)")
    p.add_argument("--fault",
                   choices=["none", "internal_rop", "external_rop",
                            "bridging"], default="none")
    p.add_argument("--resistance", type=float, default=8e3)
    p.add_argument("--fast", action="store_true")
    p.set_defaults(func=_cmd_onchip)

    p = sub.add_parser("campaign",
                       help="full-circuit test campaign (extension)")
    p.add_argument("--seed", type=int, default=432)
    p.add_argument("--stride", type=int, default=2,
                   help="fault-site subsampling stride")
    p.add_argument("--fast", action="store_true",
                   help="coarser electrical calibration")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes (default: REPRO_JOBS or 1; "
                        "0 = all CPUs)")
    p.add_argument("--samples", type=int, default=5,
                   help="Monte Carlo population size per site")
    p.add_argument("--sites", type=int, default=None,
                   help="limit the number of fault sites")
    p.add_argument("--cache-dir", default=".repro_cache",
                   help="result cache / checkpoint location")
    p.add_argument("--no-cache", action="store_true",
                   help="disable result caching and checkpointing")
    p.add_argument("--resume", action="store_true",
                   help="report how much of the campaign was resumed "
                        "from a previous (possibly interrupted) run")
    p.add_argument("--task-timeout", type=float, default=None,
                   help="per-site wall-clock budget in seconds")
    p.add_argument("--report-json", default=None,
                   help="write the run report to this JSON file")
    p.add_argument("--trace", default=None,
                   help="append one JSONL event per executed task to "
                        "this file (default: REPRO_TRACE or off)")
    p.add_argument("--chaos", default=None,
                   help="deterministic fault-injection spec, e.g. "
                        "'kill=0.2,corrupt=0.1,seed=7' "
                        "(default: REPRO_CHAOS or off)")
    p.add_argument("--fail-on-errors", default=True,
                   action=argparse.BooleanOptionalAction,
                   help="exit nonzero when any task failed, timed out, "
                        "or any site errored (default: on)")
    p.set_defaults(func=_cmd_campaign)

    # ---- service verbs ------------------------------------------------

    p = sub.add_parser("serve",
                       help="run the campaign job server (HTTP/JSON)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8787,
                   help="listen port (0 = ephemeral; default 8787)")
    p.add_argument("--data-dir", default=".repro_service",
                   help="durable root: job records + shared result cache")
    p.add_argument("--concurrency", type=int, default=2,
                   help="jobs running at once")
    p.add_argument("--queue-capacity", type=int, default=64,
                   help="queued-job bound before 429 backpressure")
    p.add_argument("--jobs", type=int, default=None,
                   help="worker processes per job's runtime")
    p.add_argument("--no-cache", action="store_true",
                   help="disable the shared result cache (jobs stop "
                        "being resumable)")
    p.add_argument("--no-aggregate", action="store_true",
                   help="disable dynamic batching of compatible sweeps")
    p.add_argument("--aggregate-limit", type=int, default=4,
                   help="max sweep jobs coalesced into one batch")
    p.add_argument("--verbose", action="store_true",
                   help="log every HTTP request")
    p.set_defaults(func=_cmd_serve)

    url_kw = dict(default="http://127.0.0.1:8787",
                  help="job server base URL")

    p = sub.add_parser("submit", help="submit a job to the server")
    p.add_argument("kind",
                   choices=["coverage", "campaign", "transfer", "sweep"])
    p.add_argument("--url", **url_kw)
    p.add_argument("--priority", type=int, default=0)
    p.add_argument("--watch", action="store_true",
                   help="follow the job's events until it finishes "
                        "(exit code reflects the final state)")
    p.add_argument("--fault", default=None,
                   help="coverage: open|bridging; "
                        "sweep: external_open|internal_open|bridging")
    p.add_argument("--fast", action="store_true",
                   help="coverage/campaign: tiny smoke-sized spec")
    p.add_argument("--seed", type=int, default=432)
    p.add_argument("--samples", type=int, default=5)
    p.add_argument("--sites", type=int, default=None)
    p.add_argument("--stride", type=int, default=2)
    p.add_argument("--measure", choices=["pulse", "delay"],
                   default="pulse", help="sweep measurement")
    p.add_argument("--stage", type=int, default=2,
                   help="sweep fault injection stage")
    p.add_argument("--resistances", default="2e3,8e3,20e3",
                   help="sweep resistance grid (comma separated, ohm)")
    p.add_argument("--dt", type=float, default=None)
    p.add_argument("--batch-size", type=int, default=None)
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("jobs", help="list the server's jobs")
    p.add_argument("--url", **url_kw)
    p.set_defaults(func=_cmd_jobs)

    p = sub.add_parser("watch",
                       help="follow one job's live events to completion")
    p.add_argument("job_id")
    p.add_argument("--url", **url_kw)
    p.set_defaults(func=_cmd_watch)

    p = sub.add_parser("cancel", help="cancel a queued or running job")
    p.add_argument("job_id")
    p.add_argument("--url", **url_kw)
    p.set_defaults(func=_cmd_cancel)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
