"""Coverage-vs-resistance experiments (Figs. 6-9).

For each Monte Carlo instance the fault is injected once and its
resistance swept, so a sweep costs one netlist copy plus one transient per
R point.  Coverage is then evaluated for every tested setting of the test
parameter (clock-period factor T'/T* or sensing-threshold factor
ω_th'/ω_th*) from the same measurements — the measurement is independent
of the decision threshold.

The per-sample sweep rows are embarrassingly parallel, so they are
dispatched through the campaign runtime (:mod:`repro.runtime`): pass a
``runtime`` to fan rows out over a process pool and/or skip rows whose
content-addressed result is already cached.  ``fault_family`` may be a
:class:`~repro.faults.models.FaultSpec` prototype (preferred — picklable
and cacheable; the row worker rescales it with ``with_resistance``) or a
legacy ``r -> FaultSpec`` callable (serial in-process path only).
"""

import math

from ..cells import default_technology
from ..faults import FaultSpec, inject, set_fault_resistance
from ..montecarlo import run_population, wilson_interval
from ..runtime import Runtime, engine_cache_tag, stable_hash
from ..spice.mna import resolve_solver_mode
from .pulse import (assert_chunk_compatible, build_instance,
                    measure_output_pulse, measure_output_pulse_batch,
                    measure_path_delay, measure_path_delay_batch,
                    transient_kwargs)


class CoverageCurve:
    """C(R) for one test-parameter setting.

    Stores per-R ``(hits, n)`` pairs; the coverage fractions are derived
    from them.  An earlier version stored only the float ratios and
    reconstructed hit counts for the Wilson intervals via
    ``round(c * n_samples)`` — information loss that silently mis-binned
    averaged or externally-supplied ratios (e.g. 0.375 of 4
    banker's-rounds to 2 hits).  Keeping the counts makes the intervals
    exact by construction.

    ``n_samples`` is an int for the classic uniform-population sweep
    (every R point measured on the full population) or a per-point
    sequence for adaptive-precision campaigns, where sequential sample
    allocation stops easy points early.  The Wilson intervals always use
    each point's own ``n``, so variable-n curves report exact error
    bars, not a uniform approximation.
    """

    def __init__(self, label, resistances, hits, n_samples):
        self.label = label
        self.resistances = list(resistances)
        if isinstance(n_samples, (int, float)):
            ns = [n_samples] * len(self.resistances)
        else:
            ns = list(n_samples)
        if len(ns) != len(self.resistances):
            raise ValueError(
                "need one n per R point, got {} for {} points".format(
                    len(ns), len(self.resistances)))
        self.ns = []
        for n in ns:
            if n != int(n) or int(n) <= 0:
                raise ValueError(
                    "n_samples must be positive integers, got {!r}"
                    .format(n))
            self.ns.append(int(n))
        #: largest per-point population (== the population size for
        #: uniform curves); kept as an int attribute for compatibility
        self.n_samples = max(self.ns) if self.ns else int(n_samples)
        self.hits = []
        for h, n in zip(self._check_length(hits), self.ns):
            if h != int(h):
                raise ValueError(
                    "hit counts must be integers, got {!r} (pass the raw "
                    "detection counts, not coverage ratios)".format(h))
            h = int(h)
            if not 0 <= h <= n:
                raise ValueError(
                    "hit count {} outside [0, n={}]".format(h, n))
            self.hits.append(h)
        self.coverage = [h / n for h, n in zip(self.hits, self.ns)]

    def _check_length(self, hits):
        hits = list(hits)
        if len(hits) != len(self.resistances):
            raise ValueError(
                "need one hit count per R point, got {} for {} points"
                .format(len(hits), len(self.resistances)))
        return hits

    @property
    def uniform(self):
        """True when every R point was measured on the same population."""
        return len(set(self.ns)) <= 1

    def confidence_intervals(self):
        return [wilson_interval(h, n)
                for h, n in zip(self.hits, self.ns)]

    def halfwidths(self):
        """Per-point Wilson half-widths (the adaptive stopping metric)."""
        return [0.5 * (hi - lo) for lo, hi in self.confidence_intervals()]

    def minimum_detectable_r(self, target=1.0):
        """Smallest sampled R with coverage >= target (None if never)."""
        for r, c in zip(self.resistances, self.coverage):
            if c >= target:
                return r
        return None

    def __repr__(self):
        n = ("n={}".format(self.n_samples) if self.uniform
             else "n={}..{}".format(min(self.ns), max(self.ns)))
        return "CoverageCurve({!r}, {} R points, {})".format(
            self.label, len(self.resistances), n)


class CoverageResult:
    """All curves of one experiment plus the raw per-sample measurements."""

    def __init__(self, resistances, curves, raw):
        self.resistances = list(resistances)
        #: {setting label: CoverageCurve}
        self.curves = dict(curves)
        #: raw[sample_index][r_index] measurement (w_out or delay)
        self.raw = raw

    def curve(self, label):
        return self.curves[label]

    def labels(self):
        return sorted(self.curves)


# ----------------------------------------------------------------------
# Sweep row tasks (module-level: picklable for the process pool)
# ----------------------------------------------------------------------

def _measure_kwargs(payload):
    """Measurement kwargs (time grid + solver) encoded in a row payload."""
    kwargs = {} if payload["dt"] is None else {"dt": payload["dt"]}
    if payload.get("solver") is not None:
        kwargs["solver"] = payload["solver"]
    if payload.get("adaptive"):
        kwargs["adaptive"] = True
        if payload.get("lte_tol") is not None:
            kwargs["lte_tol"] = payload["lte_tol"]
    return kwargs


def _sweep_row_task(payload):
    """One sample's measurement row over the resistance grid."""
    resistances = payload["resistances"]
    kwargs = _measure_kwargs(payload)
    base = build_instance(sample=payload["sample"], tech=payload["tech"],
                          **payload["path_kwargs"])
    fault = payload["fault"].with_resistance(resistances[0])
    faulty = inject(base, fault)
    row = []
    for r in resistances:
        set_fault_resistance(faulty, r)
        if payload["measure"] == "pulse":
            value, _ = measure_output_pulse(
                faulty, payload["omega_in"], kind=payload["kind"],
                **kwargs)
        else:
            value, _ = measure_path_delay(
                faulty, direction=payload["direction"], **kwargs)
        row.append(float(value))
    return row


#: payload fields every member of one lockstep sweep chunk must agree on
#: (the chunk task applies the first payload's settings to all samples)
SWEEP_CHUNK_FIELDS = ("measure", "resistances", "dt", "adaptive",
                      "lte_tol", "solver", "omega_in", "kind",
                      "direction", "fault")


def _sweep_chunk_task(payloads):
    """Batched variant of :func:`_sweep_row_task`: one chunk of samples
    simulated in lockstep per resistance point."""
    assert_chunk_compatible(payloads, SWEEP_CHUNK_FIELDS,
                            task="sweep chunk")
    first = payloads[0]
    resistances = first["resistances"]
    kwargs = _measure_kwargs(first)
    instances = []
    for payload in payloads:
        base = build_instance(sample=payload["sample"],
                              tech=payload["tech"],
                              **payload["path_kwargs"])
        fault = payload["fault"].with_resistance(resistances[0])
        instances.append(inject(base, fault))
    rows = [[] for _ in instances]
    for r in resistances:
        for faulty in instances:
            set_fault_resistance(faulty, r)
        if first["measure"] == "pulse":
            values, _ = measure_output_pulse_batch(
                instances, first["omega_in"], kind=first["kind"], **kwargs)
        else:
            values, _ = measure_path_delay_batch(
                instances, direction=first["direction"], **kwargs)
        for row, value in zip(rows, values):
            row.append(float(value))
    return rows


def _legacy_measure_kwargs(dt, adaptive, lte_tol, solver, engine):
    """Measurement kwargs for the legacy ``r -> FaultSpec`` callable path.

    An earlier version built ``{"dt": dt}`` by hand and silently dropped
    the ``adaptive``/``lte_tol``/``solver`` knobs (and ignored
    ``engine="batched"`` outright), so a legacy-callable sweep quietly
    measured on a different grid and solver than the FaultSpec path of
    the same campaign.  Legacy callables stay serial and in-process, but
    they honour every measurement setting.
    """
    if engine == "batched":
        raise ValueError(
            "engine='batched' requires a picklable FaultSpec prototype; "
            "legacy r -> FaultSpec callables run on the scalar engine "
            "only")
    kwargs = {} if dt is None else {"dt": dt}
    kwargs.update(transient_kwargs(adaptive, lte_tol, solver=solver))
    return kwargs


def build_sweep_payloads(samples, fault, resistances, tech=None, dt=None,
                         engine="scalar", adaptive=False, lte_tol=None,
                         solver=None, path_kwargs=None, with_keys=True,
                         **measure_spec):
    """Payloads + cache keys for a per-sample measurement sweep.

    This is the single source of truth for the sweep task contract:
    the in-process drivers (:func:`sweep_pulse_measurements` /
    :func:`sweep_delay_measurements`) and the job service's batch
    aggregator both build their payloads here, so a row computed
    through either path lands under the same content-addressed cache
    key.  ``measure_spec`` is ``measure="pulse", omega_in=..., kind=...``
    or ``measure="delay", direction=...``; returns ``(payloads, keys)``
    with ``keys=None`` when ``with_keys`` is false.
    """
    if engine not in ("scalar", "batched"):
        raise ValueError("unknown engine {!r}".format(engine))
    tech = default_technology() if tech is None else tech
    path_kwargs = {} if path_kwargs is None else dict(path_kwargs)
    resistances = [float(r) for r in resistances]
    # Resolve the solver mode here, not in the worker: the payload and
    # the cache key must describe the same concrete configuration no
    # matter what REPRO_SOLVER says in the worker process.
    solver = resolve_solver_mode(solver)
    payloads = [dict(sample=sample, fault=fault, resistances=resistances,
                     tech=tech, dt=dt, path_kwargs=path_kwargs,
                     adaptive=adaptive, lte_tol=lte_tol, solver=solver,
                     **measure_spec)
                for sample in samples]
    keys = None
    if with_keys:
        tag = engine_cache_tag(engine, adaptive, lte_tol, solver)
        keys = [stable_hash("sweep-row", tech, sample, fault, resistances,
                            dt, path_kwargs, measure_spec, *tag)
                for sample in samples]
    return payloads, keys


def _sweep_rows(samples, fault, resistances, tech, dt, runtime, label,
                report, path_kwargs, engine="scalar", batch_size=None,
                adaptive=False, lte_tol=None, solver=None,
                **measure_spec):
    """Dispatch the per-sample measurement rows through the runtime.

    ``engine="scalar"`` runs one task per sample (the reference path);
    ``engine="batched"`` groups samples into chunks that the lockstep
    engine simulates together — each chunk is still one executor task,
    so batching composes with the process pool.  Batched cache keys
    carry an engine tag so the two engines never serve each other's
    cached rows (they agree only to tolerance, not bit-exactly).
    """
    runtime = Runtime() if runtime is None else runtime
    payloads, keys = build_sweep_payloads(
        samples, fault, resistances, tech=tech, dt=dt, engine=engine,
        adaptive=adaptive, lte_tol=lte_tol, solver=solver,
        path_kwargs=path_kwargs, with_keys=runtime.cache is not None,
        **measure_spec)
    if engine == "batched":
        run = runtime.run_batched(_sweep_chunk_task, payloads, keys=keys,
                                  batch_size=batch_size, label=label,
                                  report=report)
    else:
        run = runtime.run(_sweep_row_task, payloads, keys=keys,
                          label=label, report=report)
    if run.errors:
        raise run.errors[min(run.errors)]
    return run.values


def sweep_pulse_measurements(samples, fault_family, resistances,
                             omega_in, kind="h", tech=None, dt=None,
                             runtime=None, report=None, engine="scalar",
                             batch_size=None, adaptive=False,
                             lte_tol=None, solver=None, **path_kwargs):
    """Per-sample, per-R output pulse widths for a fault family.

    ``fault_family`` is a fault prototype (any resistance) or a legacy
    ``r -> FaultSpec`` callable.  ``engine="batched"`` simulates chunks
    of ``batch_size`` samples in lockstep (FaultSpec prototypes only).
    """
    if not isinstance(fault_family, FaultSpec):
        kwargs = _legacy_measure_kwargs(dt, adaptive, lte_tol, solver,
                                        engine)

        def worker(sample):
            base = build_instance(sample=sample, tech=tech, **path_kwargs)
            faulty = inject(base, fault_family(resistances[0]))
            row = []
            for r in resistances:
                set_fault_resistance(faulty, r)
                w_out, _ = measure_output_pulse(faulty, omega_in,
                                                kind=kind, **kwargs)
                row.append(w_out)
            return row

        return run_population(worker, samples).values
    return _sweep_rows(samples, fault_family, resistances, tech, dt,
                       runtime, "pulse-sweep", report, path_kwargs,
                       engine=engine, batch_size=batch_size,
                       adaptive=adaptive, lte_tol=lte_tol, solver=solver,
                       measure="pulse", omega_in=float(omega_in),
                       kind=kind)


def sweep_delay_measurements(samples, fault_family, resistances,
                             direction="rise", tech=None, dt=None,
                             runtime=None, report=None, engine="scalar",
                             batch_size=None, adaptive=False,
                             lte_tol=None, solver=None, **path_kwargs):
    """Per-sample, per-R path delays for a fault family."""
    if not isinstance(fault_family, FaultSpec):
        kwargs = _legacy_measure_kwargs(dt, adaptive, lte_tol, solver,
                                        engine)

        def worker(sample):
            base = build_instance(sample=sample, tech=tech, **path_kwargs)
            faulty = inject(base, fault_family(resistances[0]))
            row = []
            for r in resistances:
                set_fault_resistance(faulty, r)
                d, _ = measure_path_delay(faulty, direction=direction,
                                          **kwargs)
                row.append(d)
            return row

        return run_population(worker, samples).values
    return _sweep_rows(samples, fault_family, resistances, tech, dt,
                       runtime, "delay-sweep", report, path_kwargs,
                       engine=engine, batch_size=batch_size,
                       adaptive=adaptive, lte_tol=lte_tol, solver=solver,
                       measure="delay", direction=direction)


def pulse_coverage(raw, samples, resistances, calibration,
                   threshold_factors=(0.9, 1.0, 1.1)):
    """C_pulse(ω_th', R) from raw pulse measurements.

    The paper's Fig. 7/9 settings: ω_th' in {0.9, 1.0, 1.1} x ω_th* — the
    swept factor *is* the sensing-sensitivity fluctuation scenario, so no
    additional per-sample threshold noise is applied here (the calibration
    already guaranteed zero false positives at the 1.1 worst case).
    """
    curves = {}
    n = len(samples)
    for factor in threshold_factors:
        detector = calibration.detector.scaled(factor)
        hit_counts = []
        for ri in range(len(resistances)):
            hits = 0
            for si in range(n):
                if detector.fault_detected(raw[si][ri]):
                    hits += 1
            hit_counts.append(hits)
        label = "{:.1f}*w_th".format(factor)
        curves[label] = CoverageCurve(label, resistances, hit_counts, n)
    return CoverageResult(resistances, curves, raw)


def delay_coverage(raw, samples, resistances, test,
                   period_factors=(0.9, 1.0, 1.1)):
    """C_del(T', R) from raw delay measurements (Fig. 6/8 settings)."""
    curves = {}
    n = len(samples)
    for factor in period_factors:
        hit_counts = []
        for ri in range(len(resistances)):
            hits = 0
            for si, sample in enumerate(samples):
                if test.detects(raw[si][ri], sample=sample,
                                t_factor=factor):
                    hits += 1
            hit_counts.append(hits)
        label = "{:.1f}*T".format(factor)
        curves[label] = CoverageCurve(label, resistances, hit_counts, n)
    return CoverageResult(resistances, curves, raw)


def detected_fraction_is_monotonic(curve, tolerance=0.0):
    """True when coverage never decreases with R beyond ``tolerance``.

    Holds for opens (bigger defect, easier detection); bridging violates
    it by design — C_del *decays* with R (Fig. 8).
    """
    values = curve.coverage
    return all(b >= a - tolerance for a, b in zip(values, values[1:]))


def delay_is_all_finite(raw):
    """True when every raw delay is finite (no functional failures)."""
    return all(math.isfinite(d) for row in raw for d in row)
