"""Instance construction and electrical measurement primitives.

These are the two measurements everything in the paper reduces to:

* ``w_out = f_p(w_in)`` — the output pulse width when a pulse of width
  ``w_in`` is injected at the sensitized path's input (pulse testing), and
* ``d_p`` — the path propagation delay for a single input transition
  (reduced-clock delay-fault testing).
"""

import math

from ..cells import build_path, default_technology
from ..faults import inject
from ..spice import run_transient, run_transient_batch

#: default transient step; stimulus edges are >= 50 ps so 2 ps resolves
#: them with >25 points per edge
DEFAULT_DT = 2e-12

#: per-gate time budget used to size the simulation window
GATE_DELAY_BUDGET = 0.35e-9

#: settling margin after the last expected event
WINDOW_MARGIN = 1.2e-9


def transient_kwargs(adaptive=False, lte_tol=None, dt_min=None,
                     dt_max=None, solver=None):
    """Time-grid and solver keyword set shared by the measurement drivers.

    Normalises the adaptive and Newton-solver knobs into the kwargs both
    :func:`~repro.spice.run_transient` and
    :func:`~repro.spice.run_transient_batch` accept; with
    ``adaptive=False`` the time-grid knobs are dropped and the
    fixed-step reference grid is used.  ``solver=None`` leaves the mode
    to the engine default (``REPRO_SOLVER`` or ``"reuse"``).
    """
    kwargs = {}
    if solver is not None:
        kwargs["solver"] = str(solver)
    if not adaptive:
        return kwargs
    kwargs["adaptive"] = True
    if lte_tol is not None:
        kwargs["lte_tol"] = float(lte_tol)
    if dt_min is not None:
        kwargs["dt_min"] = float(dt_min)
    if dt_max is not None:
        kwargs["dt_max"] = float(dt_max)
    return kwargs


def chunk_signature(payload, fields):
    """Cheap comparable signature of one chunk payload's shared settings.

    Lists become tuples and fault specs their ``repr`` (kind + stage +
    resistance) so payloads built by different producers — e.g. two
    service jobs coalesced into one lockstep batch — compare by value,
    not identity.
    """
    sig = []
    for field in fields:
        value = payload.get(field)
        if isinstance(value, (list, tuple)):
            value = tuple(float(v) if isinstance(v, (int, float)) else v
                          for v in value)
        elif value is not None and field == "fault":
            value = repr(value)
        sig.append((field, value))
    return tuple(sig)


def assert_chunk_compatible(payloads, fields, task="chunk task"):
    """Fail loudly when a chunk mixes incompatible measurement settings.

    The lockstep chunk tasks read every measurement setting from their
    first payload; a mis-grouped chunk would otherwise silently measure
    every sample with the first payload's settings.  Raises
    ``ValueError`` naming the first differing field.
    """
    first = chunk_signature(payloads[0], fields)
    for position, payload in enumerate(payloads[1:], start=1):
        sig = chunk_signature(payload, fields)
        if sig == first:
            continue
        diffs = ["{}: {!r} != {!r}".format(field, got, want)
                 for (field, want), (_, got) in zip(first, sig)
                 if want != got]
        raise ValueError(
            "incompatible payloads in one {}: payload {} differs from "
            "payload 0 on {}".format(task, position, "; ".join(diffs)))


def build_instance(sample=None, fault=None, tech=None, **path_kwargs):
    """Build one (possibly faulty) circuit instance.

    Parameters
    ----------
    sample:
        A :class:`~repro.montecarlo.VariationModel`; ``None`` builds the
        nominal instance.
    fault:
        A fault spec from :mod:`repro.faults`; ``None`` builds fault-free.
    tech:
        Base technology before die-to-die perturbation.
    path_kwargs:
        Forwarded to :func:`repro.cells.build_path` (gate_kinds, loads...).
    """
    tech = default_technology() if tech is None else tech
    if sample is not None:
        tech = sample.apply_to_technology(tech)
        path_kwargs.setdefault("device_factors", sample.device_factors)
    path = build_path(tech=tech, **path_kwargs)
    if fault is not None:
        path = inject(path, fault)
    return path


def output_pulse_polarity(path, kind="h"):
    """Excursion direction of the output pulse at the path's PO.

    A ``kind='h'`` pulse departs from input idle 0; the output idles at
    ``idle_level(n_gates, 0)`` and the pulse excurses the other way.
    """
    input_idle = 0 if kind == "h" else 1
    output_idle = path.idle_level(path.n_gates, input_idle)
    return "low" if output_idle == 1 else "high"


def simulation_window(path, w_in=0.0, stimulus_delay=0.0):
    """Transient stop time covering launch, propagation and settling."""
    return (stimulus_delay + w_in
            + path.n_gates * GATE_DELAY_BUDGET + WINDOW_MARGIN)


def measure_output_pulse(path, w_in, kind="h", dt=DEFAULT_DT, level=None,
                         record_all=False, adaptive=False, lte_tol=None,
                         dt_min=None, dt_max=None, solver=None):
    """Inject a pulse and measure ``w_out`` at the path output.

    Returns ``(w_out, waveform)``; ``w_out`` is the width of the widest
    output excursion past the 50 % level (0.0 when fully dampened).
    ``record_all=True`` keeps every node in the waveform (for the
    waveform-reproduction benches); otherwise only input and output are
    recorded.
    """
    delay = path.set_input_pulse(w_in, kind=kind)
    tstop = simulation_window(path, w_in=w_in, stimulus_delay=delay)
    record = None if record_all else [path.input_node, path.output_node]
    waveform = run_transient(path.circuit, tstop, dt, record=record,
                             **transient_kwargs(adaptive, lte_tol,
                                                dt_min, dt_max,
                                                solver=solver))
    level = path.tech.vdd_half if level is None else level
    polarity = output_pulse_polarity(path, kind)
    w_out = waveform.widest_pulse(path.output_node, level, polarity)
    return w_out, waveform


def measure_output_pulse_batch(paths, w_in, kind="h", dt=DEFAULT_DT,
                               level=None, adaptive=False, lte_tol=None,
                               dt_min=None, dt_max=None, solver=None):
    """Batched ``w_out`` measurement over topologically identical paths.

    All instances are simulated in lockstep by the batched transient
    engine over a shared window (the widest of the per-instance
    windows — the extra settle time is measurement-neutral).  Returns
    ``(w_outs, waveforms)`` lists aligned with ``paths``; per-sample
    values match :func:`measure_output_pulse` within the engine
    equivalence tolerance.
    """
    paths = list(paths)
    delays = [path.set_input_pulse(w_in, kind=kind) for path in paths]
    tstop = max(simulation_window(path, w_in=w_in, stimulus_delay=delay)
                for path, delay in zip(paths, delays))
    record = [paths[0].input_node, paths[0].output_node]
    waveforms = run_transient_batch([path.circuit for path in paths],
                                    tstop, dt, record=record,
                                    **transient_kwargs(adaptive, lte_tol,
                                                       dt_min, dt_max,
                                                       solver=solver))
    w_outs = []
    for path, waveform in zip(paths, waveforms):
        lv = path.tech.vdd_half if level is None else level
        polarity = output_pulse_polarity(path, kind)
        w_outs.append(waveform.widest_pulse(path.output_node, lv, polarity))
    return w_outs, waveforms


def measure_path_delay_batch(paths, direction="rise", dt=DEFAULT_DT,
                             level=None, adaptive=False, lte_tol=None,
                             dt_min=None, dt_max=None, solver=None):
    """Batched propagation-delay measurement (lockstep population).

    Returns ``(delays, waveforms)``; non-crossing outputs report
    ``math.inf`` exactly like :func:`measure_path_delay`.
    """
    paths = list(paths)
    stim_delays = [path.set_input_transition(direction) for path in paths]
    tstop = max(simulation_window(path, stimulus_delay=delay)
                for path, delay in zip(paths, stim_delays))
    record = [paths[0].input_node, paths[0].output_node]
    waveforms = run_transient_batch([path.circuit for path in paths],
                                    tstop, dt, record=record,
                                    **transient_kwargs(adaptive, lte_tol,
                                                       dt_min, dt_max,
                                                       solver=solver))
    delays = []
    for path, waveform in zip(paths, waveforms):
        lv = path.tech.vdd_half if level is None else level
        d = waveform.propagation_delay(path.input_node, path.output_node,
                                       lv)
        delays.append(math.inf if d is None else d)
    return delays, waveforms


def measure_path_delay(path, direction="rise", dt=DEFAULT_DT, level=None,
                       adaptive=False, lte_tol=None, dt_min=None,
                       dt_max=None, solver=None):
    """Propagation delay for a single input transition.

    Returns ``(delay, waveform)``.  When the output never crosses the
    50 % level within the window — a gross defect or a bridging-induced
    functional error — the delay is ``math.inf``, which every reduced
    clock period trivially detects.
    """
    delay = path.set_input_transition(direction)
    tstop = simulation_window(path, stimulus_delay=delay)
    waveform = run_transient(path.circuit, tstop, dt,
                             record=[path.input_node, path.output_node],
                             **transient_kwargs(adaptive, lte_tol,
                                                dt_min, dt_max,
                                                solver=solver))
    level = path.tech.vdd_half if level is None else level
    d = waveform.propagation_delay(path.input_node, path.output_node, level)
    if d is None:
        d = math.inf
    return d, waveform
