"""Bridging critical resistance (Sec. 2 / Sec. 4).

"Under nominal conditions, the critical resistance of such a fault is
equal to 2 kOhm.  Above such a value, an additional delay is produced
instead of a logic error."  This module locates that boundary for any
bridging configuration: the largest R at which the contention still
flips a downstream logic value statically.
"""

from ..faults import BridgingFault, inject, set_fault_resistance
from ..montecarlo import NominalModel
from ..spice import operating_point
from .pulse import build_instance


def static_levels_correct(faulty_path, input_level, reference_path=None):
    """True when every stage node holds its healthy logic value with the
    input statically at ``input_level``."""
    reference_path = (build_instance(sample=NominalModel(),
                                     tech=faulty_path.tech)
                      if reference_path is None else reference_path)
    vdd_value = faulty_path.tech.vdd if input_level else 0.0
    half = faulty_path.tech.vdd_half

    from ..spice.sources import Dc
    faulty_path.circuit.element(faulty_path.input_source).stimulus = (
        Dc(vdd_value))
    reference_path.circuit.element(
        reference_path.input_source).stimulus = Dc(vdd_value)

    op_faulty = operating_point(faulty_path.circuit)
    op_ref = operating_point(reference_path.circuit)
    for node in faulty_path.stage_nodes[1:]:
        if (op_faulty[node] > half) != (op_ref[node] > half):
            return False
    return True


def bridging_critical_resistance(stage=2, tech=None, aggressor_value=None,
                                 r_lo=100.0, r_hi=50e3, rel_tol=0.03,
                                 input_level=None):
    """Largest R at which the bridge still causes a static logic error.

    The contention state is the input level that drives the victim node
    *against* the aggressor.  Returns None when even ``r_lo`` produces
    no error (the bridge is benign over the whole range).
    """
    probe = build_instance(sample=NominalModel(), tech=tech)
    fault = BridgingFault(stage, r_hi, aggressor_value=aggressor_value)

    if input_level is None:
        # The contention state drives the victim node to the value the
        # aggressor opposes: pick the input level whose static victim
        # value differs from what the aggressor holds.
        held = (fault.aggressor_value
                if fault.aggressor_value is not None
                else probe.idle_level(stage, 0))
        input_level = next(candidate for candidate in (0, 1)
                           if probe.idle_level(stage, candidate) != held)

    reference = build_instance(sample=NominalModel(), tech=tech)
    faulty = inject(probe, fault)

    def errors(r):
        set_fault_resistance(faulty, r)
        return not static_levels_correct(faulty, input_level,
                                         reference_path=reference)

    if not errors(r_lo):
        return None
    if errors(r_hi):
        return r_hi
    lo, hi = r_lo, r_hi
    while hi - lo > rel_tol * lo:
        mid = (lo * hi) ** 0.5
        if errors(mid):
            lo = mid
        else:
            hi = mid
    return lo
