"""Output transition-sensing circuit model.

The paper reuses the self-checking transition detectors of Metra et al.
(IEEE Trans. Computers 2000) at the path outputs: circuits that flag any
transition occurring while signals are expected steady.  Their use here is
*dual* — seeing the transition means the path propagated the pulse, i.e.
the circuit is healthy; a fault is flagged by the *absence* of the output
pulse.

We model the detector behaviourally by its minimal detectable pulse width
``omega_th`` (the paper's ω_th), subject to a worst-case ±10 % sensitivity
fluctuation — exactly the abstraction Sec. 4 calibrates against.
"""


class PulseDetector:
    """A transition detector with threshold ``omega_th`` seconds."""

    def __init__(self, omega_th):
        omega_th = float(omega_th)
        if omega_th <= 0.0:
            raise ValueError("sensing threshold must be positive")
        self.omega_th = omega_th

    def effective_threshold(self, factor=1.0):
        """Actual threshold of a fabricated detector instance."""
        return self.omega_th * factor

    def transition_seen(self, w_out, factor=1.0):
        """Does the detector register the output pulse?"""
        return w_out >= self.effective_threshold(factor)

    def fault_detected(self, w_out, factor=1.0):
        """Fault indication = the expected transition did NOT arrive."""
        return not self.transition_seen(w_out, factor)

    def scaled(self, scale):
        """Detector with the nominal threshold scaled (the paper sweeps
        ω_th' in {0.9, 1.0, 1.1} x ω_th*)."""
        return PulseDetector(self.omega_th * scale)

    def __repr__(self):
        return "PulseDetector(omega_th={:.3e}s)".format(self.omega_th)
