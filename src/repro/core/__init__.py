"""The paper's contribution: pulse-propagation testing of small delay
defects — measurement, sensing, calibration and coverage experiments."""

from .adaptive_coverage import (AdaptiveSweepResult, PointState,
                                adaptive_sweep, subsample_grid)
from .experiments import (AdaptiveCoverageExperiment, CoverageExperiment,
                          ExperimentConfig, PathCharacterization,
                          TransferExperiment, WaveformExperiment,
                          run_adaptive_coverage, run_bridging_coverage,
                          run_open_coverage, run_path_characterization,
                          run_transfer_experiment, run_waveform_experiment)
from .calibration import (PulseTestCalibration, calibrate_delay_test,
                          calibrate_pulse_test)
from .crosscheck import (chain_kinds_for_path, electrical_path_for,
                         validate_path_electrically)
from .critical import (bridging_critical_resistance,
                       static_levels_correct)
from .coverage import (CoverageCurve, CoverageResult, delay_coverage,
                       pulse_coverage, sweep_delay_measurements,
                       sweep_pulse_measurements)
from .pulse import (build_instance, measure_output_pulse, measure_path_delay,
                    output_pulse_polarity, simulation_window)
from .sensing import PulseDetector
from .testgen import (GeneratedPulseTest, degraded_transition,
                      estimate_r_min, generate_pulse_test,
                      select_pulse_kind)
from .transfer import (TransferCurve, characterize_transfer,
                       default_w_in_grid, minimum_propagatable_width,
                       recommended_w_in)

__all__ = [
    "build_instance", "measure_output_pulse", "measure_path_delay",
    "output_pulse_polarity", "simulation_window",
    "PulseDetector",
    "TransferCurve", "characterize_transfer", "default_w_in_grid",
    "recommended_w_in", "minimum_propagatable_width",
    "PulseTestCalibration", "calibrate_pulse_test", "calibrate_delay_test",
    "CoverageCurve", "CoverageResult", "pulse_coverage", "delay_coverage",
    "sweep_pulse_measurements", "sweep_delay_measurements",
    "ExperimentConfig", "WaveformExperiment", "CoverageExperiment",
    "TransferExperiment", "PathCharacterization",
    "run_waveform_experiment", "run_open_coverage",
    "run_bridging_coverage", "run_transfer_experiment",
    "run_path_characterization",
    "AdaptiveSweepResult", "PointState", "adaptive_sweep",
    "subsample_grid", "AdaptiveCoverageExperiment",
    "run_adaptive_coverage",
    "GeneratedPulseTest", "degraded_transition", "select_pulse_kind",
    "estimate_r_min", "generate_pulse_test",
    "bridging_critical_resistance", "static_levels_correct",
    "chain_kinds_for_path", "electrical_path_for",
    "validate_path_electrically",
]
