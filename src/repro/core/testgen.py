"""Electrical-level pulse-test generation (Sec. 5).

"In order to detect a fault, we have to select a suitable kind of pulse
(h or l) and a path including the fault site.  The target is to optimize
the pair (ω_in, ω_th) which should maximize the range of detectable
resistances while avoiding false positives."

The key subtlety is the *pulse kind*: a defect that slows only one
transition polarity (an internal open) shrinks a pulse only when the
slowed edge is the pulse's **leading** (excursion-entry) edge at the
fault site; with the opposite kind the pulse *widens* instead and the
fault escapes.  ``select_pulse_kind`` encodes that reasoning and
``generate_pulse_test`` assembles the full test.
"""

import math

from ..faults import (BridgingFault, ExternalOpen, InternalBridgingFault,
                      InternalOpen, PULL_UP, inject, set_fault_resistance)
from ..montecarlo import NominalModel
from .calibration import calibrate_pulse_test
from .pulse import build_instance, measure_output_pulse

#: transition polarity a fault degrades at its site ("rise", "fall",
#: "both")
RISE, FALL, BOTH = "rise", "fall", "both"


def degraded_transition(fault, cell_kind=None):
    """Which stage-output transition the defect slows (Sec. 2).

    ``cell_kind`` is required for internal bridging faults: a bridge on
    an NMOS-stack node (NAND) loads the pull-down and slows falling
    output edges; a PMOS-stack node (NOR) the dual.
    """
    if isinstance(fault, InternalOpen):
        return RISE if fault.network == PULL_UP else FALL
    if isinstance(fault, ExternalOpen):
        return BOTH
    if isinstance(fault, InternalBridgingFault):
        if cell_kind is None:
            raise ValueError(
                "internal bridging needs the victim cell kind")
        return FALL if cell_kind.startswith("nand") else RISE
    if isinstance(fault, BridgingFault):
        # The bridge fights the excursion away from the aggressor's
        # steady value: with aggressor at 0 the victim's rising edge is
        # degraded, and vice versa.  'auto' (None) aggressors oppose the
        # idle-0 h-pulse excursion, i.e. degrade the rise.
        if fault.aggressor_value in (None, 0):
            return RISE
        return FALL
    raise TypeError("unknown fault spec {!r}".format(fault))


def select_pulse_kind(path, fault):
    """Pick 'h' or 'l' so the degraded edge *shrinks* the pulse.

    The pulse shrinks when the slowed transition is the leading edge of
    the excursion at the fault site.  For a kind-``k`` pulse the fault
    site idles at ``idle_level(stage, input_idle(k))`` and the leading
    edge goes *away* from that idle value: idle 0 -> leading edge rises.
    Faults degrading both edges are detected by either kind; 'h' is
    returned by convention.
    """
    cell_kind = None
    if isinstance(fault, InternalBridgingFault):
        cell_kind = path.cell_at(fault.stage).kind
    direction = degraded_transition(fault, cell_kind=cell_kind)
    if direction == BOTH:
        return "h"
    stage = fault.stage
    # leading edge rises iff the fault site idles low
    idle_h = path.idle_level(stage, 0)   # kind 'h': input idles 0
    idle_l = path.idle_level(stage, 1)
    want_idle = 0 if direction == RISE else 1
    if idle_h == want_idle:
        return "h"
    if idle_l == want_idle:
        return "l"
    raise AssertionError("idle levels must differ between pulse kinds")


class GeneratedPulseTest:
    """A complete pulse test for one fault family on one path."""

    def __init__(self, fault_family, kind, calibration, r_min):
        self.fault_family = fault_family
        self.kind = kind
        self.calibration = calibration
        #: estimated minimal detectable resistance (None: not detected
        #: within the searched range)
        self.r_min = r_min

    @property
    def omega_in(self):
        return self.calibration.omega_in

    @property
    def omega_th(self):
        return self.calibration.omega_th

    def __repr__(self):
        return ("GeneratedPulseTest(kind={!r}, omega_in={:.0f}ps, "
                "omega_th={:.0f}ps, r_min={})").format(
                    self.kind, self.omega_in * 1e12, self.omega_th * 1e12,
                    "-" if self.r_min is None
                    else "{:.0f}".format(self.r_min))


def estimate_r_min(fault_family, omega_in, detector, kind="h", tech=None,
                   r_lo=200.0, r_hi=100e3, rel_tol=0.05, dt=None,
                   sample=None, **path_kwargs):
    """Minimal detectable resistance by electrical bisection.

    ``fault_family(r)`` maps resistance to a fault spec.  Detection uses
    the nominal (or given) instance; Monte Carlo bounds come from the
    calibration itself.  Returns None when even ``r_hi`` escapes.
    """
    sample = NominalModel() if sample is None else sample
    kwargs = {} if dt is None else {"dt": dt}
    base = build_instance(sample=sample, tech=tech, **path_kwargs)
    faulty = inject(base, fault_family(r_hi))

    def detected(r):
        set_fault_resistance(faulty, r)
        w_out, _ = measure_output_pulse(faulty, omega_in, kind=kind,
                                        **kwargs)
        return detector.fault_detected(w_out)

    if not detected(r_hi):
        return None
    if detected(r_lo):
        return r_lo
    lo, hi = r_lo, r_hi
    while hi - lo > rel_tol * lo:
        mid = math.sqrt(lo * hi)
        if detected(mid):
            hi = mid
        else:
            lo = mid
    return hi


def generate_pulse_test(samples, fault_family, tech=None, dt=None,
                        r_hi=100e3, **path_kwargs):
    """Full Sec. 5 flow for one fault family on the reference path.

    1. pick the pulse kind from the fault's degraded transition,
    2. calibrate (ω_in, ω_th) on the fault-free population for that
       kind (yield-first),
    3. estimate the minimal detectable resistance by bisection.
    """
    probe = build_instance(sample=NominalModel(), tech=tech,
                           **path_kwargs)
    reference_fault = fault_family(1e3)
    kind = select_pulse_kind(probe, reference_fault)
    calibration = calibrate_pulse_test(samples, tech=tech, kind=kind,
                                       dt=dt, **path_kwargs)
    r_min = estimate_r_min(fault_family, calibration.omega_in,
                           calibration.detector, kind=kind, tech=tech,
                           dt=dt, r_hi=r_hi, **path_kwargs)
    return GeneratedPulseTest(fault_family, kind, calibration, r_min)
