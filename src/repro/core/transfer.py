"""Pulse transfer characterisation ``w_out = f_p(w_in)`` (Fig. 10).

The paper identifies three regions of the transfer relation:

1. a *dampened* region — the input pulse is completely swallowed,
2. an *attenuation* region connecting 1) and 3) — steep, and very
   sensitive to parameter fluctuations (to be avoided),
3. an *asymptotic* region — ``w_out`` tracks ``w_in`` linearly with unit
   slope.

The test-generation rule of Sec. 5 places the injected width ω_in at the
*beginning of region 3*.
"""

import numpy as np

from .pulse import measure_output_pulse, transient_kwargs


class TransferCurve:
    """Sampled transfer relation for one path instance."""

    def __init__(self, w_in, w_out, kind="h"):
        self.w_in = np.asarray(w_in, dtype=float)
        self.w_out = np.asarray(w_out, dtype=float)
        self.kind = kind
        if self.w_in.shape != self.w_out.shape:
            raise ValueError("w_in / w_out shape mismatch")
        if np.any(np.diff(self.w_in) <= 0):
            raise ValueError("w_in grid must be strictly increasing")

    # ------------------------------------------------------------------

    def dampened_limit(self):
        """Largest sampled ``w_in`` that is fully dampened (region 1 end).

        Returns 0.0 when even the narrowest sampled pulse propagates.
        """
        dead = self.w_in[self.w_out <= 0.0]
        return float(dead.max()) if dead.size else 0.0

    def slopes(self):
        """Finite-difference slope between consecutive grid points."""
        return np.diff(self.w_out) / np.diff(self.w_in)

    def region3_onset(self, slope_tolerance=0.25):
        """Smallest ``w_in`` from which the slope stays within
        ``1 +- slope_tolerance`` up to the end of the grid (region 3).

        Returns None if the asymptotic region was never reached —
        the caller should extend the grid.
        """
        slopes = self.slopes()
        ok = np.abs(slopes - 1.0) <= slope_tolerance
        # also require the pulse to actually propagate there
        ok = np.logical_and(ok, self.w_out[1:] > 0.0)
        onset = None
        for i in range(len(ok) - 1, -1, -1):
            if ok[i]:
                onset = self.w_in[i]
            else:
                break
        return None if onset is None else float(onset)

    def attenuation_span(self, slope_tolerance=0.25):
        """(start, end) of region 2; degenerate when absent."""
        start = self.dampened_limit()
        end = self.region3_onset(slope_tolerance)
        if end is None:
            end = float(self.w_in[-1])
        return start, end

    def interpolate(self, w_in):
        """Linear interpolation of ``w_out`` at ``w_in``."""
        return float(np.interp(w_in, self.w_in, self.w_out))

    def __repr__(self):
        return "TransferCurve({} points, kind={!r})".format(
            len(self.w_in), self.kind)


def default_w_in_grid(tech=None, n_points=13):
    """A grid spanning the dampened-to-asymptotic range for 5-9 gate paths
    in the default technology (0.1 ... 0.7 ns)."""
    return np.linspace(0.10e-9, 0.70e-9, n_points)


def characterize_transfer(path_builder, w_in_values, kind="h", dt=None,
                          adaptive=False, lte_tol=None, solver=None):
    """Measure the transfer curve of the path built by ``path_builder``.

    ``path_builder`` is a zero-argument callable returning a fresh
    :class:`~repro.cells.PathCircuit` (fresh because the stimulus is
    mutated per measurement point).  The time-grid/solver knobs mirror
    :func:`~repro.core.pulse.measure_output_pulse` so a calibration can
    characterise its nominal curve on the same grid and solver as the
    population it calibrates.
    """
    kwargs = {} if dt is None else {"dt": dt}
    kwargs.update(transient_kwargs(adaptive, lte_tol, solver=solver))
    w_out = []
    for w in w_in_values:
        path = path_builder()
        value, _ = measure_output_pulse(path, float(w), kind=kind, **kwargs)
        w_out.append(value)
    return TransferCurve(np.asarray(w_in_values, dtype=float),
                         np.array(w_out), kind=kind)


def minimum_propagatable_width(path, lo=0.05e-9, hi=1.0e-9, tol=5e-12,
                               kind="h", dt=None):
    """Smallest input pulse width that survives to the path output.

    Bisection on :func:`measure_output_pulse`; the path instance is reused
    (only its stimulus mutates).  Returns ``math.inf`` when even ``hi``
    is dampened.
    """
    import math

    kwargs = {} if dt is None else {"dt": dt}

    def survives(width):
        w_out, _ = measure_output_pulse(path, width, kind=kind, **kwargs)
        return w_out > 0.0

    if not survives(hi):
        return math.inf
    if survives(lo):
        return lo
    while hi - lo > tol:
        mid = 0.5 * (lo + hi)
        if survives(mid):
            hi = mid
        else:
            lo = mid
    return hi


def recommended_w_in(curve, margin=0.03e-9, slope_tolerance=0.25):
    """The paper's rule: ω_in at the beginning of region 3, plus a small
    safety margin keeping clear of the fluctuation-sensitive region 2."""
    onset = curve.region3_onset(slope_tolerance)
    if onset is None:
        raise ValueError(
            "transfer curve never reaches the asymptotic region; "
            "extend the w_in grid")
    return onset + margin
