"""Test-parameter calibration on the fault-free Monte Carlo population.

Section 4's conservative, yield-first procedure:

* pulse test — pick the nominal pair (ω_in*, ω_th*) such that no false
  positive is produced for 10 % worst-case sensing-sensitivity variation:
  every fault-free instance's ``w_out(ω_in*)`` must clear ``1.1 ω_th*``;
* DF test — pick T* such that no false positive occurs even when the
  applied period droops by 10 % (see :mod:`repro.dft.reduced_clock`).
"""

from ..cells import default_technology
from ..dft import FlipFlopTiming, calibrate_t_star
from ..montecarlo import NominalModel
from ..runtime import CacheMiss, Runtime, engine_cache_tag, stable_hash
from ..spice.mna import resolve_solver_mode
from .pulse import (assert_chunk_compatible, build_instance,
                    measure_output_pulse, measure_output_pulse_batch,
                    measure_path_delay, measure_path_delay_batch,
                    transient_kwargs)
from .sensing import PulseDetector
from .transfer import (TransferCurve, characterize_transfer,
                       default_w_in_grid, recommended_w_in)


def _grid_kwargs(payload):
    """Time-grid/solver kwargs (dt + adaptive + solver) in a payload."""
    kwargs = {} if payload["dt"] is None else {"dt": payload["dt"]}
    kwargs.update(transient_kwargs(payload.get("adaptive", False),
                                   payload.get("lte_tol"),
                                   solver=payload.get("solver")))
    return kwargs


def _fault_free_pulse_task(payload):
    """Worker: one fault-free instance's w_out at the calibrated ω_in."""
    kwargs = _grid_kwargs(payload)
    path = build_instance(sample=payload["sample"], fault=payload["fault"],
                          tech=payload["tech"], **payload["path_kwargs"])
    w_out, _ = measure_output_pulse(path, payload["omega_in"],
                                    kind=payload["kind"], **kwargs)
    return float(w_out)


def _fault_free_delay_task(payload):
    """Worker: one fault-free instance's path delay."""
    kwargs = _grid_kwargs(payload)
    path = build_instance(sample=payload["sample"], fault=payload["fault"],
                          tech=payload["tech"], **payload["path_kwargs"])
    d, _ = measure_path_delay(path, direction=payload["direction"],
                              **kwargs)
    return float(d)


def _build_chunk_instances(payloads):
    return [build_instance(sample=p["sample"], fault=p["fault"],
                           tech=p["tech"], **p["path_kwargs"])
            for p in payloads]


#: payload fields every member of one fault-free lockstep chunk must
#: agree on (the chunk tasks read them from their first payload)
CALIBRATION_CHUNK_FIELDS = ("dt", "adaptive", "lte_tol", "solver",
                            "omega_in", "kind", "direction", "fault")


def _fault_free_pulse_chunk_task(payloads):
    """Batched worker: a chunk of fault-free w_out measurements in
    lockstep."""
    assert_chunk_compatible(payloads, CALIBRATION_CHUNK_FIELDS,
                            task="fault-free pulse chunk")
    first = payloads[0]
    kwargs = _grid_kwargs(first)
    paths = _build_chunk_instances(payloads)
    wouts, _ = measure_output_pulse_batch(paths, first["omega_in"],
                                          kind=first["kind"], **kwargs)
    return [float(w) for w in wouts]


def _fault_free_delay_chunk_task(payloads):
    """Batched worker: a chunk of fault-free path delays in lockstep."""
    assert_chunk_compatible(payloads, CALIBRATION_CHUNK_FIELDS,
                            task="fault-free delay chunk")
    first = payloads[0]
    kwargs = _grid_kwargs(first)
    paths = _build_chunk_instances(payloads)
    delays, _ = measure_path_delay_batch(paths,
                                         direction=first["direction"],
                                         **kwargs)
    return [float(d) for d in delays]


def _nominal_transfer(builder, w_in_grid, kind, dt, fault, tech,
                      path_kwargs, runtime, adaptive=False, lte_tol=None,
                      solver=None):
    """Nominal transfer curve, memoised in the runtime's result cache
    (it is the fixed, sample-independent part of every calibration).

    The time-grid/solver knobs are threaded through to
    :func:`characterize_transfer` and into the cache key: an earlier
    version characterised the nominal curve on the fixed-grid default
    solver no matter what the caller asked for, and keyed the cache on
    the grid alone — so an exact-solver curve could be served to a
    reuse-solver calibration, and an adaptive calibration picked ω_in*
    from a fixed-grid curve, i.e. on a different time grid than the
    population it calibrates.  The key gains the standard
    :func:`~repro.runtime.engine_cache_tag` tokens; fixed-grid
    exact-solver curves contribute no tokens, so their pre-existing
    cache entries stay valid.
    """
    solver = resolve_solver_mode(solver)
    cache = None if runtime is None else runtime.cache
    key = None
    if cache is not None:
        resolved_tech = default_technology() if tech is None else tech
        tag = engine_cache_tag("scalar", adaptive, lte_tol, solver)
        key = stable_hash("nominal-transfer", resolved_tech, fault,
                          [float(w) for w in w_in_grid], kind, dt,
                          path_kwargs, *tag)
        try:
            stored = cache.get(key)
        except CacheMiss:
            pass
        else:
            return TransferCurve(stored["w_in"], stored["w_out"],
                                 kind=kind)
    curve = characterize_transfer(builder, w_in_grid, kind=kind, dt=dt,
                                  adaptive=adaptive, lte_tol=lte_tol,
                                  solver=solver)
    if key is not None:
        cache.put(key, {"w_in": [float(w) for w in curve.w_in],
                        "w_out": [float(w) for w in curve.w_out]})
    return curve


def _measure_population(task, samples, payload_base, label, runtime,
                        report, key_parts, engine="scalar",
                        batch_task=None, batch_size=None, adaptive=False,
                        lte_tol=None, solver=None):
    """Run one per-sample measurement task over the population.

    ``engine="batched"`` dispatches ``batch_task`` over sample chunks
    through :meth:`Runtime.run_batched`; cache keys gain an engine tag
    so scalar- and batched-engine results never alias.
    """
    if engine not in ("scalar", "batched"):
        raise ValueError("unknown engine {!r}".format(engine))
    runtime = Runtime() if runtime is None else runtime
    # Resolved here so payloads and cache keys always describe the same
    # concrete solver mode (see build_sweep_payloads).
    solver = resolve_solver_mode(solver)
    payloads = [dict(payload_base, sample=sample, adaptive=adaptive,
                     lte_tol=lte_tol, solver=solver)
                for sample in samples]
    keys = None
    if runtime.cache is not None:
        tag = engine_cache_tag(engine, adaptive, lte_tol, solver)
        keys = [stable_hash(label, key_parts, sample, *tag)
                for sample in samples]
    if engine == "batched":
        run = runtime.run_batched(batch_task, payloads, keys=keys,
                                  batch_size=batch_size, label=label,
                                  report=report)
    else:
        run = runtime.run(task, payloads, keys=keys, label=label,
                          report=report)
    if run.errors:
        raise run.errors[min(run.errors)]
    return run.values


class PulseTestCalibration:
    """Result of pulse-test calibration for one path."""

    def __init__(self, omega_in, detector, nominal_curve,
                 fault_free_wouts, sensing_tolerance):
        self.omega_in = omega_in
        self.detector = detector
        self.nominal_curve = nominal_curve
        self.fault_free_wouts = list(fault_free_wouts)
        self.sensing_tolerance = sensing_tolerance

    @property
    def omega_th(self):
        return self.detector.omega_th

    def __repr__(self):
        return ("PulseTestCalibration(omega_in={:.0f}ps, "
                "omega_th={:.0f}ps)").format(self.omega_in * 1e12,
                                             self.omega_th * 1e12)


def calibrate_pulse_test(samples, fault=None, tech=None, kind="h",
                         w_in_grid=None, sensing_tolerance=0.1,
                         margin=0.03e-9, dt=None, omega_in=None,
                         runtime=None, report=None, engine="scalar",
                         batch_size=None, adaptive=False, lte_tol=None,
                         solver=None, **path_kwargs):
    """Select (ω_in*, ω_th*) for the path described by ``path_kwargs``.

    Steps (Sec. 5 rule + Sec. 4 yield constraint):

    1. characterise the *nominal* transfer curve and place ω_in* at the
       onset of the asymptotic region (unless ``omega_in`` is forced);
    2. measure ``w_out(ω_in*)`` over the fault-free population;
    3. set ω_th* so the weakest fault-free instance still clears a
       detector whose threshold runs ``sensing_tolerance`` high:
       ``ω_th* = min_s w_out_s / (1 + sensing_tolerance)``.
    """
    if w_in_grid is None:
        w_in_grid = default_w_in_grid(tech)

    def nominal_builder():
        return build_instance(sample=NominalModel(), fault=fault, tech=tech,
                              **path_kwargs)

    curve = _nominal_transfer(nominal_builder, w_in_grid, kind, dt,
                              fault, tech, path_kwargs, runtime,
                              adaptive=adaptive, lte_tol=lte_tol,
                              solver=solver)
    if omega_in is None:
        omega_in = recommended_w_in(curve, margin=margin)

    resolved_tech = default_technology() if tech is None else tech
    wouts = _measure_population(
        _fault_free_pulse_task, samples,
        dict(fault=fault, tech=tech, dt=dt, omega_in=float(omega_in),
             kind=kind, path_kwargs=path_kwargs),
        "pulse-calibration", runtime, report,
        [resolved_tech, fault, float(omega_in), kind, dt, path_kwargs],
        engine=engine, batch_task=_fault_free_pulse_chunk_task,
        batch_size=batch_size, adaptive=adaptive, lte_tol=lte_tol,
        solver=solver)
    weakest = min(wouts)
    if weakest <= 0.0:
        raise ValueError(
            "a fault-free instance dampens the calibrated pulse; "
            "omega_in={:.0f}ps sits in the forbidden attenuation region"
            .format(omega_in * 1e12))
    detector = PulseDetector(weakest / (1.0 + sensing_tolerance))
    return PulseTestCalibration(omega_in, detector, curve, wouts,
                                sensing_tolerance)


def calibrate_delay_test(samples, fault=None, tech=None, direction="rise",
                         flipflop=None, skew_tolerance=0.1, dt=None,
                         runtime=None, report=None, engine="scalar",
                         batch_size=None, adaptive=False, lte_tol=None,
                         solver=None, **path_kwargs):
    """Calibrate the reduced-clock baseline on the same population.

    Returns ``(DelayFaultTest, fault_free_delays)``.
    """
    flipflop = FlipFlopTiming() if flipflop is None else flipflop

    resolved_tech = default_technology() if tech is None else tech
    delays = _measure_population(
        _fault_free_delay_task, samples,
        dict(fault=fault, tech=tech, dt=dt, direction=direction,
             path_kwargs=path_kwargs),
        "delay-calibration", runtime, report,
        [resolved_tech, fault, direction, dt, path_kwargs],
        engine=engine, batch_task=_fault_free_delay_chunk_task,
        batch_size=batch_size, adaptive=adaptive, lte_tol=lte_tol,
        solver=solver)
    test = calibrate_t_star(delays, samples, flipflop,
                            skew_tolerance=skew_tolerance)
    return test, delays
