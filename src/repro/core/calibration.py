"""Test-parameter calibration on the fault-free Monte Carlo population.

Section 4's conservative, yield-first procedure:

* pulse test — pick the nominal pair (ω_in*, ω_th*) such that no false
  positive is produced for 10 % worst-case sensing-sensitivity variation:
  every fault-free instance's ``w_out(ω_in*)`` must clear ``1.1 ω_th*``;
* DF test — pick T* such that no false positive occurs even when the
  applied period droops by 10 % (see :mod:`repro.dft.reduced_clock`).
"""

from ..dft import FlipFlopTiming, calibrate_t_star
from ..montecarlo import NominalModel, run_population
from .pulse import build_instance, measure_output_pulse, measure_path_delay
from .sensing import PulseDetector
from .transfer import (characterize_transfer, default_w_in_grid,
                       recommended_w_in)


class PulseTestCalibration:
    """Result of pulse-test calibration for one path."""

    def __init__(self, omega_in, detector, nominal_curve,
                 fault_free_wouts, sensing_tolerance):
        self.omega_in = omega_in
        self.detector = detector
        self.nominal_curve = nominal_curve
        self.fault_free_wouts = list(fault_free_wouts)
        self.sensing_tolerance = sensing_tolerance

    @property
    def omega_th(self):
        return self.detector.omega_th

    def __repr__(self):
        return ("PulseTestCalibration(omega_in={:.0f}ps, "
                "omega_th={:.0f}ps)").format(self.omega_in * 1e12,
                                             self.omega_th * 1e12)


def calibrate_pulse_test(samples, fault=None, tech=None, kind="h",
                         w_in_grid=None, sensing_tolerance=0.1,
                         margin=0.03e-9, dt=None, omega_in=None,
                         **path_kwargs):
    """Select (ω_in*, ω_th*) for the path described by ``path_kwargs``.

    Steps (Sec. 5 rule + Sec. 4 yield constraint):

    1. characterise the *nominal* transfer curve and place ω_in* at the
       onset of the asymptotic region (unless ``omega_in`` is forced);
    2. measure ``w_out(ω_in*)`` over the fault-free population;
    3. set ω_th* so the weakest fault-free instance still clears a
       detector whose threshold runs ``sensing_tolerance`` high:
       ``ω_th* = min_s w_out_s / (1 + sensing_tolerance)``.
    """
    if w_in_grid is None:
        w_in_grid = default_w_in_grid(tech)

    def nominal_builder():
        return build_instance(sample=NominalModel(), fault=fault, tech=tech,
                              **path_kwargs)

    curve = characterize_transfer(nominal_builder, w_in_grid, kind=kind,
                                  dt=dt)
    if omega_in is None:
        omega_in = recommended_w_in(curve, margin=margin)

    def worker(sample):
        path = build_instance(sample=sample, fault=fault, tech=tech,
                              **path_kwargs)
        kwargs = {} if dt is None else {"dt": dt}
        w_out, _ = measure_output_pulse(path, omega_in, kind=kind, **kwargs)
        return w_out

    wouts = run_population(worker, samples).values
    weakest = min(wouts)
    if weakest <= 0.0:
        raise ValueError(
            "a fault-free instance dampens the calibrated pulse; "
            "omega_in={:.0f}ps sits in the forbidden attenuation region"
            .format(omega_in * 1e12))
    detector = PulseDetector(weakest / (1.0 + sensing_tolerance))
    return PulseTestCalibration(omega_in, detector, curve, wouts,
                                sensing_tolerance)


def calibrate_delay_test(samples, fault=None, tech=None, direction="rise",
                         flipflop=None, skew_tolerance=0.1, dt=None,
                         **path_kwargs):
    """Calibrate the reduced-clock baseline on the same population.

    Returns ``(DelayFaultTest, fault_free_delays)``.
    """
    flipflop = FlipFlopTiming() if flipflop is None else flipflop

    def worker(sample):
        path = build_instance(sample=sample, fault=fault, tech=tech,
                              **path_kwargs)
        kwargs = {} if dt is None else {"dt": dt}
        d, _ = measure_path_delay(path, direction=direction, **kwargs)
        return d

    delays = run_population(worker, samples).values
    test = calibrate_t_star(delays, samples, flipflop,
                            skew_tolerance=skew_tolerance)
    return test, delays
