"""Logic-to-electrical path cross-check.

The paper's Fig. 11 characterisation ran electrically on selected C432
paths; our Fig. 11 flow screens paths at the logic level for speed.
This module closes the loop: translate a structural logic path into an
equivalent transistor-level sensitized chain (same gate kinds, same
fan-out loading) and verify the logic-level recommendation electrically
— the ω_in chosen by the analytic model must actually propagate.
"""

from ..cells import build_path, default_technology
from ..logic.paths import fanout_load_counts, path_gates
from .pulse import measure_output_pulse

#: structural logic kind -> electrical cell kind.  AND/OR have no
#: single-stage static CMOS realisation; their NAND/NOR core carries the
#: pulse-filtering behaviour (the trailing inverter is a strong buffer
#: that passes anything its input survives).  XOR maps to its worst-case
#: filtering proxy.
KIND_MAP = {
    "not": "inv",
    "buf": "inv",
    "nand": "nand",   # arity appended below
    "nor": "nor",
    "and": "nand",
    "or": "nor",
    "xor": "nand",
    "xnor": "nand",
}


def chain_kinds_for_path(netlist, path_nets):
    """Electrical cell kinds for each gate along a logic path."""
    kinds = []
    for gate in path_gates(netlist, path_nets):
        base = KIND_MAP[gate.kind]
        if base in ("nand", "nor"):
            arity = min(max(len(gate.inputs), 2), 3)
            kinds.append("{}{}".format(base, arity))
        else:
            kinds.append(base)
    return tuple(kinds)


def electrical_path_for(netlist, path_nets, tech=None, sample=None):
    """Build the transistor-level equivalent of a structural path.

    Per-stage fan-out loading follows the logic netlist's fan-out
    counts (each extra sink loads the node with one unit gate input).
    """
    tech = default_technology() if tech is None else tech
    if sample is not None:
        tech = sample.apply_to_technology(tech)
    kinds = chain_kinds_for_path(netlist, path_nets)
    fanouts = fanout_load_counts(netlist, path_nets)
    # average extra loading beyond the on-path sink
    extra = [max(f - 1, 0) for f in fanouts[1:]]
    mean_extra = (sum(extra) / len(extra)) if extra else 0.0
    kwargs = {}
    if sample is not None:
        kwargs["device_factors"] = sample.device_factors
    return build_path(tech=tech, gate_kinds=kinds,
                      fanout_loads=mean_extra,
                      side_fanout_stages=(), **kwargs)


def validate_path_electrically(netlist, path_nets, omega_in, kind="h",
                               tech=None, sample=None, dt=None,
                               min_margin=0.0):
    """Electrically verify a logic-level ω_in recommendation.

    Returns ``(ok, w_out, path)``: ``ok`` means the injected pulse
    survives to the equivalent chain's output with at least
    ``min_margin`` seconds of width.
    """
    path = electrical_path_for(netlist, path_nets, tech=tech,
                               sample=sample)
    kwargs = {} if dt is None else {"dt": dt}
    w_out, _ = measure_output_pulse(path, omega_in, kind=kind, **kwargs)
    return w_out > min_margin, w_out, path


def refine_omega_in_electrically(netlist, path_nets, logic_omega_in,
                                 kind="h", tech=None, sample=None,
                                 dt=None, margin_factor=1.4):
    """Electrical refinement of a logic-level ω_in (the paper's flow).

    The analytic screen ranks paths but systematically under-estimates
    chain thresholds (it ignores inter-stage slew interaction); the
    final test width comes from electrical simulation of the selected
    path: the minimum propagatable width is located by bisection and
    scaled by ``margin_factor`` to clear the attenuation region.

    Returns ``(omega_in, w_out, path)``.
    """
    from .transfer import minimum_propagatable_width

    path = electrical_path_for(netlist, path_nets, tech=tech,
                               sample=sample)
    kwargs = {} if dt is None else {"dt": dt}
    w_min = minimum_propagatable_width(
        path, lo=0.4 * logic_omega_in, hi=6.0 * logic_omega_in,
        kind=kind, **kwargs)
    omega_in = w_min * margin_factor
    w_out, _ = measure_output_pulse(path, omega_in, kind=kind, **kwargs)
    return omega_in, w_out, path
