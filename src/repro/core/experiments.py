"""Per-figure experiment drivers.

One function per paper artifact (the DATE 2007 paper has no tables; its
evaluation is Figs. 2-11).  Each driver returns a plain result object the
benches print and assert shape properties on.  ``ExperimentConfig``
centralises population size, time step and resistance grids, with an
environment knob (``REPRO_FAST=1``) for quick runs.
"""

import os

import numpy as np

from ..cells import default_technology
from ..faults import (BridgingFault, ExternalOpen, InternalOpen, PULL_UP,
                      inject)
from ..montecarlo import NominalModel, sample_population
from ..runtime import Runtime, RunReport, stable_hash
from .adaptive_coverage import (DEFAULT_CI_WIDTH, DEFAULT_MIN_WAVE,
                                DEFAULT_REFINE_REL_TOL,
                                DEFAULT_REFINE_TARGETS, adaptive_sweep)
from .calibration import calibrate_delay_test, calibrate_pulse_test
from .coverage import (delay_coverage, pulse_coverage,
                       sweep_delay_measurements, sweep_pulse_measurements)
from .pulse import build_instance, measure_output_pulse
from .transfer import characterize_transfer, default_w_in_grid
from ..spice import run_transient


class ExperimentConfig:
    """Knobs shared by the experiment drivers.

    ``n_jobs``/``cache_dir`` describe the campaign runtime: worker
    process count (1 = serial, 0 = all CPUs) and the result-cache
    location (None disables caching).  :meth:`from_env` reads them from
    ``REPRO_JOBS`` and ``REPRO_CACHE_DIR``.  ``engine`` selects the
    transient backend for the population sweeps: ``"scalar"`` (the
    reference, one sample per task) or ``"batched"`` (lockstep chunks
    of ``batch_size`` samples; ``REPRO_ENGINE=batched``).  ``adaptive``
    switches both engines to the LTE-controlled time grid
    (``REPRO_ADAPTIVE=1``) with per-step tolerance ``lte_tol``
    (``REPRO_LTE_TOL``, volts; None uses the engine default).
    ``solver`` selects the Newton variant for every transient in the
    experiment (``"reuse"`` = factorization-reuse fast path, ``"exact"``
    = per-iteration refactor reference; ``REPRO_SOLVER``; None defers to
    the engine default, which resolves to ``"reuse"``).  ``trace`` names
    a JSONL file receiving one event per executed task (``REPRO_TRACE``;
    None disables tracing).
    """

    def __init__(self, n_samples=16, dt=3e-12, seed=1, fault_stage=2,
                 rop_resistances=None, bridging_resistances=None,
                 n_paths=10, n_jobs=None, cache_dir=None,
                 engine="scalar", batch_size=None, adaptive=False,
                 lte_tol=None, solver=None, trace=None):
        self.n_samples = int(n_samples)
        self.dt = float(dt)
        self.seed = int(seed)
        self.fault_stage = int(fault_stage)
        self.rop_resistances = (
            list(np.geomspace(500.0, 40e3, 10))
            if rop_resistances is None else list(rop_resistances))
        self.bridging_resistances = (
            list(np.geomspace(800.0, 30e3, 10))
            if bridging_resistances is None else list(bridging_resistances))
        self.n_paths = int(n_paths)
        self.n_jobs = None if n_jobs is None else int(n_jobs)
        self.cache_dir = cache_dir
        if engine not in ("scalar", "batched"):
            raise ValueError("unknown engine {!r}".format(engine))
        self.engine = engine
        self.batch_size = None if batch_size is None else int(batch_size)
        self.adaptive = bool(adaptive)
        self.lte_tol = None if lte_tol is None else float(lte_tol)
        if solver is not None and solver not in ("exact", "reuse"):
            raise ValueError("unknown solver {!r}".format(solver))
        self.solver = solver
        self.trace = None if trace is None else str(trace)

    @classmethod
    def from_env(cls, **overrides):
        """Default config, scaled down when ``REPRO_FAST`` is set.

        Runtime knobs: ``REPRO_JOBS`` sets the worker count (unset: 1 =
        serial; 0 = all CPUs), ``REPRO_CACHE_DIR`` enables the on-disk
        result cache at the given path.
        """
        if os.environ.get("REPRO_FAST"):
            overrides.setdefault("n_samples", 5)
            overrides.setdefault("dt", 4e-12)
            overrides.setdefault(
                "rop_resistances", list(np.geomspace(1e3, 40e3, 6)))
            overrides.setdefault(
                "bridging_resistances", list(np.geomspace(1e3, 30e3, 6)))
            overrides.setdefault("n_paths", 5)
        if os.environ.get("REPRO_JOBS"):
            overrides.setdefault("n_jobs", int(os.environ["REPRO_JOBS"]))
        if os.environ.get("REPRO_CACHE_DIR"):
            overrides.setdefault("cache_dir",
                                 os.environ["REPRO_CACHE_DIR"])
        if os.environ.get("REPRO_ENGINE"):
            overrides.setdefault("engine", os.environ["REPRO_ENGINE"])
        if os.environ.get("REPRO_ADAPTIVE"):
            overrides.setdefault("adaptive", True)
        if os.environ.get("REPRO_LTE_TOL"):
            overrides.setdefault("lte_tol",
                                 float(os.environ["REPRO_LTE_TOL"]))
        if os.environ.get("REPRO_SOLVER"):
            overrides.setdefault("solver", os.environ["REPRO_SOLVER"])
        if os.environ.get("REPRO_TRACE"):
            overrides.setdefault("trace", os.environ["REPRO_TRACE"])
        return cls(**overrides)

    #: the experiment knobs that travel inside a serialised job spec.
    #: Host-side runtime knobs (``n_jobs``/``cache_dir``/``trace``) are
    #: deliberately excluded: where and how a job runs is the serving
    #: host's decision, not the submitter's.
    SPEC_FIELDS = ("n_samples", "dt", "seed", "fault_stage",
                   "rop_resistances", "bridging_resistances", "n_paths",
                   "engine", "batch_size", "adaptive", "lte_tol",
                   "solver")

    def to_jsonable(self):
        """The experiment knobs as a plain JSON-serialisable dict.

        Round-trips through :meth:`from_jsonable`; used as the
        ``config`` section of service job specs.
        """
        out = {}
        for field in self.SPEC_FIELDS:
            value = getattr(self, field)
            if isinstance(value, list):
                value = [float(v) for v in value]
            out[field] = value
        return out

    @classmethod
    def from_jsonable(cls, data):
        """Rebuild a config from :meth:`to_jsonable` output.

        Unknown keys raise ``ValueError`` (a submitted spec with a
        typo'd knob must fail loudly at submission, not run with the
        default silently).
        """
        data = dict(data or {})
        unknown = sorted(set(data) - set(cls.SPEC_FIELDS))
        if unknown:
            raise ValueError(
                "unknown experiment config field(s): {} (known: {})"
                .format(", ".join(unknown), ", ".join(cls.SPEC_FIELDS)))
        return cls(**data)

    def samples(self):
        return sample_population(self.n_samples, base_seed=self.seed)

    def runtime(self):
        """The campaign runtime this config describes."""
        return Runtime.from_config(self)

    def __repr__(self):
        return ("ExperimentConfig(n={}, dt={:.0f}ps, stage={}, jobs={})"
                .format(self.n_samples, self.dt * 1e12, self.fault_stage,
                        self.n_jobs or 1))


# ----------------------------------------------------------------------
# Figures 2, 3, 5 — waveform demonstrations
# ----------------------------------------------------------------------

class WaveformExperiment:
    """Fault-free vs faulty waveforms along the path."""

    def __init__(self, fault, w_in, fault_free, faulty, nodes, vdd):
        self.fault = fault
        self.w_in = w_in
        self.fault_free = fault_free
        self.faulty = faulty
        self.nodes = nodes
        self.vdd = vdd

    def excursion(self, waveform, node):
        """Peak excursion of ``node`` from its initial value."""
        baseline = waveform[node][0]
        return waveform.peak_excursion(node, baseline)

    def dampened_at_output(self):
        """Faulty output excursion below half-swing while the fault-free
        output swings fully — the figures' visual claim."""
        out = self.nodes[-1]
        return (self.excursion(self.faulty, out) < 0.5 * self.vdd
                <= self.excursion(self.fault_free, out))


def run_waveform_experiment(fault_kind="internal_rop", resistance=8e3,
                            w_in=0.40e-9, config=None, tech=None):
    """Reproduce the waveform figures (2: internal ROP, 3: external ROP,
    5: bridging) at the given defect resistance."""
    config = ExperimentConfig.from_env() if config is None else config
    tech = default_technology() if tech is None else tech
    stage = config.fault_stage
    if fault_kind == "internal_rop":
        fault = InternalOpen(stage, PULL_UP, resistance)
    elif fault_kind == "external_rop":
        fault = ExternalOpen(stage, resistance)
    elif fault_kind == "bridging":
        fault = BridgingFault(stage, resistance)
    else:
        raise ValueError("unknown fault kind {!r}".format(fault_kind))

    base = build_instance(sample=NominalModel(), tech=tech)
    nodes = list(base.stage_nodes)

    def simulate(path):
        delay = path.set_input_pulse(w_in, kind="h")
        tstop = (delay + w_in + path.n_gates * 0.35e-9 + 1.2e-9)
        return run_transient(path.circuit, tstop, config.dt, record=None)

    wf_free = simulate(base)
    wf_faulty = simulate(inject(base, fault))
    return WaveformExperiment(fault, w_in, wf_free, wf_faulty, nodes,
                              tech.vdd)


# ----------------------------------------------------------------------
# Figures 6-9 — coverage vs resistance
# ----------------------------------------------------------------------

class CoverageExperiment:
    """Both methods' coverage curves over a resistance grid."""

    def __init__(self, resistances, pulse, delay, calibration, dftest,
                 samples, report=None):
        self.resistances = list(resistances)
        self.pulse = pulse          # CoverageResult (C_pulse)
        self.delay = delay          # CoverageResult (C_del)
        self.calibration = calibration
        self.dftest = dftest
        self.samples = list(samples)
        #: runtime :class:`~repro.runtime.RunReport` (telemetry)
        self.report = report


def _run_coverage(config, tech, fault_proto, resistances, label,
                  runtime):
    """Shared body of the Figs. 6-9 drivers: calibrate both methods on
    the fault-free population, then sweep one fault prototype."""
    samples = config.samples()
    runtime = config.runtime() if runtime is None else runtime
    report = RunReport(label)

    engine_kwargs = dict(engine=config.engine,
                         solver=config.solver,
                         batch_size=config.batch_size,
                         adaptive=config.adaptive,
                         lte_tol=config.lte_tol)
    calibration = calibrate_pulse_test(samples, tech=tech, dt=config.dt,
                                       runtime=runtime, report=report,
                                       **engine_kwargs)
    dftest, _ = calibrate_delay_test(samples, tech=tech, dt=config.dt,
                                     runtime=runtime, report=report,
                                     **engine_kwargs)
    raw_pulse = sweep_pulse_measurements(
        samples, fault_proto, resistances, calibration.omega_in,
        tech=tech, dt=config.dt, runtime=runtime, report=report,
        **engine_kwargs)
    raw_delay = sweep_delay_measurements(
        samples, fault_proto, resistances, tech=tech, dt=config.dt,
        runtime=runtime, report=report, **engine_kwargs)
    return CoverageExperiment(
        resistances,
        pulse_coverage(raw_pulse, samples, resistances, calibration),
        delay_coverage(raw_delay, samples, resistances, dftest),
        calibration, dftest, samples, report=report)


def run_open_coverage(config=None, tech=None, runtime=None):
    """Figs. 6 & 7: external resistive open at the reference stage.

    The paper uses the external open as "the worst case for our method".
    """
    config = ExperimentConfig.from_env() if config is None else config
    return _run_coverage(
        config, tech, ExternalOpen(config.fault_stage,
                                   config.rop_resistances[0]),
        config.rop_resistances, "open-coverage", runtime)


def run_bridging_coverage(config=None, tech=None, runtime=None):
    """Figs. 8 & 9: resistive bridging at the reference stage."""
    config = ExperimentConfig.from_env() if config is None else config
    return _run_coverage(
        config, tech, BridgingFault(config.fault_stage,
                                    config.bridging_resistances[0]),
        config.bridging_resistances, "bridging-coverage", runtime)


# ----------------------------------------------------------------------
# Adaptive-precision coverage campaigns (sequential CI + refinement)
# ----------------------------------------------------------------------

class AdaptiveCoverageExperiment:
    """Both methods' adaptively-sampled coverage vs resistance.

    ``pulse_curves``/``delay_curves`` hold variable-n
    :class:`~repro.core.coverage.CoverageCurve` objects for the same
    threshold-factor settings as the fixed-grid campaign, all derived
    from the adaptive sweeps' raw measurements.  ``transients`` is the
    budget accounting: the (sample, R) transients the adaptive plan
    actually asked for vs. what the blind fixed grids would have cost.
    """

    def __init__(self, pulse_sweep, delay_sweep, pulse_curves,
                 delay_curves, calibration, dftest, samples, report,
                 transients):
        self.pulse_sweep = pulse_sweep
        self.delay_sweep = delay_sweep
        self.pulse_curves = dict(pulse_curves)
        self.delay_curves = dict(delay_curves)
        self.calibration = calibration
        self.dftest = dftest
        self.samples = list(samples)
        self.report = report
        #: ``{"adaptive": n, "fixed_grid": n, "matched_resolution": n}``
        self.transients = dict(transients)

    def minimum_detectable_r(self, method="pulse", target=1.0):
        sweep = self.pulse_sweep if method == "pulse" else self.delay_sweep
        return sweep.minimum_detectable_r(target)

    def reduction_vs_matched(self):
        """Fraction of transients saved vs. the matched-resolution
        fixed grid (the acceptance metric)."""
        matched = self.transients["matched_resolution"]
        return 1.0 - self.transients["adaptive"] / matched

    def __repr__(self):
        return ("AdaptiveCoverageExperiment({} adaptive transients vs "
                "{} matched-grid)").format(
                    self.transients["adaptive"],
                    self.transients["matched_resolution"])


def run_adaptive_coverage(config=None, tech=None, runtime=None,
                          fault="open", ci_width=DEFAULT_CI_WIDTH,
                          min_wave=DEFAULT_MIN_WAVE,
                          refine_rel_tol=DEFAULT_REFINE_REL_TOL,
                          refine_targets=DEFAULT_REFINE_TARGETS,
                          threshold_factors=(0.9, 1.0, 1.1)):
    """Adaptive-precision replacement for the Figs. 6-9 campaigns.

    Calibrates both tests exactly like :func:`run_open_coverage` /
    :func:`run_bridging_coverage`, then replaces the blind fixed-grid
    population sweeps with :func:`~repro.core.adaptive_coverage
    .adaptive_sweep`: escalating sample waves per R point (stop at
    Wilson half-width <= ``ci_width``) and geometric bisection of the
    ``refine_targets`` coverage crossings to ``refine_rel_tol``.  The
    primary (factor 1.0) decision drives the allocation; the other
    ``threshold_factors`` curves are derived from the same raw values.
    """
    config = ExperimentConfig.from_env() if config is None else config
    samples = config.samples()
    runtime = config.runtime() if runtime is None else runtime
    if fault == "open":
        grid = config.rop_resistances
        proto = ExternalOpen(config.fault_stage, grid[0])
    elif fault == "bridging":
        grid = config.bridging_resistances
        proto = BridgingFault(config.fault_stage, grid[0])
    else:
        raise ValueError("unknown fault {!r} (open or bridging)"
                         .format(fault))
    label = "adaptive-{}-coverage".format(fault)
    report = RunReport(label)

    engine_kwargs = dict(engine=config.engine, solver=config.solver,
                         batch_size=config.batch_size,
                         adaptive=config.adaptive, lte_tol=config.lte_tol)
    calibration = calibrate_pulse_test(samples, tech=tech, dt=config.dt,
                                       runtime=runtime, report=report,
                                       **engine_kwargs)
    dftest, _ = calibrate_delay_test(samples, tech=tech, dt=config.dt,
                                     runtime=runtime, report=report,
                                     **engine_kwargs)

    sweep_kwargs = dict(ci_width=ci_width, min_wave=min_wave,
                        refine_targets=refine_targets,
                        refine_rel_tol=refine_rel_tol, tech=tech,
                        dt=config.dt, runtime=runtime, report=report,
                        **engine_kwargs)
    detector = calibration.detector
    pulse_sweep = adaptive_sweep(
        samples, proto, grid,
        lambda value, sample: detector.fault_detected(value),
        label=label + "-pulse", measure="pulse",
        omega_in=float(calibration.omega_in), kind="h", **sweep_kwargs)
    delay_sweep = adaptive_sweep(
        samples, proto, grid,
        lambda value, sample: dftest.detects(value, sample=sample,
                                             t_factor=1.0),
        label=label + "-delay", measure="delay", direction="rise",
        **sweep_kwargs)

    pulse_curves, delay_curves = {}, {}
    for factor in threshold_factors:
        scaled = detector.scaled(factor)
        name = "{:.1f}*w_th".format(factor)
        pulse_curves[name] = pulse_sweep.curve(
            name, lambda value, sample, d=scaled: d.fault_detected(value))
        name = "{:.1f}*T".format(factor)
        delay_curves[name] = delay_sweep.curve(
            name, lambda value, sample, f=factor: dftest.detects(
                value, sample=sample, t_factor=f))

    transients = {
        "adaptive": (pulse_sweep.total_measurements
                     + delay_sweep.total_measurements),
        "fixed_grid": (pulse_sweep.fixed_grid_measurements
                       + delay_sweep.fixed_grid_measurements),
        "matched_resolution": (
            pulse_sweep.matched_resolution_measurements(refine_rel_tol)
            + delay_sweep.matched_resolution_measurements(refine_rel_tol)),
    }
    return AdaptiveCoverageExperiment(
        pulse_sweep, delay_sweep, pulse_curves, delay_curves,
        calibration, dftest, samples, report, transients)


# ----------------------------------------------------------------------
# Figure 10 — transfer relation with parameter fluctuations
# ----------------------------------------------------------------------

class TransferExperiment:
    def __init__(self, nominal_curve, probe_widths, sample_wouts):
        self.nominal_curve = nominal_curve
        self.probe_widths = list(probe_widths)
        #: {w_in: [w_out per sample]}
        self.sample_wouts = dict(sample_wouts)

    def spread(self, w_in):
        values = self.sample_wouts[w_in]
        return max(values) - min(values)


def _transfer_scatter_task(payload):
    """Worker: one sample's w_out at every candidate probe width."""
    path = build_instance(sample=payload["sample"], tech=payload["tech"])
    row = []
    for w_in in payload["probe_widths"]:
        w_out, _ = measure_output_pulse(path, w_in, kind=payload["kind"],
                                        dt=payload["dt"])
        row.append(float(w_out))
    return row


def run_transfer_experiment(config=None, tech=None, probe_widths=None,
                            kind="h", runtime=None):
    """Fig. 10: nominal w_out(w_in) plus the MC scatter at a set of
    candidate ω_in values (paper: 0.30 ... 0.50 ns)."""
    config = ExperimentConfig.from_env() if config is None else config
    samples = config.samples()
    runtime = config.runtime() if runtime is None else runtime
    if probe_widths is None:
        probe_widths = [0.30e-9, 0.35e-9, 0.40e-9, 0.45e-9, 0.50e-9]

    def nominal_builder():
        return build_instance(sample=NominalModel(), tech=tech)

    nominal = characterize_transfer(
        nominal_builder, default_w_in_grid(tech), kind=kind, dt=config.dt)

    resolved_tech = default_technology() if tech is None else tech
    payloads = [dict(sample=sample, tech=tech,
                     probe_widths=[float(w) for w in probe_widths],
                     kind=kind, dt=config.dt)
                for sample in samples]
    keys = None
    if runtime.cache is not None:
        keys = [stable_hash("transfer-scatter", resolved_tech, sample,
                            [float(w) for w in probe_widths], kind,
                            config.dt)
                for sample in samples]
    run = runtime.run(_transfer_scatter_task, payloads, keys=keys,
                      label="transfer-scatter")
    if run.errors:
        raise run.errors[min(run.errors)]
    scatter = {w_in: [row[i] for row in run.values]
               for i, w_in in enumerate(probe_widths)}
    return TransferExperiment(nominal, probe_widths, scatter)


# ----------------------------------------------------------------------
# Figure 11 — per-path (omega_in, omega_th, R_min) on a C432-class circuit
# ----------------------------------------------------------------------

class PathCharacterization:
    def __init__(self, circuit_name, fault_net, entries, calibration,
                 refined_best=None):
        self.circuit_name = circuit_name
        self.fault_net = fault_net
        #: list of dicts: path, omega_in, omega_th, r_min, length
        self.entries = list(entries)
        self.calibration = calibration
        #: electrical refinement of the best path's omega_in (or None):
        #: dict with omega_in, w_out
        self.refined_best = refined_best

    def best(self):
        detected = [e for e in self.entries if e["r_min"] is not None]
        if not detected:
            return None
        return min(detected, key=lambda e: e["r_min"])


def run_path_characterization(config=None, tech=None, netlist=None,
                              fault_net=None, sensing_tolerance=0.1,
                              refine_best=True, runtime=None):
    """Fig. 11: characterise candidate paths through a fault site.

    Pipeline (Sec. 5): enumerate structural paths through the fault,
    sensitize each with the ATPG, derive per-path (ω_in, ω_th) from the
    logic-level pulse model under Monte Carlo timing fluctuation, then
    compute the minimal detectable resistance via the electrically
    calibrated defect model.  With ``refine_best`` the winning path's
    ω_in is finally re-derived by electrical simulation of the
    equivalent transistor-level chain (the paper ran Fig. 11
    electrically; the logic level only screens).
    """
    from ..logic import (DefectCalibration, GateTiming, generate_c432_like,
                         characterize_path_for_test,
                         minimum_detectable_resistance,
                         path_model_from_netlist, paths_through)

    config = ExperimentConfig.from_env() if config is None else config
    runtime = config.runtime() if runtime is None else runtime
    netlist = generate_c432_like() if netlist is None else netlist
    if fault_net is None:
        fault_net = _pick_fault_site(netlist)

    calibration = DefectCalibration.from_electrical(
        "external", config.rop_resistances, tech=tech, dt=config.dt,
        stage=config.fault_stage, runtime=runtime)

    samples = config.samples()
    entries = []
    paths = paths_through(netlist, fault_net,
                          max_paths=config.n_paths * 8)
    # Short paths first (the cheapest tests); keep characterising until
    # enough candidates succeeded.
    paths.sort(key=len)
    for path in paths:
        if len(entries) >= config.n_paths:
            break
        if len(path) < 3 or path[-1] not in netlist.primary_outputs:
            continue
        info = characterize_path_for_test(netlist, path)
        if info is None:
            continue
        # Monte Carlo at the logic level: the weakest instance's w_out
        # fixes omega_th (same conservative rule as the electrical flow).
        omega_in = info["omega_in"]
        wouts = []
        for sample in samples:
            timing = GateTiming(sample=sample)
            model = path_model_from_netlist(netlist, path, timing)
            wouts.append(model.transfer(omega_in))
        weakest = min(wouts)
        if weakest <= 0.0:
            continue
        omega_th = weakest / (1.0 + sensing_tolerance)
        fault_gate_index = path.index(fault_net) - 1
        if fault_gate_index < 0:
            continue  # the fault net is the path's PI: not a gate output
        r_min = minimum_detectable_resistance(
            info["model"], fault_gate_index, calibration, omega_in,
            omega_th)
        entries.append({
            "path": path,
            "length": len(path) - 1,
            "omega_in": omega_in,
            "omega_th": omega_th,
            "r_min": r_min,
        })
    result = PathCharacterization(netlist.name, fault_net, entries,
                                  calibration)
    best = result.best()
    if refine_best and best is not None:
        from .crosscheck import refine_omega_in_electrically
        omega_in, w_out, _ = refine_omega_in_electrically(
            netlist, best["path"], best["omega_in"], tech=tech,
            dt=config.dt)
        result.refined_best = {"omega_in": omega_in, "w_out": w_out}
    return result


def _pick_fault_site(netlist, min_paths=4):
    """A mid-depth net with enough structural paths through it."""
    from ..logic import paths_through

    nets = netlist.topological_nets()
    gate_nets = [n for n in nets if netlist.gate_driving(n) is not None]
    # scan outward from the middle
    order = sorted(range(len(gate_nets)),
                   key=lambda i: abs(i - len(gate_nets) // 2))
    for index in order:
        net = gate_nets[index]
        if len(paths_through(netlist, net, max_paths=min_paths)) >= min_paths:
            return net
    raise ValueError("no suitable fault site found")
