"""Adaptive-precision coverage campaigns (sequential CI + grid refinement).

The fixed-grid campaigns of :mod:`repro.core.coverage` simulate the full
Monte Carlo population S at every point of a blind resistance grid —
most of that budget is spent confirming what a handful of samples
already shows (coverage 0 far below the detectable range, coverage 1 far
above it).  This module spends transients where the statistics actually
need them, in the spirit of statistical test-cost reduction for
post-silicon delay test (EffiTest):

* **Sequential sample allocation** — each R point is measured in
  escalating waves (``min_wave`` samples, then doubled, up to S) and
  stops as soon as its Wilson interval's half-width falls below
  ``ci_width``.  Easy points (coverage near 0 or 1) resolve after one or
  two waves; only points near a coverage transition escalate to the full
  population.
* **Resistance-grid refinement** — instead of a dense blind grid, a
  coarse initial grid brackets each coverage crossing (defaults: the
  50 % and 100 % targets) and geometric bisection localises it to a
  relative tolerance.  Bisection points only need to answer
  "above or below the target?", so they additionally stop as soon as
  their Wilson interval excludes the target.

Every (sample, R) measurement is one independent task dispatched through
the campaign :class:`~repro.runtime.Runtime` under the same
content-addressed key scheme as the fixed-grid sweeps (single-point
resistance grids), so escalation waves never recompute earlier samples,
warm reruns resume from the cache, and serial vs process-pool waves
report identical solver counters.
"""

import math

from ..faults import FaultSpec
from ..montecarlo import wilson_excludes, wilson_halfwidth
from ..runtime import Runtime, RunReport
from .coverage import (CoverageCurve, _sweep_chunk_task, _sweep_row_task,
                       build_sweep_payloads)

#: default per-point Wilson half-width target (the fixed-grid campaign's
#: worst case at S = 16 is ~0.20, so 0.15 is a strictly tighter promise)
DEFAULT_CI_WIDTH = 0.15

#: first escalation wave (doubles until S)
DEFAULT_MIN_WAVE = 8

#: relative tolerance the crossing bisection drives the bracket to
DEFAULT_REFINE_REL_TOL = 0.10

#: coverage targets whose crossings get refined
DEFAULT_REFINE_TARGETS = (0.5, 1.0)

#: initial-grid size the blind grid is subsampled down to
DEFAULT_INITIAL_POINTS = 4


class PointState:
    """Measurements accumulated at one resistance point.

    ``values`` holds the raw measurements in population order; waves
    always extend the prefix, so sample *i*'s value lives at index *i*.
    """

    __slots__ = ("r", "values", "waves", "refined")

    def __init__(self, r, refined=False):
        self.r = float(r)
        self.values = []
        self.waves = 0
        #: True when the point was added by crossing refinement (its
        #: stopping rule may use target exclusion)
        self.refined = refined

    @property
    def n(self):
        return len(self.values)

    def hits(self, decide, samples):
        return sum(1 for value, sample in zip(self.values, samples)
                   if decide(value, sample))

    def __repr__(self):
        return "PointState(r={:.0f}, n={})".format(self.r, self.n)


def subsample_grid(resistances, max_points=DEFAULT_INITIAL_POINTS):
    """Endpoint-preserving subsample of a resistance grid.

    The initial grid only needs to bracket the coverage crossings —
    refinement supplies the resolution — so a handful of points spanning
    the range replaces the blind dense grid.
    """
    rs = sorted(set(float(r) for r in resistances))
    if not rs:
        raise ValueError("resistances must be non-empty")
    max_points = max(2, int(max_points))
    if len(rs) <= max_points:
        return rs
    last = len(rs) - 1
    indices = sorted(set(round(i * last / (max_points - 1))
                         for i in range(max_points)))
    return [rs[i] for i in indices]


def _next_wave(n_now, n_total, min_wave):
    """Sample count after one more escalation wave at a point."""
    if n_now <= 0:
        return min(n_total, max(1, min_wave))
    return min(n_total, 2 * n_now)


class _SweepMeasurer:
    """Dispatch (sample index, R) measurement requests via the runtime.

    Requests are grouped per resistance point and submitted through
    :func:`~repro.core.coverage.build_sweep_payloads` with a
    single-point resistance grid, so each (sample, R) pair lands under
    one stable content-addressed cache key no matter which wave (or
    which rerun) asks for it.
    """

    def __init__(self, samples, fault, tech, dt, runtime, report,
                 engine, batch_size, adaptive, lte_tol, solver,
                 path_kwargs, label, measure_spec):
        if not isinstance(fault, FaultSpec):
            raise TypeError(
                "adaptive sweeps need a picklable FaultSpec prototype, "
                "got {!r} (legacy r -> FaultSpec callables are only "
                "supported by the fixed-grid sweeps)".format(fault))
        if engine not in ("scalar", "batched"):
            raise ValueError("unknown engine {!r}".format(engine))
        self.samples = list(samples)
        self.fault = fault
        self.tech = tech
        self.dt = dt
        self.runtime = Runtime() if runtime is None else runtime
        self.report = report
        self.engine = engine
        self.batch_size = batch_size
        self.adaptive = adaptive
        self.lte_tol = lte_tol
        self.solver = solver
        self.path_kwargs = path_kwargs
        self.label = label
        self.measure_spec = dict(measure_spec)
        #: (sample, R) measurements requested so far (cached or fresh)
        self.requested = 0

    def _point_payloads(self, r, indices):
        return build_sweep_payloads(
            [self.samples[i] for i in indices], self.fault, [r],
            tech=self.tech, dt=self.dt, engine=self.engine,
            adaptive=self.adaptive, lte_tol=self.lte_tol,
            solver=self.solver, path_kwargs=self.path_kwargs,
            with_keys=self.runtime.cache is not None,
            **self.measure_spec)

    def measure(self, requests):
        """Measure ``[(sample_index, r), ...]``; values in request order."""
        requests = list(requests)
        if not requests:
            return []
        groups = {}
        for position, (index, r) in enumerate(requests):
            groups.setdefault(r, []).append((position, index))
        values = [None] * len(requests)
        self.requested += len(requests)
        if self.engine == "batched":
            # one lockstep run per point: a chunk must share its
            # resistance grid, so points cannot mix inside a chunk
            for r, members in groups.items():
                payloads, keys = self._point_payloads(
                    r, [index for _, index in members])
                run = self.runtime.run_batched(
                    _sweep_chunk_task, payloads, keys=keys,
                    batch_size=self.batch_size, label=self.label,
                    report=self.report)
                self._fold(run, members, values)
        else:
            payloads, keys, members = [], [], []
            for r, group in groups.items():
                point_payloads, point_keys = self._point_payloads(
                    r, [index for _, index in group])
                payloads.extend(point_payloads)
                if point_keys is not None:
                    keys.extend(point_keys)
                members.extend(group)
            run = self.runtime.run(
                _sweep_row_task, payloads, keys=keys or None,
                label=self.label, report=self.report)
            self._fold(run, members, values)
        return values

    @staticmethod
    def _fold(run, members, values):
        if run.errors:
            raise run.errors[min(run.errors)]
        for row, (position, _) in zip(run.values, members):
            values[position] = float(row[0])


class AdaptiveSweepResult:
    """One measurement kind's adaptively-sampled C(R) raw material."""

    def __init__(self, points, samples, crossings, label, waves,
                 initial_grid, full_grid):
        #: sorted :class:`PointState` list (initial grid + refinement)
        self.points = sorted(points, key=lambda p: p.r)
        self.samples = list(samples)
        #: ``{target: {"lo": r, "hi": r, "detected_at": r}}`` refined
        #: crossing brackets (absent targets never crossed on the grid)
        self.crossings = dict(crossings)
        self.label = label
        #: escalation waves the sweep took
        self.waves = waves
        self.initial_grid = list(initial_grid)
        #: the blind grid the campaign replaced (for budget accounting)
        self.full_grid = list(full_grid)

    @property
    def resistances(self):
        return [p.r for p in self.points]

    @property
    def ns(self):
        return [p.n for p in self.points]

    @property
    def total_measurements(self):
        """(sample, R) transients the adaptive plan asked for."""
        return sum(p.n for p in self.points)

    @property
    def fixed_grid_measurements(self):
        """Transients of the blind fixed-grid sweep this replaces."""
        return len(self.samples) * len(self.full_grid)

    def matched_resolution_measurements(self, rel_tol):
        """Transients a blind geometric grid would need to localise a
        crossing to ``rel_tol`` over the campaign's resistance range."""
        lo, hi = min(self.full_grid), max(self.full_grid)
        n_points = 1 + math.ceil(math.log(hi / lo)
                                 / math.log(1.0 + rel_tol))
        return len(self.samples) * n_points

    def curve(self, label, decide):
        """Variable-n :class:`CoverageCurve` under decision ``decide``."""
        hits = [p.hits(decide, self.samples) for p in self.points]
        return CoverageCurve(label, self.resistances, hits, self.ns)

    def raw(self):
        """``{r: [values in population order]}`` (variable length)."""
        return {p.r: list(p.values) for p in self.points}

    def minimum_detectable_r(self, target=1.0):
        """The refined R where coverage reaches ``target`` under the
        primary decision, or None when the grid never crossed it."""
        crossing = self.crossings.get(float(target))
        if crossing is not None:
            return crossing["detected_at"]
        return None

    def __repr__(self):
        return ("AdaptiveSweepResult({!r}, {} points, {} measurements, "
                "{} waves)").format(self.label, len(self.points),
                                    self.total_measurements, self.waves)


def adaptive_sweep(samples, fault, resistances, decide,
                   ci_width=DEFAULT_CI_WIDTH, min_wave=DEFAULT_MIN_WAVE,
                   refine_targets=DEFAULT_REFINE_TARGETS,
                   refine_rel_tol=DEFAULT_REFINE_REL_TOL,
                   initial_points=DEFAULT_INITIAL_POINTS,
                   tech=None, dt=None, runtime=None, report=None,
                   engine="scalar", batch_size=None, adaptive=False,
                   lte_tol=None, solver=None, path_kwargs=None,
                   label="adaptive-sweep", measurer=None,
                   **measure_spec):
    """Adaptive-precision coverage sweep over one fault family.

    ``decide(value, sample) -> bool`` is the *primary* detection
    decision (the 1.0-factor test setting) driving both the stopping
    rule and the crossing refinement; curves for other settings are
    derived afterwards from the same raw values via
    :meth:`AdaptiveSweepResult.curve`.

    ``measure_spec`` is the measurement contract of
    :func:`~repro.core.coverage.build_sweep_payloads`
    (``measure="pulse", omega_in=..., kind=...`` or
    ``measure="delay", direction=...``).  ``measurer`` overrides the
    runtime-backed dispatcher (tests inject a synthetic one).

    Returns an :class:`AdaptiveSweepResult`.
    """
    samples = list(samples)
    n_total = len(samples)
    if n_total <= 0:
        raise ValueError("need a non-empty population")
    ci_width = float(ci_width)
    if not 0.0 < ci_width < 0.5:
        raise ValueError("ci_width must lie in (0, 0.5)")
    min_wave = max(1, int(min_wave))
    refine_rel_tol = float(refine_rel_tol)
    if refine_rel_tol <= 0.0:
        raise ValueError("refine_rel_tol must be positive")
    report = RunReport(label) if report is None else report
    if measurer is None:
        measurer = _SweepMeasurer(
            samples, fault, tech, dt, runtime, report, engine,
            batch_size, adaptive, lte_tol, solver, path_kwargs, label,
            measure_spec)

    full_grid = sorted(set(float(r) for r in resistances))
    grid = subsample_grid(full_grid, initial_points)
    points = {r: PointState(r) for r in grid}
    waves = [0]

    def coverage(point):
        return point.hits(decide, samples) / point.n

    def resolved(point, target=None):
        if point.n >= n_total:
            return True
        if point.n == 0:
            return False
        hits = point.hits(decide, samples)
        if wilson_halfwidth(hits, point.n) <= ci_width:
            return True
        # a refinement point only answers "above or below target?" —
        # once the interval excludes the target, more samples at this R
        # cannot change the bisection step
        return (target is not None
                and wilson_excludes(hits, point.n, target))

    def run_waves(wave_points, target=None):
        active = [p for p in wave_points if not resolved(p, target)]
        while active:
            plan, requests = [], []
            for point in active:
                goal = _next_wave(point.n, n_total, min_wave)
                plan.append((point, goal))
                requests.extend((i, point.r)
                                for i in range(point.n, goal))
            values = measurer.measure(requests)
            position = 0
            for point, goal in plan:
                count = goal - point.n
                point.values.extend(values[position:position + count])
                position += count
                point.waves += 1
            waves[0] += 1
            report.record_wave()
            active = [p for p in active if not resolved(p, target)]

    # Phase 1: drive every initial-grid point to its precision target.
    run_waves(list(points.values()))

    # Phase 2: bisect each target's crossing interval geometrically.
    crossings = {}
    for target in refine_targets:
        target = float(target)
        ordered = sorted(points.values(), key=lambda p: p.r)
        above = [coverage(p) >= target for p in ordered]
        bracket = None
        for (a, ok_a), (b, ok_b) in zip(zip(ordered, above),
                                        zip(ordered[1:], above[1:])):
            if ok_a != ok_b:
                bracket = (a, b)
                break
        if bracket is None:
            continue
        lo, hi = bracket
        lo_above = coverage(lo) >= target
        while hi.r > lo.r * (1.0 + refine_rel_tol):
            r_mid = math.sqrt(lo.r * hi.r)
            mid = points.get(r_mid)
            if mid is None:
                mid = PointState(r_mid, refined=True)
                points[r_mid] = mid
            run_waves([mid], target=target)
            if (coverage(mid) >= target) == lo_above:
                lo = mid
            else:
                hi = mid
        detected = lo if lo_above else hi
        crossings[target] = {"lo": lo.r, "hi": hi.r,
                             "detected_at": detected.r}

    return AdaptiveSweepResult(points.values(), samples, crossings,
                               label, waves[0], grid, full_grid)
