"""Fully structural on-chip pulse test: generator + path + detector.

Assembles the complete Sec. 3 testing environment at the transistor
level: a local pulse generator drives the sensitized path's input and a
transition detector watches its output — no external tester timing, no
clock distribution network anywhere.  One transient answers the test.
"""

from ..core.pulse import build_instance
from ..spice import run_transient
from .detector import build_transition_detector
from .pulse_generator import build_pulse_generator, trigger_stimulus


class OnChipTestBench:
    """A complete assembled test structure."""

    def __init__(self, path, generator, detector, trigger_source):
        self.path = path
        self.generator = generator
        self.detector = detector
        #: name of the voltage source driving the generator trigger
        self.trigger_source = trigger_source

    @property
    def circuit(self):
        return self.path.circuit

    @property
    def tech(self):
        return self.path.tech

    def __repr__(self):
        return ("OnChipTestBench({} gates under test, {}-stage "
                "generator)").format(self.path.n_gates,
                                     self.generator.n_stages)


def build_onchip_test(fault=None, sample=None, tech=None,
                      n_generator_stages=5, kind="h",
                      detector_kwargs=None, **path_kwargs):
    """Build path (optionally faulty) + generator + detector.

    The path's ideal input source is removed; the generator output
    drives the path input directly, so the injected width tracks the
    same process corner as the circuit under test.
    """
    path = build_instance(sample=sample, fault=fault, tech=tech,
                          **path_kwargs)
    circuit = path.circuit
    tech = path.tech

    # Replace the ideal input driver with the on-chip generator.
    circuit.remove(path.input_source)
    factors = (sample.device_factors if sample is not None
               else None)
    gen_kwargs = {} if factors is None else {"device_factors": factors}
    circuit.add_vsource("VTRIG", "trig", "0", trigger_stimulus(tech))
    generator = build_pulse_generator(
        circuit, "pgen", "trig", path.input_node, tech,
        n_stages=n_generator_stages, kind=kind, **gen_kwargs)

    detector = build_transition_detector(
        circuit, "tdet", path.output_node, tech,
        **(detector_kwargs or {}), **gen_kwargs)
    return OnChipTestBench(path, generator, detector, "VTRIG")


def run_onchip_test(bench, dt=3e-12, trigger_at=1.0e-9, tstop=None,
                    record=None):
    """Arm, trigger, simulate, decode.

    Returns ``(fault_detected, waveform)``; the waveform records the
    path input/output, the detector flag and any extra ``record`` nodes.
    """
    circuit = bench.circuit
    tech = bench.tech
    detector = bench.detector

    detector.arm(circuit, release_at=trigger_at * 0.5)
    circuit.element(bench.trigger_source).stimulus = trigger_stimulus(
        tech, at=trigger_at)

    if tstop is None:
        tstop = (trigger_at
                 + bench.generator.nominal_width()
                 + bench.path.n_gates * 0.35e-9
                 + 1.5e-9)
    nodes = [bench.path.input_node, bench.path.output_node,
             detector.flag_node]
    if record:
        nodes.extend(record)
    waveform = run_transient(circuit, tstop, dt, record=nodes)
    detected = detector.fault_detected(waveform, tech.vdd)
    return detected, waveform
