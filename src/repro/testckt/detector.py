"""Transition-sensing circuit (transistor level).

The Metra-style detector the paper reuses [9]: every transition of the
observed node produces a pulse on ``XOR(x, delay_line(x))`` which
discharges a precharged dynamic flag node.  After the test:

* flag LOW  -> a transition arrived (pulse propagated: circuit healthy),
* flag HIGH -> no transition (pulse dampened: **fault detected**).

The minimal detectable pulse width ω_th emerges from real circuit
physics here — the XOR's inertial rejection plus the time needed to pull
the flag below threshold — instead of being an abstract parameter, and
it fluctuates with the local process corner exactly as Sec. 4 assumes.
"""

from ..cells.library import build_xor2, unit_device_factors
from ..spice import Pwl
from ..spice.mosfet import Mosfet  # noqa: F401  (documented dependency)
from .delay_line import build_delay_line


class TransitionDetectorInstance:
    """A placed transition detector."""

    def __init__(self, name, observed_node, flag_node, precharge_source,
                 delay_line, xor_cell):
        self.name = name
        self.observed_node = observed_node
        self.flag_node = flag_node
        #: name of the voltage source driving the precharge PMOS gate
        self.precharge_source = precharge_source
        self.delay_line = delay_line
        self.xor_cell = xor_cell

    def arm(self, circuit, release_at=0.3e-9, edge=30e-12):
        """Precharge the flag, then float it from ``release_at`` on.

        The precharge PMOS gate is held low (device on) until
        ``release_at`` and driven high afterwards.
        """
        vdd_value = None
        source = circuit.element(self.precharge_source)
        # the p terminal of the precharge control rides between rails
        from ..spice.sources import make_stimulus
        vdd_value = self._vdd_value(circuit)
        source.stimulus = make_stimulus(Pwl([
            (0.0, 0.0),
            (release_at, 0.0),
            (release_at + edge, vdd_value),
        ]))
        return release_at

    def _vdd_value(self, circuit):
        from ..spice.elements import VoltageSource
        for src in circuit.elements(VoltageSource):
            if src.name == "VDD":
                return src.stimulus.value_at(0.0)
        raise ValueError("circuit has no VDD source")

    def transition_seen(self, waveform, vdd, at=None):
        """Decode the flag at time ``at`` (default: end of the window):
        flag below VDD/2 means the detector fired."""
        t = waveform.t[-1] if at is None else at
        return waveform.value_at(self.flag_node, t) < 0.5 * vdd

    def fault_detected(self, waveform, vdd, at=None):
        """Fault indication = the expected transition did NOT arrive."""
        return not self.transition_seen(waveform, vdd, at=at)

    def __repr__(self):
        return "TransitionDetectorInstance({} watching {})".format(
            self.name, self.observed_node)


def build_transition_detector(circuit, name, observed_node, tech,
                              n_delay_stages=3, flag_cap=60e-15,
                              discharge_strength=0.7,
                              device_factors=unit_device_factors,
                              vdd="vdd"):
    """Place a detector watching ``observed_node``.

    Parameters shaping the effective ω_th:

    * ``n_delay_stages`` (odd) — the XOR pulse lasts roughly the line
      delay, but only if the observed pulse outlasts the line;
    * ``flag_cap`` / ``discharge_strength`` — how much XOR-pulse time is
      needed to pull the flag low.
    """
    if n_delay_stages % 2 == 0:
        raise ValueError("the detector delay line must be inverting")
    delayed = "{}:xd".format(name)
    line = build_delay_line(circuit, "{}_dl".format(name), observed_node,
                            delayed, tech, n_delay_stages,
                            device_factors=device_factors, vdd=vdd)
    xor_out = "{}:xor".format(name)
    xor_cell = build_xor2(circuit, "{}_x".format(name), observed_node,
                          delayed, xor_out, tech, vdd=vdd,
                          device_factors=device_factors)
    # XOR(x, NOT-delayed(x)) idles HIGH (inverting line), so the flag
    # sensor must react to the LOW-going excursion: a PMOS pulls the
    # flag *up* while the XOR dips low, against a pre-DISCHARGED flag.
    # Simpler and equivalent: invert the XOR and use the classic
    # precharged-flag NMOS discharge.
    from ..cells.library import build_inverter
    xor_inv = "{}:xinv".format(name)
    build_inverter(circuit, "{}_xi".format(name), xor_out, xor_inv, tech,
                   vdd=vdd, device_factors=device_factors, strength=1.5)

    flag = "{}:flag".format(name)
    circuit.add_capacitor("{}.cflag".format(name), flag, "0", flag_cap)
    # Precharge PMOS: gate driven by a dedicated control source.
    ctrl = "{}:pre".format(name)
    src_name = "V{}_pre".format(name)
    circuit.add_vsource(src_name, ctrl, "0", 0.0)
    dev = "{}.MPRE".format(name)
    wp = tech.wp_unit * 2.0
    circuit.add_pmos(dev, flag, ctrl, vdd, vdd, wp, tech.length,
                     tech.mosfet_params("pmos", wp))
    # Discharge NMOS driven by the inverted XOR pulse.
    wn = tech.wn_unit * discharge_strength
    dev = "{}.MDIS".format(name)
    circuit.add_nmos(dev, flag, xor_inv, "0", "0", wn, tech.length,
                     tech.mosfet_params("nmos", wn))
    return TransitionDetectorInstance(name, observed_node, flag,
                                      src_name, line, xor_cell)
