"""On-chip pulse generator (transistor level).

The classic edge-to-pulse circuit the paper alludes to ("our method
exploits well known circuits for the generation of input pulses"):

    out = AND(x, delay_line(x))        with an ODD (inverting) line

On a rising edge of the trigger ``x`` the AND sees both inputs high for
one delay-line transit time, producing a high pulse of width ~= the line
delay.  The generated width therefore scales with the *local* process
corner — the property that frees the method from clock-distribution
uncertainty.
"""

from ..cells.library import (build_inverter, build_nand,
                             unit_device_factors)
from ..spice import Pulse
from .delay_line import build_delay_line


class PulseGeneratorInstance:
    """A placed pulse generator."""

    def __init__(self, name, trigger_node, output_node, delay_line,
                 cells, kind="h"):
        self.name = name
        self.trigger_node = trigger_node
        self.output_node = output_node
        self.delay_line = delay_line
        self.cells = list(cells)
        #: 'h': output idles low, pulses high; 'l': the dual
        self.kind = kind

    @property
    def n_stages(self):
        return self.delay_line.n_stages

    def nominal_width(self, per_stage=110e-12):
        """Design-time estimate of the generated pulse width."""
        return self.delay_line.nominal_delay(per_stage)

    def __repr__(self):
        return "PulseGeneratorInstance({}, {} delay stages)".format(
            self.name, self.n_stages)


def build_pulse_generator(circuit, name, trigger_node, output_node, tech,
                          n_stages=5, kind="h",
                          device_factors=unit_device_factors, vdd="vdd"):
    """Place the generator; ``n_stages`` must be odd (inverting line).

    ``kind='h'`` produces a high-going pulse (AND = NAND + inverter);
    ``kind='l'`` stops at the NAND so the output idles high and pulses
    low — the two injected-pulse kinds of Sec. 4.
    """
    if n_stages % 2 == 0:
        raise ValueError("the delay line must be inverting (odd stages)")
    if kind not in ("h", "l"):
        raise ValueError("kind must be 'h' or 'l'")
    delayed = "{}:xd".format(name)
    line = build_delay_line(circuit, "{}_dl".format(name), trigger_node,
                            delayed, tech, n_stages,
                            device_factors=device_factors, vdd=vdd)
    cells = list(line.cells)
    if kind == "h":
        nand_out = "{}:nand".format(name)
        cells.append(build_nand(
            circuit, "{}_nd".format(name), [trigger_node, delayed],
            nand_out, tech, vdd=vdd, device_factors=device_factors,
            strength=1.5))
        cells.append(build_inverter(
            circuit, "{}_out".format(name), nand_out, output_node, tech,
            vdd=vdd, device_factors=device_factors, strength=2.0))
    else:
        cells.append(build_nand(
            circuit, "{}_out".format(name), [trigger_node, delayed],
            output_node, tech, vdd=vdd, device_factors=device_factors,
            strength=2.0))
    return PulseGeneratorInstance(name, trigger_node, output_node, line,
                                  cells, kind=kind)


def trigger_stimulus(tech, at=0.5e-9, edge=None):
    """A single rising edge driving the generator's trigger input."""
    edge = tech.edge_time if edge is None else edge
    return Pulse(0.0, tech.vdd, delay=at, rise=edge, width=1.0, fall=edge)
