"""Inverter-chain delay lines (the timing element of the test circuitry).

Both the pulse generator and the transition detector derive their timing
from a local inverter chain — which is exactly why the paper's test
parameters (ω_in, ω_th) track the *local* process corner instead of the
global clock distribution network: the delay line and the circuit under
test fluctuate together.
"""

from ..cells.library import build_inverter, unit_device_factors


class DelayLineInstance:
    """Structural record of a placed delay line."""

    def __init__(self, name, input_node, output_node, cells, inverting):
        self.name = name
        self.input_node = input_node
        self.output_node = output_node
        self.cells = list(cells)
        #: True when the line has an odd number of stages
        self.inverting = inverting

    @property
    def n_stages(self):
        return len(self.cells)

    def nominal_delay(self, per_stage=110e-12):
        """Rough design-time estimate of the line delay."""
        return self.n_stages * per_stage

    def __repr__(self):
        return "DelayLineInstance({}, {} stages{})".format(
            self.name, self.n_stages,
            ", inverting" if self.inverting else "")


def build_delay_line(circuit, name, input_node, output_node, tech,
                     n_stages, device_factors=unit_device_factors,
                     strength=1.0, vdd="vdd"):
    """Chain ``n_stages`` inverters from ``input_node`` to
    ``output_node``.  Odd stage counts invert the signal."""
    if n_stages < 1:
        raise ValueError("a delay line needs at least one stage")
    cells = []
    previous = input_node
    for i in range(n_stages):
        out = output_node if i == n_stages - 1 else (
            "{}:d{}".format(name, i))
        cell = build_inverter(circuit, "{}_i{}".format(name, i),
                              previous, out, tech, vdd=vdd,
                              device_factors=device_factors,
                              strength=strength)
        cells.append(cell)
        previous = out
    return DelayLineInstance(name, input_node, output_node, cells,
                             inverting=bool(n_stages % 2))
