"""On-chip test circuitry at the transistor level.

The paper's Sec. 3 testing environment: locally generated input pulses
(edge-to-pulse generator built on an inverter delay line) and locally
sensed output transitions (Metra-style XOR + precharged-flag detector).
Because both are built from the same devices as the circuit under test,
their timing fluctuates *with* the local process corner — the root of
the method's immunity to clock-distribution uncertainty.
"""

from .bench import OnChipTestBench, build_onchip_test, run_onchip_test
from .delay_line import DelayLineInstance, build_delay_line
from .detector import TransitionDetectorInstance, build_transition_detector
from .pulse_generator import (PulseGeneratorInstance, build_pulse_generator,
                              trigger_stimulus)

__all__ = [
    "DelayLineInstance", "build_delay_line",
    "PulseGeneratorInstance", "build_pulse_generator", "trigger_stimulus",
    "TransitionDetectorInstance", "build_transition_detector",
    "OnChipTestBench", "build_onchip_test", "run_onchip_test",
]
