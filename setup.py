"""Legacy setup shim.

The execution environment is offline and lacks the ``wheel`` package, so
``pip install -e .`` must use the legacy ``setup.py develop`` path; project
metadata lives in pyproject.toml and is duplicated minimally here.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Pulse propagation for the detection of small delay "
                 "defects (Favalli & Metra, DATE 2007) - reproduction"),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy", "networkx"],
    entry_points={"console_scripts": ["pulsetest=repro.cli:main"]},
)
