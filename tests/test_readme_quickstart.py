"""The README quickstart snippet must stay executable as printed."""

import re
from pathlib import Path

README = Path(__file__).resolve().parent.parent / "README.md"


def test_quickstart_snippet_runs():
    text = README.read_text()
    blocks = re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)
    assert blocks, "README lost its quickstart code block"
    snippet = blocks[0]
    assert "measure_output_pulse" in snippet
    exec(compile(snippet, str(README), "exec"), {})  # noqa: S102


def test_readme_mentions_every_package():
    text = README.read_text()
    import repro
    for name in repro.__all__:
        if name == "__version__":
            continue
        assert "repro.{}".format(name) in text, name


def test_documented_cli_commands_exist():
    from repro.cli import build_parser
    parser = build_parser()
    sub = next(a for a in parser._actions
               if hasattr(a, "choices") and a.choices)
    documented = re.findall(r"^pulsetest (\w+)",
                            README.read_text(), flags=re.MULTILINE)
    for command in documented:
        assert command in sub.choices, command
