"""Cross-substrate consistency: the logic-level pulse machinery must
agree qualitatively with the electrical simulator it abstracts."""

import pytest

from repro.cells import build_path
from repro.core import measure_output_pulse, minimum_propagatable_width
from repro.logic import (DefectCalibration, GatePulseModel, PathPulseModel,
                         calibrate_gate_model)

DT = 5e-12


class TestGateModelCalibration:
    @pytest.fixture(scope="class")
    def inv_model(self):
        return calibrate_gate_model("inv", dt=DT)

    def test_seven_stage_composition_predicts_path_threshold(
            self, inv_model):
        """Composing seven calibrated single-gate models predicts the
        electrically measured 7-gate path threshold to within a factor
        of ~3, always on the optimistic side.

        The analytic model ignores slew interaction between stages (the
        paper: propagation "typically depends on small segments", not
        single gates), so composition systematically under-estimates the
        chain threshold; it is a *screening* model whose value is the
        relative ordering of candidate paths, not absolute widths.
        """
        model = PathPulseModel([inv_model] * 7)
        predicted = model.minimum_propagatable()
        path = build_path()
        measured = minimum_propagatable_width(path, lo=0.1e-9, hi=0.8e-9,
                                              tol=10e-12, dt=DT)
        assert predicted <= measured          # optimism direction
        assert measured / predicted < 3.0     # same order of magnitude

    def test_asymptotic_widths_agree(self, inv_model):
        """In the asymptotic region both levels should pass wide pulses
        essentially unattenuated."""
        model = PathPulseModel([inv_model] * 7)
        w_in = 0.6e-9
        predicted = model.transfer(w_in)
        path = build_path()
        measured, _ = measure_output_pulse(path, w_in, dt=DT)
        assert predicted == pytest.approx(measured, rel=0.25)


class TestDefectCalibrationElectrical:
    @pytest.fixture(scope="class")
    def calibration(self):
        return DefectCalibration.from_electrical(
            "external", [2e3, 10e3, 30e3], dt=DT)

    def test_theta_shift_monotone_in_r(self, calibration):
        shifts = list(calibration.theta_shift)
        assert all(b >= a - 1e-12 for a, b in zip(shifts, shifts[1:]))

    def test_edge_delays_monotone_in_r(self, calibration):
        rises = list(calibration.extra_rise)
        assert all(b >= a - 1e-12 for a, b in zip(rises, rises[1:]))

    def test_external_open_affects_both_edges(self, calibration):
        """Fig. 1b: an external open slows rising AND falling branch
        transitions (unlike internal opens)."""
        assert calibration.extra_rise[-1] > 0.0
        assert calibration.extra_fall[-1] > 0.0

    def test_internal_open_affects_one_edge_mainly(self):
        cal = DefectCalibration.from_electrical(
            "internal_pullup", [4e3, 12e3], dt=DT)
        # The pull-up open slows the path's rising launch... at the path
        # level, one input polarity is hit much harder than the other.
        assert max(cal.extra_rise[-1], cal.extra_fall[-1]) > 3 * max(
            min(cal.extra_rise[-1], cal.extra_fall[-1]), 1e-12)

    def test_synthetic_faulted_model_dampens(self, calibration):
        gate = GatePulseModel(theta=100e-12, span=60e-12, delta=5e-12)
        model = PathPulseModel([gate] * 7)
        w_in = model.region3_onset() + 30e-12
        healthy = model.transfer(w_in)
        faulted = calibration.apply_to_path_model(model, 1, 30e3)
        assert faulted.transfer(w_in) < healthy
