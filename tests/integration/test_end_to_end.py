"""End-to-end integration: tiny versions of the paper's experiments.

These are the most expensive tests in the suite — small populations,
coarse time step — and they assert the *shape* claims each figure makes.
"""

import pytest

from repro.core import (ExperimentConfig, run_bridging_coverage,
                        run_open_coverage, run_waveform_experiment)
from repro.core.coverage import detected_fraction_is_monotonic


@pytest.fixture(scope="module")
def tiny_config():
    return ExperimentConfig(
        n_samples=4, dt=5e-12, seed=21,
        rop_resistances=[2e3, 8e3, 20e3, 50e3],
        bridging_resistances=[1.5e3, 4e3, 12e3, 40e3])


@pytest.fixture(scope="module")
def open_result(tiny_config):
    return run_open_coverage(tiny_config)


@pytest.fixture(scope="module")
def bridging_result(tiny_config):
    return run_bridging_coverage(tiny_config)


class TestWaveformFigures:
    def test_fig2_internal_rop_dampens(self):
        exp = run_waveform_experiment("internal_rop", 8e3,
                                      config=ExperimentConfig(dt=5e-12))
        assert exp.dampened_at_output()

    def test_fig5_bridging_dampens(self):
        exp = run_waveform_experiment("bridging", 2.5e3,
                                      config=ExperimentConfig(dt=5e-12))
        assert exp.dampened_at_output()

    def test_fault_free_pulse_survives_everywhere(self):
        exp = run_waveform_experiment("internal_rop", 8e3,
                                      config=ExperimentConfig(dt=5e-12))
        for node in exp.nodes[1:]:
            assert exp.excursion(exp.fault_free, node) > 0.8 * exp.vdd


class TestFig6And7Opens:
    def test_both_methods_reach_full_coverage(self, open_result):
        for result in (open_result.pulse, open_result.delay):
            for label in result.labels():
                assert result.curve(label).coverage[-1] == 1.0

    def test_open_coverage_monotone_in_r(self, open_result):
        for label in open_result.pulse.labels():
            assert detected_fraction_is_monotonic(
                open_result.pulse.curve(label), tolerance=0.26)
        for label in open_result.delay.labels():
            assert detected_fraction_is_monotonic(
                open_result.delay.curve(label), tolerance=0.26)

    def test_tighter_settings_detect_more(self, open_result):
        """0.9*T detects at least as much as 1.1*T everywhere; 1.1*w_th
        at least as much as 0.9*w_th."""
        d = open_result.delay
        for c_tight, c_loose in zip(d.curve("0.9*T").coverage,
                                    d.curve("1.1*T").coverage):
            assert c_tight >= c_loose
        p = open_result.pulse
        for c_tight, c_loose in zip(p.curve("1.1*w_th").coverage,
                                    p.curve("0.9*w_th").coverage):
            assert c_tight >= c_loose

    def test_clock_spread_wider_than_sensing_spread(self, open_result):
        """The paper's robustness claim: DF-testing coverage moves more
        under +-10% clock variation than pulse coverage moves under
        +-10% sensing variation (integrated over the R grid)."""
        d = open_result.delay
        p = open_result.pulse
        spread_del = sum(
            a - b for a, b in zip(d.curve("0.9*T").coverage,
                                  d.curve("1.1*T").coverage))
        spread_pulse = sum(
            a - b for a, b in zip(p.curve("1.1*w_th").coverage,
                                  p.curve("0.9*w_th").coverage))
        assert spread_del >= spread_pulse


class TestFig8And9Bridging:
    def test_cdel_decays_with_r(self, bridging_result):
        """Fig. 8: bridging delay defects shrink as R grows, so C_del
        falls off; the nominal curve must not be monotone increasing
        once past its peak, and must end low."""
        curve = bridging_result.delay.curve("1.0*T")
        peak = max(curve.coverage)
        assert peak > 0.0
        assert curve.coverage[-1] < peak or peak == 0.0

    def test_cpulse_beats_cdel_for_bridging(self, bridging_result):
        """Fig. 9 vs Fig. 8: the proposed method dominates reduced-clock
        testing over the bridging R band (integrated coverage)."""
        pulse = bridging_result.pulse.curve("1.0*w_th").coverage
        delay = bridging_result.delay.curve("1.0*T").coverage
        assert sum(pulse) > sum(delay)

    def test_pulse_detects_bridging_where_delay_misses(self,
                                                       bridging_result):
        pulse = bridging_result.pulse.curve("1.0*w_th").coverage
        delay = bridging_result.delay.curve("1.0*T").coverage
        assert any(p > d for p, d in zip(pulse, delay))


class TestAdaptiveCampaign:
    """The adaptive-precision campaign must reproduce the fixed-grid
    answer (its initial grid is the same 4-point grid, and with S = 4
    every unresolved point escalates to the full population) while
    spending fewer transients than a blind grid of equal resolution."""

    REL_TOL = 0.3

    @pytest.fixture(scope="class")
    def adaptive_result(self, tiny_config):
        from repro.core import run_adaptive_coverage

        return run_adaptive_coverage(tiny_config, ci_width=0.3,
                                     min_wave=2,
                                     refine_rel_tol=self.REL_TOL)

    def test_reproduces_fixed_grid_r_min(self, adaptive_result,
                                         open_result, tiny_config):
        fixed_rmin = open_result.pulse.curve(
            "1.0*w_th").minimum_detectable_r()
        assert fixed_rmin is not None
        crossing = adaptive_result.pulse_sweep.crossings.get(1.0)
        assert crossing is not None
        grid = tiny_config.rop_resistances
        prev = grid[grid.index(fixed_rmin) - 1]
        # the refined bracket sits inside the fixed grid's crossing
        # interval and is tighter than one grid step
        assert prev * (1 - 1e-9) <= crossing["lo"]
        assert crossing["hi"] <= fixed_rmin * (1 + 1e-9)
        assert crossing["hi"] / crossing["lo"] <= 1 + self.REL_TOL + 1e-9

    def test_saves_transients_vs_matched_grid(self, adaptive_result):
        t = adaptive_result.transients
        assert t["adaptive"] < t["matched_resolution"]
        assert adaptive_result.reduction_vs_matched() >= 0.3

    def test_curves_agree_with_fixed_grid_at_shared_points(
            self, adaptive_result, open_result, tiny_config):
        """At full-population points the adaptive curve must equal the
        fixed-grid curve — same samples, same decision."""
        fixed = open_result.pulse.curve("1.0*w_th")
        curve = adaptive_result.pulse_curves["1.0*w_th"]
        by_r = dict(zip(curve.resistances, zip(curve.coverage, curve.ns)))
        n = tiny_config.n_samples
        for r, c_fixed in zip(fixed.resistances, fixed.coverage):
            c_adaptive, n_point = by_r[r]
            if n_point == n:
                assert c_adaptive == c_fixed

    def test_report_folds_all_waves(self, adaptive_result):
        report = adaptive_result.report
        assert report.waves == (adaptive_result.pulse_sweep.waves
                                + adaptive_result.delay_sweep.waves)
        assert report.failed == 0


class TestCalibrationQuality:
    def test_no_false_positives_at_nominal(self, open_result):
        """At R -> 0 an external open is invisible; coverage at the
        smallest R must stay below 50% at nominal settings (the yield
        constraint in action)."""
        assert open_result.pulse.curve(
            "1.0*w_th").coverage[0] <= 0.5
