"""Electrical fault-injection tests.

Structural checks are cheap; a few electrical checks verify the injected
defects actually produce the paper's Sec. 2 behaviours.
"""

import pytest

from repro.cells import build_path
from repro.faults import (BridgingFault, ExternalOpen, InternalOpen,
                          PULL_DOWN, PULL_UP, inject, set_fault_resistance)
from repro.spice import operating_point, run_transient
from repro.spice.errors import NetlistError

DT = 4e-12


@pytest.fixture()
def path():
    return build_path()


def measure_wout(p, w_in=0.4e-9):
    p.set_input_pulse(w_in, kind="h")
    wf = run_transient(p.circuit, 5e-9, DT, record=["a7"])
    return wf.widest_pulse("a7", p.tech.vdd_half, polarity="low")


class TestStructuralInjection:
    def test_original_path_untouched(self, path):
        inject(path, InternalOpen(2, PULL_UP, 8e3))
        assert "R_fault" not in path.circuit

    def test_internal_open_rewires_rail(self, path):
        faulty = inject(path, InternalOpen(2, PULL_UP, 8e3))
        mp = faulty.circuit.element("g2.MP")
        assert mp.node("s") != "vdd"
        assert faulty.circuit.element("R_fault").resistance == 8e3

    def test_internal_open_pulldown_rewires_ground(self, path):
        faulty = inject(path, InternalOpen(3, PULL_DOWN, 8e3))
        mn = faulty.circuit.element("g3.MN")
        assert mn.node("s") != "0"

    def test_external_open_moves_next_gate_only(self, path):
        faulty = inject(path, ExternalOpen(2, 8e3))
        g3_in = faulty.circuit.element("g3.MN").node("g")
        assert g3_in != "a2"
        # side fan-out inverter stays on the healthy segment
        assert faulty.circuit.element("g2s.MN").node("g") == "a2"

    def test_external_open_splits_wire_cap(self, path):
        faulty = inject(path, ExternalOpen(2, 8e3))
        near = faulty.circuit.element("g2.cw").capacitance
        far = faulty.circuit.element("R_fault.cw").capacitance
        assert near == pytest.approx(far)  # 50/50 split by default
        assert near + far == pytest.approx(path.tech.c_wire)

    def test_external_open_on_last_stage_rejected(self, path):
        with pytest.raises(NetlistError):
            inject(path, ExternalOpen(7, 8e3))

    def test_bridging_adds_aggressor_inverter(self, path):
        faulty = inject(path, BridgingFault(2, 2e3))
        assert "gbf.MN" in faulty.circuit
        bridge = faulty.circuit.element("R_fault")
        assert "a2" in bridge.nodes()

    def test_bridging_auto_aggressor_opposes_excursion(self, path):
        # a2 idles low for a kind='h' pulse; the aggressor must hold low
        # to fight the rising excursion.
        faulty = inject(path, BridgingFault(2, 2e3))
        op = operating_point(faulty.circuit)
        agg_node = [n for n in faulty.circuit.element("R_fault").nodes()
                    if n != "a2"][0]
        assert op[agg_node] == pytest.approx(0.0, abs=0.05)

    def test_set_fault_resistance(self, path):
        faulty = inject(path, ExternalOpen(2, 1e3))
        set_fault_resistance(faulty, 9e3)
        assert faulty.circuit.element("R_fault").resistance == 9e3

    def test_set_fault_resistance_rejects_nonpositive(self, path):
        faulty = inject(path, ExternalOpen(2, 1e3))
        with pytest.raises(NetlistError):
            set_fault_resistance(faulty, 0.0)

    def test_unknown_fault_type_rejected(self, path):
        with pytest.raises(NetlistError):
            inject(path, object())


class TestElectricalBehaviour:
    """Sec. 2 behaviours, one transient each (kept few and coarse)."""

    def test_internal_open_dampens_pulse(self, path):
        w_ff = measure_wout(path)
        w_faulty = measure_wout(inject(path, InternalOpen(2, PULL_UP, 8e3)))
        assert w_ff > 0.3e-9
        assert w_faulty == 0.0  # Fig. 2: dampened in a few logic levels

    def test_internal_more_severe_than_external(self, path):
        w_int = measure_wout(inject(path, InternalOpen(2, PULL_UP, 8e3)))
        w_ext = measure_wout(inject(path, ExternalOpen(2, 8e3)))
        assert w_int < w_ext  # paper: internal ROPs more relevant

    def test_external_open_shrinks_with_resistance(self, path):
        faulty = inject(path, ExternalOpen(2, 4e3))
        w_small = measure_wout(faulty)
        set_fault_resistance(faulty, 20e3)
        w_large = measure_wout(faulty)
        assert w_large < w_small

    def test_bridging_dampens_at_moderate_resistance(self, path):
        w = measure_wout(inject(path, BridgingFault(2, 2.5e3)))
        assert w == 0.0  # Fig. 5: incomplete pulse dies

    def test_bridging_recovers_at_large_resistance(self, path):
        w = measure_wout(inject(path, BridgingFault(2, 50e3)))
        assert w > 0.25e-9

    def test_dc_levels_unchanged_by_external_open(self, path):
        # An open does not alter static logic values, only dynamics.
        faulty = inject(path, ExternalOpen(2, 20e3))
        op = operating_point(faulty.circuit)
        assert op["a7"] == pytest.approx(path.tech.vdd, abs=0.05)
