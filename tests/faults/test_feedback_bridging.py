"""Feedback-bridging tests and the simulator's oscillation capability.

Sec. 2: low-resistance bridgings "give rise to functional errors or
oscillations (in case they close inverting feedback loops)" and "are
supposed to be detected by functional testing".  In this technology the
bridged loop resolves to the *latching* (functional-error) mode: the
forward driver and the fed-back signal fight to a metastable mid-rail
level.  A genuine enabled ring oscillator verifies that the simulator
does sustain oscillation when the loop is undriven.
"""

import pytest

from repro.cells import (build_inverter, build_nand, build_path,
                         default_technology)
from repro.faults import FeedbackBridgingFault, inject
from repro.spice import Circuit, Pulse, run_transient

DT = 4e-12


class TestSpec:
    def test_fields_and_loop_length(self):
        f = FeedbackBridgingFault(2, 5, 1e3)
        assert f.loop_length == 3

    def test_rejects_non_forward_loop(self):
        with pytest.raises(ValueError):
            FeedbackBridgingFault(5, 2, 1e3)

    def test_with_resistance(self):
        f = FeedbackBridgingFault(2, 5, 1e3).with_resistance(4e3)
        assert f.resistance == 4e3
        assert f.loop_length == 3


class TestInjection:
    def test_bridge_spans_the_two_stage_nodes(self):
        path = build_path()
        faulty = inject(path, FeedbackBridgingFault(2, 5, 1e3))
        bridge = faulty.circuit.element("R_fault")
        assert set(bridge.nodes()) == {"a2", "a5"}

    def test_to_stage_bound_checked(self):
        path = build_path()
        from repro.spice.errors import NetlistError
        with pytest.raises(NetlistError):
            inject(path, FeedbackBridgingFault(2, 9, 1e3))


class TestElectricalModes:
    def run_pulse(self, resistance):
        path = build_path()
        faulty = inject(path, FeedbackBridgingFault(2, 5, resistance))
        faulty.set_input_pulse(0.42e-9, kind="h")
        wf = run_transient(faulty.circuit, 8e-9, DT,
                           record=["a2", "a7"])
        return faulty, wf

    def test_low_r_latches_to_functional_error(self):
        """A hard feedback bridge drags the loop node to a metastable
        mid-rail level: a static logic error, caught by functional
        testing as the paper states."""
        faulty, wf = self.run_pulse(500.0)
        vdd = faulty.tech.vdd
        final = wf.value_at("a2", 7.9e-9)
        assert 0.2 * vdd < final < 0.8 * vdd  # neither rail: error

    def test_high_r_is_benign_statically(self):
        faulty, wf = self.run_pulse(30e3)
        vdd = faulty.tech.vdd
        final = wf.value_at("a2", 7.9e-9)
        assert final < 0.2 * vdd  # back at its healthy idle value

    def test_degradation_monotone_in_r(self):
        finals = []
        for r in (500.0, 2e3, 30e3):
            _, wf = self.run_pulse(r)
            finals.append(wf.value_at("a2", 7.9e-9))
        assert finals[0] > finals[1] > finals[2]


class TestRingOscillation:
    """The simulator sustains oscillation when a loop is undriven."""

    @pytest.fixture(scope="class")
    def ring_waveform(self):
        tech = default_technology()
        c = Circuit("ring")
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        c.add_vsource("VEN", "en", "0",
                      Pulse(0, tech.vdd, delay=0.5e-9, rise=60e-12,
                            width=1.0))
        build_nand(c, "g1", ["en", "fb"], "n1", tech)
        build_inverter(c, "g2", "n1", "n2", tech)
        build_inverter(c, "g3", "n2", "fb", tech)
        return tech, run_transient(c, 6e-9, DT, record=["fb"])

    def test_oscillates_once_enabled(self, ring_waveform):
        tech, wf = ring_waveform
        assert wf.is_oscillating("fb", tech.vdd_half, after=2e-9)

    def test_quiet_before_enable(self, ring_waveform):
        tech, wf = ring_waveform
        assert wf.oscillation_count("fb", tech.vdd_half, after=0.0) > (
            wf.oscillation_count("fb", tech.vdd_half, after=2e-9))
        assert wf.value_at("fb", 0.3e-9) > tech.vdd - 0.3

    def test_period_scales_with_stage_delays(self, ring_waveform):
        import numpy as np
        tech, wf = ring_waveform
        crossings = wf.crossing_times("fb", tech.vdd_half)
        half_periods = np.diff(crossings[-6:])
        # 3-stage loop: half period ~ 3 gate delays (~80 ps each)
        assert 100e-12 < half_periods.mean() < 600e-12
