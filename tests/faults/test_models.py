"""Fault-spec tests."""

import pytest

from repro.faults import (BridgingFault, ExternalOpen, InternalOpen,
                          PULL_DOWN, PULL_UP)


class TestInternalOpen:
    def test_fields(self):
        f = InternalOpen(2, PULL_UP, 8e3)
        assert f.stage == 2
        assert f.network == PULL_UP
        assert f.resistance == 8e3

    def test_with_resistance_copies(self):
        f = InternalOpen(2, PULL_DOWN, 1e3)
        g = f.with_resistance(5e3)
        assert g.resistance == 5e3
        assert g.network == PULL_DOWN
        assert f.resistance == 1e3

    def test_rejects_bad_network(self):
        with pytest.raises(ValueError):
            InternalOpen(2, "sideways", 1e3)

    def test_rejects_nonpositive_resistance(self):
        with pytest.raises(ValueError):
            InternalOpen(2, PULL_UP, 0.0)

    def test_describe_mentions_network(self):
        assert "pullup" in InternalOpen(2, PULL_UP, 1e3).describe()


class TestExternalOpen:
    def test_fields(self):
        f = ExternalOpen(3, 2e3)
        assert f.stage == 3
        assert f.resistance == 2e3

    def test_with_resistance(self):
        assert ExternalOpen(3, 1e3).with_resistance(9e3).resistance == 9e3

    def test_rejects_negative_resistance(self):
        with pytest.raises(ValueError):
            ExternalOpen(3, -1.0)


class TestBridgingFault:
    def test_default_aggressor_auto(self):
        f = BridgingFault(2, 2e3)
        assert f.aggressor_value is None
        assert "auto" in f.describe()

    def test_explicit_aggressor(self):
        f = BridgingFault(2, 2e3, aggressor_value=1)
        assert f.aggressor_value == 1

    def test_rejects_bad_aggressor(self):
        with pytest.raises(ValueError):
            BridgingFault(2, 2e3, aggressor_value=2)

    def test_with_resistance_keeps_aggressor(self):
        f = BridgingFault(2, 2e3, aggressor_value=0)
        assert f.with_resistance(4e3).aggressor_value == 0
