"""Internal bridging fault tests (the paper's omitted-for-brevity case)."""

import pytest

from repro.cells import build_path
from repro.faults import InternalBridgingFault, inject, set_fault_resistance
from repro.spice import operating_point, run_transient
from repro.spice.errors import NetlistError

DT = 5e-12
NAND_CHAIN = ("inv", "nand2", "inv", "nand2", "inv", "inv", "inv")


@pytest.fixture()
def nand_path():
    return build_path(gate_kinds=NAND_CHAIN)


class TestSpec:
    def test_fields(self):
        f = InternalBridgingFault(2, 3e3, internal_index=0,
                                  aggressor_value=1)
        assert f.stage == 2
        assert f.internal_index == 0
        assert f.aggressor_value == 1

    def test_with_resistance_keeps_fields(self):
        f = InternalBridgingFault(2, 3e3, aggressor_value=0)
        g = f.with_resistance(9e3)
        assert g.resistance == 9e3
        assert g.aggressor_value == 0

    def test_rejects_bad_aggressor(self):
        with pytest.raises(ValueError):
            InternalBridgingFault(2, 3e3, aggressor_value=7)


class TestInjection:
    def test_bridges_stack_node(self, nand_path):
        faulty = inject(nand_path, InternalBridgingFault(2, 3e3))
        bridge = faulty.circuit.element("R_fault")
        victim = nand_path.cell_at(2).internal_nodes[0]
        assert victim in bridge.nodes()
        assert "gbfi.MN" in faulty.circuit

    def test_inverter_stage_rejected(self):
        path = build_path()  # all inverters: no internal nodes
        with pytest.raises(NetlistError):
            inject(path, InternalBridgingFault(2, 3e3))

    def test_bad_internal_index_rejected(self, nand_path):
        with pytest.raises(NetlistError):
            inject(nand_path,
                   InternalBridgingFault(2, 3e3, internal_index=5))

    def test_default_aggressor_high_for_nand(self, nand_path):
        # The aggressor holds logic 1; through a 3k bridge into the
        # conducting NMOS stack its level is *degraded* but must stay
        # above the switching threshold (contention, not flip).
        faulty = inject(nand_path, InternalBridgingFault(2, 3e3))
        op = operating_point(faulty.circuit)
        assert op["bfi_out"] > nand_path.tech.vdd_half

    def test_resistance_sweepable(self, nand_path):
        faulty = inject(nand_path, InternalBridgingFault(2, 3e3))
        set_fault_resistance(faulty, 12e3)
        assert faulty.circuit.element("R_fault").resistance == 12e3


class TestElectricalEffect:
    def measure(self, path, kind="l"):
        path.set_input_pulse(0.42e-9, kind=kind)
        wf = run_transient(path.circuit, 5e-9, DT,
                           record=[path.output_node])
        polarity = "high" if kind == "l" else "low"
        return wf.widest_pulse(path.output_node, path.tech.vdd_half,
                               polarity)

    def test_static_levels_survive(self, nand_path):
        """Above critical resistance: no functional error."""
        faulty = inject(nand_path, InternalBridgingFault(2, 3e3))
        op = operating_point(faulty.circuit)
        healthy_op = operating_point(nand_path.circuit)
        half = nand_path.tech.vdd_half
        for i in range(1, 8):
            node = "a{}".format(i)
            # levels may be degraded by contention but the logic value
            # (side of the 50% threshold) must be preserved
            assert (op[node] > half) == (healthy_op[node] > half)

    def test_pulse_shrinks_with_matching_kind(self, nand_path):
        w_healthy = self.measure(nand_path)
        faulty = inject(nand_path, InternalBridgingFault(2, 3e3))
        w_faulty = self.measure(faulty)
        assert w_faulty < w_healthy - 50e-12

    def test_effect_fades_with_resistance(self, nand_path):
        faulty = inject(nand_path, InternalBridgingFault(2, 2e3))
        w_strong = self.measure(faulty)
        set_fault_resistance(faulty, 60e3)
        w_weak = self.measure(faulty)
        assert w_weak > w_strong
