"""Sweeping R in place must equal injecting at that R directly.

The coverage sweeps rely on ``set_fault_resistance`` for speed; if its
result ever diverged from a fresh injection the figures would be wrong.
"""

import pytest

from repro.cells import build_path
from repro.faults import (BridgingFault, ExternalOpen, FeedbackBridgingFault,
                          InternalBridgingFault, InternalOpen, PULL_UP,
                          inject, set_fault_resistance)

NAND_CHAIN = ("inv", "nand2", "inv", "nand2", "inv", "inv", "inv")


def circuit_signature(path):
    """Structural fingerprint: element names, terminals and values."""
    signature = {}
    for element in path.circuit.elements():
        entry = dict(element.terminals)
        for attr in ("resistance", "capacitance"):
            if hasattr(element, attr):
                entry[attr] = getattr(element, attr)
        signature[element.name] = entry
    return signature


FAULTS = [
    InternalOpen(2, PULL_UP, 2e3),
    ExternalOpen(2, 2e3),
    BridgingFault(2, 2e3),
    FeedbackBridgingFault(2, 5, 2e3),
]


@pytest.mark.parametrize("fault", FAULTS, ids=lambda f: type(f).__name__)
def test_sweep_matches_fresh_injection(fault):
    path = build_path()
    fresh = inject(path, fault.with_resistance(9e3))
    swept = inject(path, fault)
    set_fault_resistance(swept, 9e3)
    assert circuit_signature(fresh) == circuit_signature(swept)


def test_internal_bridging_sweep_matches():
    path = build_path(gate_kinds=NAND_CHAIN)
    fault = InternalBridgingFault(2, 2e3)
    fresh = inject(path, fault.with_resistance(9e3))
    swept = inject(path, fault)
    set_fault_resistance(swept, 9e3)
    assert circuit_signature(fresh) == circuit_signature(swept)


def test_original_path_never_mutated():
    path = build_path()
    before = circuit_signature(path)
    for fault in FAULTS:
        faulty = inject(path, fault)
        set_fault_resistance(faulty, 5e4)
    assert circuit_signature(path) == before
