"""Benchmark-circuit generator tests."""

import numpy as np
import pytest

from repro.logic import (c17, generate_c432_like, generate_random_circuit)


class TestRandomGenerator:
    def test_requested_sizes(self):
        n = generate_random_circuit(n_inputs=10, n_outputs=3, n_gates=30,
                                    seed=1)
        assert len(n.primary_inputs) == 10
        assert len(n.primary_outputs) == 3
        assert n.n_gates == 30

    def test_deterministic_per_seed(self):
        a = generate_random_circuit(8, 2, 20, seed=5)
        b = generate_random_circuit(8, 2, 20, seed=5)
        assert [g.inputs for g in a.gates()] == [g.inputs for g in b.gates()]

    def test_seeds_differ(self):
        a = generate_random_circuit(8, 2, 20, seed=5)
        b = generate_random_circuit(8, 2, 20, seed=6)
        assert [g.inputs for g in a.gates()] != [g.inputs for g in b.gates()]

    def test_validates_structurally(self):
        n = generate_random_circuit(12, 4, 50, seed=3)
        assert n.validate()

    def test_depth_close_to_target(self):
        # The bias-repair pass may shorten some paths; depth must stay
        # within a factor two of the request and never exceed it.
        n = generate_random_circuit(12, 4, 60, seed=3, target_depth=10)
        assert 5 <= n.depth() <= 10

    def test_no_constant_internal_nets(self):
        """The repair pass must leave every gate output controllable."""
        n = generate_random_circuit(12, 4, 60, seed=3)
        rng = np.random.default_rng(99)
        counts = {net: 0 for net in n.nets()}
        trials = 256
        for _ in range(trials):
            vec = {pi: int(rng.integers(2)) for pi in n.primary_inputs}
            for net, v in n.evaluate(vec).items():
                counts[net] += v
        for net, ones in counts.items():
            if n.gate_driving(net) is None:
                continue
            assert 0 < ones < trials, "net {} looks constant".format(net)


class TestC432Like:
    @pytest.fixture(scope="class")
    def circuit(self):
        return generate_c432_like()

    def test_iscas_c432_statistics(self, circuit):
        assert len(circuit.primary_inputs) == 36
        assert len(circuit.primary_outputs) == 7
        assert 140 <= circuit.n_gates <= 180
        assert 12 <= circuit.depth() <= 20

    def test_nand_dominated(self, circuit):
        kinds = [g.kind for g in circuit.gates()]
        assert kinds.count("nand") > len(kinds) * 0.25

    def test_reproducible(self):
        a = generate_c432_like()
        b = generate_c432_like()
        assert [g.inputs for g in a.gates()] == [g.inputs for g in b.gates()]

    def test_has_sensitizable_paths(self, circuit):
        """At least a quarter of sampled paths must be sensitizable —
        the property Fig. 11 depends on."""
        from repro.logic import paths_through, sensitize_path
        ok = checked = 0
        for net in circuit.topological_nets():
            if circuit.gate_driving(net) is None:
                continue
            for path in paths_through(circuit, net, max_paths=2):
                checked += 1
                try:
                    if sensitize_path(circuit, path) is not None:
                        ok += 1
                except ValueError:
                    pass
            if checked >= 60:
                break
        assert ok >= checked * 0.25


class TestC17Preset:
    def test_exact_gate_list(self):
        n = c17()
        nand_inputs = {g.output: set(g.inputs) for g in n.gates()}
        assert nand_inputs == {
            "G10": {"G1", "G3"},
            "G11": {"G3", "G6"},
            "G16": {"G2", "G11"},
            "G19": {"G11", "G7"},
            "G22": {"G10", "G16"},
            "G23": {"G16", "G19"},
        }
