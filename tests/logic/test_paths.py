"""Path-enumeration tests."""

import pytest

from repro.logic import (c17, fanout_load_counts, generate_c432_like,
                         longest_paths_by_depth, path_gates,
                         path_inversion_parity, paths_through)


class TestPathsThrough:
    def test_c17_paths_through_g11(self):
        n = c17()
        paths = paths_through(n, "G11")
        # G11 is fed by G3/G6 and feeds G16 (->G22, G23) and G19 (->G23)
        assert all(p[0] in n.primary_inputs for p in paths)
        assert all(p[-1] in n.primary_outputs for p in paths)
        assert all("G11" in p for p in paths)
        assert len(paths) == 6  # 2 PIs x 3 PO routes

    def test_paths_through_pi(self):
        n = c17()
        paths = paths_through(n, "G1")
        assert all(p[0] == "G1" for p in paths)
        assert len(paths) >= 1

    def test_paths_through_po(self):
        n = c17()
        paths = paths_through(n, "G22")
        assert all(p[-1] == "G22" for p in paths)

    def test_max_paths_respected(self):
        n = generate_c432_like()
        net = n.topological_nets()[80]
        paths = paths_through(n, net, max_paths=5)
        assert len(paths) <= 5

    def test_max_length_respected(self):
        n = generate_c432_like()
        net = n.topological_nets()[80]
        paths = paths_through(n, net, max_paths=30, max_length=9)
        assert all(len(p) <= 9 for p in paths)

    def test_unknown_net_rejected(self):
        with pytest.raises(ValueError):
            paths_through(c17(), "nope")


class TestPathQueries:
    def test_path_gates(self):
        n = c17()
        gates = path_gates(n, ["G1", "G10", "G22"])
        assert [g.output for g in gates] == ["G10", "G22"]

    def test_path_gates_rejects_undriven(self):
        n = c17()
        with pytest.raises(ValueError):
            path_gates(n, ["G1", "G3"])

    def test_parity_all_nand_path(self):
        n = c17()
        assert path_inversion_parity(n, ["G1", "G10", "G22"]) == 0
        assert path_inversion_parity(n, ["G3", "G11", "G16", "G23"]) == 1

    def test_parity_with_xor_needs_sides(self):
        from repro.logic import LogicNetlist
        n = LogicNetlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("xor", ["a", "b"], "y")
        n.add_output("y")
        with pytest.raises(ValueError):
            path_inversion_parity(n, ["a", "y"])
        assert path_inversion_parity(n, ["a", "y"], {"b": 0}) == 0
        assert path_inversion_parity(n, ["a", "y"], {"b": 1}) == 1

    def test_fanout_load_counts(self):
        n = c17()
        counts = fanout_load_counts(n, ["G3", "G11", "G16", "G23"])
        assert counts == [2, 2, 2, 0]  # G3 feeds G10+G11; G23 is a PO

    def test_longest_paths_sorted(self):
        n = generate_c432_like()
        net = n.topological_nets()[90]
        paths = longest_paths_by_depth(n, net, max_paths=5)
        lengths = [len(p) for p in paths]
        assert lengths == sorted(lengths, reverse=True)
