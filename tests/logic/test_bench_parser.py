"""ISCAS-85 .bench parser/writer tests."""

import pytest

from repro.logic import c17, parse_bench, write_bench


class TestParsing:
    def test_simple_circuit(self):
        text = """
        # comment line
        INPUT(a)
        INPUT(b)
        OUTPUT(y)
        y = NAND(a, b)
        """
        n = parse_bench(text)
        assert n.primary_inputs == ["a", "b"]
        assert n.primary_outputs == ["y"]
        assert n.gate_driving("y").kind == "nand"

    def test_whitespace_and_case_tolerance(self):
        text = "input( x )\noutput( y )\ny = Not(x)"
        n = parse_bench(text)
        assert n.primary_inputs == ["x"]
        assert n.gate_driving("y").kind == "not"

    def test_buff_alias(self):
        text = "INPUT(a)\nOUTPUT(y)\ny = BUFF(a)"
        assert parse_bench(text).gate_driving("y").kind == "buf"

    def test_inline_comments_stripped(self):
        text = "INPUT(a)  # the input\nOUTPUT(y)\ny = NOT(a) # invert"
        assert parse_bench(text).n_gates == 1

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\ny = FROB(a)")

    def test_garbage_line_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\nthis is not bench")

    def test_undriven_net_rejected(self):
        with pytest.raises(ValueError):
            parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(ghost)")


class TestRoundTrip:
    def test_c17_roundtrip_preserves_behaviour(self):
        original = c17()
        text = write_bench(original)
        reparsed = parse_bench(text)
        assert reparsed.primary_inputs == original.primary_inputs
        assert reparsed.primary_outputs == original.primary_outputs
        assert reparsed.n_gates == original.n_gates
        # behavioural equivalence on every input vector (2^5 = 32)
        import itertools
        for bits in itertools.product((0, 1), repeat=5):
            vector = dict(zip(original.primary_inputs, bits))
            a = original.evaluate(vector)
            b = reparsed.evaluate(vector)
            for po in original.primary_outputs:
                assert a[po] == b[po]

    def test_written_text_contains_declarations(self):
        text = write_bench(c17())
        assert "INPUT(G1)" in text
        assert "OUTPUT(G23)" in text
        assert "G10 = NAND(G1, G3)" in text
