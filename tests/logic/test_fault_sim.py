"""Logic-level fault-simulation tests."""

import numpy as np
import pytest

from repro.logic import (DefectCalibration, GateTiming, c17,
                         characterize_path_for_test,
                         minimum_detectable_resistance,
                         path_model_from_netlist, run_pulse_test,
                         sensitize_path)

UNIFORM = GateTiming(table={}, default=(100e-12, 100e-12))


def synthetic_calibration():
    """A hand-made monotone R -> defect table."""
    r = [1e3, 4e3, 16e3, 64e3]
    rise = [5e-12, 20e-12, 80e-12, 320e-12]
    fall = [4e-12, 16e-12, 64e-12, 256e-12]
    theta = [3e-12, 12e-12, 48e-12, 192e-12]
    return DefectCalibration(r, rise, fall, theta, "external")


class TestDefectCalibration:
    def test_interpolation(self):
        cal = synthetic_calibration()
        defect = cal.defect_for("n1", 8e3)
        assert 20e-12 < defect.extra_rise < 80e-12
        assert cal.theta_shift_for(4e3) == pytest.approx(12e-12)

    def test_clamps_outside_range(self):
        cal = synthetic_calibration()
        assert cal.theta_shift_for(1.0) == pytest.approx(3e-12)
        assert cal.theta_shift_for(1e9) == pytest.approx(192e-12)

    def test_apply_to_path_model_raises_theta(self):
        cal = synthetic_calibration()
        n = c17()
        model = path_model_from_netlist(n, ["G1", "G10", "G22"], UNIFORM)
        faulted = cal.apply_to_path_model(model, 0, 64e3)
        assert faulted.gate_models[0].theta == pytest.approx(
            model.gate_models[0].theta + 192e-12)
        # untouched gate unchanged
        assert faulted.gate_models[1].theta == pytest.approx(
            model.gate_models[1].theta)

    def test_apply_rejects_bad_index(self):
        cal = synthetic_calibration()
        n = c17()
        model = path_model_from_netlist(n, ["G1", "G10", "G22"], UNIFORM)
        with pytest.raises(ValueError):
            cal.apply_to_path_model(model, 5, 1e3)

    def test_alignment_enforced(self):
        with pytest.raises(ValueError):
            DefectCalibration([1e3, 2e3], [0.0], [0.0, 0.0], [0.0, 0.0],
                              "external")

    def test_monotone_resistances_enforced(self):
        with pytest.raises(ValueError):
            DefectCalibration([2e3, 1e3], [0, 0], [0, 0], [0, 0],
                              "external")


class TestRunPulseTest:
    def vector(self, netlist, path):
        return sensitize_path(netlist, path).vector(netlist)

    def test_healthy_pulse_observed(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        result = run_pulse_test(n, path, self.vector(n, path), 300e-12,
                                timing=UNIFORM)
        assert result.observed_width == pytest.approx(300e-12)
        assert not result.detected(omega_th=200e-12)

    def test_narrow_pulse_dampened(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        result = run_pulse_test(n, path, self.vector(n, path), 60e-12,
                                timing=UNIFORM)
        assert result.observed_width == 0.0
        assert result.detected(omega_th=200e-12)

    def test_defect_changes_width(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        vector = self.vector(n, path)
        cal = synthetic_calibration()
        healthy = run_pulse_test(n, path, vector, 300e-12, timing=UNIFORM)
        faulty = run_pulse_test(n, path, vector, 300e-12, timing=UNIFORM,
                                defect=cal.defect_for("G10", 64e3))
        assert faulty.observed_width != pytest.approx(
            healthy.observed_width)

    def test_rejects_non_pi_start(self):
        n = c17()
        with pytest.raises(ValueError):
            run_pulse_test(n, ["G10", "G22"], {"G10": 0}, 300e-12)


class TestCharacterizePath:
    def test_c17_characterization(self):
        n = c17()
        info = characterize_path_for_test(n, ["G1", "G10", "G22"],
                                          timing=UNIFORM)
        assert info is not None
        assert info["omega_in"] > 0.0
        assert info["omega_th"] > 0.0
        assert info["parity"] == 0
        assert set(info["vector"]) == set(n.primary_inputs)

    def test_unsensitizable_returns_none(self):
        from repro.logic.netlist import LogicNetlist
        n = LogicNetlist()
        for pi in ("a", "s"):
            n.add_input(pi)
        n.add_gate("not", ["s"], "g1")
        n.add_gate("nand", ["a", "s"], "y")
        n.add_gate("nand", ["y", "g1"], "z")
        n.add_output("z")
        assert characterize_path_for_test(n, ["a", "y", "z"],
                                          timing=UNIFORM) is None

    def test_omega_in_propagates_at_logic_level(self):
        n = c17()
        info = characterize_path_for_test(n, ["G1", "G10", "G22"],
                                          timing=UNIFORM)
        result = run_pulse_test(n, info["path"], info["vector"],
                                info["omega_in"], timing=UNIFORM)
        assert result.observed_width > 0.0


class TestMinimumDetectableResistance:
    def test_monotone_in_threshold(self):
        """A tighter omega_th (higher) detects smaller R."""
        n = c17()
        model = path_model_from_netlist(n, ["G1", "G10", "G22"], UNIFORM)
        cal = synthetic_calibration()
        omega_in = model.region3_onset() + 20e-12
        w_healthy = model.transfer(omega_in)
        r_loose = minimum_detectable_resistance(
            model, 0, cal, omega_in, 0.7 * w_healthy)
        r_tight = minimum_detectable_resistance(
            model, 0, cal, omega_in, 0.97 * w_healthy)
        assert r_tight is not None
        assert r_loose is None or r_tight <= r_loose

    def test_none_when_undetectable(self):
        n = c17()
        model = path_model_from_netlist(n, ["G1", "G10", "G22"], UNIFORM)
        cal = DefectCalibration([1e3, 2e3], [0, 0], [0, 0], [0, 0],
                                "external")  # defect does nothing
        omega_in = model.region3_onset() + 20e-12
        assert minimum_detectable_resistance(
            model, 0, cal, omega_in, 1e-12) is None

    def test_detection_at_returned_r(self):
        n = c17()
        model = path_model_from_netlist(n, ["G1", "G10", "G22"], UNIFORM)
        cal = synthetic_calibration()
        omega_in = model.region3_onset() + 20e-12
        omega_th = 0.95 * model.transfer(omega_in)
        r_min = minimum_detectable_resistance(model, 0, cal, omega_in,
                                              omega_th)
        assert r_min is not None
        faulted = cal.apply_to_path_model(model, 0, r_min)
        assert faulted.transfer(omega_in) < omega_th
