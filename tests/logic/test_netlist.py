"""Gate-level netlist tests."""

import pytest

from repro.logic import Gate, LogicNetlist, c17


class TestGate:
    @pytest.mark.parametrize("kind,ins,expected", [
        ("and", (1, 1), 1), ("and", (1, 0), 0),
        ("nand", (1, 1), 0), ("nand", (0, 1), 1),
        ("or", (0, 0), 0), ("or", (0, 1), 1),
        ("nor", (0, 0), 1), ("nor", (1, 0), 0),
        ("xor", (1, 1), 0), ("xor", (1, 0), 1),
        ("xnor", (1, 1), 1), ("xnor", (1, 0), 0),
    ])
    def test_two_input_truth(self, kind, ins, expected):
        g = Gate("g", kind, ["a", "b"], "y")
        assert g.evaluate(ins) == expected

    def test_not_and_buf(self):
        assert Gate("g", "not", ["a"], "y").evaluate([0]) == 1
        assert Gate("g", "buf", ["a"], "y").evaluate([1]) == 1

    def test_three_input_nand(self):
        g = Gate("g", "nand", ["a", "b", "c"], "y")
        assert g.evaluate([1, 1, 1]) == 0
        assert g.evaluate([1, 0, 1]) == 1

    def test_controlling_values(self):
        assert Gate("g", "nand", ["a", "b"], "y").controlling_value == 0
        assert Gate("g", "nor", ["a", "b"], "y").controlling_value == 1
        assert Gate("g", "xor", ["a", "b"], "y").controlling_value is None

    def test_noncontrolling_values(self):
        assert Gate("g", "nand", ["a", "b"], "y").noncontrolling_value == 1
        assert Gate("g", "nor", ["a", "b"], "y").noncontrolling_value == 0

    def test_evaluate3_controlling_dominates_x(self):
        g = Gate("g", "nand", ["a", "b"], "y")
        assert g.evaluate3([0, None]) == 1
        assert g.evaluate3([1, None]) is None

    def test_evaluate3_or(self):
        g = Gate("g", "or", ["a", "b"], "y")
        assert g.evaluate3([1, None]) == 1
        assert g.evaluate3([0, None]) is None
        assert g.evaluate3([0, 0]) == 0

    def test_evaluate3_xor_needs_all(self):
        g = Gate("g", "xor", ["a", "b"], "y")
        assert g.evaluate3([1, None]) is None
        assert g.evaluate3([1, 0]) == 1

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            Gate("g", "majority", ["a", "b"], "y")

    def test_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            Gate("g", "not", ["a", "b"], "y")
        with pytest.raises(ValueError):
            Gate("g", "nand", ["a"], "y")


class TestNetlistConstruction:
    def test_duplicate_driver_rejected(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("nand", ["a", "b"], "y")
        with pytest.raises(ValueError):
            n.add_gate("nor", ["a", "b"], "y")

    def test_driving_an_input_rejected(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_input("b")
        with pytest.raises(ValueError):
            n.add_gate("not", ["b"], "a")

    def test_duplicate_input_rejected(self):
        n = LogicNetlist()
        n.add_input("a")
        with pytest.raises(ValueError):
            n.add_input("a")

    def test_validate_catches_undriven_read(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_gate("not", ["ghost"], "y")
        with pytest.raises(ValueError):
            n.validate()

    def test_validate_catches_bogus_output(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_output("nowhere")
        with pytest.raises(ValueError):
            n.validate()

    def test_replace_gate_input(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_input("b")
        n.add_input("c")
        n.add_gate("nand", ["a", "b"], "y")
        n.replace_gate_input("y", "b", "c")
        assert n.gate_driving("y").inputs == ("a", "c")

    def test_replace_gate_input_rejects_missing(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_input("b")
        n.add_gate("nand", ["a", "b"], "y")
        with pytest.raises(ValueError):
            n.replace_gate_input("y", "zzz", "a")


class TestC17:
    def test_structure(self):
        n = c17()
        assert len(n.primary_inputs) == 5
        assert len(n.primary_outputs) == 2
        assert n.n_gates == 6
        assert n.depth() == 3

    @pytest.mark.parametrize("vector,g22,g23", [
        ({"G1": 0, "G2": 0, "G3": 0, "G6": 0, "G7": 0}, 0, 0),
        ({"G1": 1, "G2": 1, "G3": 1, "G6": 1, "G7": 1}, 1, 0),
        ({"G1": 0, "G2": 1, "G3": 1, "G6": 0, "G7": 0}, 1, 1),
        ({"G1": 1, "G2": 0, "G3": 0, "G6": 1, "G7": 1}, 0, 1),
    ])
    def test_known_vectors(self, vector, g22, g23):
        values = c17().evaluate(vector)
        assert values["G22"] == g22
        assert values["G23"] == g23

    def test_evaluate3_partial(self):
        n = c17()
        values = n.evaluate3({"G3": 0})  # G10 = NAND(G1,0) = 1, G11 = 1
        assert values["G10"] == 1
        assert values["G11"] == 1
        assert values["G22"] is None

    def test_fanout_map(self):
        n = c17()
        fanout = n.fanout_map()
        assert len(fanout["G11"]) == 2  # feeds G16 and G19
        assert fanout["G22"] == []

    def test_topological_order_respects_dependencies(self):
        n = c17()
        order = n.topological_nets()
        assert order.index("G10") < order.index("G22")
        assert order.index("G16") < order.index("G23")


class TestLoopsAndDepth:
    def test_combinational_loop_detected(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_gate("nand", ["a", "q2"], "q1")
        n.add_gate("nand", ["a", "q1"], "q2")
        with pytest.raises(ValueError):
            n.topological_nets()

    def test_depth_of_chain(self):
        n = LogicNetlist()
        n.add_input("a")
        prev = "a"
        for i in range(5):
            n.add_gate("not", [prev], "n{}".format(i))
            prev = "n{}".format(i)
        n.add_output(prev)
        assert n.depth() == 5
