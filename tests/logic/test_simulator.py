"""Event-driven timing simulator tests, centred on inertial filtering."""

import pytest

from repro.logic import (GateTiming, LogicNetlist, NetDelayDefect,
                         TimingSimulator, c17)


def inverter_chain(n=4):
    netlist = LogicNetlist("chain")
    netlist.add_input("a")
    prev = "a"
    for i in range(n):
        netlist.add_gate("not", [prev], "n{}".format(i))
        prev = "n{}".format(i)
    netlist.add_output(prev)
    return netlist


def pulse_events(net, t0, width, idle=0):
    return [(t0, net, 1 - idle), (t0 + width, net, idle)]


UNIFORM = GateTiming(table={}, default=(100e-12, 100e-12))


class TestBasicPropagation:
    def test_transition_propagates_with_delay(self):
        n = inverter_chain(3)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=[(1e-9, "a", 1)], t_end=3e-9)
        # output after 3 gate delays
        assert trace.transition_times("n2") == [pytest.approx(1.3e-9)]
        assert trace.final_value("n2") == 0  # NOT^3(1)

    def test_logic_values_correct(self):
        n = inverter_chain(2)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=[(1e-9, "a", 1)], t_end=3e-9)
        assert trace.final_value("n0") == 0
        assert trace.final_value("n1") == 1

    def test_no_events_without_stimulus(self):
        n = inverter_chain(2)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=[], t_end=3e-9)
        assert trace.transition_times("n1") == []

    def test_stimulus_on_internal_net_rejected(self):
        n = inverter_chain(2)
        sim = TimingSimulator(n, timing=UNIFORM)
        with pytest.raises(ValueError):
            sim.run({"a": 0}, events=[(1e-9, "n0", 1)])


class TestInertialFiltering:
    def test_wide_pulse_survives(self):
        n = inverter_chain(4)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 300e-12),
                        t_end=5e-9)
        assert trace.widest_pulse("n3") == pytest.approx(300e-12)

    def test_narrow_pulse_swallowed(self):
        n = inverter_chain(4)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 60e-12),
                        t_end=5e-9)
        assert trace.widest_pulse("n3") == 0.0
        assert trace.transition_times("n3") == []

    def test_asymmetric_delays_shrink_one_polarity(self):
        """tp_lh > tp_hl shrinks high-going output pulses by the
        imbalance per gate (the logic-level dampening mechanism)."""
        timing = GateTiming(table={"not": (140e-12, 100e-12)})
        n = inverter_chain(2)
        sim = TimingSimulator(n, timing=timing)
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 300e-12),
                        t_end=5e-9)
        # a pulses high; n0 pulses low (falls fast, rises slow -> widens?
        # fall at t+100, rise at t+300+140 -> low pulse width 340)
        assert trace.widest_pulse("n0") == pytest.approx(340e-12)
        # n1 pulses high: rise slow, fall fast -> width 340 - 40 = 300
        assert trace.widest_pulse("n1") == pytest.approx(300e-12)

    def test_pulse_narrower_than_imbalanced_delay_dies_mid_chain(self):
        timing = GateTiming(table={"not": (250e-12, 100e-12)})
        n = inverter_chain(4)
        sim = TimingSimulator(n, timing=timing)
        # 180ps pulse: n0 widens to 330 (low pulse), n1 high pulse needs
        # rise then fall: fall preempts unmatured rise? rise delay 250,
        # second edge 330 later -> survives at n1 (330>250). It shrinks
        # back to 180 at n1, then n2 low pulse = 330...
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 120e-12),
                        t_end=5e-9)
        # 120ps high pulse at 'a': n0 must fall (tp=100) then rise
        # (tp=250): second edge scheduled at 1.12+0.25=1.37, first at
        # 1.10 -> both mature: low pulse 270ps at n0. At n1: rise
        # tp=250 at 1.35+0.25=1.6... wait n0 falls at 1.10 -> n1 rise at
        # 1.35; n0 rises at 1.37 -> n1 fall at 1.47: pulse 120ps again.
        assert trace.widest_pulse("n0") == pytest.approx(270e-12)
        assert trace.widest_pulse("n1") == pytest.approx(120e-12)


class TestDefects:
    def test_defect_delays_edge(self):
        n = inverter_chain(2)
        defect = NetDelayDefect("n0", extra_rise=0.0, extra_fall=200e-12)
        sim = TimingSimulator(n, timing=UNIFORM, defect=defect)
        trace = sim.run({"a": 0}, events=[(1e-9, "a", 1)], t_end=4e-9)
        # a rises -> n0 falls with +200ps defect -> at 1.3e-9
        assert trace.transition_times("n0") == [pytest.approx(1.3e-9)]

    def test_defect_shrinks_pulse_of_matching_polarity(self):
        n = inverter_chain(2)
        defect = NetDelayDefect("n0", extra_rise=150e-12, extra_fall=0.0)
        sim = TimingSimulator(n, timing=UNIFORM, defect=defect)
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 400e-12),
                        t_end=5e-9)
        # n0 low pulse: falls on time, rises late -> widens to 550;
        # n1 high pulse: tracks n0 low pulse -> 550
        assert trace.widest_pulse("n0") == pytest.approx(550e-12)

    def test_defect_kills_marginal_pulse(self):
        n = inverter_chain(3)
        # extra fall delay shrinks the low excursion at n0
        defect = NetDelayDefect("n0", extra_rise=0.0, extra_fall=350e-12)
        sim = TimingSimulator(n, timing=UNIFORM, defect=defect)
        trace = sim.run({"a": 0}, events=pulse_events("a", 1e-9, 300e-12),
                        t_end=5e-9)
        # n0: fall at 1.0+0.45, rise scheduled at 1.3+0.1=1.4 < 1.45:
        # the rise preempts the unmatured fall -> no pulse at all
        assert trace.widest_pulse("n0") == 0.0
        assert trace.widest_pulse("n2") == 0.0

    def test_negative_defect_rejected(self):
        with pytest.raises(ValueError):
            NetDelayDefect("x", extra_rise=-1e-12)


class TestReconvergence:
    def test_c17_static_hazard_filtered_or_benign(self):
        """Event-driven run on c17 settles to the zero-delay value."""
        n = c17()
        sim = TimingSimulator(n, timing=UNIFORM)
        start = {"G1": 1, "G2": 1, "G3": 0, "G6": 1, "G7": 1}
        end = dict(start, G3=1)
        trace = sim.run(start, events=[(1e-9, "G3", 1)], t_end=6e-9)
        expected = n.evaluate(end)
        for po in n.primary_outputs:
            assert trace.final_value(po) == expected[po]

    def test_trace_value_at(self):
        n = inverter_chain(1)
        sim = TimingSimulator(n, timing=UNIFORM)
        trace = sim.run({"a": 0}, events=[(1e-9, "a", 1)], t_end=3e-9)
        assert trace.value_at("n0", 0.5e-9) == 1
        assert trace.value_at("n0", 2.0e-9) == 0


class TestGateTiming:
    def test_table_lookup(self):
        t = GateTiming()
        from repro.logic import Gate
        g = Gate("g", "nand", ["a", "b"], "y")
        tp_lh, tp_hl = t.delays(g)
        assert tp_lh == pytest.approx(85e-12)
        assert tp_hl == pytest.approx(70e-12)

    def test_default_for_unknown_kind(self):
        t = GateTiming(table={}, default=(1e-12, 2e-12))
        from repro.logic import Gate
        g = Gate("g", "xor", ["a", "b"], "y")
        assert t.delays(g) == (1e-12, 2e-12)

    def test_sample_perturbs_deterministically(self):
        from repro.logic import Gate
        from repro.montecarlo import VariationModel
        g = Gate("g", "nand", ["a", "b"], "y")
        t1 = GateTiming(sample=VariationModel(seed=3))
        t2 = GateTiming(sample=VariationModel(seed=3))
        assert t1.delays(g) == t2.delays(g)
        t3 = GateTiming(sample=VariationModel(seed=4))
        assert t1.delays(g) != t3.delays(g)
