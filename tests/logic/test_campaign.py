"""Full-circuit campaign tests (synthetic defect calibration: fast)."""

import pytest

from repro.logic import (CampaignResult, DefectCalibration,
                         FaultSiteResult, c17, evaluate_fault_site,
                         generate_random_circuit, run_campaign)
from repro.logic.campaign import NO_PATH, TESTED, UNSENSITIZABLE
from repro.montecarlo import sample_population


@pytest.fixture(scope="module")
def calibration():
    """Synthetic, monotone R -> defect map (no electrical sims)."""
    r = [500.0, 2e3, 8e3, 32e3, 128e3]
    rise = [2e-12, 8e-12, 32e-12, 128e-12, 512e-12]
    fall = [2e-12, 8e-12, 32e-12, 128e-12, 512e-12]
    theta = [1e-12, 5e-12, 20e-12, 80e-12, 320e-12]
    return DefectCalibration(r, rise, fall, theta, "external")


@pytest.fixture(scope="module")
def samples():
    return sample_population(3, base_seed=9)


class TestEvaluateFaultSite:
    def test_c17_site_tested(self, calibration, samples):
        result = evaluate_fault_site(c17(), "G10", calibration,
                                     samples=samples)
        assert result.tested
        assert result.path[0] in c17().primary_inputs
        assert result.path[-1] in c17().primary_outputs
        assert "G10" in result.path
        assert result.omega_in > 0
        assert result.omega_th > 0
        assert result.r_min is not None

    def test_vector_sensitizes(self, calibration, samples):
        n = c17()
        result = evaluate_fault_site(n, "G16", calibration,
                                     samples=samples)
        assert result.tested
        from repro.logic.atpg import side_input_objectives
        values = n.evaluate(result.vector)
        for net, want in side_input_objectives(n, result.path).items():
            assert values[net] == want

    def test_r_min_positive_and_in_range(self, calibration, samples):
        result = evaluate_fault_site(c17(), "G11", calibration,
                                     samples=samples)
        assert calibration.resistances[0] <= result.r_min <= (
            calibration.resistances[-1])


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def c17_campaign(self, calibration, samples):
        return run_campaign(c17(), calibration, samples=samples)

    def test_every_gate_site_visited(self, c17_campaign):
        assert len(c17_campaign.sites) == 6  # c17 gate outputs

    def test_c17_fully_testable(self, c17_campaign):
        assert c17_campaign.test_generation_rate() == 1.0

    def test_coverage_monotone_in_r(self, c17_campaign, calibration):
        grid = calibration.resistances
        values = [c17_campaign.coverage_at(r) for r in grid]
        assert all(b >= a for a, b in zip(values, values[1:]))
        assert values[-1] == 1.0

    def test_summary_fields(self, c17_campaign):
        summary = c17_campaign.summary()
        assert summary["n_sites"] == 6
        assert summary["statuses"][TESTED] == 6
        assert summary["best_r_min"] <= summary["median_r_min"]

    def test_site_limit_and_stride(self, calibration, samples):
        n = generate_random_circuit(10, 3, 40, seed=2)
        result = run_campaign(n, calibration, samples=samples,
                              site_limit=8, site_stride=2)
        assert len(result.sites) == 8

    def test_statuses_partition(self, calibration, samples):
        n = generate_random_circuit(10, 3, 40, seed=2)
        result = run_campaign(n, calibration, samples=samples,
                              site_limit=15)
        assert all(s.status in (TESTED, NO_PATH, UNSENSITIZABLE,
                                "undetectable")
                   for s in result.sites)

    def test_empty_coverage_rejected(self, calibration):
        result = CampaignResult("x", [], calibration)
        with pytest.raises(ValueError):
            result.coverage_at(1e3)
