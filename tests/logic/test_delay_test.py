"""Logic-level DF-testing (STA + calibration) tests."""

import pytest

from repro.dft import FlipFlopTiming, DelayFaultTest
from repro.logic import (DefectCalibration, GateTiming, arrival_times,
                         calibrate_logic_delay_test, critical_delay,
                         df_best_r_min_for_site,
                         df_minimum_detectable_resistance, edge_at_net,
                         path_delay, slack_of_path, c17)
from repro.logic.netlist import LogicNetlist
from repro.montecarlo import sample_population

UNIFORM = GateTiming(table={}, default=(100e-12, 100e-12))
ASYM = GateTiming(table={"not": (140e-12, 90e-12),
                         "nand": (120e-12, 80e-12)})


def chain(n=4):
    netlist = LogicNetlist("chain")
    netlist.add_input("a")
    prev = "a"
    for i in range(n):
        netlist.add_gate("not", [prev], "n{}".format(i))
        prev = "n{}".format(i)
    netlist.add_output(prev)
    return netlist


class TestArrivalTimes:
    def test_chain_arrivals_accumulate(self):
        arrivals = arrival_times(chain(3), UNIFORM)
        assert arrivals["n2"] == (pytest.approx(300e-12),
                                  pytest.approx(300e-12))

    def test_asymmetric_edges_tracked(self):
        arrivals = arrival_times(chain(2), ASYM)
        # n0 rise comes from a fall: 140; n0 fall from a rise: 90
        assert arrivals["n0"] == (pytest.approx(140e-12),
                                  pytest.approx(90e-12))
        # n1 rise from n0 fall: 90 + 140 = 230
        assert arrivals["n1"][0] == pytest.approx(230e-12)

    def test_c17_critical_delay(self):
        # c17 depth 3, uniform 100ps gates
        assert critical_delay(c17(), UNIFORM) == pytest.approx(300e-12)

    def test_critical_is_max_over_outputs(self):
        n = chain(5)
        assert critical_delay(n, UNIFORM) == pytest.approx(500e-12)


class TestPathDelay:
    def test_uniform_chain(self):
        n = chain(4)
        path = ["a", "n0", "n1", "n2", "n3"]
        assert path_delay(n, path, UNIFORM) == pytest.approx(400e-12)

    def test_edge_polarity_affects_delay(self):
        n = chain(2)
        path = ["a", "n0", "n1"]
        d_rise = path_delay(n, path, ASYM, launch_direction="rise")
        d_fall = path_delay(n, path, ASYM, launch_direction="fall")
        # rise launch: n0 falls (90), n1 rises (140) = 230
        assert d_rise == pytest.approx(230e-12)
        # fall launch: n0 rises (140), n1 falls (90) = 230 (symmetric
        # here because the chain has even length)
        assert d_fall == pytest.approx(230e-12)

    def test_edge_at_net(self):
        n = chain(3)
        path = ["a", "n0", "n1", "n2"]
        assert edge_at_net(n, path, "a") == "rise"
        assert edge_at_net(n, path, "n0") == "fall"
        assert edge_at_net(n, path, "n1") == "rise"

    def test_edge_at_net_missing_raises(self):
        n = chain(2)
        with pytest.raises(ValueError):
            edge_at_net(n, ["a", "n0", "n1"], "zzz")

    def test_bad_direction_rejected(self):
        n = chain(2)
        with pytest.raises(ValueError):
            path_delay(n, ["a", "n0"], UNIFORM, launch_direction="up")


class TestCalibration:
    def test_t_star_covers_critical_path(self):
        samples = sample_population(4, base_seed=3)
        test = calibrate_logic_delay_test(c17(), samples,
                                          base_timing=UNIFORM)
        assert test.t_star > critical_delay(c17(), UNIFORM)

    def test_no_false_positive_by_construction(self):
        samples = sample_population(4, base_seed=3)
        test = calibrate_logic_delay_test(c17(), samples,
                                          base_timing=UNIFORM)
        for sample in samples:
            timing = GateTiming(table={}, default=(100e-12, 100e-12),
                                sample=sample)
            d = critical_delay(c17(), timing)
            assert not test.detects(d, sample=sample, t_factor=0.9)


class TestDfRmin:
    def calibration(self):
        r = [1e3, 10e3, 100e3]
        extra = [10e-12, 100e-12, 1000e-12]
        return DefectCalibration(r, extra, extra, [0, 0, 0], "external")

    def test_short_path_escapes(self):
        """A short path under a long T' has slack the table cannot
        cover."""
        n = chain(2)
        test = DelayFaultTest(1.5e-9, FlipFlopTiming(0, 0))
        r_min = df_minimum_detectable_resistance(
            n, ["a", "n0", "n1"], "n0", self.calibration(), test,
            timing=UNIFORM)
        assert r_min is None  # slack 1.3ns > max extra 1ns

    def test_critical_path_detects(self):
        n = chain(9)
        path = ["a"] + ["n{}".format(i) for i in range(9)]
        test = DelayFaultTest(1.0e-9, FlipFlopTiming(0, 0))
        # slack = 1.0 - 0.9 = 100ps -> needs R = 10k
        r_min = df_minimum_detectable_resistance(
            n, path, "n0", self.calibration(), test, timing=UNIFORM)
        assert r_min == pytest.approx(10e3, rel=0.05)

    def test_zero_slack_detects_at_floor(self):
        n = chain(9)
        path = ["a"] + ["n{}".format(i) for i in range(9)]
        test = DelayFaultTest(0.85e-9, FlipFlopTiming(0, 0))
        r_min = df_minimum_detectable_resistance(
            n, path, "n0", self.calibration(), test, timing=UNIFORM)
        assert r_min == pytest.approx(1e3)

    def test_slack_of_path(self):
        n = chain(4)
        test = DelayFaultTest(1.0e-9, FlipFlopTiming(50e-12, 50e-12))
        slack = slack_of_path(n, ["a", "n0", "n1", "n2", "n3"], test,
                              timing=UNIFORM)
        assert slack == pytest.approx(0.5e-9)

    def test_best_site_uses_longest_path(self):
        test = DelayFaultTest(0.5e-9, FlipFlopTiming(0, 0))
        r_min, path = df_best_r_min_for_site(
            c17(), "G11", self.calibration(), test, timing=UNIFORM)
        assert path is not None
        # G11's longest PI->PO routes have 3 gates (300ps): slack 200ps
        assert r_min == pytest.approx(20e3, rel=0.1)
