"""Analytic pulse-model tests."""

import pytest

from repro.logic import (GatePulseModel, PathPulseModel, GateTiming,
                         calibrate_gate_model, model_for_gate,
                         path_model_from_netlist, c17)
from repro.logic.netlist import Gate


class TestGatePulseModel:
    def model(self):
        return GatePulseModel(theta=100e-12, span=60e-12, delta=20e-12)

    def test_region1_dampens(self):
        m = self.model()
        assert m.transfer(50e-12) == 0.0
        assert m.transfer(100e-12) == 0.0

    def test_region3_linear_minus_delta(self):
        m = self.model()
        assert m.transfer(300e-12) == pytest.approx(280e-12)
        assert m.transfer(500e-12) == pytest.approx(480e-12)

    def test_region2_between(self):
        m = self.model()
        w = m.transfer(130e-12)  # halfway through the span
        assert 0.0 < w < 130e-12

    def test_transfer_continuous_at_region_boundaries(self):
        m = self.model()
        eps = 1e-15
        assert m.transfer(100e-12 + eps) == pytest.approx(0.0, abs=1e-13)
        start = m.asymptote_start()
        assert m.transfer(start - eps) == pytest.approx(
            m.transfer(start + eps), abs=1e-13)

    def test_transfer_monotone(self):
        m = self.model()
        widths = [m.transfer(w * 1e-12) for w in range(0, 500, 10)]
        assert all(b >= a for a, b in zip(widths, widths[1:]))

    def test_required_input_inverts_transfer(self):
        m = self.model()
        for target in (10e-12, 50e-12, 200e-12):
            w_in = m.required_input(target)
            assert m.transfer(w_in) == pytest.approx(target, rel=1e-9)

    def test_required_input_of_zero_is_theta(self):
        assert self.model().required_input(0.0) == pytest.approx(100e-12)

    def test_from_delays(self):
        m = GatePulseModel.from_delays(140e-12, 100e-12)
        assert m.theta == pytest.approx(140e-12)
        assert m.delta == pytest.approx(40e-12)

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            GatePulseModel(theta=-1e-12, span=1e-12)
        with pytest.raises(ValueError):
            GatePulseModel(theta=1e-12, span=0.0)


class TestPathPulseModel:
    def chain(self, n=5):
        return PathPulseModel([
            GatePulseModel(theta=100e-12, span=60e-12, delta=10e-12)
            for _ in range(n)])

    def test_narrow_pulse_dies(self):
        assert self.chain().transfer(120e-12) == 0.0

    def test_wide_pulse_loses_total_delta(self):
        m = self.chain(5)
        assert m.transfer(600e-12) == pytest.approx(550e-12)

    def test_minimum_propagatable_survives(self):
        m = self.chain()
        w_min = m.minimum_propagatable()
        assert m.transfer(w_min) > 0.0
        assert m.transfer(w_min * 0.9) == 0.0

    def test_region3_onset_in_asymptote(self):
        m = self.chain()
        onset = m.region3_onset()
        # past the onset the slope is exactly 1
        assert (m.transfer(onset + 100e-12) - m.transfer(onset)
                ) == pytest.approx(100e-12, rel=1e-6)

    def test_longer_path_needs_wider_pulse(self):
        assert (self.chain(7).minimum_propagatable()
                > self.chain(3).minimum_propagatable())

    def test_curve_vectorised(self):
        m = self.chain(2)
        values = m.curve([0.0, 200e-12, 400e-12])
        assert values[0] == 0.0
        assert values[2] > values[1] >= 0.0

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PathPulseModel([])


class TestNetlistDerivation:
    def test_model_for_gate_uses_timing(self):
        g = Gate("g", "nand", ["a", "b"], "y")
        m = model_for_gate(g, GateTiming())
        assert m.theta == pytest.approx(85e-12)  # slower of (85, 70)
        assert m.delta == pytest.approx(15e-12)

    def test_path_model_from_netlist(self):
        n = c17()
        m = path_model_from_netlist(n, ["G1", "G10", "G22"], GateTiming())
        assert len(m.gate_models) == 2

    def test_path_model_rejects_undriven_net(self):
        n = c17()
        with pytest.raises(ValueError):
            path_model_from_netlist(n, ["G1", "G3"], GateTiming())


class TestElectricalCalibration:
    """One electrical calibration run, reused for several assertions."""

    @pytest.fixture(scope="class")
    def inv_model(self):
        return calibrate_gate_model("inv", dt=5e-12)

    def test_threshold_positive_and_sub_ns(self, inv_model):
        assert 10e-12 < inv_model.theta < 500e-12

    def test_span_positive(self, inv_model):
        assert inv_model.span > 0.0

    def test_transfer_behaves(self, inv_model):
        assert inv_model.transfer(inv_model.theta / 2) == 0.0
        wide = inv_model.asymptote_start() + 200e-12
        assert inv_model.transfer(wide) > 0.0
