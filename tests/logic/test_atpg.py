"""Path-sensitization ATPG tests."""

import itertools

import pytest

from repro.logic import (c17, find_sensitizable_path, generate_random_circuit,
                         paths_through, sensitize_path,
                         side_input_objectives)
from repro.logic.netlist import LogicNetlist


class TestObjectives:
    def test_c17_path_objectives(self):
        n = c17()
        obj = side_input_objectives(n, ["G1", "G10", "G22"])
        # G10 = NAND(G1, G3): side G3 must be 1;
        # G22 = NAND(G10, G16): side G16 must be 1
        assert obj == {"G3": 1, "G16": 1}

    def test_nor_side_requires_zero(self):
        n = LogicNetlist()
        for pi in ("a", "b"):
            n.add_input(pi)
        n.add_gate("nor", ["a", "b"], "y")
        n.add_output("y")
        assert side_input_objectives(n, ["a", "y"]) == {"b": 0}

    def test_xor_imposes_no_objective(self):
        n = LogicNetlist()
        for pi in ("a", "b"):
            n.add_input(pi)
        n.add_gate("xor", ["a", "b"], "y")
        n.add_output("y")
        assert side_input_objectives(n, ["a", "y"]) == {}

    def test_side_input_on_path_rejected(self):
        n = LogicNetlist()
        n.add_input("a")
        n.add_gate("not", ["a"], "na")
        n.add_gate("nand", ["a", "na"], "y")  # 'a' is both on-path & side
        n.add_output("y")
        with pytest.raises(ValueError):
            side_input_objectives(n, ["a", "na", "y"])


class TestSensitizePath:
    def test_c17_path_vector_is_valid(self):
        n = c17()
        path = ["G1", "G10", "G22"]
        result = sensitize_path(n, path)
        assert result is not None
        values = n.evaluate(result.vector(n))
        assert values["G3"] == 1
        assert values["G16"] == 1

    def test_every_c17_path_sensitizable(self):
        n = c17()
        for net in ("G10", "G11", "G16", "G19"):
            for path in paths_through(n, net):
                result = sensitize_path(n, path)
                assert result is not None, path

    def test_unsensitizable_conflict_detected(self):
        # y = NAND(a, b); z = NAND(y, b). Path b->y->z requires side 'a'=1
        # and side... build a genuinely conflicting structure:
        # g1 = NOT(s); y = NAND(a, s); z = NAND(y, g1)
        # path a->y->z needs s=1 (side of y) and g1=1 i.e. s=0: conflict.
        n = LogicNetlist()
        for pi in ("a", "s"):
            n.add_input(pi)
        n.add_gate("not", ["s"], "g1")
        n.add_gate("nand", ["a", "s"], "y")
        n.add_gate("nand", ["y", "g1"], "z")
        n.add_output("z")
        assert sensitize_path(n, ["a", "y", "z"]) is None

    def test_extra_objectives_respected(self):
        n = c17()
        result = sensitize_path(n, ["G1", "G10", "G22"],
                                extra_objectives={"G19": 1})
        assert result is not None
        assert n.evaluate(result.vector(n))["G19"] == 1

    def test_contradictory_extra_objective(self):
        n = c17()
        # G3 must be 1 for the path; demanding G3=0 is impossible
        result = sensitize_path(n, ["G1", "G10", "G22"],
                                extra_objectives={"G3": 0})
        assert result is None

    def test_vector_fills_dont_cares(self):
        n = c17()
        result = sensitize_path(n, ["G1", "G10", "G22"])
        vector = result.vector(n)
        assert set(vector) == set(n.primary_inputs)


class TestAgainstBruteForce:
    """PODEM must agree with exhaustive search on small circuits."""

    @pytest.mark.parametrize("seed", range(5))
    def test_agreement(self, seed):
        n = generate_random_circuit(n_inputs=7, n_outputs=2, n_gates=16,
                                    seed=seed, target_depth=4)
        pis = n.primary_inputs
        checked = 0
        for net in n.topological_nets():
            if n.gate_driving(net) is None:
                continue
            for path in paths_through(n, net, max_paths=2):
                try:
                    obj = side_input_objectives(n, path)
                except ValueError:
                    continue
                podem = sensitize_path(n, path, max_backtracks=5000)
                brute = any(
                    all(n.evaluate(dict(zip(pis, bits)))[k] == v
                        for k, v in obj.items())
                    for bits in itertools.product((0, 1), repeat=len(pis)))
                assert (podem is not None) == brute, path
                checked += 1
                if checked >= 25:
                    return


class TestFindSensitizablePath:
    def test_finds_on_c17(self):
        n = c17()
        path, result = find_sensitizable_path(n, "G16")
        assert path is not None
        assert "G16" in path
        assert result.assignment is not None

    def test_none_when_impossible(self):
        n = LogicNetlist()
        for pi in ("a", "s"):
            n.add_input(pi)
        n.add_gate("not", ["s"], "g1")
        n.add_gate("nand", ["a", "s"], "y")
        n.add_gate("nand", ["y", "g1"], "z")
        n.add_output("z")
        # paths through 'y': a->y->z (conflict) and s->y->z (side 'a'
        # free, side g1 = NOT(s) must be 1 while s pulses... static
        # sensitization needs g1=1 -> s=0; side of y is a=1; so the
        # s-path IS sensitizable.
        path, result = find_sensitizable_path(n, "y")
        assert path == ["s", "y", "z"]
        assert result is not None
