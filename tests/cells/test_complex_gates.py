"""AOI21/OAI21 cell tests."""

import pytest

from repro.cells import build_path, default_technology
from repro.cells.library import build_aoi21, build_oai21
from repro.spice import Circuit, operating_point, run_transient

DT = 5e-12


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def gate_circuit(builder, tech, a, b, c):
    circuit = Circuit()
    circuit.add_vsource("VDD", "vdd", "0", tech.vdd)
    for pin, value in (("a", a), ("b", b), ("c", c)):
        circuit.add_vsource("V" + pin, pin, "0",
                            tech.vdd if value else 0.0)
    cell = builder(circuit, "u1", "a", "b", "c", "y", tech)
    return circuit, cell


class TestAoi21:
    @pytest.mark.parametrize("a,b,c", [(a, b, c) for a in (0, 1)
                                       for b in (0, 1) for c in (0, 1)])
    def test_truth_table(self, tech, a, b, c):
        circuit, _ = gate_circuit(build_aoi21, tech, a, b, c)
        expected = int(not ((a and b) or c))
        out = operating_point(circuit)["y"]
        assert out == pytest.approx(expected * tech.vdd, abs=0.05), (
            a, b, c)

    def test_structure(self, tech):
        circuit, cell = gate_circuit(build_aoi21, tech, 0, 0, 0)
        assert len(cell.nmos_names) == 3
        assert len(cell.pmos_names) == 3
        assert cell.side_ties == {"b": 1, "c": 0}
        assert len(cell.pullup_rail_devices) == 1
        assert len(cell.pulldown_rail_devices) == 2


class TestOai21:
    @pytest.mark.parametrize("a,b,c", [(a, b, c) for a in (0, 1)
                                       for b in (0, 1) for c in (0, 1)])
    def test_truth_table(self, tech, a, b, c):
        circuit, _ = gate_circuit(build_oai21, tech, a, b, c)
        expected = int(not ((a or b) and c))
        out = operating_point(circuit)["y"]
        assert out == pytest.approx(expected * tech.vdd, abs=0.05), (
            a, b, c)

    def test_structure(self, tech):
        circuit, cell = gate_circuit(build_oai21, tech, 0, 0, 0)
        assert cell.side_ties == {"b": 0, "c": 1}
        assert len(cell.pullup_rail_devices) == 2
        assert len(cell.pulldown_rail_devices) == 1


class TestComplexGateChains:
    def test_mixed_chain_statically_sensitized(self, tech):
        path = build_path(tech=tech,
                          gate_kinds=("inv", "aoi21", "oai21", "inv"))
        op = operating_point(path.circuit)
        vdd = tech.vdd
        for i in range(1, 5):
            expected = path.idle_level(i, 0) * vdd
            assert op["a{}".format(i)] == pytest.approx(
                expected, abs=0.05), "stage {}".format(i)

    def test_pulse_propagates_through_complex_chain(self, tech):
        path = build_path(
            tech=tech,
            gate_kinds=("inv", "aoi21", "oai21", "inv", "aoi21"))
        path.set_input_pulse(0.45e-9, kind="h")
        wf = run_transient(path.circuit, 4.5e-9, DT,
                           record=[path.output_node])
        polarity = "low" if path.idle_level(5, 0) else "high"
        w_out = wf.widest_pulse(path.output_node, tech.vdd_half,
                                polarity)
        assert w_out > 0.3e-9

    def test_internal_open_injectable_in_aoi(self, tech):
        from repro.faults import InternalOpen, PULL_UP, inject
        path = build_path(tech=tech,
                          gate_kinds=("inv", "aoi21", "inv", "inv"))
        faulty = inject(path, InternalOpen(2, PULL_UP, 8e3))
        assert "R_fault" in faulty.circuit
        # the pull-up rail of AOI21 is the series PMOS source
        mp = faulty.circuit.element("g2.MPc")
        assert mp.node("s") != "vdd"

    def test_narrow_pulse_dies_in_complex_chain(self, tech):
        path = build_path(
            tech=tech,
            gate_kinds=("inv", "aoi21", "oai21", "inv", "aoi21"))
        path.set_input_pulse(0.12e-9, kind="h")
        wf = run_transient(path.circuit, 4.5e-9, DT,
                           record=[path.output_node])
        polarity = "low" if path.idle_level(5, 0) else "high"
        assert wf.widest_pulse(path.output_node, tech.vdd_half,
                               polarity) == 0.0
