"""Technology parameter derivation tests."""

import pytest

from repro.cells import Technology, default_technology


class TestDefaults:
    def test_default_is_quarter_micron_class(self):
        tech = default_technology()
        assert tech.vdd == pytest.approx(2.5)
        assert 0.1e-6 < tech.length < 0.5e-6

    def test_half_vdd_level(self):
        tech = default_technology()
        assert tech.vdd_half == pytest.approx(1.25)


class TestMosfetParams:
    def test_nmos_params_use_n_values(self):
        tech = default_technology()
        p = tech.mosfet_params("nmos", 1e-6)
        assert p.kp == pytest.approx(tech.kpn)
        assert p.vt == pytest.approx(tech.vtn)

    def test_pmos_params_use_p_values(self):
        tech = default_technology()
        p = tech.mosfet_params("pmos", 1e-6)
        assert p.kp == pytest.approx(tech.kpp)
        assert p.vt == pytest.approx(tech.vtp)

    def test_rejects_unknown_polarity(self):
        with pytest.raises(ValueError):
            default_technology().mosfet_params("finfet", 1e-6)

    def test_capacitances_scale_with_width(self):
        tech = default_technology()
        narrow = tech.mosfet_params("nmos", 1e-6)
        wide = tech.mosfet_params("nmos", 2e-6)
        assert wide.cgs == pytest.approx(2 * narrow.cgs)
        assert wide.cdb == pytest.approx(2 * narrow.cdb)

    def test_factors_apply(self):
        tech = default_technology()
        p = tech.mosfet_params("nmos", 1e-6, kp_factor=1.1, vt_factor=0.9,
                               c_factor=1.2)
        base = tech.mosfet_params("nmos", 1e-6)
        assert p.kp == pytest.approx(1.1 * base.kp)
        assert p.vt == pytest.approx(0.9 * base.vt)
        assert p.cgs == pytest.approx(1.2 * base.cgs)


class TestGateInputCapacitance:
    def test_positive_and_fF_scale(self):
        c = default_technology().gate_input_capacitance()
        assert 0.5e-15 < c < 50e-15

    def test_grows_with_width(self):
        tech = default_technology()
        assert tech.gate_input_capacitance(
            wn=2e-6, wp=4e-6) > tech.gate_input_capacitance()


class TestCopyAndScale:
    def test_copy_with_override(self):
        tech = default_technology()
        hot = tech.copy(vdd=1.8)
        assert hot.vdd == 1.8
        assert hot.kpn == tech.kpn
        assert tech.vdd == 2.5  # original untouched

    def test_scaled_multiplies_fields(self):
        tech = default_technology()
        scaled = tech.scaled({"kpn": 1.5, "vtn": 0.8})
        assert scaled.kpn == pytest.approx(1.5 * tech.kpn)
        assert scaled.vtn == pytest.approx(0.8 * tech.vtn)

    def test_scaled_rejects_unknown_field(self):
        with pytest.raises(ValueError):
            default_technology().scaled({"nonsense": 2.0})
