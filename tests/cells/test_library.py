"""Standard-cell builder tests: structure and static logic behaviour."""

import pytest

from repro.cells import (build_gate, build_inverter, build_nand, build_nor,
                         default_technology)
from repro.spice import Circuit, Mosfet, operating_point
from repro.spice.errors import NetlistError


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def powered_circuit(tech):
    c = Circuit()
    c.add_vsource("VDD", "vdd", "0", tech.vdd)
    return c


def drive(circuit, node, value, tech, name=None):
    circuit.add_vsource(name or "V_{}".format(node), node, "0",
                        tech.vdd if value else 0.0)


class TestInverterStructure:
    def test_device_names_and_count(self, tech):
        c = powered_circuit(tech)
        cell = build_inverter(c, "u1", "a", "y", tech)
        assert cell.nmos_names == ["u1.MN"]
        assert cell.pmos_names == ["u1.MP"]
        assert len(c.elements(Mosfet)) == 2

    def test_rail_devices_exposed(self, tech):
        c = powered_circuit(tech)
        cell = build_inverter(c, "u1", "a", "y", tech)
        assert cell.pullup_rail_devices == [("u1.MP", "s")]
        assert cell.pulldown_rail_devices == [("u1.MN", "s")]

    def test_wire_load_added(self, tech):
        c = powered_circuit(tech)
        build_inverter(c, "u1", "a", "y", tech)
        assert "u1.cw" in c

    def test_strength_scales_widths(self, tech):
        c = powered_circuit(tech)
        build_inverter(c, "u1", "a", "y", tech, strength=2.0)
        assert c.element("u1.MN").width == pytest.approx(2 * tech.wn_unit)

    @pytest.mark.parametrize("a,expected", [(0, "high"), (1, "low")])
    def test_static_truth_table(self, tech, a, expected):
        c = powered_circuit(tech)
        build_inverter(c, "u1", "a", "y", tech)
        drive(c, "a", a, tech)
        y = operating_point(c)["y"]
        if expected == "high":
            assert y == pytest.approx(tech.vdd, abs=0.02)
        else:
            assert y == pytest.approx(0.0, abs=0.02)


class TestNandStructure:
    def test_device_count(self, tech):
        c = powered_circuit(tech)
        cell = build_nand(c, "u1", ["a", "b"], "y", tech)
        assert len(cell.nmos_names) == 2
        assert len(cell.pmos_names) == 2
        assert len(cell.internal_nodes) == 1

    def test_series_stack_widened(self, tech):
        c = powered_circuit(tech)
        build_nand(c, "u1", ["a", "b"], "y", tech)
        assert c.element("u1.MN0").width == pytest.approx(2 * tech.wn_unit)

    def test_pullup_rail_is_every_pmos(self, tech):
        c = powered_circuit(tech)
        cell = build_nand(c, "u1", ["a", "b"], "y", tech)
        assert len(cell.pullup_rail_devices) == 2

    def test_pulldown_rail_is_stack_bottom(self, tech):
        c = powered_circuit(tech)
        cell = build_nand(c, "u1", ["a", "b"], "y", tech)
        (device, term), = cell.pulldown_rail_devices
        assert term == "s"
        assert c.element(device).node("s") == "0"

    def test_rejects_single_input(self, tech):
        with pytest.raises(NetlistError):
            build_nand(powered_circuit(tech), "u1", ["a"], "y", tech)

    @pytest.mark.parametrize("a,b,y", [(0, 0, 1), (0, 1, 1), (1, 0, 1),
                                       (1, 1, 0)])
    def test_static_truth_table(self, tech, a, b, y):
        c = powered_circuit(tech)
        build_nand(c, "u1", ["a", "b"], "y", tech)
        drive(c, "a", a, tech)
        drive(c, "b", b, tech)
        out = operating_point(c)["y"]
        assert out == pytest.approx(y * tech.vdd, abs=0.02)

    def test_noncontrolling_value(self, tech):
        c = powered_circuit(tech)
        cell = build_nand(c, "u1", ["a", "b"], "y", tech)
        assert cell.noncontrolling_value() == 1


class TestNorStructure:
    def test_series_pullup_widened(self, tech):
        c = powered_circuit(tech)
        build_nor(c, "u1", ["a", "b"], "y", tech)
        assert c.element("u1.MP0").width == pytest.approx(2 * tech.wp_unit)

    def test_pullup_rail_is_stack_top(self, tech):
        c = powered_circuit(tech)
        cell = build_nor(c, "u1", ["a", "b"], "y", tech)
        (device, term), = cell.pullup_rail_devices
        assert c.element(device).node("s") == "vdd"

    @pytest.mark.parametrize("a,b,y", [(0, 0, 1), (0, 1, 0), (1, 0, 0),
                                       (1, 1, 0)])
    def test_static_truth_table(self, tech, a, b, y):
        c = powered_circuit(tech)
        build_nor(c, "u1", ["a", "b"], "y", tech)
        drive(c, "a", a, tech)
        drive(c, "b", b, tech)
        out = operating_point(c)["y"]
        assert out == pytest.approx(y * tech.vdd, abs=0.02)

    def test_noncontrolling_value(self, tech):
        c = powered_circuit(tech)
        cell = build_nor(c, "u1", ["a", "b"], "y", tech)
        assert cell.noncontrolling_value() == 0


class TestBuildGate:
    def test_inverter_has_no_side_nodes(self, tech):
        c = powered_circuit(tech)
        cell, sides = build_gate(c, "inv", "u1", "a", "y", tech)
        assert sides == []

    def test_nand3_exposes_two_side_nodes(self, tech):
        c = powered_circuit(tech)
        cell, sides = build_gate(c, "nand3", "u1", "a", "y", tech)
        assert len(sides) == 2
        assert all(s.startswith("u1:side") for s in sides)
        assert cell.inputs[0] == "a"

    def test_unknown_kind_rejected(self, tech):
        with pytest.raises(NetlistError):
            build_gate(powered_circuit(tech), "xor9", "u1", "a", "y", tech)

    def test_three_input_nand_truth(self, tech):
        c = powered_circuit(tech)
        cell, sides = build_gate(c, "nand3", "u1", "a", "y", tech)
        drive(c, "a", 1, tech)
        for i, s in enumerate(sides):
            drive(c, s, 1, tech, name="VS{}".format(i))
        assert operating_point(c)["y"] == pytest.approx(0.0, abs=0.02)
