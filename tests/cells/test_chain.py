"""Sensitized-path builder tests."""

import pytest

from repro.cells import build_path, default_technology
from repro.spice import operating_point, run_transient
from repro.spice.errors import NetlistError

DT = 4e-12


class TestStructure:
    def test_default_is_seven_gates(self):
        path = build_path()
        assert path.n_gates == 7
        assert path.stage_nodes == ["a0", "a1", "a2", "a3", "a4", "a5",
                                    "a6", "a7"]

    def test_input_and_output_nodes(self):
        path = build_path()
        assert path.input_node == "a0"
        assert path.output_node == "a7"

    def test_side_fanout_present_at_stage_two(self):
        path = build_path()
        assert 2 in path.side_fanout_cells
        assert "g2s.MN" in path.circuit

    def test_cell_at_bounds(self):
        path = build_path()
        assert path.cell_at(1).name == "g1"
        assert path.cell_at(7).name == "g7"
        with pytest.raises(NetlistError):
            path.cell_at(0)
        with pytest.raises(NetlistError):
            path.cell_at(8)

    def test_mixed_gate_kinds(self):
        path = build_path(gate_kinds=("inv", "nand2", "nor2", "inv"))
        assert path.n_gates == 4
        assert path.cell_at(2).kind == "nand2"
        # NAND side inputs tied to vdd, NOR side inputs tied to ground.
        nand_side_gate = path.circuit.element("g2.MN1")
        assert nand_side_gate.node("g") == "vdd"
        nor_side = path.circuit.element("g3.MN1")
        assert nor_side.node("g") == "0"


class TestInversionsAndIdleLevels:
    def test_all_inverters_parity(self):
        path = build_path()
        assert path.inversions_to(7) == 7
        assert path.idle_level(7, 0) == 1
        assert path.idle_level(7, 1) == 0

    def test_intermediate_levels_alternate(self):
        path = build_path()
        assert [path.idle_level(i, 0) for i in range(8)] == [
            0, 1, 0, 1, 0, 1, 0, 1]


class TestStaticSensitization:
    def test_dc_levels_alternate_along_path(self):
        path = build_path(gate_kinds=("inv", "nand2", "nor2", "inv", "inv"))
        op = operating_point(path.circuit)
        vdd = path.tech.vdd
        for i in range(1, path.n_gates + 1):
            expected = path.idle_level(i, 0) * vdd
            assert op[path.stage_nodes[i]] == pytest.approx(
                expected, abs=0.05), "stage {}".format(i)


class TestStimulusHelpers:
    def test_pulse_width_measured_at_input(self):
        path = build_path()
        path.set_input_pulse(0.4e-9, kind="h")
        wf = run_transient(path.circuit, 1.5e-9, DT, record=["a0"])
        w = wf.widest_pulse("a0", path.tech.vdd_half, polarity="high")
        assert w == pytest.approx(0.4e-9, rel=0.03)

    def test_low_pulse_polarity(self):
        path = build_path()
        path.set_input_pulse(0.4e-9, kind="l")
        wf = run_transient(path.circuit, 1.5e-9, DT, record=["a0"])
        w = wf.widest_pulse("a0", path.tech.vdd_half, polarity="low")
        assert w == pytest.approx(0.4e-9, rel=0.03)

    def test_narrow_pulse_clamped_to_edge(self):
        path = build_path()
        # Requesting less than one edge time cannot be honoured exactly;
        # the generator floor is about the edge time.
        path.set_input_pulse(0.01e-9, kind="h")
        wf = run_transient(path.circuit, 1.5e-9, DT, record=["a0"])
        w = wf.widest_pulse("a0", path.tech.vdd_half, polarity="high")
        assert w == pytest.approx(path.tech.edge_time, rel=0.1)

    def test_transition_stimulus(self):
        path = build_path()
        path.set_input_transition("rise")
        wf = run_transient(path.circuit, 1.5e-9, DT, record=["a0"])
        assert wf.value_at("a0", 1.4e-9) == pytest.approx(path.tech.vdd,
                                                          abs=0.01)

    def test_bad_pulse_kind_rejected(self):
        path = build_path()
        with pytest.raises(NetlistError):
            path.set_input_pulse(0.4e-9, kind="x")

    def test_bad_direction_rejected(self):
        path = build_path()
        with pytest.raises(NetlistError):
            path.set_input_transition("sideways")


class TestCopy:
    def test_copy_isolates_circuit(self):
        path = build_path()
        clone = path.copy()
        clone.circuit.add_resistor("Rx", "a1", "0", 1e6)
        assert "Rx" not in path.circuit

    def test_copy_shares_structure_metadata(self):
        path = build_path()
        clone = path.copy()
        assert clone.stage_nodes == path.stage_nodes
        assert clone.n_gates == path.n_gates
