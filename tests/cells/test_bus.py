"""Bus-line structure tests."""

import pytest

from repro.cells import build_bus_line, inject_wire_open
from repro.spice import operating_point, run_transient
from repro.spice.errors import NetlistError

DT = 5e-12


@pytest.fixture()
def bus():
    return build_bus_line(n_segments=6)


def wout(bus_circuit, w_in=0.42e-9):
    bus_circuit.set_input_pulse(w_in, kind="h")
    wf = run_transient(bus_circuit.circuit, 5e-9, DT,
                       record=[bus_circuit.output_node])
    return wf.widest_pulse(bus_circuit.output_node,
                           bus_circuit.tech.vdd_half, "high")


class TestStructure:
    def test_segment_count(self, bus):
        assert bus.n_segments == 6
        assert len(bus.wire_nodes) == 7

    def test_wire_rc_totals(self, bus):
        total_r = sum(bus.circuit.element("rw{}".format(i)).resistance
                      for i in range(1, 7))
        assert total_r == pytest.approx(600.0)
        total_c = sum(bus.circuit.element("cw{}".format(i)).capacitance
                      for i in range(0, 7))
        assert total_c == pytest.approx(180e-15)

    def test_rejects_zero_segments(self):
        with pytest.raises(NetlistError):
            build_bus_line(n_segments=0)

    def test_dc_levels(self, bus):
        op = operating_point(bus.circuit)
        # input 0 -> driver output 1 -> receiver output 0
        assert op["w0"] == pytest.approx(bus.tech.vdd, abs=0.05)
        assert op["bus_out"] == pytest.approx(0.0, abs=0.05)

    def test_copy_isolated(self, bus):
        clone = bus.copy()
        clone.circuit.remove("rw1")
        assert "rw1" in bus.circuit


class TestPulseTransmission:
    def test_healthy_line_passes_pulse(self, bus):
        assert wout(bus) == pytest.approx(0.42e-9, rel=0.12)

    def test_bad_pulse_kind_rejected(self, bus):
        with pytest.raises(NetlistError):
            bus.set_input_pulse(0.4e-9, kind="q")


class TestWireOpen:
    def test_injection_structure(self, bus):
        faulty = inject_wire_open(bus, 3, 5e3)
        assert "R_fault" in faulty.circuit
        assert "R_fault" not in bus.circuit

    def test_segment_bounds(self, bus):
        with pytest.raises(NetlistError):
            inject_wire_open(bus, 0, 5e3)
        with pytest.raises(NetlistError):
            inject_wire_open(bus, 7, 5e3)

    def test_via_dampens_with_resistance(self, bus):
        w_healthy = wout(bus)
        w_small = wout(inject_wire_open(bus, 3, 1e3))
        w_large = wout(inject_wire_open(bus, 3, 8e3))
        assert w_small < w_healthy
        assert w_large == 0.0

    def test_static_levels_unaffected(self, bus):
        faulty = inject_wire_open(bus, 3, 8e3)
        op = operating_point(faulty.circuit)
        assert op["bus_out"] == pytest.approx(0.0, abs=0.05)
