"""Transistor-level flip-flop tests."""

import pytest

from repro.cells.flipflop import (_capture_run, build_dff,
                                  build_transmission_gate,
                                  flipflop_timing_from_electrical,
                                  measure_clk_to_q, measure_setup_time)
from repro.cells import default_technology
from repro.spice import Circuit, operating_point

DT = 4e-12


@pytest.fixture(scope="module")
def dff():
    return build_dff()


class TestTransmissionGate:
    def test_conducting_when_ctrl_high(self):
        tech = default_technology()
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        c.add_vsource("VA", "a", "0", 1.5)
        c.add_vsource("VC", "ctrl", "0", tech.vdd)
        c.add_vsource("VCB", "ctrlb", "0", 0.0)
        build_transmission_gate(c, "tg", "a", "b", "ctrl", "ctrlb", tech)
        c.add_resistor("RL", "b", "0", 1e6)
        assert operating_point(c)["b"] == pytest.approx(1.5, abs=0.05)

    def test_blocking_when_ctrl_low(self):
        tech = default_technology()
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        c.add_vsource("VA", "a", "0", 1.5)
        c.add_vsource("VC", "ctrl", "0", 0.0)
        c.add_vsource("VCB", "ctrlb", "0", tech.vdd)
        build_transmission_gate(c, "tg", "a", "b", "ctrl", "ctrlb", tech)
        c.add_resistor("RL", "b", "0", 1e6)
        assert operating_point(c)["b"] < 0.3


class TestCapture:
    def test_captures_one(self, dff):
        wf = _capture_run(dff, 0.7e-9, 1.6e-9, d_value=1, dt=DT)
        assert wf.value_at("q", wf.t[-1]) > dff.tech.vdd - 0.2

    def test_captures_zero(self, dff):
        wf = _capture_run(dff, 0.7e-9, 1.6e-9, d_value=0, dt=DT)
        assert wf.value_at("q", wf.t[-1]) < 0.2

    def test_late_data_missed(self, dff):
        """Data arriving after the edge is not captured (the slave holds
        the init value)."""
        wf = _capture_run(dff, 2.2e-9, 1.6e-9, d_value=1, dt=DT)
        assert wf.value_at("q", 2.1e-9) < 0.3


class TestTimingMeasurements:
    def test_clk_to_q_physical(self, dff):
        cq = measure_clk_to_q(dff, dt=DT)
        assert 30e-12 < cq < 500e-12

    def test_setup_physical(self, dff):
        setup = measure_setup_time(dff, dt=DT, resolution=8e-12)
        assert 10e-12 < setup < 500e-12

    def test_behavioural_packaging(self):
        timing = flipflop_timing_from_electrical(dt=DT)
        assert timing.nominal_overhead > 60e-12
        # the measured overhead feeds the DF baseline directly
        from repro.dft import DelayFaultTest
        test = DelayFaultTest(1e-9, timing)
        assert test.detects(1e-9 - timing.nominal_overhead + 1e-12)
