"""Transistor-level XOR2 tests."""

import pytest

from repro.cells import default_technology
from repro.cells.library import build_xor2
from repro.spice import Circuit, operating_point


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def xor_circuit(tech, a, b):
    c = Circuit()
    c.add_vsource("VDD", "vdd", "0", tech.vdd)
    c.add_vsource("VA", "a", "0", tech.vdd if a else 0.0)
    c.add_vsource("VB", "b", "0", tech.vdd if b else 0.0)
    cell = build_xor2(c, "x1", "a", "b", "y", tech)
    return c, cell


class TestXorStatic:
    @pytest.mark.parametrize("a,b,y", [(0, 0, 0), (0, 1, 1),
                                       (1, 0, 1), (1, 1, 0)])
    def test_truth_table(self, tech, a, b, y):
        c, _ = xor_circuit(tech, a, b)
        out = operating_point(c)["y"]
        assert out == pytest.approx(y * tech.vdd, abs=0.05)

    def test_structure(self, tech):
        c, cell = xor_circuit(tech, 0, 0)
        assert cell.kind == "xor2"
        assert not cell.inverting
        assert len(cell.nmos_names) == 6   # 4 network + 2 inverter
        assert len(cell.pmos_names) == 6
        assert len(cell.internal_nodes) == 6


class TestXorDynamic:
    def test_transition_produces_output_toggle(self, tech):
        from repro.spice import Pulse, run_transient
        c = Circuit()
        c.add_vsource("VDD", "vdd", "0", tech.vdd)
        c.add_vsource("VA", "a", "0",
                      Pulse(0, tech.vdd, delay=0.3e-9, rise=60e-12,
                            width=1.5e-9, fall=60e-12))
        c.add_vsource("VB", "b", "0", 0.0)
        build_xor2(c, "x1", "a", "b", "y", tech)
        wf = run_transient(c, 2.5e-9, 4e-12, record=["a", "y"])
        # b=0: y follows a
        assert wf.value_at("y", 0.1e-9) < 0.2
        assert wf.value_at("y", 1.2e-9) > tech.vdd - 0.2
