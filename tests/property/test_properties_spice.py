"""Hypothesis property tests on the electrical substrate.

These stay linear-circuit-only so each case solves in microseconds.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, Pulse, Waveform, operating_point
from repro.spice.mosfet import evaluate_level1

resistances = st.floats(min_value=1.0, max_value=1e6)
voltages = st.floats(min_value=-10.0, max_value=10.0)


class TestDividerProperties:
    @given(r1=resistances, r2=resistances, v=voltages)
    @settings(max_examples=40, deadline=None)
    def test_divider_formula(self, r1, r2, v):
        c = Circuit()
        c.add_vsource("V1", "in", "0", v)
        c.add_resistor("R1", "in", "mid", r1)
        c.add_resistor("R2", "mid", "0", r2)
        op = operating_point(c)
        expected = v * r2 / (r1 + r2)
        assert abs(op["mid"] - expected) < max(1e-6, abs(expected) * 1e-4)

    @given(
        rs=st.lists(resistances, min_size=2, max_size=6),
        v=st.floats(min_value=0.1, max_value=10.0),
    )
    @settings(max_examples=30, deadline=None)
    def test_ladder_voltages_monotone(self, rs, v):
        """Voltages along a resistor ladder decrease monotonically."""
        c = Circuit()
        c.add_vsource("V1", "n0", "0", v)
        for i, r in enumerate(rs):
            c.add_resistor("R{}".format(i), "n{}".format(i),
                           "n{}".format(i + 1), r)
        c.add_resistor("Rend", "n{}".format(len(rs)), "0", 1e3)
        op = operating_point(c)
        chain = [op["n{}".format(i)] for i in range(len(rs) + 1)]
        assert all(a >= b - 1e-9 for a, b in zip(chain, chain[1:]))


class TestMosfetProperties:
    @given(
        vg=st.floats(min_value=-3.0, max_value=3.0),
        vd=st.floats(min_value=-3.0, max_value=3.0),
        vs=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_current_zero_or_signed_correctly(self, vg, vd, vs):
        """NMOS current always flows from the higher to the lower of
        drain/source (passive device, no energy creation)."""
        i, gm, gds, a_is_d = evaluate_level1(
            vd, vg, vs, 1.0, 1e-4, 0.5, 0.05)
        # i is the a->b current in the swapped frame where a is the
        # higher-voltage terminal: for NMOS it can never be negative
        # (channel conduction is from high to low).
        assert float(i) >= 0.0
        assert float(gm) >= 0.0
        assert float(gds) >= 0.0

    @given(
        vg=st.floats(min_value=-3.0, max_value=3.0),
        vd=st.floats(min_value=-3.0, max_value=3.0),
        vs=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_pmos_is_mirrored_nmos(self, vg, vd, vs):
        i_n, _, _, _ = evaluate_level1(vd, vg, vs, 1.0, 1e-4, 0.5, 0.05)
        i_p, _, _, _ = evaluate_level1(-vd, -vg, -vs, -1.0, 1e-4, 0.5,
                                       0.05)
        assert float(i_p) == -float(i_n) or abs(
            float(i_p) + float(i_n)) < 1e-15


def _level1_point(vd, vg, vs, sign, beta, vt, lam):
    i, gm, gds, _ = evaluate_level1(vd, vg, vs, sign, beta, vt, lam)
    return np.array([float(i), float(gm), float(gds)])


class TestMosfetContinuity:
    """The level-1 model is C0 across its region boundaries.

    Discontinuities at ``vgs = vt`` or ``vds = vdsat`` would make the
    Newton residual jump between iterations and defeat the
    factorization-reuse solver's bypass logic, which assumes small
    terminal-voltage moves produce small current moves.
    """

    EPS = 1e-7

    @given(
        sign=st.sampled_from([1.0, -1.0]),
        beta=st.floats(min_value=1e-6, max_value=1e-3),
        vt=st.floats(min_value=0.2, max_value=1.0),
        lam=st.floats(min_value=0.0, max_value=0.2),
        vds=st.floats(min_value=0.0, max_value=3.0),
        vb=st.floats(min_value=-2.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_continuous_across_cutoff(self, sign, beta, vt, lam, vds,
                                      vb):
        """i, gm, gds are continuous through vgs = vt (both
        polarities): straddling the threshold by +-eps moves every
        output by at most O(beta * eps)."""
        eps = self.EPS
        below = _level1_point(sign * (vb + vds), sign * (vb + vt - eps),
                              sign * vb, sign, beta, vt, lam)
        above = _level1_point(sign * (vb + vds), sign * (vb + vt + eps),
                              sign * vb, sign, beta, vt, lam)
        # just above threshold: |i| <= 0.5*beta*eps^2*clm,
        # gm <= beta*eps*clm, gds <= 0.5*beta*eps^2*lam; below, all 0
        tol = beta * eps * (2.0 + lam * vds) + 1e-18
        assert np.all(np.abs(above - below) <= tol)

    @given(
        sign=st.sampled_from([1.0, -1.0]),
        beta=st.floats(min_value=1e-6, max_value=1e-3),
        vt=st.floats(min_value=0.2, max_value=1.0),
        lam=st.floats(min_value=0.0, max_value=0.2),
        vov=st.floats(min_value=0.05, max_value=2.0),
        vb=st.floats(min_value=-2.0, max_value=2.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_continuous_across_saturation(self, sign, beta, vt, lam,
                                          vov, vb):
        """i, gm, gds are continuous through vds = vdsat = vov (both
        polarities): the triode and saturation branches agree at the
        pinch-off boundary including the channel-length-modulation
        term."""
        eps = self.EPS
        vg = vb + vt + vov
        triode = _level1_point(sign * (vb + vov - eps), sign * vg,
                               sign * vb, sign, beta, vt, lam)
        sat = _level1_point(sign * (vb + vov + eps), sign * vg,
                            sign * vb, sign, beta, vt, lam)
        # worst first derivative near the boundary is ~beta*vov*clm,
        # so a 2*eps straddle moves outputs by O(beta*vov*eps)
        tol = beta * eps * (4.0 + 4.0 * vov * (1.0 + lam)) + 1e-18
        assert np.all(np.abs(sat - triode) <= tol)

    @given(
        sign=st.sampled_from([1.0, -1.0]),
        beta=st.floats(min_value=1e-6, max_value=1e-3),
        vt=st.floats(min_value=0.2, max_value=1.0),
        lam=st.floats(min_value=0.0, max_value=0.2),
        vd=st.floats(min_value=-3.0, max_value=3.0),
        vg=st.floats(min_value=-3.0, max_value=3.0),
        vs=st.floats(min_value=-3.0, max_value=3.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_fast_kernel_matches_reference(self, sign, beta, vt, lam,
                                           vd, vg, vs):
        """The branchless solver-fast-path kernel agrees with the
        masked reference to rounding order everywhere."""
        from repro.spice.mosfet import evaluate_level1_fast
        ref = evaluate_level1(vd, vg, vs, sign, beta, vt, lam)
        fast = evaluate_level1_fast(np.asarray(vd, dtype=float),
                                    np.asarray(vg, dtype=float),
                                    np.asarray(vs, dtype=float),
                                    sign, beta, vt, lam)
        for r, f in zip(ref[:3], fast[:3]):
            scale = max(1.0, abs(float(r)))
            assert abs(float(r) - float(f)) <= 1e-12 * scale
        assert bool(ref[3]) == bool(fast[3])


class TestPulseStimulusProperties:
    @given(
        v1=voltages, v2=voltages,
        delay=st.floats(min_value=0, max_value=1e-8),
        width=st.floats(min_value=0, max_value=1e-8),
        t=st.floats(min_value=0, max_value=5e-8),
    )
    @settings(max_examples=100, deadline=None)
    def test_pulse_bounded_by_levels(self, v1, v2, delay, width, t):
        p = Pulse(v1, v2, delay=delay, rise=1e-10, width=width)
        lo, hi = min(v1, v2), max(v1, v2)
        assert lo - 1e-12 <= p.value_at(t) <= hi + 1e-12


class TestWaveformProperties:
    @given(
        data=st.lists(st.floats(min_value=-5, max_value=5), min_size=4,
                      max_size=60),
        level=st.floats(min_value=-4, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_pulse_intervals_are_disjoint_and_ordered(self, data, level):
        t = np.linspace(0.0, 1.0, len(data))
        wf = Waveform(t, {"x": np.array(data)})
        intervals = wf.pulse_intervals("x", level)
        for (s1, e1), (s2, e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
        for s, e in intervals:
            assert s <= e

    @given(
        data=st.lists(st.floats(min_value=-5, max_value=5), min_size=4,
                      max_size=60),
        level=st.floats(min_value=-4, max_value=4),
    )
    @settings(max_examples=100, deadline=None)
    def test_widest_pulse_bounded_by_window(self, data, level):
        t = np.linspace(0.0, 1.0, len(data))
        wf = Waveform(t, {"x": np.array(data)})
        assert 0.0 <= wf.widest_pulse("x", level) <= 1.0

    @given(
        data=st.lists(st.floats(min_value=-5, max_value=5), min_size=4,
                      max_size=60),
        level=st.floats(min_value=-4, max_value=4),
    )
    @settings(max_examples=60, deadline=None)
    def test_high_low_polarities_partition_time(self, data, level):
        """Total high-excursion time + low-excursion time <= window
        (equality up to crossing interpolation)."""
        t = np.linspace(0.0, 1.0, len(data))
        wf = Waveform(t, {"x": np.array(data)})
        high = sum(wf.pulse_widths("x", level, "high"))
        low = sum(wf.pulse_widths("x", level, "low"))
        assert high + low <= 1.0 + 1e-9
