"""Cross-module invariants verified with hypothesis.

The strongest correctness evidence in the repository: independent
implementations must bound each other.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.logic import (GateTiming, TimingSimulator, arrival_times,
                         generate_random_circuit)
from repro.montecarlo import VariationModel


class TestStaBoundsEventSim:
    @given(seed=st.integers(min_value=0, max_value=20),
           vector_seed=st.integers(min_value=0, max_value=50))
    @settings(max_examples=15, deadline=None)
    def test_every_transition_within_sta_arrival(self, seed, vector_seed):
        """After a single PI flip at t0, no net may transition later
        than t0 + its STA arrival bound (STA maximises over all paths,
        the event simulation realises one sensitized subset)."""
        netlist = generate_random_circuit(
            n_inputs=6, n_outputs=2, n_gates=18, seed=seed,
            target_depth=5)
        timing = GateTiming()
        arrivals = arrival_times(netlist, timing)

        rng = np.random.default_rng(vector_seed)
        start = {pi: int(rng.integers(2))
                 for pi in netlist.primary_inputs}
        flip = netlist.primary_inputs[
            int(rng.integers(len(netlist.primary_inputs)))]
        t0 = 1e-9
        sim = TimingSimulator(netlist, timing=timing)
        trace = sim.run(start,
                        events=[(t0, flip, 1 - start[flip])],
                        t_end=100e-9)
        for net, (t_rise, t_fall) in arrivals.items():
            last = trace.last_transition(net)
            if last is None:
                continue
            bound = t0 + max(t_rise, t_fall)
            assert last <= bound + 1e-15, net


class TestVariationProperties:
    @given(seed=st.integers(min_value=0, max_value=10000),
           sigma=st.floats(min_value=0.001, max_value=0.15))
    @settings(max_examples=60, deadline=None)
    def test_factors_bounded_and_deterministic(self, seed, sigma):
        a = VariationModel(seed=seed, sigma_local=sigma,
                           sigma_global=sigma, sigma_timing=sigma)
        b = VariationModel(seed=seed, sigma_local=sigma,
                           sigma_global=sigma, sigma_timing=sigma)
        for name in ("x.MN", "y.MP"):
            fa = a.device_factors(name)
            assert fa == b.device_factors(name)
            for f in fa:
                assert 1 - 3 * sigma - 1e-9 <= f <= 1 + 3 * sigma + 1e-9
        t = a.timing_factor("clk")
        assert t == b.timing_factor("clk")
        assert 1 - 3 * sigma - 1e-9 <= t <= 1 + 3 * sigma + 1e-9


class TestFaultSpecProperties:
    @given(r=st.floats(min_value=1.0, max_value=1e7),
           r2=st.floats(min_value=1.0, max_value=1e7),
           stage=st.integers(min_value=1, max_value=7))
    @settings(max_examples=50, deadline=None)
    def test_with_resistance_pure(self, r, r2, stage):
        from repro.faults import (BridgingFault, ExternalOpen,
                                  InternalOpen, PULL_UP)
        for fault in (InternalOpen(stage, PULL_UP, r),
                      ExternalOpen(stage, r),
                      BridgingFault(stage, r)):
            clone = fault.with_resistance(r2)
            assert clone.resistance == r2
            assert fault.resistance == r
            assert clone.stage == fault.stage
            assert type(clone) is type(fault)
