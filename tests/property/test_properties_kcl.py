"""KCL self-verification: every DC solution must balance currents.

The residual check is independent of the Newton loop's convergence
criterion (which watches voltage steps), so it catches stamping-sign
bugs the solver itself cannot see.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.spice import Circuit, MosfetParams
from repro.spice.dcop import dc_residual

resistances = st.floats(min_value=10.0, max_value=1e6)
voltages = st.floats(min_value=-5.0, max_value=5.0)


def max_node_residual(circuit):
    residual, compiled = dc_residual(circuit)
    if compiled.n_nodes == 0:
        return 0.0
    return float(np.abs(residual[:compiled.n_nodes]).max())


class TestLinearKcl:
    @given(r1=resistances, r2=resistances, r3=resistances, v=voltages)
    @settings(max_examples=40, deadline=None)
    def test_bridge_network_balances(self, r1, r2, r3, v):
        c = Circuit()
        c.add_vsource("V1", "a", "0", v)
        c.add_resistor("R1", "a", "b", r1)
        c.add_resistor("R2", "b", "c", r2)
        c.add_resistor("R3", "c", "0", r3)
        c.add_resistor("R4", "b", "0", r3)
        assert max_node_residual(c) < 1e-9

    @given(i=st.floats(min_value=-1e-4, max_value=1e-4),
           r=st.floats(min_value=10.0, max_value=1e5))
    @settings(max_examples=30, deadline=None)
    def test_current_source_balances(self, i, r):
        # |v| <= 10 V keeps the solver's gmin leakage (v * 1e-12 A)
        # well below the bound.
        c = Circuit()
        c.add_isource("I1", "0", "x", i)
        c.add_resistor("R1", "x", "0", r)
        assert max_node_residual(c) < 1e-9


class TestNonlinearKcl:
    @given(vin=st.floats(min_value=0.0, max_value=2.5),
           wn=st.floats(min_value=0.5e-6, max_value=4e-6),
           wp=st.floats(min_value=0.5e-6, max_value=6e-6))
    @settings(max_examples=40, deadline=None)
    def test_inverter_balances_at_any_bias(self, vin, wn, wp):
        c = Circuit()
        pn = MosfetParams(kp=120e-6, vt=0.5, lam=0.06)
        pp = MosfetParams(kp=40e-6, vt=0.55, lam=0.08)
        c.add_vsource("VDD", "vdd", "0", 2.5)
        c.add_vsource("VIN", "a", "0", vin)
        c.add_nmos("MN", "y", "a", "0", "0", wn, 0.25e-6, pn)
        c.add_pmos("MP", "y", "a", "vdd", "vdd", wp, 0.25e-6, pp)
        c.add_resistor("RL", "y", "0", 1e6)
        # gmin keeps the solve finite; its leakage appears in the
        # residual, hence the relaxed bound.
        assert max_node_residual(c) < 1e-6

    def test_sensitized_path_balances(self):
        from repro.cells import build_path
        path = build_path()
        assert max_node_residual(path.circuit) < 1e-6

    def test_residual_rejects_wrong_solution(self):
        """A deliberately wrong state vector must NOT balance — guards
        against the check being vacuous."""
        c = Circuit()
        c.add_vsource("V1", "a", "0", 1.0)
        c.add_resistor("R1", "a", "b", 1e3)
        c.add_resistor("R2", "b", "0", 1e3)
        residual, compiled = dc_residual(c)
        x_bad = np.zeros(compiled.n)
        x_bad[compiled.index_of("b")] = 0.9  # wrong divider value
        x_bad[compiled.index_of("a")] = 1.0
        bad_residual, _ = dc_residual(c, x=x_bad)
        assert np.abs(bad_residual[:compiled.n_nodes]).max() > 1e-5
