"""Hypothesis property tests on the logic substrate."""

from hypothesis import given, settings, strategies as st

from repro.logic import (GatePulseModel, GateTiming, PathPulseModel,
                         TimingSimulator, generate_random_circuit)
from repro.logic.netlist import Gate

gate_kinds = st.sampled_from(["and", "nand", "or", "nor", "xor", "xnor"])
bits = st.integers(min_value=0, max_value=1)


class TestGateEvaluation:
    @given(kind=gate_kinds, a=bits, b=bits)
    @settings(max_examples=60, deadline=None)
    def test_evaluate3_consistent_with_evaluate(self, kind, a, b):
        g = Gate("g", kind, ["a", "b"], "y")
        assert g.evaluate3([a, b]) == g.evaluate([a, b])

    @given(kind=gate_kinds, a=bits)
    @settings(max_examples=40, deadline=None)
    def test_evaluate3_x_soundness(self, kind, a):
        """If evaluate3 returns a definite value with one X input, the
        value must hold for both completions."""
        g = Gate("g", kind, ["a", "b"], "y")
        result = g.evaluate3([a, None])
        if result is not None:
            assert result == g.evaluate([a, 0]) == g.evaluate([a, 1])


class TestGeneratedCircuits:
    @given(seed=st.integers(min_value=0, max_value=30))
    @settings(max_examples=10, deadline=None)
    def test_generated_circuit_valid_and_acyclic(self, seed):
        n = generate_random_circuit(n_inputs=6, n_outputs=2, n_gates=15,
                                    seed=seed, target_depth=4)
        assert n.validate()
        assert n.n_gates == 15

    @given(seed=st.integers(min_value=0, max_value=15),
           vector_seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=15, deadline=None)
    def test_event_sim_settles_to_zero_delay_values(self, seed,
                                                    vector_seed):
        """After any single input flip, the event-driven simulation must
        settle to the zero-delay evaluation."""
        import numpy as np
        n = generate_random_circuit(n_inputs=6, n_outputs=2, n_gates=15,
                                    seed=seed, target_depth=4)
        rng = np.random.default_rng(vector_seed)
        start = {pi: int(rng.integers(2)) for pi in n.primary_inputs}
        flip_pi = n.primary_inputs[int(rng.integers(len(n.primary_inputs)))]
        end = dict(start)
        end[flip_pi] = 1 - end[flip_pi]
        sim = TimingSimulator(n, timing=GateTiming())
        trace = sim.run(start, events=[(1e-9, flip_pi, end[flip_pi])],
                        t_end=60e-9)
        expected = n.evaluate(end)
        for po in n.primary_outputs:
            assert trace.final_value(po) == expected[po]


class TestPulseModelProperties:
    thetas = st.floats(min_value=1e-12, max_value=3e-10)
    spans = st.floats(min_value=1e-12, max_value=2e-10)
    deltas = st.floats(min_value=0.0, max_value=1e-10)

    @given(theta=thetas, span=spans, delta=deltas,
           w=st.floats(min_value=0, max_value=2e-9))
    @settings(max_examples=100, deadline=None)
    def test_transfer_never_amplifies(self, theta, span, delta, w):
        m = GatePulseModel(theta, span, delta)
        assert m.transfer(w) <= w + 1e-15

    @given(theta=thetas, span=spans, delta=deltas,
           w1=st.floats(min_value=0, max_value=2e-9),
           w2=st.floats(min_value=0, max_value=2e-9))
    @settings(max_examples=100, deadline=None)
    def test_transfer_monotone(self, theta, span, delta, w1, w2):
        m = GatePulseModel(theta, span, delta)
        lo, hi = min(w1, w2), max(w1, w2)
        assert m.transfer(lo) <= m.transfer(hi) + 1e-15

    @given(theta=thetas, span=spans, delta=deltas,
           target=st.floats(min_value=1e-13, max_value=1e-9))
    @settings(max_examples=100, deadline=None)
    def test_required_input_is_inverse(self, theta, span, delta, target):
        m = GatePulseModel(theta, span, delta)
        w_in = m.required_input(target)
        assert m.transfer(w_in) >= target - 1e-12

    @given(
        params=st.lists(st.tuples(thetas, spans, deltas), min_size=1,
                        max_size=6))
    @settings(max_examples=50, deadline=None)
    def test_path_minimum_propagatable_is_tight(self, params):
        m = PathPulseModel([GatePulseModel(t, s, d)
                            for t, s, d in params])
        w_min = m.minimum_propagatable()
        assert m.transfer(w_min) > 0.0
        assert m.transfer(0.5 * w_min) == 0.0 or 0.5 * w_min > min(
            g.theta for g in m.gate_models)
