"""CLI tests (fast paths only; coverage/paths commands are exercised by
the benchmark harness)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_waveforms_args(self):
        args = build_parser().parse_args(
            ["waveforms", "internal_rop", "--resistance", "5000"])
        assert args.kind == "internal_rop"
        assert args.resistance == 5000.0

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["waveforms", "nuclear"])

    def test_coverage_args(self):
        args = build_parser().parse_args(["coverage", "bridging"])
        assert args.fault == "bridging"
        assert args.jobs is None
        assert args.cache_dir is None

    def test_coverage_runtime_flags(self):
        args = build_parser().parse_args(
            ["coverage", "open", "--jobs", "4",
             "--cache-dir", "/tmp/cache"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/cache"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs is None
        assert args.samples == 5
        assert args.sites is None
        assert args.cache_dir == ".repro_cache"
        assert not args.no_cache
        assert not args.resume
        assert args.task_timeout is None
        assert args.report_json is None

    def test_campaign_runtime_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--jobs", "2", "--samples", "4", "--sites", "6",
             "--cache-dir", "/tmp/c", "--resume", "--task-timeout", "30",
             "--report-json", "report.json"])
        assert args.jobs == 2
        assert args.samples == 4
        assert args.sites == 6
        assert args.cache_dir == "/tmp/c"
        assert args.resume
        assert args.task_timeout == 30.0
        assert args.report_json == "report.json"


class TestCommands:
    def test_waveforms_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["waveforms", "internal_rop"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "internal open" in out
        assert "dampened at output: True" in out

    def test_transfer_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["transfer"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "w_in (ps)" in out
        assert "asymptotic" in out


class TestVersion:
    def test_version_flag(self, capsys):
        from repro import __version__
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert __version__ in capsys.readouterr().out


class TestServiceVerbs:
    def test_serve_args(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--concurrency", "4",
             "--queue-capacity", "8", "--no-aggregate"])
        assert args.port == 0
        assert args.concurrency == 4
        assert args.queue_capacity == 8
        assert args.no_aggregate

    def test_submit_builds_sweep_spec(self):
        from repro.cli import _service_spec
        args = build_parser().parse_args(
            ["submit", "sweep", "--fault", "bridging", "--stage", "3",
             "--resistances", "1e3,4e3", "--samples", "7",
             "--batch-size", "4"])
        spec = _service_spec(args)
        assert spec == {"kind": "sweep", "measure": "pulse",
                        "fault": "bridging", "stage": 3,
                        "resistances": [1e3, 4e3], "n_samples": 7,
                        "seed": 432, "batch_size": 4}

    def test_submit_builds_fast_coverage_spec(self):
        from repro.cli import _service_spec
        from repro.service import normalize_spec
        args = build_parser().parse_args(
            ["submit", "coverage", "--fast"])
        spec = _service_spec(args)
        assert spec["kind"] == "coverage"
        assert spec["config"]["n_samples"] == 3
        normalize_spec(spec)  # the fast spec must validate

    def test_submit_builds_campaign_spec(self):
        from repro.cli import _service_spec
        args = build_parser().parse_args(
            ["submit", "campaign", "--samples", "2", "--sites", "4",
             "--fast"])
        spec = _service_spec(args)
        assert spec == {"kind": "campaign", "seed": 432, "samples": 2,
                        "sites": 4, "stride": 2, "fast": True}

    def test_unreachable_server_exit_code(self, capsys):
        rc = main(["jobs", "--url", "http://127.0.0.1:1"])
        assert rc == 5
        assert "cannot reach" in capsys.readouterr().err

    def test_job_exit_codes(self):
        from repro.cli import _job_exit_code
        assert _job_exit_code({"state": "DONE"}) == 0
        assert _job_exit_code({"state": "FAILED"}) == 3
        assert _job_exit_code({"state": "CANCELLED"}) == 4


class TestFailOnErrors:
    def test_default_on(self):
        args = build_parser().parse_args(["coverage", "open"])
        assert args.fail_on_errors is True

    def test_escape_hatch(self):
        args = build_parser().parse_args(
            ["campaign", "--no-fail-on-errors"])
        assert args.fail_on_errors is False

    def test_report_exit_maps_failures(self):
        from repro.cli import _report_exit
        from repro.runtime import RunReport

        class FakeArgs:
            fail_on_errors = True

        clean = RunReport("t")
        assert _report_exit(FakeArgs(), clean) == 0
        assert _report_exit(FakeArgs(), None) == 0
        failing = RunReport("t")
        failing.failed = 2
        assert _report_exit(FakeArgs(), failing) == 3
        FakeArgs.fail_on_errors = False
        assert _report_exit(FakeArgs(), failing) == 0
