"""CLI tests (fast paths only; coverage/paths commands are exercised by
the benchmark harness)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_waveforms_args(self):
        args = build_parser().parse_args(
            ["waveforms", "internal_rop", "--resistance", "5000"])
        assert args.kind == "internal_rop"
        assert args.resistance == 5000.0

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["waveforms", "nuclear"])

    def test_coverage_args(self):
        args = build_parser().parse_args(["coverage", "bridging"])
        assert args.fault == "bridging"
        assert args.jobs is None
        assert args.cache_dir is None

    def test_coverage_runtime_flags(self):
        args = build_parser().parse_args(
            ["coverage", "open", "--jobs", "4",
             "--cache-dir", "/tmp/cache"])
        assert args.jobs == 4
        assert args.cache_dir == "/tmp/cache"

    def test_campaign_defaults(self):
        args = build_parser().parse_args(["campaign"])
        assert args.jobs is None
        assert args.samples == 5
        assert args.sites is None
        assert args.cache_dir == ".repro_cache"
        assert not args.no_cache
        assert not args.resume
        assert args.task_timeout is None
        assert args.report_json is None

    def test_campaign_runtime_flags(self):
        args = build_parser().parse_args(
            ["campaign", "--jobs", "2", "--samples", "4", "--sites", "6",
             "--cache-dir", "/tmp/c", "--resume", "--task-timeout", "30",
             "--report-json", "report.json"])
        assert args.jobs == 2
        assert args.samples == 4
        assert args.sites == 6
        assert args.cache_dir == "/tmp/c"
        assert args.resume
        assert args.task_timeout == 30.0
        assert args.report_json == "report.json"


class TestCommands:
    def test_waveforms_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["waveforms", "internal_rop"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "internal open" in out
        assert "dampened at output: True" in out

    def test_transfer_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["transfer"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "w_in (ps)" in out
        assert "asymptotic" in out
