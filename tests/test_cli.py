"""CLI tests (fast paths only; coverage/paths commands are exercised by
the benchmark harness)."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_waveforms_args(self):
        args = build_parser().parse_args(
            ["waveforms", "internal_rop", "--resistance", "5000"])
        assert args.kind == "internal_rop"
        assert args.resistance == 5000.0

    def test_bad_fault_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["waveforms", "nuclear"])

    def test_coverage_args(self):
        args = build_parser().parse_args(["coverage", "bridging"])
        assert args.fault == "bridging"


class TestCommands:
    def test_waveforms_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["waveforms", "internal_rop"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "internal open" in out
        assert "dampened at output: True" in out

    def test_transfer_command_runs(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FAST", "1")
        rc = main(["transfer"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "w_in (ps)" in out
        assert "asymptotic" in out
