"""Executor backend tests: ordering, failure taxonomy, retry, timeout.

Worker functions live at module level so the process pool can pickle
them; payloads are plain dicts.
"""

import os
import time

import pytest

from repro.runtime import (FAILED, PoisonTask, ProcessPoolExecutor,
                           SerialExecutor, TaskTimeout, WorkerCrash,
                           WorkerError, backoff_schedule)


def _square(payload):
    return payload["x"] ** 2


def _fail_on_odd(payload):
    if payload["x"] % 2:
        raise ValueError("odd input {}".format(payload["x"]))
    return payload["x"]


def _flaky(payload):
    """Fails until its marker file exists, then succeeds."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        raise RuntimeError("first attempt always fails")
    return "recovered"


def _sleepy(payload):
    time.sleep(payload["seconds"])
    return "awake"


def _newton_accounting(payload):
    from repro.runtime.stats import current_stats
    stats = current_stats()
    stats.count("newton_solves", payload["solves"])
    stats.count("newton_iterations", 3 * payload["solves"])
    return payload["solves"]


def _crash_if_marked(payload):
    """Kills its worker process outright (simulated OOM/segfault)."""
    if payload.get("crash"):
        os._exit(87)
    return payload["x"]


def _crash_until_marker(payload):
    """Kills the worker until its marker file exists, then succeeds."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        os._exit(87)
    return "survived"


def _hang_if_marked(payload):
    if payload.get("hang"):
        time.sleep(60.0)
    return payload["x"]


PAYLOADS = [{"x": i} for i in range(7)]


@pytest.fixture(params=["serial", "pool"])
def executor(request):
    if request.param == "serial":
        return SerialExecutor()
    return ProcessPoolExecutor(n_jobs=2, retries=0)


class TestOrdering:
    def test_results_aligned_with_payloads(self, executor):
        outcomes = executor.map_tasks(_square, PAYLOADS)
        assert [o.index for o in outcomes] == list(range(7))
        assert [o.value for o in outcomes] == [i ** 2 for i in range(7)]
        assert all(o.ok for o in outcomes)

    def test_small_chunks_preserve_order(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1, retries=0)
        outcomes = executor.map_tasks(_square, PAYLOADS)
        assert [o.value for o in outcomes] == [i ** 2 for i in range(7)]

    def test_on_result_sees_every_task(self, executor):
        seen = []
        executor.map_tasks(_square, PAYLOADS,
                           on_result=lambda o: seen.append(o.index))
        assert sorted(seen) == list(range(7))


class TestFailures:
    def test_taxonomy_captured(self, executor):
        outcomes = executor.map_tasks(_fail_on_odd, PAYLOADS)
        for outcome in outcomes:
            if outcome.index % 2:
                assert not outcome.ok
                assert outcome.error_type == "ValueError"
                assert str(outcome.index) in outcome.error_message
                assert isinstance(outcome.error(), WorkerError)
            else:
                assert outcome.ok
                assert outcome.error() is None

    def test_failed_sentinel_distinct_from_none(self):
        assert FAILED is not None
        assert repr(FAILED) == "<FAILED>"

    def test_failed_sentinel_survives_pickling(self):
        import pickle
        assert pickle.loads(pickle.dumps(FAILED)) is FAILED


class TestRetry:
    def test_serial_retry_recovers(self, tmp_path):
        executor = SerialExecutor(retries=1)
        payload = {"marker": str(tmp_path / "marker_serial")}
        (outcome,) = executor.map_tasks(_flaky, [payload])
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.retries == 1

    def test_pool_retry_recovers(self, tmp_path):
        executor = ProcessPoolExecutor(n_jobs=2, retries=1)
        payload = {"marker": str(tmp_path / "marker_pool")}
        (outcome,) = executor.map_tasks(_flaky, [payload])
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.retries == 1

    def test_pool_retry_exhausted(self):
        executor = ProcessPoolExecutor(n_jobs=2, retries=1)
        (outcome,) = executor.map_tasks(_fail_on_odd, [{"x": 1}])
        assert not outcome.ok
        assert outcome.retries == 1


class TestTimeout:
    def test_hung_task_marked_and_neighbours_survive(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       timeout=0.5, retries=0)
        payloads = [{"seconds": 0.0}, {"seconds": 30.0}, {"seconds": 0.0}]
        outcomes = executor.map_tasks(_sleepy, payloads)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].timed_out
        assert outcomes[1].error_type == "TaskTimeout"
        assert isinstance(outcomes[1].error(), TaskTimeout)


class TestNewtonTelemetry:
    def test_solver_effort_reported_per_task(self, executor):
        outcomes = executor.map_tasks(
            _newton_accounting, [{"solves": 2}, {"solves": 5}])
        assert [o.newton_solves for o in outcomes] == [2, 5]
        assert [o.newton_iterations for o in outcomes] == [6, 15]


class TestBackoffSchedule:
    def test_deterministic_in_seed(self):
        assert backoff_schedule(0.1, 4, seed=3) == \
            backoff_schedule(0.1, 4, seed=3)
        assert backoff_schedule(0.1, 4, seed=3) != \
            backoff_schedule(0.1, 4, seed=4)

    def test_exponential_with_bounded_jitter(self):
        delays = backoff_schedule(0.1, 5, seed=0)
        assert len(delays) == 5
        for r, delay in enumerate(delays):
            base = 0.1 * 2.0 ** r
            assert 0.5 * base <= delay < 1.5 * base

    def test_zero_base_disables(self):
        assert backoff_schedule(0.0, 3, seed=1) == [0.0, 0.0, 0.0]


class TestWorkerCrash:
    def test_pool_fault_not_booked_as_task_error(self, tmp_path):
        """A worker death books WorkerCrash, never a generic
        BrokenProcessPool-per-chunk error, and a retry recovers."""
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       retries=1, backoff=0.01)
        payload = {"marker": str(tmp_path / "crash_marker")}
        (outcome,) = executor.map_tasks(_crash_until_marker, [payload])
        assert outcome.ok
        assert outcome.value == "survived"
        assert outcome.crashes == 1
        assert executor.pool_rebuilds >= 1

    def test_innocent_chunks_survive_a_pool_fault(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       retries=2, backoff=0.01)
        payloads = [{"x": i, "crash": i == 3} for i in range(8)]
        outcomes = executor.map_tasks(_crash_if_marked, payloads)
        for outcome in outcomes:
            if outcome.index == 3:
                continue
            assert outcome.ok, outcome
            assert outcome.value == outcome.index

    def test_repeat_crasher_quarantined_as_poison(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       retries=6, backoff=0.01,
                                       crash_quarantine=3)
        payloads = [{"x": 0}, {"x": 1, "crash": True}, {"x": 2}]
        outcomes = executor.map_tasks(_crash_if_marked, payloads)
        bad = outcomes[1]
        assert not bad.ok
        assert bad.poisoned and bad.crashed
        assert bad.error_type == "PoisonTask"
        assert isinstance(bad.error(), PoisonTask)
        # quarantined at the threshold, not after every retry round
        assert bad.crashes == 3
        assert outcomes[0].ok and outcomes[2].ok

    def test_crash_outcome_before_quarantine_is_worker_crash(self):
        executor = ProcessPoolExecutor(n_jobs=1, chunk_size=1,
                                       retries=0)
        outcomes = executor.map_tasks(
            _crash_if_marked, [{"x": 0, "crash": True}])
        (outcome,) = outcomes
        assert not outcome.ok
        assert outcome.crashed and not outcome.poisoned
        assert outcome.error_type == "WorkerCrash"
        assert isinstance(outcome.error(), WorkerCrash)

    def test_on_result_streams_final_failures_once(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       retries=4, backoff=0.01,
                                       crash_quarantine=2)
        seen = []
        executor.map_tasks(_crash_if_marked,
                           [{"x": 0}, {"x": 1, "crash": True}],
                           on_result=lambda o: seen.append(o.index))
        assert sorted(seen) == [0, 1]


class TestTimeoutReclaim:
    def test_queued_task_survives_a_hog_with_one_worker(self):
        """n_jobs=1 regression: the queued task behind a hang must run
        on a respawned pool instead of waiting (forever) for the hung
        worker — and it is not charged for the time in the queue."""
        executor = ProcessPoolExecutor(n_jobs=1, chunk_size=1,
                                       timeout=1.0, retries=0)
        payloads = [{"x": 0}, {"x": 1, "hang": True}, {"x": 2}]
        start = time.monotonic()
        outcomes = executor.map_tasks(_hang_if_marked, payloads)
        elapsed = time.monotonic() - start
        assert outcomes[0].ok and outcomes[0].value == 0
        assert outcomes[2].ok and outcomes[2].value == 2
        assert outcomes[1].timed_out
        assert executor.pool_rebuilds >= 1
        assert elapsed < 20.0

    def test_deterministic_hang_quarantined_within_budget(self):
        """A task that always hangs stops burning retries x timeout:
        after ``timeout_quarantine`` timeouts it is poisoned and the
        remaining retry rounds skip it."""
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       timeout=1.0, retries=5,
                                       backoff=0.01,
                                       timeout_quarantine=2)
        start = time.monotonic()
        outcomes = executor.map_tasks(
            _hang_if_marked, [{"x": 0}, {"x": 1, "hang": True}])
        elapsed = time.monotonic() - start
        bad = outcomes[1]
        assert bad.poisoned and bad.timed_out
        assert bad.error_type == "PoisonTask"
        # 2 timeouts plus overhead — nowhere near 6 x timeout
        assert elapsed < 5.0
        assert outcomes[0].ok
