"""Executor backend tests: ordering, failure taxonomy, retry, timeout.

Worker functions live at module level so the process pool can pickle
them; payloads are plain dicts.
"""

import os
import time

import pytest

from repro.runtime import (FAILED, ProcessPoolExecutor, SerialExecutor,
                           TaskTimeout, WorkerError)


def _square(payload):
    return payload["x"] ** 2


def _fail_on_odd(payload):
    if payload["x"] % 2:
        raise ValueError("odd input {}".format(payload["x"]))
    return payload["x"]


def _flaky(payload):
    """Fails until its marker file exists, then succeeds."""
    marker = payload["marker"]
    if not os.path.exists(marker):
        with open(marker, "w") as handle:
            handle.write("seen")
        raise RuntimeError("first attempt always fails")
    return "recovered"


def _sleepy(payload):
    time.sleep(payload["seconds"])
    return "awake"


def _newton_accounting(payload):
    from repro.runtime.stats import current_stats
    stats = current_stats()
    stats.count("newton_solves", payload["solves"])
    stats.count("newton_iterations", 3 * payload["solves"])
    return payload["solves"]


PAYLOADS = [{"x": i} for i in range(7)]


@pytest.fixture(params=["serial", "pool"])
def executor(request):
    if request.param == "serial":
        return SerialExecutor()
    return ProcessPoolExecutor(n_jobs=2, retries=0)


class TestOrdering:
    def test_results_aligned_with_payloads(self, executor):
        outcomes = executor.map_tasks(_square, PAYLOADS)
        assert [o.index for o in outcomes] == list(range(7))
        assert [o.value for o in outcomes] == [i ** 2 for i in range(7)]
        assert all(o.ok for o in outcomes)

    def test_small_chunks_preserve_order(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1, retries=0)
        outcomes = executor.map_tasks(_square, PAYLOADS)
        assert [o.value for o in outcomes] == [i ** 2 for i in range(7)]

    def test_on_result_sees_every_task(self, executor):
        seen = []
        executor.map_tasks(_square, PAYLOADS,
                           on_result=lambda o: seen.append(o.index))
        assert sorted(seen) == list(range(7))


class TestFailures:
    def test_taxonomy_captured(self, executor):
        outcomes = executor.map_tasks(_fail_on_odd, PAYLOADS)
        for outcome in outcomes:
            if outcome.index % 2:
                assert not outcome.ok
                assert outcome.error_type == "ValueError"
                assert str(outcome.index) in outcome.error_message
                assert isinstance(outcome.error(), WorkerError)
            else:
                assert outcome.ok
                assert outcome.error() is None

    def test_failed_sentinel_distinct_from_none(self):
        assert FAILED is not None
        assert repr(FAILED) == "<FAILED>"

    def test_failed_sentinel_survives_pickling(self):
        import pickle
        assert pickle.loads(pickle.dumps(FAILED)) is FAILED


class TestRetry:
    def test_serial_retry_recovers(self, tmp_path):
        executor = SerialExecutor(retries=1)
        payload = {"marker": str(tmp_path / "marker_serial")}
        (outcome,) = executor.map_tasks(_flaky, [payload])
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.retries == 1

    def test_pool_retry_recovers(self, tmp_path):
        executor = ProcessPoolExecutor(n_jobs=2, retries=1)
        payload = {"marker": str(tmp_path / "marker_pool")}
        (outcome,) = executor.map_tasks(_flaky, [payload])
        assert outcome.ok
        assert outcome.value == "recovered"
        assert outcome.retries == 1

    def test_pool_retry_exhausted(self):
        executor = ProcessPoolExecutor(n_jobs=2, retries=1)
        (outcome,) = executor.map_tasks(_fail_on_odd, [{"x": 1}])
        assert not outcome.ok
        assert outcome.retries == 1


class TestTimeout:
    def test_hung_task_marked_and_neighbours_survive(self):
        executor = ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                       timeout=0.5, retries=0)
        payloads = [{"seconds": 0.0}, {"seconds": 30.0}, {"seconds": 0.0}]
        outcomes = executor.map_tasks(_sleepy, payloads)
        assert outcomes[0].ok and outcomes[2].ok
        assert not outcomes[1].ok
        assert outcomes[1].timed_out
        assert outcomes[1].error_type == "TaskTimeout"
        assert isinstance(outcomes[1].error(), TaskTimeout)


class TestNewtonTelemetry:
    def test_solver_effort_reported_per_task(self, executor):
        outcomes = executor.map_tasks(
            _newton_accounting, [{"solves": 2}, {"solves": 5}])
        assert [o.newton_solves for o in outcomes] == [2, 5]
        assert [o.newton_iterations for o in outcomes] == [6, 15]
