"""Cache-key sensitivity: any input that can change a measurement must
change its content-addressed key; anything that cannot, must not.

The key recipe under test is the one ``repro.core.coverage._sweep_rows``
uses for per-sample sweep rows.
"""

import subprocess
import sys

from repro.cells import default_technology
from repro.faults import BridgingFault, ExternalOpen
from repro.montecarlo import VariationModel
from repro.runtime import ResultCache, stable_hash


def _row_key(tech=None, sample_seed=3, fault=None, resistances=(4e3,),
             dt=3e-12, path_kwargs=None, omega_in=0.40e-9):
    """Mirror of the sweep-row key built in coverage._sweep_rows."""
    tech = default_technology() if tech is None else tech
    fault = ExternalOpen(2, 8e3) if fault is None else fault
    measure_spec = dict(measure="pulse", omega_in=float(omega_in),
                        kind="h")
    return stable_hash("sweep-row", tech, VariationModel(sample_seed),
                       fault, [float(r) for r in resistances], dt,
                       path_kwargs or {}, measure_spec)


BASE = _row_key()


class TestKeySensitivity:
    def test_baseline_is_reproducible(self):
        assert _row_key() == BASE

    def test_tech_sigma_changes_key(self):
        # die-to-die perturbed technology (what a different global
        # sigma produces) must not collide with nominal
        tech = default_technology().copy(kpn=120e-6 * 1.02)
        assert _row_key(tech=tech) != BASE

    def test_supply_changes_key(self):
        assert _row_key(tech=default_technology().copy(vdd=2.4)) != BASE

    def test_sample_seed_changes_key(self):
        assert _row_key(sample_seed=4) != BASE

    def test_fault_resistance_grid_changes_key(self):
        assert _row_key(resistances=(4e3, 8e3)) != BASE
        assert _row_key(resistances=(5e3,)) != BASE

    def test_fault_spec_changes_key(self):
        assert _row_key(fault=ExternalOpen(3, 8e3)) != BASE
        assert _row_key(fault=BridgingFault(2, 8e3)) != BASE

    def test_pulse_width_changes_key(self):
        assert _row_key(omega_in=0.45e-9) != BASE

    def test_dt_changes_key(self):
        assert _row_key(dt=5e-12) != BASE

    def test_path_structure_changes_key(self):
        assert _row_key(path_kwargs={"fanout_loads": 3}) != BASE


class TestRestartHit:
    def test_unchanged_config_hits_after_process_restart(self, tmp_path):
        """Store a row under the config key, recompute the key in a
        fresh interpreter, and read the entry back: same config after a
        restart must be a cache hit."""
        cache = ResultCache(str(tmp_path / "cache"))
        cache.put(BASE, [1.0, 2.0])
        import os
        import repro
        src = os.path.dirname(os.path.dirname(repro.__file__))
        script = (
            "import sys; sys.path.insert(0, {src!r})\n"
            "from repro.cells import default_technology\n"
            "from repro.faults import ExternalOpen\n"
            "from repro.montecarlo import VariationModel\n"
            "from repro.runtime import ResultCache, stable_hash\n"
            "key = stable_hash('sweep-row', default_technology(),\n"
            "                  VariationModel(3), ExternalOpen(2, 8e3),\n"
            "                  [4000.0], 3e-12, {{}},\n"
            "                  dict(measure='pulse', omega_in=0.4e-9,\n"
            "                       kind='h'))\n"
            "print(ResultCache({root!r}).get(key))\n"
        ).format(src=src, root=str(tmp_path / "cache"))
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True)
        assert out.stdout.strip() == "[1.0, 2.0]"
