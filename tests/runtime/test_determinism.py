"""Backend determinism: serial and process-pool campaigns must produce
bit-identical results (results are placed by task index, never by
completion order, and every instance's parameters are a pure function of
its seed)."""

from repro.core.coverage import sweep_pulse_measurements
from repro.faults import ExternalOpen
from repro.logic import (DefectCalibration, c17, run_campaign)
from repro.montecarlo import sample_population
from repro.runtime import ProcessPoolExecutor, Runtime, SerialExecutor


def _calibration():
    """Hand-built defect table (no electrical simulation needed)."""
    return DefectCalibration(
        resistances=[1e3, 5e3, 20e3, 60e3],
        extra_rise=[2e-12, 10e-12, 45e-12, 140e-12],
        extra_fall=[2e-12, 10e-12, 45e-12, 140e-12],
        theta_shift=[1e-12, 8e-12, 40e-12, 120e-12],
        kind="external")


def test_electrical_sweep_identical_serial_vs_pool():
    """Satellite check: the same seeds and config give bit-identical raw
    measurement rows whichever executor runs them."""
    samples = sample_population(2, base_seed=11)
    fault = ExternalOpen(2, 8e3)
    resistances = [4e3, 20e3]
    kwargs = dict(omega_in=0.40e-9, dt=5e-12,
                  gate_kinds=("inv",) * 4)

    serial = sweep_pulse_measurements(
        samples, fault, resistances,
        runtime=Runtime(executor=SerialExecutor()), **kwargs)
    parallel = sweep_pulse_measurements(
        samples, fault, resistances,
        runtime=Runtime(executor=ProcessPoolExecutor(n_jobs=2,
                                                     chunk_size=1)),
        **kwargs)
    assert serial == parallel  # exact float equality, not approx


def test_logic_campaign_identical_serial_vs_pool():
    """Whole-campaign determinism on c17 (logic-level, cheap)."""
    calibration = _calibration()
    samples = sample_population(3, base_seed=7)

    def outcome(runtime):
        result = run_campaign(c17(), calibration, samples=samples,
                              runtime=runtime)
        return [(s.net, s.status, s.omega_in, s.omega_th, s.r_min)
                for s in result.sites]

    serial = outcome(Runtime(executor=SerialExecutor()))
    parallel = outcome(Runtime(executor=ProcessPoolExecutor(
        n_jobs=2, chunk_size=1)))
    assert serial == parallel


def test_cached_rerun_identical(tmp_path):
    """A warm-cache rerun reproduces the cold run exactly."""
    calibration = _calibration()
    samples = sample_population(3, base_seed=7)
    runtime = Runtime(cache=str(tmp_path / "cache"))

    def outcome():
        result = run_campaign(c17(), calibration, samples=samples,
                              runtime=runtime)
        return ([(s.net, s.status, s.omega_in, s.omega_th, s.r_min)
                 for s in result.sites], result.report.cache_hits)

    cold, cold_hits = outcome()
    warm, warm_hits = outcome()
    assert cold == warm
    assert cold_hits == 0
    assert warm_hits == len(cold)
