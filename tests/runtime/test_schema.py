"""Schema versioning of persisted records (reports, traces, job store)."""

import json

import pytest

from repro.runtime import (SCHEMA_VERSION, RunReport, SchemaVersionError,
                           TraceWriter, check_schema_version, read_trace)
from repro.runtime.schema import parse_version


class TestVersionParsing:
    def test_current_version_parses(self):
        major, minor = parse_version(SCHEMA_VERSION)
        assert major == 1
        assert minor >= 0

    def test_malformed_rejected(self):
        for bad in ("", "x.y", None, "1.2.3junk"):
            with pytest.raises(SchemaVersionError):
                parse_version(bad)


class TestCheckSchemaVersion:
    def test_same_major_other_minor_accepted(self):
        record = {"schema_version": "1.7", "x": 1}
        assert check_schema_version(record) is record

    def test_unknown_major_rejected(self):
        with pytest.raises(SchemaVersionError):
            check_schema_version({"schema_version": "2.0"})

    def test_missing_version_grandfathered(self):
        # records written before versioning carry no field at all
        assert check_schema_version({"x": 1}) == {"x": 1}


class TestReportStamping:
    def test_summary_carries_version(self):
        assert RunReport("x").summary()["schema_version"] == SCHEMA_VERSION

    def test_load_summary_roundtrip(self, tmp_path):
        path = str(tmp_path / "report.json")
        RunReport("x").to_json(path)
        summary = RunReport.load_summary(path)
        assert summary["schema_version"] == SCHEMA_VERSION

    def test_load_summary_rejects_future_major(self, tmp_path):
        path = str(tmp_path / "report.json")
        with open(path, "w") as handle:
            json.dump({"schema_version": "99.0"}, handle)
        with pytest.raises(SchemaVersionError):
            RunReport.load_summary(path)


class TestTraceStamping:
    def test_events_carry_version(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with TraceWriter(path) as trace:
            trace.emit({"event": "task", "index": 0})
        (event,) = read_trace(path)
        assert event["schema_version"] == SCHEMA_VERSION

    def test_read_trace_rejects_future_major(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        with open(path, "w") as handle:
            handle.write(json.dumps({"event": "task",
                                     "schema_version": "9.1"}) + "\n")
        with pytest.raises(SchemaVersionError):
            read_trace(path)
        # opt out restores the raw read
        assert read_trace(path, check_schema=False)[0]["event"] == "task"

    def test_emit_does_not_mutate_caller_event(self, tmp_path):
        path = str(tmp_path / "trace.jsonl")
        event = {"event": "task"}
        with TraceWriter(path) as trace:
            trace.emit(event)
        assert "schema_version" not in event
