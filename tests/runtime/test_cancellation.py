"""Cooperative cancellation of Runtime.run / run_batched.

The contract behind ``DELETE /jobs/<id>``: a cancelled campaign raises
:class:`CampaignCancelled` between settled tasks, keeps every settled
result in the cache, and leaves a *flushed* checkpoint manifest — so
re-running the same campaign resumes instead of restarting.
"""

import json
import os

import pytest

from repro.runtime import (CampaignCancelled, ProcessPoolExecutor,
                           ResultCache, Runtime, SerialExecutor,
                           stable_hash)


def _double(x):
    return 2 * x


def _double_chunk(xs):
    return [2 * x for x in xs]


def _keys(payloads):
    return [stable_hash("cancel-test", p) for p in payloads]


class _StopAfter:
    """should_stop() that flips true after N polls."""

    def __init__(self, after):
        self.after = after
        self.polls = 0

    def __call__(self):
        self.polls += 1
        return self.polls > self.after


class TestRunCancellation:
    def test_cancel_before_dispatch(self):
        runtime = Runtime()
        with pytest.raises(CampaignCancelled):
            runtime.run(_double, [1, 2, 3], should_stop=lambda: True)

    def test_cancel_mid_run_keeps_settled_results(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runtime = Runtime(cache=cache, checkpoint_every=100)
        payloads = list(range(6))
        keys = _keys(payloads)
        stop = _StopAfter(2)
        with pytest.raises(CampaignCancelled) as exc_info:
            runtime.run(_double, payloads, keys=keys, should_stop=stop)
        assert exc_info.value.done == 2
        # the two settled tasks are cached ...
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[1]) == 2
        # ... and the manifest was flushed despite checkpoint_every=100
        manifests = os.listdir(os.path.join(str(tmp_path), "manifests"))
        assert len(manifests) == 1
        with open(os.path.join(str(tmp_path), "manifests",
                               manifests[0])) as handle:
            manifest = json.load(handle)
        assert sorted(manifest["completed"]) == sorted(keys[:2])

    def test_cancelled_run_resumes(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        payloads = list(range(5))
        keys = _keys(payloads)
        runtime = Runtime(cache=cache)
        with pytest.raises(CampaignCancelled):
            runtime.run(_double, payloads, keys=keys,
                        should_stop=_StopAfter(3))
        run = Runtime(cache=cache).run(_double, payloads, keys=keys)
        assert run.values == [0, 2, 4, 6, 8]
        assert run.report.cache_hits == 3
        assert run.report.cache_misses == 2

    def test_runtime_level_should_stop(self):
        runtime = Runtime(should_stop=lambda: True)
        with pytest.raises(CampaignCancelled):
            runtime.run(_double, [1, 2])
        # per-call override wins
        run = runtime.run(_double, [1, 2], should_stop=lambda: False)
        assert run.values == [2, 4]

    def test_no_should_stop_unchanged(self):
        run = Runtime().run(_double, [1, 2, 3])
        assert run.values == [2, 4, 6]


class TestRunBatchedCancellation:
    def test_cancel_between_chunks(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        runtime = Runtime(cache=cache, checkpoint_every=100)
        payloads = list(range(8))
        keys = _keys(payloads)
        with pytest.raises(CampaignCancelled):
            runtime.run_batched(_double_chunk, payloads, keys=keys,
                                batch_size=2, should_stop=_StopAfter(1))
        # the first chunk's items were settled and cached per item
        assert cache.get(keys[0]) == 0
        assert cache.get(keys[1]) == 2
        # resume completes only the remaining chunks
        run = Runtime(cache=cache).run_batched(
            _double_chunk, payloads, keys=keys, batch_size=2)
        assert run.values == [2 * p for p in payloads]
        assert run.report.cache_hits == 2

    def test_cancel_with_process_pool(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        executor = ProcessPoolExecutor(n_jobs=2, retries=0)
        runtime = Runtime(executor=executor, cache=cache)
        payloads = list(range(8))
        with pytest.raises(CampaignCancelled):
            runtime.run(_double, payloads, keys=_keys(payloads),
                        should_stop=_StopAfter(1))


class TestSerialExecutorPropagation:
    def test_on_result_exception_propagates(self):
        class Boom(RuntimeError):
            pass

        def on_result(outcome):
            raise Boom()

        with pytest.raises(Boom):
            SerialExecutor().map_tasks(_double, [1, 2],
                                       on_result=on_result)
