"""Context-scoped solver instrumentation (repro.runtime.stats).

Covers the collector semantics the campaign runtime depends on: scope
isolation, fold-on-exit up to the process root, per-sample attribution
for the batched engine, and the deprecated read-only views bound to the
historical global names.
"""

import pickle

import pytest

from repro.runtime.stats import (SolverStats, StatsView, current_stats,
                                 root_stats, stats_scope)


class TestSolverStats:
    def test_counters_start_at_zero(self):
        stats = SolverStats()
        assert stats.total("newton_solves") == 0
        assert stats.total("adaptive_accepted") == 0

    def test_count_accumulates(self):
        stats = SolverStats()
        stats.count("newton_solves")
        stats.count("newton_solves", 4)
        assert stats.total("newton_solves") == 5

    def test_unknown_counter_rejected(self):
        """Typos must fail loudly, not silently create a new counter."""
        stats = SolverStats()
        with pytest.raises(KeyError):
            stats.count("newton_sloves")

    def test_phase_timer_accumulates(self):
        stats = SolverStats()
        with stats.phase("newton"):
            pass
        with stats.phase("newton"):
            pass
        assert stats.phase_s["newton"] >= 0.0
        stats.add_phase("ladder", 1.5)
        stats.add_phase("ladder", 0.5)
        assert stats.phase_s["ladder"] == pytest.approx(2.0)

    def test_per_sample_attribution(self):
        stats = SolverStats()
        stats.count_sample(0, "newton_solves", 1)
        stats.count_sample(0, "newton_iterations", 3)
        stats.count_sample(2, "newton_solves", 1)
        assert stats.samples[0] == {"newton_solves": 1,
                                    "newton_iterations": 3}
        assert stats.samples[2]["newton_solves"] == 1

    def test_snapshot_is_plain_and_picklable(self):
        stats = SolverStats()
        stats.count("newton_iterations", 7)
        stats.add_phase("newton", 0.25)
        stats.count_sample(1, "newton_solves", 2)
        snap = stats.snapshot()
        assert snap["counters"]["newton_iterations"] == 7
        assert snap["phase_s"]["newton"] == pytest.approx(0.25)
        assert snap["samples"][1]["newton_solves"] == 2
        restored = pickle.loads(pickle.dumps(snap))
        assert restored == snap
        # the snapshot is a copy, not an alias
        stats.count("newton_iterations")
        assert snap["counters"]["newton_iterations"] == 7

    def test_merge_folds_totals_but_not_samples(self):
        parent, child = SolverStats(), SolverStats()
        child.count("newton_solves", 3)
        child.add_phase("newton", 0.5)
        child.count_sample(0, "newton_solves", 3)
        parent.merge(child)
        assert parent.total("newton_solves") == 3
        assert parent.phase_s["newton"] == pytest.approx(0.5)
        assert parent.samples == {}  # row indices collide across chunks

    def test_merge_accepts_snapshot_dicts(self):
        parent = SolverStats()
        child = SolverStats()
        child.count("adaptive_accepted", 9)
        parent.merge(child.snapshot())
        assert parent.total("adaptive_accepted") == 9


class TestScopes:
    def test_scope_isolates_and_folds_on_exit(self):
        before = root_stats().total("newton_solves")
        with stats_scope() as inner:
            current_stats().count("newton_solves", 2)
            assert inner.total("newton_solves") == 2
            # while the scope is open, the root has not moved
            assert root_stats().total("newton_solves") == before
        assert root_stats().total("newton_solves") == before + 2

    def test_nested_scopes_fold_transitively(self):
        before = root_stats().total("newton_iterations")
        with stats_scope() as outer:
            current_stats().count("newton_iterations", 1)
            with stats_scope() as inner:
                current_stats().count("newton_iterations", 10)
            # the child folded into the outer scope, not the root
            assert inner.total("newton_iterations") == 10
            assert outer.total("newton_iterations") == 11
            assert root_stats().total("newton_iterations") == before
        assert root_stats().total("newton_iterations") == before + 11

    def test_no_scope_records_on_root(self):
        before = root_stats().total("ladder_retries")
        current_stats().count("ladder_retries")
        assert root_stats().total("ladder_retries") == before + 1

    def test_scope_folds_even_when_body_raises(self):
        before = root_stats().total("adaptive_rejected")
        with pytest.raises(RuntimeError):
            with stats_scope():
                current_stats().count("adaptive_rejected", 4)
                raise RuntimeError("boom")
        assert root_stats().total("adaptive_rejected") == before + 4

    def test_explicit_collector_reused(self):
        mine = SolverStats()
        with stats_scope(mine) as active:
            assert active is mine
            current_stats().count("adaptive_runs")
        assert mine.total("adaptive_runs") == 1


class TestDeprecatedViews:
    def test_view_reads_root_with_old_spellings(self):
        view = StatsView({"solves": "newton_solves"})
        before = view["solves"]
        with stats_scope():
            current_stats().count("newton_solves", 6)
        assert view["solves"] == before + 6

    def test_view_snapshots_like_a_dict(self):
        """The benchmark idiom: ``dict(VIEW)`` before/after a workload."""
        view = StatsView({"solves": "newton_solves",
                          "iterations": "newton_iterations"})
        snap = dict(view)
        assert set(snap) == {"solves", "iterations"}
        with stats_scope():
            current_stats().count("newton_iterations", 5)
        assert dict(view)["iterations"] - snap["iterations"] == 5

    def test_view_rejects_writes(self):
        view = StatsView({"solves": "newton_solves"})
        with pytest.raises(TypeError):
            view["solves"] = 0
        with pytest.raises(TypeError):
            view["solves"] += 1

    def test_public_globals_are_views(self):
        from repro.spice.mna import NEWTON_STATS
        from repro.spice.transient import ADAPTIVE_STATS
        assert isinstance(NEWTON_STATS, StatsView)
        assert isinstance(ADAPTIVE_STATS, StatsView)
        assert set(NEWTON_STATS) == {"solves", "iterations"}
        assert set(ADAPTIVE_STATS) == {"runs", "accepted", "rejected"}
        with pytest.raises(TypeError):
            NEWTON_STATS["solves"] = 0


class TestSolverIntegration:
    """The spice hot paths record into the active scope."""

    def _rc(self):
        from repro.spice import Circuit, Pulse
        circuit = Circuit("rc")
        circuit.add_vsource(
            "V1", "in", "0",
            Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=2e-9))
        circuit.add_resistor("R1", "in", "out", 1e3)
        circuit.add_capacitor("C1", "out", "0", 1e-12)
        return circuit

    def test_fixed_step_transient_counts_newton(self):
        from repro.spice import run_transient
        with stats_scope() as stats:
            run_transient(self._rc(), 2e-9, 20e-12)
        assert stats.total("newton_solves") > 0
        assert stats.total("newton_iterations") >= stats.total(
            "newton_solves")
        assert stats.phase_s.get("newton", 0.0) > 0.0
        assert stats.total("adaptive_runs") == 0

    def test_adaptive_transient_counts_steps(self):
        from repro.spice import run_transient
        with stats_scope() as stats:
            run_transient(self._rc(), 2e-9, 20e-12, adaptive=True)
        assert stats.total("adaptive_runs") == 1
        assert stats.total("adaptive_accepted") > 0

    def test_batched_transient_attributes_per_sample(self):
        from repro.spice import run_transient_batch
        circuits = [self._rc() for _ in range(3)]
        with stats_scope() as stats:
            run_transient_batch(circuits, 2e-9, 20e-12)
        assert sorted(stats.samples) == [0, 1, 2]
        per_sample = [stats.samples[row]["newton_iterations"]
                      for row in range(3)]
        assert all(n > 0 for n in per_sample)
        assert sum(per_sample) == stats.total("newton_iterations")
        per_solves = [stats.samples[row]["newton_solves"]
                      for row in range(3)]
        assert sum(per_solves) == stats.total("newton_solves")
