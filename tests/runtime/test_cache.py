"""ResultCache round-trip and layout tests."""

import json
import math
import os

import numpy as np
import pytest

from repro.runtime import CacheMiss, ResultCache, stable_hash


@pytest.fixture
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


class TestJsonValues:
    def test_round_trip_scalars(self, cache):
        key = stable_hash("scalars")
        cache.put(key, {"a": 1, "b": 0.25, "c": None, "d": True,
                        "e": "text", "f": [1, 2, 3]})
        assert cache.get(key) == {"a": 1, "b": 0.25, "c": None,
                                  "d": True, "e": "text", "f": [1, 2, 3]}

    def test_numpy_scalars_lowered(self, cache):
        key = stable_hash("npscalar")
        cache.put(key, {"x": np.float64(0.5), "n": np.int64(3)})
        value = cache.get(key)
        assert value == {"x": 0.5, "n": 3}
        assert isinstance(value["x"], float)

    def test_embedded_array_in_nested_value(self, cache):
        key = stable_hash("nested")
        cache.put(key, {"meta": "row", "data": np.array([1.0, 2.5])})
        value = cache.get(key)
        assert value["meta"] == "row"
        np.testing.assert_array_equal(value["data"],
                                      np.array([1.0, 2.5]))

    def test_unserialisable_rejected(self, cache):
        with pytest.raises(TypeError):
            cache.put(stable_hash("bad"), object())


class TestNonFiniteFloats:
    """Regression: NaN/Infinity used to be written as bare ``NaN`` /
    ``Infinity`` tokens — a Python-only JSON extension that breaks any
    strict consumer (jq, browsers, other languages) reading the cache."""

    def test_nan_round_trips(self, cache):
        key = stable_hash("nan")
        cache.put(key, {"w_out": float("nan"), "detected": False})
        value = cache.get(key)
        assert math.isnan(value["w_out"])
        assert value["detected"] is False

    def test_infinities_round_trip(self, cache):
        key = stable_hash("inf")
        cache.put(key, [float("inf"), float("-inf"), 1.0])
        assert cache.get(key) == [float("inf"), float("-inf"), 1.0]

    def test_numpy_nan_round_trips(self, cache):
        key = stable_hash("npnan")
        cache.put(key, {"x": np.float64("nan")})
        assert math.isnan(cache.get(key)["x"])

    def test_nan_inside_embedded_array(self, cache):
        key = stable_hash("nanarray")
        stored = np.array([1.0, float("nan"), float("inf")])
        cache.put(key, {"meta": "row", "data": stored})
        loaded = cache.get(key)["data"]
        np.testing.assert_array_equal(loaded, stored)

    def test_stored_json_is_strict(self, cache):
        """The on-disk bytes must parse without Python's lenient
        constants — ``parse_constant`` fires on NaN/Infinity tokens."""
        key = stable_hash("strict")
        cache.put(key, {"a": float("nan"), "b": [float("-inf")],
                        "c": np.array([float("nan")])})
        json_path, _ = cache._paths(key)
        with open(json_path) as handle:
            json.load(handle, parse_constant=pytest.fail)


class TestNpzValues:
    def test_bare_array(self, cache):
        key = stable_hash("bare")
        stored = np.linspace(0.0, 1.0, 7)
        cache.put(key, stored)
        loaded = cache.get(key)
        np.testing.assert_array_equal(loaded, stored)
        _, npz_path = cache._paths(key)
        assert os.path.exists(npz_path)

    def test_flat_array_mapping(self, cache):
        key = stable_hash("mapping")
        cache.put(key, {"w_in": np.array([1.0]), "w_out": np.array([2.0])})
        loaded = cache.get(key)
        assert set(loaded) == {"w_in", "w_out"}
        np.testing.assert_array_equal(loaded["w_out"], np.array([2.0]))


class TestProtocol:
    def test_miss_raises(self, cache):
        with pytest.raises(CacheMiss):
            cache.get(stable_hash("never-stored"))
        assert not cache.contains(stable_hash("never-stored"))

    def test_contains_and_count(self, cache):
        assert cache.n_objects() == 0
        for i in range(3):
            cache.put(stable_hash("entry", i), {"i": i})
        assert cache.n_objects() == 3
        assert cache.contains(stable_hash("entry", 1))

    def test_overwrite(self, cache):
        key = stable_hash("overwrite")
        cache.put(key, {"v": 1})
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}
        assert cache.n_objects() == 1

    def test_no_tmp_litter(self, cache):
        key = stable_hash("clean")
        cache.put(key, {"v": 1})
        directory = cache._object_dir(key)
        assert not [f for f in os.listdir(directory)
                    if f.endswith(".tmp")]

    def test_sharded_layout(self, cache):
        key = stable_hash("layout")
        cache.put(key, 1)
        json_path, _ = cache._paths(key)
        assert os.sep + os.path.join("objects", key[:2]) + os.sep \
            in json_path


class TestCorruptObjects:
    def test_corrupt_json_reads_as_miss_and_quarantines(self, cache):
        key = stable_hash("torn-json")
        cache.put(key, {"v": 1})
        json_path, _ = cache._paths(key)
        with open(json_path, "w") as handle:
            handle.write('{"v": 1')  # truncated write
        with pytest.raises(CacheMiss):
            cache.get(key)
        assert cache.quarantined == 1
        # the bad file moved aside (postmortem material), key now free
        assert not os.path.exists(json_path)
        assert os.path.exists(os.path.join(cache.quarantine_dir(),
                                           os.path.basename(json_path)))
        assert not cache.contains(key)

    def test_corrupt_npz_reads_as_miss_and_quarantines(self, cache):
        key = stable_hash("torn-npz")
        cache.put(key, np.array([1.0, 2.0]))
        _, npz_path = cache._paths(key)
        with open(npz_path, "wb") as handle:
            handle.write(b"\x00garbage\xff")
        with pytest.raises(CacheMiss):
            cache.get(key)
        assert cache.quarantined == 1
        assert os.path.exists(os.path.join(cache.quarantine_dir(),
                                           os.path.basename(npz_path)))

    def test_recompute_after_quarantine(self, cache):
        key = stable_hash("recompute")
        cache.put(key, {"v": 1})
        json_path, _ = cache._paths(key)
        with open(json_path, "w") as handle:
            handle.write("not json at all")
        with pytest.raises(CacheMiss):
            cache.get(key)
        cache.put(key, {"v": 2})
        assert cache.get(key) == {"v": 2}

    def test_quarantine_files_not_counted_as_objects(self, cache):
        key = stable_hash("count-after")
        cache.put(key, {"v": 1})
        json_path, _ = cache._paths(key)
        with open(json_path, "w") as handle:
            handle.write("{broken")
        with pytest.raises(CacheMiss):
            cache.get(key)
        assert cache.n_objects() == 0
        # intact entries are unaffected
        other = stable_hash("count-other")
        cache.put(other, {"v": 3})
        assert cache.get(other) == {"v": 3}
        assert cache.n_objects() == 1


class TestDurableWrites:
    def test_atomic_write_fsyncs_file_and_directory(self, tmp_path,
                                                    monkeypatch):
        from repro.runtime.cache import atomic_write

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: synced.append(fd) or
                            real_fsync(fd))
        path = str(tmp_path / "durable.json")
        atomic_write(path, lambda h: h.write('{"v": 1}'))
        # one fsync for the temp file, one for the directory entry
        assert len(synced) == 2
        with open(path) as handle:
            assert json.load(handle) == {"v": 1}

    def test_atomic_write_not_durable_skips_fsync(self, tmp_path,
                                                  monkeypatch):
        from repro.runtime.cache import atomic_write

        synced = []
        monkeypatch.setattr(os, "fsync", lambda fd: synced.append(fd))
        path = str(tmp_path / "scratch.json")
        atomic_write(path, lambda h: h.write("{}"), durable=False)
        assert synced == []

    def test_cache_put_goes_through_durable_write(self, cache,
                                                  monkeypatch):
        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: synced.append(fd) or
                            real_fsync(fd))
        cache.put(stable_hash("synced"), {"v": 1})
        assert len(synced) >= 2

    def test_checkpoint_flush_goes_through_durable_write(self, tmp_path,
                                                         monkeypatch):
        from repro.runtime import CampaignCheckpoint

        synced = []
        real_fsync = os.fsync
        monkeypatch.setattr(os, "fsync",
                            lambda fd: synced.append(fd) or
                            real_fsync(fd))
        checkpoint = CampaignCheckpoint("deadbeef", root=str(tmp_path))
        checkpoint.mark_done("k1")
        checkpoint.flush()
        assert len(synced) >= 2
