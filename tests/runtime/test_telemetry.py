"""RunReport regressions: median, throughput, failure accounting,
solver-counter folding and per-item chunk attribution."""

import pytest

from repro.runtime import RunReport, TaskOutcome


def _ok(index=0, duration=1.0, stats=None, retries=0):
    return TaskOutcome(index, value=index, duration=duration,
                       retries=retries, stats=stats)


def _failed(index=0, duration=1.0, error_type="ValueError",
            timed_out=False):
    return TaskOutcome(index, error_type=error_type,
                       error_message="boom", duration=duration,
                       timed_out=timed_out)


def _stats(**counters):
    return {"counters": counters, "phase_s": {}, "samples": {}}


class TestMedian:
    def test_even_length_uses_middle_pair(self):
        """Regression: ``durations[n // 2]`` is the *upper* middle
        element — a four-task run [1, 2, 3, 10] must report 2.5, not 3."""
        report = RunReport()
        for duration in (3.0, 1.0, 10.0, 2.0):
            report.record_outcome(_ok(duration=duration))
        assert report.summary()["task_time_median_s"] == pytest.approx(
            2.5)

    def test_odd_length_is_middle_element(self):
        report = RunReport()
        for duration in (5.0, 1.0, 3.0):
            report.record_outcome(_ok(duration=duration))
        assert report.summary()["task_time_median_s"] == pytest.approx(
            3.0)

    def test_two_elements(self):
        report = RunReport()
        report.record_outcome(_ok(duration=1.0))
        report.record_outcome(_ok(duration=2.0))
        assert report.summary()["task_time_median_s"] == pytest.approx(
            1.5)

    def test_empty_is_none(self):
        assert RunReport().summary()["task_time_median_s"] is None


class TestThroughput:
    def test_counts_only_completed_tasks(self):
        """Regression: throughput divided cache misses — which include
        failures — by wall time, so a half-failed campaign looked twice
        as fast as it was."""
        report = RunReport()
        for index in range(4):
            report.record_outcome(_ok(index))
        for index in range(4, 8):
            report.record_outcome(_failed(index))
        report.wall_time = 2.0
        assert report.samples_per_second() == pytest.approx(2.0)
        assert report.summary()["samples_per_second"] == pytest.approx(
            2.0)

    def test_zero_wall_time_is_zero_not_nan(self):
        report = RunReport()
        report.record_outcome(_ok())
        assert report.samples_per_second() == 0.0

    def test_format_report_shows_failed_count(self):
        report = RunReport("fmt")
        report.record_outcome(_ok())
        report.record_outcome(_failed(1))
        report.wall_time = 1.0
        text = report.format_report()
        assert "1 failed" in text
        assert "completed samples/s" in text
        assert "1xValueError" in text


class TestSolverFolding:
    def test_counters_fold_from_outcome_snapshots(self):
        report = RunReport()
        report.record_outcome(_ok(0, stats=_stats(
            newton_solves=2, newton_iterations=7, adaptive_runs=1,
            adaptive_accepted=30, adaptive_rejected=4,
            ladder_retries=1)))
        report.record_outcome(_ok(1, stats=_stats(
            newton_solves=3, newton_iterations=8)))
        assert report.newton_solves == 5
        assert report.newton_iterations == 15
        assert report.adaptive_runs == 1
        assert report.adaptive_accepted == 30
        assert report.adaptive_rejected == 4
        assert report.ladder_retries == 1
        summary = report.summary()
        assert summary["newton_solves"] == 5
        assert summary["adaptive_accepted"] == 30
        assert summary["ladder_retries"] == 1

    def test_outcome_without_stats_folds_nothing(self):
        report = RunReport()
        report.record_outcome(_ok(stats=None))
        assert report.newton_solves == 0

    def test_failed_outcome_still_contributes_effort(self):
        """A diverging solve burned real iterations before failing."""
        report = RunReport()
        outcome = _failed()
        outcome.stats = _stats(newton_solves=1, newton_iterations=50)
        report.record_outcome(outcome)
        assert report.newton_iterations == 50
        assert report.failed == 1

    def test_phase_timings_surface_in_summary(self):
        report = RunReport()
        outcome = _ok()
        outcome.stats = {"counters": {}, "phase_s": {"newton": 0.5},
                         "samples": {}}
        report.record_outcome(outcome)
        assert report.summary()["solver_phase_s"] == {"newton": 0.5}
        text = report.format_report()
        assert "newton 0.50s" in text


class TestChunkAttribution:
    def test_n_items_books_per_item_counts_and_durations(self):
        """A batched chunk is one executor task but four campaign
        samples: counts, taxonomy and duration shares go per item."""
        report = RunReport()
        outcome = _ok(duration=8.0, stats=_stats(newton_solves=4))
        report.record_outcome(outcome, n_items=4)
        assert report.cache_misses == 4
        assert report.completed == 4
        assert report.durations == [2.0] * 4
        # solver counters fold once, not once per item
        assert report.newton_solves == 4

    def test_failed_chunk_books_per_item_taxonomy(self):
        report = RunReport()
        report.record_outcome(_failed(timed_out=True,
                                      error_type="TaskTimeout"),
                              n_items=3)
        assert report.failed == 3
        assert report.timeouts == 3
        assert report.failure_taxonomy == {"TaskTimeout": 3}

    def test_retries_booked_once_per_chunk(self):
        report = RunReport()
        report.record_outcome(_ok(retries=2), n_items=5)
        assert report.retries == 2


class TestRobustnessCounters:
    def test_recovered_crashes_booked_on_ok_outcomes(self):
        report = RunReport().start()
        report.record_outcome(TaskOutcome(0, value=1, crashes=2))
        report.record_outcome(TaskOutcome(1, value=2))
        report.finish()
        assert report.worker_crashes == 2
        assert report.completed == 2
        assert report.failed == 0

    def test_poisoned_counted_and_in_taxonomy(self):
        report = RunReport().start()
        report.record_outcome(TaskOutcome(
            0, error_type="PoisonTask", error_message="quarantined",
            poisoned=True, crashed=True, crashes=3))
        report.finish()
        assert report.poisoned == 1
        assert report.failed == 1
        assert report.worker_crashes == 3
        assert report.failure_taxonomy["PoisonTask"] == 1

    def test_summary_carries_robustness_fields(self):
        report = RunReport().start()
        report.record_outcome(TaskOutcome(0, value=1, crashes=1))
        report.pool_rebuilds = 2
        report.cache_quarantined = 3
        report.finish()
        summary = report.summary()
        assert summary["worker_crashes"] == 1
        assert summary["poisoned"] == 0
        assert summary["pool_rebuilds"] == 2
        assert summary["cache_quarantined"] == 3

    def test_format_report_shows_robustness_line_only_when_nonzero(self):
        quiet = RunReport().start()
        quiet.record_outcome(TaskOutcome(0, value=1))
        quiet.finish()
        assert "robustness" not in quiet.format_report()

        noisy = RunReport().start()
        noisy.record_outcome(TaskOutcome(0, value=1, crashes=1))
        noisy.pool_rebuilds = 1
        noisy.finish()
        text = noisy.format_report()
        assert "robustness: 1 worker crashes" in text
        assert "1 pool rebuilds" in text
