"""Serial vs process-pool solver-counter parity.

The whole point of shipping stats snapshots on TaskOutcome is that a
parallel campaign reports the *same* solver effort as a serial run of
the identical work — counters recorded inside worker processes used to
die with the worker.  These tests run a real deterministic adaptive
campaign both ways and require exact equality.
"""

import pytest

from repro.runtime import ProcessPoolExecutor, Runtime, SerialExecutor

COUNTERS = ("newton_solves", "newton_iterations", "adaptive_runs",
            "adaptive_accepted", "adaptive_rejected", "ladder_retries")

RESISTANCES = (800.0, 1e3, 1.5e3, 2e3, 3e3, 5e3)


def _rc(r):
    from repro.spice import Circuit, Pulse
    circuit = Circuit("rc")
    circuit.add_vsource(
        "V1", "in", "0",
        Pulse(0.0, 1.0, delay=1e-9, rise=0.1e-9, width=2e-9))
    circuit.add_resistor("R1", "in", "out", r)
    circuit.add_capacitor("C1", "out", "0", 1e-12)
    return circuit


def _adaptive_task(payload):
    from repro.spice import run_transient
    wf = run_transient(_rc(payload["r"]), 4e-9, 20e-12, adaptive=True)
    return float(wf["out"][-1])


def _adaptive_chunk(payloads):
    from repro.spice import run_transient_batch
    waveforms = run_transient_batch(
        [_rc(p["r"]) for p in payloads], 4e-9, 20e-12, adaptive=True)
    return [float(wf["out"][-1]) for wf in waveforms]


def _counters(report):
    return {name: getattr(report, name) for name in COUNTERS}


@pytest.fixture(scope="module")
def serial_run():
    payloads = [{"r": r} for r in RESISTANCES]
    return Runtime(executor=SerialExecutor()).run(
        _adaptive_task, payloads, label="parity")


class TestScalarParity:
    def test_serial_counters_nonzero(self, serial_run):
        report = serial_run.report
        assert report.adaptive_runs == len(RESISTANCES)
        assert report.adaptive_accepted > 0
        assert report.newton_solves > 0
        assert report.newton_iterations >= report.newton_solves

    def test_pool_matches_serial_exactly(self, serial_run):
        payloads = [{"r": r} for r in RESISTANCES]
        pool_run = Runtime(
            executor=ProcessPoolExecutor(n_jobs=2, retries=0)).run(
                _adaptive_task, payloads, label="parity")
        assert pool_run.values == pytest.approx(serial_run.values,
                                                abs=1e-9)
        assert _counters(pool_run.report) == _counters(serial_run.report)

    def test_pool_chunking_does_not_change_totals(self, serial_run):
        """Chunk size is an executor artifact; totals must not see it."""
        payloads = [{"r": r} for r in RESISTANCES]
        pool_run = Runtime(
            executor=ProcessPoolExecutor(n_jobs=2, chunk_size=1,
                                         retries=0)).run(
                _adaptive_task, payloads, label="parity")
        assert _counters(pool_run.report) == _counters(serial_run.report)

    def test_per_task_outcome_counters_sum_to_report(self):
        payloads = [{"r": r} for r in RESISTANCES]
        executor = SerialExecutor()
        outcomes = executor.map_tasks(_adaptive_task, payloads)
        assert all(o.newton_solves > 0 for o in outcomes)
        report_total = Runtime(executor=SerialExecutor()).run(
            _adaptive_task, payloads).report.newton_solves
        assert sum(o.newton_solves for o in outcomes) == report_total


class TestBatchedParity:
    def test_batched_serial_vs_pool(self):
        """The batched engine's chunk tasks carry their snapshots across
        the process boundary too."""
        payloads = [{"r": r} for r in RESISTANCES]
        serial = Runtime(executor=SerialExecutor()).run_batched(
            _adaptive_chunk, payloads, batch_size=2, label="bp")
        pool = Runtime(
            executor=ProcessPoolExecutor(n_jobs=2, retries=0)
        ).run_batched(_adaptive_chunk, payloads, batch_size=2,
                      label="bp")
        assert pool.values == pytest.approx(serial.values, abs=1e-9)
        assert _counters(serial.report)["adaptive_accepted"] > 0
        assert _counters(pool.report) == _counters(serial.report)
