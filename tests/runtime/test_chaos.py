"""ChaosConfig spec parsing and deterministic-decision tests."""

import os

import pytest

from repro.runtime import (ChaosConfig, ChaosSpecError, ResultCache,
                           stable_hash)


class TestSpecParsing:
    def test_full_spec_round_trip(self):
        chaos = ChaosConfig.parse(
            "kill=0.2,corrupt=0.1,hang=0.05,seed=7,hang_s=9.5,"
            "kill_attempts=2,hang_attempts=3")
        assert chaos.kill_p == 0.2
        assert chaos.corrupt_p == 0.1
        assert chaos.hang_p == 0.05
        assert chaos.seed == 7
        assert chaos.hang_s == 9.5
        assert chaos.kill_attempts == 2
        assert chaos.hang_attempts == 3
        assert chaos.active

    def test_parse_accepts_config_instances(self):
        chaos = ChaosConfig(kill_p=0.5)
        assert ChaosConfig.parse(chaos) is chaos

    def test_unknown_knob_rejected(self):
        with pytest.raises(ChaosSpecError):
            ChaosConfig.parse("explode=1.0")

    def test_bad_value_rejected(self):
        with pytest.raises(ChaosSpecError):
            ChaosConfig.parse("kill=lots")

    def test_missing_equals_rejected(self):
        with pytest.raises(ChaosSpecError):
            ChaosConfig.parse("kill")

    def test_rate_out_of_range_rejected(self):
        with pytest.raises(ChaosSpecError):
            ChaosConfig.parse("kill=1.5")

    def test_from_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_CHAOS", raising=False)
        assert ChaosConfig.from_env() is None
        monkeypatch.setenv("REPRO_CHAOS", "kill=0.25,seed=3")
        chaos = ChaosConfig.from_env()
        assert chaos.kill_p == 0.25 and chaos.seed == 3

    def test_default_inactive(self):
        assert not ChaosConfig().active


class TestDeterministicDecisions:
    def test_decisions_pure_in_seed_and_tokens(self):
        a = ChaosConfig(kill_p=0.5, seed=7)
        b = ChaosConfig(kill_p=0.5, seed=7)
        c = ChaosConfig(kill_p=0.5, seed=8)
        kills_a = [a.should_kill(i, 0) for i in range(64)]
        assert kills_a == [b.should_kill(i, 0) for i in range(64)]
        assert kills_a != [c.should_kill(i, 0) for i in range(64)]

    def test_rate_roughly_respected(self):
        chaos = ChaosConfig(kill_p=0.25, seed=11)
        kills = sum(chaos.should_kill(i, 0) for i in range(1000))
        assert 150 < kills < 350

    def test_kill_attempts_bounds_exposure(self):
        """Default kill_attempts=1: only a task's first execution is at
        risk, so a retried task is guaranteed to recover."""
        chaos = ChaosConfig(kill_p=1.0, seed=0)
        assert chaos.should_kill(3, 0)
        assert not chaos.should_kill(3, 1)
        deeper = ChaosConfig(kill_p=1.0, seed=0, kill_attempts=3)
        assert deeper.should_kill(3, 2)
        assert not deeper.should_kill(3, 3)

    def test_zero_rate_never_fires(self):
        chaos = ChaosConfig()
        assert not any(chaos.should_kill(i, 0) for i in range(100))
        assert not any(chaos.should_hang(i, 0) for i in range(100))
        assert not any(chaos.should_corrupt(str(i)) for i in range(100))


class TestCorruptObject:
    def test_clobbers_stored_object(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        key = stable_hash("to-corrupt")
        cache.put(key, {"v": 1})
        chaos = ChaosConfig(corrupt_p=1.0)
        assert chaos.corrupt_object(cache, key)
        json_path, _ = cache._paths(key)
        assert os.path.exists(json_path)  # contains() still answers True
        from repro.runtime import CacheMiss
        with pytest.raises(CacheMiss):
            cache.get(key)
        assert cache.quarantined == 1

    def test_missing_object_reports_false(self, tmp_path):
        cache = ResultCache(str(tmp_path / "cache"))
        chaos = ChaosConfig(corrupt_p=1.0)
        assert not chaos.corrupt_object(cache, stable_hash("absent"))
