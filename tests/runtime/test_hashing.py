"""Stable hashing tests: keys must be deterministic across processes."""

import os
import subprocess
import sys

import numpy as np

from repro.cells import default_technology
from repro.faults import ExternalOpen, InternalOpen, PULL_UP
from repro.montecarlo import NominalModel, VariationModel
from repro.runtime import canonical_token, stable_hash


class TestCanonicalToken:
    def test_scalars(self):
        assert canonical_token(None) is None
        assert canonical_token(True) is True
        assert canonical_token(3) == 3
        assert canonical_token("x") == "x"
        assert canonical_token(0.1) == repr(0.1)

    def test_numpy_lowered(self):
        assert canonical_token(np.float64(0.25)) == repr(0.25)
        assert canonical_token(np.int64(3)) == 3
        token = canonical_token(np.array([1.0, 2.0]))
        assert token[0] == "ndarray"

    def test_dict_order_independent(self):
        assert (canonical_token({"a": 1, "b": 2})
                == canonical_token({"b": 2, "a": 1}))

    def test_domain_objects(self):
        # fallback path: class name + public attributes
        a = stable_hash(ExternalOpen(2, 8e3))
        b = stable_hash(ExternalOpen(2, 8e3))
        c = stable_hash(ExternalOpen(3, 8e3))
        d = stable_hash(InternalOpen(2, PULL_UP, 8e3))
        assert a == b
        assert len({a, c, d}) == 3

    def test_unhashable_rejected(self):
        class Slotted:
            __slots__ = ("x",)
        try:
            canonical_token(Slotted())
        except TypeError:
            pass
        else:
            raise AssertionError("expected TypeError")


class TestStableHash:
    def test_variation_models_distinct(self):
        assert (stable_hash(VariationModel(seed=1))
                != stable_hash(VariationModel(seed=2)))
        assert (stable_hash(VariationModel(seed=1))
                == stable_hash(VariationModel(seed=1)))

    def test_nominal_vs_sampled(self):
        assert (stable_hash(NominalModel())
                != stable_hash(VariationModel(seed=0)))

    def test_technology_sensitivity(self):
        tech = default_technology()
        assert stable_hash(tech) == stable_hash(default_technology())
        assert stable_hash(tech) != stable_hash(tech.copy(vdd=2.4))

    def test_stable_across_processes(self):
        """Same inputs must hash identically in a fresh interpreter
        (content-addressed cache entries survive process restarts)."""
        import repro
        src = os.path.dirname(os.path.dirname(repro.__file__))
        script = (
            "import sys; sys.path.insert(0, {!r});"
            "from repro.runtime import stable_hash;"
            "from repro.montecarlo import VariationModel;"
            "from repro.faults import ExternalOpen;"
            "print(stable_hash('sweep-row', VariationModel(seed=7),"
            " ExternalOpen(2, 8e3), [1000.0, 8000.0], 3e-12))"
        ).format(src)
        expected = stable_hash("sweep-row", VariationModel(seed=7),
                               ExternalOpen(2, 8e3), [1000.0, 8000.0],
                               3e-12)
        out = subprocess.run(
            [sys.executable, "-c", script], capture_output=True,
            text=True, check=True)
        assert out.stdout.strip() == expected
